"""The benchmark suite as an importable package.

Being a package is what makes ``from .conftest import bench_sweep`` in the
``test_bench_*`` modules resolve when pytest collects from the repo root —
without it every benchmark module died at import time with "attempted
relative import with no known parent package".
"""
