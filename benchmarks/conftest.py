"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's figures (Figs. 2-8 plus the
samples sweep and the ablation study) at a reduced scale — fewer random
drops and coarser grids than Section VII-A, so the whole suite finishes in
minutes — and asserts the figure's qualitative claim on the produced table.
Pass ``--benchmark-only`` to skip the regular tests, and see EXPERIMENTS.md
for how to run the full paper-scale sweeps.
"""

from __future__ import annotations

import pytest

from repro.core.allocator import AllocatorConfig
from repro.experiments.base import SweepConfig


def bench_sweep(num_devices: int = 20, num_trials: int = 1, **kwargs) -> SweepConfig:
    """The reduced-scale sweep shared by the benchmark configurations."""
    kwargs.setdefault("allocator", AllocatorConfig(max_iterations=8))
    return SweepConfig(num_devices=num_devices, num_trials=num_trials, **kwargs)


@pytest.fixture()
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    The figure sweeps are macro-benchmarks (seconds each); a single round is
    representative and keeps the suite fast.
    """

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return runner
