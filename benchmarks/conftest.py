"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's figures (Figs. 2-8 plus the
samples sweep and the ablation study) at a reduced scale — fewer random
drops and coarser grids than Section VII-A, so the whole suite finishes in
minutes — and asserts the figure's qualitative claim on the produced table.
Pass ``--benchmark-only`` to skip the regular tests, and see EXPERIMENTS.md
for how to run the full paper-scale sweeps.

The figure sweeps run through the shared
:class:`~repro.experiments.runner.SweepRunner`; set ``REPRO_BENCH_JOBS=N``
to fan each benchmarked sweep out over ``N`` worker processes (the cache is
kept off either way so the timings stay honest).
"""

from __future__ import annotations

import os

import pytest

from repro.core.allocator import AllocatorConfig
from repro.experiments.base import SweepConfig
from repro.experiments.runner import SweepRunner, set_default_runner


def bench_sweep(num_devices: int = 20, num_trials: int = 1, **kwargs) -> SweepConfig:
    """The reduced-scale sweep shared by the benchmark configurations."""
    kwargs.setdefault("allocator", AllocatorConfig(max_iterations=8))
    return SweepConfig(num_devices=num_devices, num_trials=num_trials, **kwargs)


@pytest.fixture(scope="session", autouse=True)
def bench_runner():
    """Install the suite-wide sweep runner (serial unless REPRO_BENCH_JOBS is set)."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    runner = SweepRunner(jobs=jobs, use_cache=False)
    set_default_runner(runner)
    yield runner
    set_default_runner(None)


@pytest.fixture()
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    The figure sweeps are macro-benchmarks (seconds each); a single round is
    representative and keeps the suite fast.
    """

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return runner
