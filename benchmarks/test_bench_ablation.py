"""Benchmark for the design-choice ablations (DESIGN.md section 6)."""

from repro.experiments import AblationConfig, run_ablation

from .conftest import bench_sweep


def test_bench_ablation(run_once):
    config = AblationConfig(sweep=bench_sweep(num_devices=15), damping_values=(0.25, 0.5, 0.75))
    table = run_once(run_ablation, config)
    print("\n" + table.to_markdown())

    # Every ablation axis is covered.
    assert set(table.column("variant")) == {
        "subproblem1",
        "damping_xi",
        "initialisation",
        "sp2_solver",
    }
    # The exact primal Subproblem-1 solver is never worse than the clipped
    # dual variant (it handles the frequency box exactly).
    sp1 = {row["setting"]: row["objective"] for row in table.filter(variant="subproblem1")}
    assert sp1["primal"] <= sp1["dual"] * 1.05
    # The damping base has a bounded effect on the final objective.
    damping = [row["objective"] for row in table.filter(variant="damping_xi")]
    assert max(damping) <= min(damping) * 1.25
    # The closed-form and numeric SP2_v2 solvers agree to within 50%.
    assert table.filter(variant="sp2_solver").rows[0]["objective"] < 0.5
