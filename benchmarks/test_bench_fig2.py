"""Benchmark regenerating Figure 2 (energy/delay vs maximum transmit power)."""

from repro.experiments import Fig2Config, run_fig2

from .conftest import bench_sweep


def test_bench_fig2(run_once):
    config = Fig2Config(
        sweep=bench_sweep(),
        max_power_dbm_grid=(5.0, 8.0, 12.0),
        weight_pairs=((0.9, 0.1), (0.5, 0.5), (0.1, 0.9)),
    )
    table = run_once(run_fig2, config)
    print("\n" + table.to_markdown())

    for p_max in config.max_power_dbm_grid:
        rows = {row["w1"]: row for row in table.filter(max_power_dbm=p_max, scheme="proposed")}
        benchmark_row = table.filter(max_power_dbm=p_max, scheme="benchmark").rows[0]
        # Fig. 2a/2b: larger w1 -> lower energy and higher delay.
        assert rows[0.9]["energy_j"] < rows[0.5]["energy_j"] < rows[0.1]["energy_j"]
        assert rows[0.9]["time_s"] > rows[0.5]["time_s"] > rows[0.1]["time_s"]
        # The proposed algorithm's energy stays below the random benchmark.
        assert rows[0.9]["energy_j"] < benchmark_row["energy_j"]
        assert rows[0.5]["energy_j"] < benchmark_row["energy_j"]
