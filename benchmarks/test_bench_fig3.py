"""Benchmark regenerating Figure 3 (energy/delay vs maximum CPU frequency)."""

from repro.experiments import Fig3Config, run_fig3

from .conftest import bench_sweep


def test_bench_fig3(run_once):
    config = Fig3Config(
        sweep=bench_sweep(),
        max_frequency_ghz_grid=(0.5, 1.0, 2.0),
        weight_pairs=((0.9, 0.1), (0.5, 0.5)),
    )
    table = run_once(run_fig3, config)
    print("\n" + table.to_markdown())

    bench_energy = [row["energy_j"] for row in table.filter(scheme="benchmark")]
    bench_delay = [row["time_s"] for row in table.filter(scheme="benchmark")]
    # Fig. 3a: the benchmark's energy grows with the frequency cap while its
    # delay falls (it always runs at the maximum frequency).
    assert bench_energy[0] < bench_energy[-1]
    assert bench_delay[0] > bench_delay[-1]

    # Fig. 3a/3b: the proposed algorithm's curves flatten — going from 1 GHz
    # to 2 GHz changes its energy far less than it changes the benchmark's.
    for w1 in (0.9, 0.5):
        proposed = [row["energy_j"] for row in table.filter(scheme="proposed", w1=w1)]
        assert abs(proposed[-1] - proposed[-2]) <= abs(bench_energy[-1] - bench_energy[-2])
        # And it always spends less energy than the benchmark at 2 GHz.
        assert proposed[-1] < bench_energy[-1]
