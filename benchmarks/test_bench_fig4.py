"""Benchmark regenerating Figure 4 (energy/delay vs number of devices)."""

from repro.experiments import Fig4Config, run_fig4

from .conftest import bench_sweep


def test_bench_fig4(run_once):
    config = Fig4Config(
        sweep=bench_sweep(),
        num_devices_grid=(20, 40, 80),
        total_samples=25_000,
        weight_pairs=((0.9, 0.1), (0.5, 0.5)),
    )
    table = run_once(run_fig4, config)
    print("\n" + table.to_markdown())

    for w1 in (0.9, 0.5):
        energies = [row["energy_j"] for row in table.filter(w1=w1)]
        times = [row["time_s"] for row in table.filter(w1=w1)]
        # Fig. 4a: with a fixed 25k-sample corpus split equally, more devices
        # means less computation per device and lower total energy.
        assert energies[0] > energies[-1]
        # Fig. 4b: the overall delay trend is also decreasing.
        assert times[0] > times[-1]
