"""Benchmark regenerating Figure 5 (energy/delay vs cell radius)."""

from repro.experiments import Fig5Config, run_fig5

from .conftest import bench_sweep


def test_bench_fig5(run_once):
    config = Fig5Config(
        sweep=bench_sweep(num_devices=20),
        radius_km_grid=(0.1, 0.7, 1.4),
        num_devices_grid=(20, 40),
    )
    table = run_once(run_fig5, config)
    print("\n" + table.to_markdown())

    for num_devices in config.num_devices_grid:
        times = [row["time_s"] for row in table.filter(num_devices=num_devices)]
        # Fig. 5b: the completion time is positively correlated with the
        # radius (weaker channels force slower uploads); the end of the sweep
        # is clearly above its start.
        assert times[-1] > times[0]
        # Fig. 5a deliberately has no asserted energy trend: the paper itself
        # notes there is no clear correlation between energy and the radius.
        energies = [row["energy_j"] for row in table.filter(num_devices=num_devices)]
        assert all(e > 0 for e in energies)
