"""Benchmark regenerating Figure 6 (energy/delay vs the FL schedule)."""

from repro.experiments import Fig6Config, run_fig6

from .conftest import bench_sweep


def test_bench_fig6(run_once):
    config = Fig6Config(
        sweep=bench_sweep(),
        local_iterations_grid=(10, 50, 110),
        global_rounds_grid=(50, 400),
    )
    table = run_once(run_fig6, config)
    print("\n" + table.to_markdown())

    for global_rounds in config.global_rounds_grid:
        rows = table.filter(global_rounds=global_rounds).rows
        energies = [row["energy_j"] for row in rows]
        times = [row["time_s"] for row in rows]
        # Fig. 6: both metrics grow with the number of local iterations.
        assert energies == sorted(energies)
        assert times == sorted(times)
    # And with the number of global rounds at fixed local iterations.
    low = table.filter(global_rounds=50, local_iterations=10).rows[0]
    high = table.filter(global_rounds=400, local_iterations=10).rows[0]
    assert high["energy_j"] > low["energy_j"]
    assert high["time_s"] > low["time_s"]
