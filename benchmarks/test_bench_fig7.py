"""Benchmark regenerating Figure 7 (joint vs single-resource optimisation)."""

from repro.experiments import Fig7Config, run_fig7

from .conftest import bench_sweep


def test_bench_fig7(run_once):
    config = Fig7Config(
        sweep=bench_sweep(max_power_dbm=10.0),
        deadline_s_grid=(100.0, 125.0, 150.0),
    )
    table = run_once(run_fig7, config)
    print("\n" + table.to_markdown())

    proposed_series = []
    for deadline in config.deadline_s_grid:
        proposed = table.filter(deadline_s=deadline, scheme="proposed").rows[0]
        comm = table.filter(deadline_s=deadline, scheme="communication_only").rows[0]
        comp = table.filter(deadline_s=deadline, scheme="computation_only").rows[0]
        proposed_series.append(proposed["energy_j"])
        # Fig. 7: the joint optimisation never spends more energy than either
        # single-resource scheme (tiny numerical ties allowed).
        assert proposed["energy_j"] <= comm["energy_j"] * 1.01
        assert proposed["energy_j"] <= comp["energy_j"] * 1.01
        assert proposed["feasible"] == 1.0
    # Energy falls monotonically as the completion-time budget loosens.
    assert proposed_series == sorted(proposed_series, reverse=True)
