"""Benchmark regenerating Figure 8 (proposed algorithm vs Scheme 1)."""

from repro.experiments import Fig8Config, run_fig8

from .conftest import bench_sweep


def test_bench_fig8(run_once):
    config = Fig8Config(
        sweep=bench_sweep(),
        max_power_dbm_grid=(5.0, 8.0, 12.0),
        deadline_s_grid=(80.0, 150.0),
    )
    table = run_once(run_fig8, config)
    print("\n" + table.to_markdown())

    average_gap = {}
    for deadline in config.deadline_s_grid:
        gaps = []
        for p_max in config.max_power_dbm_grid:
            proposed = table.filter(
                deadline_s=deadline, max_power_dbm=p_max, scheme="proposed"
            ).rows[0]
            scheme1 = table.filter(
                deadline_s=deadline, max_power_dbm=p_max, scheme="scheme1"
            ).rows[0]
            # Fig. 8: the proposed algorithm is below Scheme 1 at every point.
            assert proposed["energy_j"] <= scheme1["energy_j"] * (1 + 1e-6)
            gaps.append(scheme1["energy_j"] - proposed["energy_j"])
        average_gap[deadline] = sum(gaps) / len(gaps)
    # The gap widens as the completion-time budget tightens.
    assert average_gap[80.0] > average_gap[150.0]
