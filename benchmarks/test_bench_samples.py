"""Benchmark for the samples-per-device sweep (Section VII-B, text)."""

from repro.experiments import SamplesConfig, run_samples_sweep

from .conftest import bench_sweep


def test_bench_samples(run_once):
    config = SamplesConfig(sweep=bench_sweep(), samples_grid=(250, 500, 1000))
    table = run_once(run_samples_sweep, config)
    print("\n" + table.to_markdown())

    energies = table.column("energy_j")
    times = table.column("time_s")
    # The paper: samples per device are positively correlated with both
    # energy and completion time.
    assert energies == sorted(energies)
    assert times == sorted(times)
