"""Benchmarks of the scenario subsystem: build + one solve per family.

Times, for every registered scenario family, (a) realising one drop through
the registry and (b) one proposed-algorithm solve on that drop — the perf
baseline for future fading, topology and fleet work.  Construction is
microseconds-to-milliseconds against solves of hundreds of milliseconds, so
a regression in either shows up clearly.
"""

import pytest

from repro import (
    JointProblem,
    ProblemWeights,
    ResourceAllocator,
    ScenarioSpec,
    build_scenario_spec,
    scenario_families,
)
from repro.core.allocator import AllocatorConfig

#: Enough devices to exercise the per-family machinery (clusters, classes,
#: wall counting) while keeping the full suite in seconds.
NUM_DEVICES = 20


def _spec(family: str) -> ScenarioSpec:
    return ScenarioSpec(family, {"num_devices": NUM_DEVICES, "seed": 0})


@pytest.mark.parametrize("family", scenario_families())
def test_bench_scenario_build(benchmark, family):
    system = benchmark(build_scenario_spec, _spec(family))
    assert system.num_devices == NUM_DEVICES


@pytest.mark.parametrize("family", scenario_families())
def test_bench_scenario_solve(benchmark, run_once, family):
    system = build_scenario_spec(_spec(family))
    allocator = ResourceAllocator(AllocatorConfig(max_iterations=8))
    problem = JointProblem(system, ProblemWeights.from_energy_weight(0.5))
    result = run_once(allocator.solve, problem)
    assert result.energy_j > 0.0 and result.completion_time_s > 0.0
