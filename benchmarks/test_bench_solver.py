"""Micro-benchmarks of the proposed algorithm's building blocks.

Unlike the figure benchmarks (macro-benchmarks run once), these time the
individual solver layers with pytest-benchmark's normal repetition so the
cost of each stage of Algorithm 2 can be tracked:

* one full Algorithm-2 solve at the paper's device count,
* one Algorithm-1 (sum-of-ratios) solve,
* one closed-form SP2_v2 solve (Theorem 2 / Appendix B),
* one Subproblem-1 solve.
"""

import numpy as np
import pytest

from repro import JointProblem, ProblemWeights, ResourceAllocator, build_paper_scenario
from repro.core.subproblem1 import solve_subproblem1
from repro.core.subproblem2 import solve_sp2_v2
from repro.core.sum_of_ratios import SumOfRatiosSolver


@pytest.fixture(scope="module")
def paper_system():
    return build_paper_scenario(num_devices=50, seed=0)


@pytest.fixture(scope="module")
def warm_start(paper_system):
    """A feasible (p, B, nu, beta, r_min) tuple shared by the micro-benchmarks."""
    system = paper_system
    n = system.num_devices
    power = system.max_power_w.copy()
    bandwidth = np.full(n, system.total_bandwidth_hz * 0.5 / n)
    rates = system.rates_bps(power, bandwidth)
    upload = system.upload_bits / rates
    compute = system.cycles_per_round / system.max_frequency_hz
    deadline = float(np.max(upload + compute)) * 1.5
    min_rate = system.upload_bits / np.maximum(deadline - compute, 1e-9)
    beta = power * system.upload_bits / rates
    nu = 0.5 * system.global_rounds / rates
    return power, bandwidth, upload, min_rate, nu, beta


def test_bench_full_algorithm2(benchmark, paper_system):
    problem = JointProblem(paper_system, ProblemWeights(energy=0.5, time=0.5))
    allocator = ResourceAllocator()
    result = benchmark(allocator.solve, problem)
    assert result.feasible


def test_bench_sum_of_ratios(benchmark, paper_system, warm_start):
    power, bandwidth, _, min_rate, _, _ = warm_start
    solver = SumOfRatiosSolver(paper_system, 0.5)
    result = benchmark(solver.solve, min_rate, power, bandwidth)
    assert result.feasible


def test_bench_sp2_closed_form(benchmark, paper_system, warm_start):
    _, _, _, min_rate, nu, beta = warm_start
    result = benchmark(solve_sp2_v2, paper_system, nu, beta, min_rate)
    assert result.feasible


def test_bench_subproblem1(benchmark, paper_system, warm_start):
    _, _, upload, _, _, _ = warm_start
    result = benchmark(
        solve_subproblem1, paper_system, 0.5, 0.5, upload
    )
    assert result.round_deadline_s > 0
