"""Benchmark the warm-started sweep hot path against the cold baseline.

This is the pytest-visible twin of ``repro bench``: it times the same
Figure-2 sweep cold and warm-started and asserts the warm-start contract —
identical solver trajectories (same iteration totals) and metric parity
within 1e-6.

Since the vector backend became the default, the *wall-clock* part of the
warm-start story lives on the scalar reference backend: vectorization
removed the probe-sequential multiplier search that warm hints used to
skip, so on the vector backend a warm sweep is parity-identical but no
longer meaningfully faster, while on the scalar backend the seeded
bracket + Illinois hot path still shows its historical speedup.  The
asserted floors are softer than the ``repro bench`` gates so a loaded CI
box cannot flake the tier-1 suite; the strict gates live in the bench
job's baseline comparison.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.experiments import Fig2Config, run_fig2
from repro.experiments.runner import SweepRunner

from .conftest import bench_sweep


def _timed_run(config, warm, backend=None):
    if backend is not None:
        config = dataclasses.replace(config, sweep=config.sweep.with_backend(backend))
    outcomes = []
    runner = SweepRunner(
        jobs=1,
        use_cache=False,
        warm_start=warm,
        progress=lambda done, total, outcome: outcomes.append(outcome),
    )
    started = time.perf_counter()
    table = run_fig2(config, runner=runner)
    elapsed = time.perf_counter() - started
    return table, outcomes, elapsed


def _config():
    return Fig2Config(
        sweep=bench_sweep(num_devices=15, num_trials=1),
        max_power_dbm_grid=(5.0, 7.0, 9.0, 12.0),
        weight_pairs=((0.9, 0.1), (0.5, 0.5)),
        include_benchmark=False,
    )


def _total(outcomes, key):
    return sum(o.metrics[key] for o in outcomes if o.ok)


def test_bench_warm_start_fig2_vector_parity(run_once):
    """Default (vector) backend: warm starts preserve the trajectory."""
    config = _config()
    cold_table, cold_outcomes, cold_s = _timed_run(config, warm=False)
    warm_table, warm_outcomes, warm_s = run_once(_timed_run, config, warm=True)

    print(
        f"\n[vector] cold {cold_s:.2f}s vs warm {warm_s:.2f}s "
        f"({cold_s / max(warm_s, 1e-9):.2f}x); outer iterations "
        f"{_total(cold_outcomes, 'iterations'):.0f} -> "
        f"{_total(warm_outcomes, 'iterations'):.0f}"
    )

    # Trajectory preservation: identical iteration totals, parity <= 1e-6.
    assert _total(warm_outcomes, "iterations") == _total(cold_outcomes, "iterations")
    assert _total(warm_outcomes, "inner_iterations") == _total(
        cold_outcomes, "inner_iterations"
    )
    for cold_row, warm_row in zip(cold_table.rows, warm_table.rows):
        for column in ("energy_j", "time_s", "objective"):
            assert warm_row[column] == pytest.approx(cold_row[column], rel=1e-6)

    # Warm hints must never make the vector hot path meaningfully slower.
    assert warm_s < cold_s * 1.5


def test_bench_warm_start_fig2_scalar_speedup(run_once):
    """Scalar oracle backend: the seeded hot path is still actually hotter."""
    config = _config()
    cold_table, cold_outcomes, cold_s = _timed_run(config, warm=False, backend="scalar")
    warm_table, warm_outcomes, warm_s = run_once(
        _timed_run, config, warm=True, backend="scalar"
    )

    speedup = cold_s / max(warm_s, 1e-9)
    print(
        f"\n[scalar] cold {cold_s:.2f}s vs warm {warm_s:.2f}s ({speedup:.2f}x); "
        f"outer iterations {_total(cold_outcomes, 'iterations'):.0f} -> "
        f"{_total(warm_outcomes, 'iterations'):.0f}"
    )

    assert _total(warm_outcomes, "iterations") == _total(cold_outcomes, "iterations")
    for cold_row, warm_row in zip(cold_table.rows, warm_table.rows):
        for column in ("energy_j", "time_s", "objective"):
            assert warm_row[column] == pytest.approx(cold_row[column], rel=1e-6)

    # The seeded scalar path must actually be hotter (soft floor; see
    # module docstring).
    assert speedup > 1.15


def test_bench_backend_sp2_speedup(run_once):
    """Vector backend beats the scalar oracle on the SP2 stage wall-clock."""
    config = _config()
    scalar_table, scalar_outcomes, scalar_s = _timed_run(
        config, warm=False, backend="scalar"
    )
    vector_table, vector_outcomes, vector_s = run_once(
        _timed_run, config, warm=False, backend="vector"
    )

    stage_total = lambda outs, name: sum(  # noqa: E731
        (o.timings or {}).get(name, 0.0) for o in outs
    )
    scalar_sp2 = stage_total(scalar_outcomes, "sp2")
    vector_sp2 = stage_total(vector_outcomes, "sp2")
    speedup = scalar_sp2 / max(vector_sp2, 1e-9)
    print(
        f"\n[backend] sp2 stage scalar {scalar_sp2:.2f}s vs vector "
        f"{vector_sp2:.2f}s ({speedup:.2f}x); wall {scalar_s:.2f}s -> {vector_s:.2f}s"
    )

    # The backends must agree within the bench parity tolerance...
    for scalar_row, vector_row in zip(scalar_table.rows, vector_table.rows):
        for column in ("energy_j", "time_s", "objective"):
            assert vector_row[column] == pytest.approx(scalar_row[column], rel=1e-8)

    # ...and the vector backend must be the fast one (soft floor; the
    # strict >= 2x gate lives in the bench comparison).
    assert speedup > 1.5
