"""Benchmark the warm-started sweep hot path against the cold baseline.

This is the pytest-visible twin of ``repro bench``: it times the same
Figure-2 sweep cold and warm-started and asserts the warm-start contract —
identical solver trajectories (same iteration totals), metric parity within
1e-6, and a real wall-clock win.  The asserted speedup floor is softer than
the ``repro bench`` gate (1.3x) so a loaded CI box cannot flake the tier-1
suite; the strict gate lives in the bench job's baseline comparison.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments import Fig2Config, run_fig2
from repro.experiments.runner import SweepRunner

from .conftest import bench_sweep


def _timed_run(config, warm):
    outcomes = []
    runner = SweepRunner(
        jobs=1,
        use_cache=False,
        warm_start=warm,
        progress=lambda done, total, outcome: outcomes.append(outcome),
    )
    started = time.perf_counter()
    table = run_fig2(config, runner=runner)
    elapsed = time.perf_counter() - started
    return table, outcomes, elapsed


def test_bench_warm_start_fig2(run_once):
    config = Fig2Config(
        sweep=bench_sweep(num_devices=15, num_trials=1),
        max_power_dbm_grid=(5.0, 7.0, 9.0, 12.0),
        weight_pairs=((0.9, 0.1), (0.5, 0.5)),
        include_benchmark=False,
    )
    cold_table, cold_outcomes, cold_s = _timed_run(config, warm=False)
    warm_table, warm_outcomes, warm_s = run_once(_timed_run, config, warm=True)

    total = lambda outs, key: sum(o.metrics[key] for o in outs if o.ok)  # noqa: E731
    speedup = cold_s / max(warm_s, 1e-9)
    print(
        f"\ncold {cold_s:.2f}s vs warm {warm_s:.2f}s ({speedup:.2f}x); "
        f"outer iterations {total(cold_outcomes, 'iterations'):.0f} -> "
        f"{total(warm_outcomes, 'iterations'):.0f}"
    )

    # Trajectory preservation: identical iteration totals, parity <= 1e-6.
    assert total(warm_outcomes, "iterations") == total(cold_outcomes, "iterations")
    assert total(warm_outcomes, "inner_iterations") == total(
        cold_outcomes, "inner_iterations"
    )
    for cold_row, warm_row in zip(cold_table.rows, warm_table.rows):
        for column in ("energy_j", "time_s", "objective"):
            assert warm_row[column] == pytest.approx(cold_row[column], rel=1e-6)

    # The hot path must actually be hotter (soft floor; see module docstring).
    assert speedup > 1.15
