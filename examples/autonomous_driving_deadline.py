"""Scenario: time-critical FL for connected vehicles under a hard deadline.

The paper's introduction motivates the completion-time weight with smart
transportation: connected vehicles need the global model quickly.  This
example fixes a hard completion-time budget, compares the proposed joint
algorithm against the single-resource baselines and Scheme 1 ([7]), and
shows how the energy price of the deadline grows as the budget tightens.

Run with:  python examples/autonomous_driving_deadline.py
"""

from __future__ import annotations

from repro import JointProblem, ProblemWeights, ResourceAllocator, build_paper_scenario
from repro.baselines import communication_only, computation_only, scheme1
from repro.exceptions import InfeasibleProblemError
from repro.experiments import ascii_line_plot


def main() -> None:
    # Vehicles spread over a larger cell than the default campus setting.
    system = build_paper_scenario(
        num_devices=40, seed=3, radius_km=0.5, max_power_dbm=10.0
    )
    weights = ProblemWeights(energy=1.0, time=0.0)
    allocator = ResourceAllocator()

    deadlines = (80.0, 100.0, 125.0, 150.0)
    proposed_energy, scheme1_energy, comm_energy, comp_energy = [], [], [], []

    print(f"{'deadline':>9} | {'proposed':>9} | {'scheme 1':>9} | {'comm-only':>9} | {'comp-only':>9}")
    print("-" * 59)
    for deadline in deadlines:
        problem = JointProblem(system, weights, deadline_s=deadline)
        try:
            proposed = allocator.solve(problem)
        except InfeasibleProblemError:
            print(f"{deadline:9.0f} | infeasible for every scheme")
            continue
        s1 = scheme1(problem)
        comm = communication_only(problem)
        comp = computation_only(problem)
        proposed_energy.append(proposed.energy_j)
        scheme1_energy.append(s1.energy_j)
        comm_energy.append(comm.energy_j)
        comp_energy.append(comp.energy_j)
        print(
            f"{deadline:9.0f} | {proposed.energy_j:9.2f} | {s1.energy_j:9.2f} | "
            f"{comm.energy_j:9.2f} | {comp.energy_j:9.2f}"
        )

    print()
    print(
        ascii_line_plot(
            list(deadlines)[: len(proposed_energy)],
            {
                "proposed": proposed_energy,
                "scheme1": scheme1_energy,
                "comm-only": comm_energy,
                "comp-only": comp_energy,
            },
            title="Total energy (J) versus the completion-time budget (s)",
            x_label="completion-time budget (s)",
            height=14,
        )
    )
    print(
        "\nTightening the deadline makes every scheme spend more energy; the joint "
        "optimisation consistently pays the smallest premium."
    )


if __name__ == "__main__":
    main()
