"""End-to-end federated training priced by the resource allocation.

The paper optimises the *cost* of a fixed FL schedule (R_g global rounds of
R_l local iterations); this example closes the loop by actually training a
model with FedAvg and charging every round the energy and wall-clock time
implied by two different allocations — the proposed algorithm's and the
static max-power/max-frequency one — to show accuracy-versus-energy and
accuracy-versus-time curves.

Run with:  python examples/federated_training.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    JointProblem,
    ProblemWeights,
    ResourceAllocator,
    ScenarioSpec,
    build_scenario_spec,
)
from repro.baselines import static_equal_allocation
from repro.fl import (
    Client,
    FedAvgServer,
    FederatedSimulation,
    SoftmaxRegression,
    dirichlet_partition,
    make_classification_dataset,
)


def build_clients(dataset, num_clients: int, seed: int) -> list[Client]:
    """Partition the training split across clients with mild label skew."""
    partitions = dirichlet_partition(
        dataset.train_y, num_clients, concentration=2.0, rng=seed
    )
    return [
        Client(client_id=i, features=dataset.train_x[idx], labels=dataset.train_y[idx])
        for i, idx in enumerate(partitions)
    ]


def run_with_allocation(system, dataset, allocation, *, rounds: int, seed: int):
    """Train FedAvg for ``rounds`` global rounds under a given allocation."""
    clients = build_clients(dataset, system.num_devices, seed)
    model = SoftmaxRegression(dataset.num_features, dataset.num_classes, rng=seed)
    server = FedAvgServer(
        model, clients, test_x=dataset.test_x, test_y=dataset.test_y, rng=seed
    )
    simulation = FederatedSimulation(system, server, allocation)
    return simulation.run(global_rounds=rounds, local_iterations=system.local_iterations)


def main() -> None:
    num_devices = 20
    rounds = 40
    # A heterogeneous phone/laptop/IoT fleet, built through the scenario
    # registry: the FL rounds below are priced per device class.
    system = build_scenario_spec(
        ScenarioSpec("hetero-fleet", {"num_devices": num_devices, "seed": 5})
    )
    dataset = make_classification_dataset(
        num_samples=4000, num_features=16, num_classes=4, rng=5
    )

    # Allocation 1: the proposed algorithm with a balanced weight pair.
    problem = JointProblem(system, ProblemWeights(energy=0.5, time=0.5))
    proposed = ResourceAllocator().solve(problem)

    # Allocation 2: static max power / max frequency / equal bandwidth.
    static = static_equal_allocation(problem)

    report_proposed = run_with_allocation(
        system, dataset, proposed.allocation, rounds=rounds, seed=5
    )
    report_static = run_with_allocation(
        system, dataset, static.allocation, rounds=rounds, seed=5
    )

    print(f"Trained {rounds} FedAvg rounds on {num_devices} devices "
          f"({dataset.num_train} training samples).\n")
    header = f"{'allocation':>12} | {'accuracy':>8} | {'wall-clock':>10} | {'energy':>9}"
    print(header)
    print("-" * len(header))
    for name, report in (("proposed", report_proposed), ("static", report_static)):
        print(
            f"{name:>12} | {report.final_accuracy:8.3f} | "
            f"{report.total_time_s:9.1f} s | {report.total_energy_j:8.2f} J"
        )

    target = 0.8 * max(report_proposed.final_accuracy, report_static.final_accuracy)
    print(f"\nCost to reach {target:.2f} test accuracy:")
    for name, report in (("proposed", report_proposed), ("static", report_static)):
        time_needed = report.time_to_accuracy(target)
        energy_needed = report.energy_to_accuracy(target)
        if time_needed is None:
            print(f"  {name:>12}: never reached")
        else:
            print(f"  {name:>12}: {time_needed:8.1f} s and {energy_needed:8.2f} J")

    ratio = report_static.total_energy_j / max(report_proposed.total_energy_j, 1e-9)
    print(
        f"\nBoth runs follow the same learning curve (identical FedAvg schedule); "
        f"the optimised allocation simply delivers it for {ratio:.1f}x less energy."
    )
    assert np.isclose(
        report_proposed.final_accuracy, report_static.final_accuracy, atol=0.05
    ), "both allocations run the same FedAvg schedule"


if __name__ == "__main__":
    main()
