"""Scenario: a fleet of low-battery sensors that must survive the training.

The paper motivates the energy weight ``w1`` with battery-constrained
devices.  This example sweeps the weight pair from time-focused to
energy-focused, tracks how much battery each allocation would consume over
the full ``R_g = 400`` rounds, and reports which settings let a 200 J
battery finish training.

Run with:  python examples/low_battery_fleet.py
"""

from __future__ import annotations

import numpy as np

from repro import JointProblem, ProblemWeights, ResourceAllocator, build_paper_scenario
from repro.devices import Battery
from repro.experiments import ascii_line_plot


def main() -> None:
    system = build_paper_scenario(num_devices=40, seed=11)
    # A small sensor battery: only the energy-focused allocations manage to
    # finish all 400 rounds within it.
    battery_capacity_j = 3.0

    weight_grid = (0.1, 0.3, 0.5, 0.7, 0.9)
    energies, times, survivors = [], [], []

    allocator = ResourceAllocator()
    for w1 in weight_grid:
        problem = JointProblem(system, ProblemWeights.from_energy_weight(w1))
        result = allocator.solve(problem)
        energies.append(result.energy_j)
        times.append(result.completion_time_s)

        # Per-device energy over the whole training run.
        allocation = result.allocation
        per_device = system.global_rounds * (
            system.upload_energy_j(allocation.power_w, allocation.bandwidth_hz)
            + system.computation_energy_j(allocation.frequency_hz)
        )
        alive = 0
        for device_energy in per_device:
            battery = Battery(capacity_j=battery_capacity_j)
            if battery.can_supply(float(device_energy)):
                alive += 1
        survivors.append(alive)
        print(
            f"w1={w1:.1f}: total energy {result.energy_j:8.2f} J, "
            f"completion {result.completion_time_s:7.1f} s, "
            f"devices finishing on a {battery_capacity_j:.0f} J battery: "
            f"{alive}/{system.num_devices}"
        )

    print()
    print(
        ascii_line_plot(
            list(weight_grid),
            {"energy (J)": energies, "time (s)": times},
            title="Energy / completion-time trade-off versus the energy weight w1",
            x_label="w1 (energy weight)",
            height=14,
        )
    )

    # Prefer the largest energy weight among the settings that keep the most
    # devices alive (ties are broken towards saving energy).
    best = int(np.flatnonzero(np.array(survivors) == max(survivors))[-1])
    print(
        f"\nMost battery-friendly setting: w1={weight_grid[best]:.1f} "
        f"({survivors[best]}/{system.num_devices} devices survive; "
        f"training takes {times[best]:.0f} s)."
    )


if __name__ == "__main__":
    main()
