"""Quickstart: allocate resources for one FL system and inspect the result.

Builds a scenario through the scenario-family registry (the paper's
Section VII-A recipe by default), runs the proposed resource-allocation
algorithm (Algorithm 2) for a balanced weight pair, and prints the
resulting energy/latency breakdown next to the random benchmark the paper
compares against.

Run with:  python examples/quickstart.py [scenario-family]

e.g. ``python examples/quickstart.py hotspot`` — any family printed by
``repro list-scenarios`` works.
"""

from __future__ import annotations

import sys

from repro import (
    JointProblem,
    ProblemWeights,
    ResourceAllocator,
    ScenarioSpec,
    build_scenario_spec,
)
from repro.baselines import random_benchmark, static_equal_allocation


def main() -> None:
    # One random drop of 50 devices, built through the scenario registry.
    family = sys.argv[1] if len(sys.argv) > 1 else "paper"
    system = build_scenario_spec(
        ScenarioSpec(family, {"num_devices": 50, "seed": 7})
    )
    print(f"Scenario family: {family}")
    print(f"System: {system.num_devices} devices, "
          f"{system.total_bandwidth_hz / 1e6:.0f} MHz uplink, "
          f"R_l={system.local_iterations}, R_g={system.global_rounds}")

    # Balanced objective: half energy, half completion time.
    problem = JointProblem(system, ProblemWeights(energy=0.5, time=0.5))

    allocator = ResourceAllocator()
    result = allocator.solve(problem)

    print("\nProposed algorithm (Algorithm 2)")
    print(f"  converged        : {result.converged} after {result.iterations} outer iterations")
    print(f"  total energy     : {result.energy_j:9.2f} J "
          f"(transmission {result.transmission_energy_j:.2f} J, "
          f"computation {result.computation_energy_j:.2f} J)")
    print(f"  completion time  : {result.completion_time_s:9.2f} s")
    print(f"  weighted objective: {result.objective:8.2f}")

    benchmark = random_benchmark(problem, rng=7)
    static = static_equal_allocation(problem)
    print("\nReference points")
    print(f"  random benchmark : energy {benchmark.energy_j:9.2f} J, "
          f"time {benchmark.completion_time_s:8.2f} s, objective {benchmark.objective:8.2f}")
    print(f"  static max/equal : energy {static.energy_j:9.2f} J, "
          f"time {static.completion_time_s:8.2f} s, objective {static.objective:8.2f}")

    saving = 100.0 * (1.0 - result.objective / benchmark.objective)
    print(f"\nThe proposed allocation improves the weighted objective by "
          f"{saving:.1f}% over the random benchmark.")


if __name__ == "__main__":
    main()
