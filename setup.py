"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
editable installs keep working on environments whose ``pip``/``setuptools``
cannot build PEP 660 editable wheels (e.g. offline machines without the
``wheel`` package installed):

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
