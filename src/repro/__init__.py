"""Reproduction of *Joint Optimization of Energy Consumption and Completion
Time in Federated Learning* (Zhou, Zhao, Han, Guet — IEEE ICDCS 2022).

The package is organised as follows:

* :mod:`repro.core` — the paper's contribution: the joint optimization
  problem and the alternating resource-allocation algorithm (Algorithms 1
  and 2).
* :mod:`repro.wireless` — the single-cell FDMA uplink substrate (topology,
  path loss, shadowing, Shannon rates, spectrum management).
* :mod:`repro.devices` — device CPU / radio / battery models and fleet
  generation.
* :mod:`repro.solvers` — the from-scratch convex-optimization toolkit the
  closed-form solvers are built on.
* :mod:`repro.baselines` — the comparison schemes of Section VII (random
  benchmark, communication-only, computation-only, delay minimisation,
  Scheme 1 of Yang et al.).
* :mod:`repro.fl` — a FedAvg simulator used to connect the resource
  allocation to actual training runs in the examples.
* :mod:`repro.experiments` — runners that regenerate every figure of the
  paper's evaluation section.

Quickstart
----------
>>> from repro import build_paper_scenario, JointProblem, ProblemWeights, ResourceAllocator
>>> system = build_paper_scenario(num_devices=10, seed=1)
>>> problem = JointProblem(system, ProblemWeights(energy=0.5, time=0.5))
>>> result = ResourceAllocator().solve(problem)
>>> result.energy_j > 0 and result.completion_time_s > 0
True
"""

from .core.allocation import ResourceAllocation
from .core.allocator import AllocationResult, AllocatorConfig, ResourceAllocator
from .core.problem import JointProblem, ProblemWeights
from .scenarios import (
    ScenarioConfig,
    ScenarioSpec,
    build_paper_scenario,
    build_scenario,
    build_scenario_spec,
    get_scenario_family,
    register_scenario_family,
    scenario_families,
)
from .system import SystemModel

__version__ = "1.0.0"

__all__ = [
    "ResourceAllocation",
    "AllocationResult",
    "AllocatorConfig",
    "ResourceAllocator",
    "JointProblem",
    "ProblemWeights",
    "ScenarioConfig",
    "ScenarioSpec",
    "build_paper_scenario",
    "build_scenario",
    "build_scenario_spec",
    "get_scenario_family",
    "register_scenario_family",
    "scenario_families",
    "SystemModel",
    "__version__",
]
