"""Comparison schemes from the paper's evaluation (Section VII).

* :mod:`repro.baselines.benchmark` — the random "Benchmark" of Section
  VII-B (random CPU frequency at maximum power, or random power at maximum
  frequency, with an equal bandwidth split).
* :mod:`repro.baselines.static` — fully static equal allocation (extra
  reference point used by tests and examples).
* :mod:`repro.baselines.communication_only` — optimise only the transmit
  power and bandwidth under a completion-time budget (Section VII-C).
* :mod:`repro.baselines.computation_only` — optimise only the CPU frequency
  under a completion-time budget (Section VII-C).
* :mod:`repro.baselines.delay_min` — the delay-minimisation scheme of [14]
  (max frequency, max power, min-max-upload bandwidth split).
* :mod:`repro.baselines.scheme1` — a reimplementation of "Scheme 1"
  ([7], Yang et al.): energy minimisation under a delay constraint with a
  per-device time split and an equal-share bandwidth start.
"""

from .base import evaluate_allocation
from .benchmark import random_benchmark
from .communication_only import communication_only
from .computation_only import computation_only
from .delay_min import delay_minimization
from .registry import BASELINES, get_baseline
from .scheme1 import Scheme1Config, scheme1
from .static import static_equal_allocation

__all__ = [
    "evaluate_allocation",
    "random_benchmark",
    "communication_only",
    "computation_only",
    "delay_minimization",
    "BASELINES",
    "get_baseline",
    "Scheme1Config",
    "scheme1",
    "static_equal_allocation",
]
