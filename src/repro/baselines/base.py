"""Shared helpers for the baseline schemes."""

from __future__ import annotations

from ..core.allocation import ResourceAllocation
from ..core.allocator import AllocationResult
from ..core.convergence import ConvergenceHistory
from ..core.problem import JointProblem

__all__ = ["evaluate_allocation"]


def evaluate_allocation(
    problem: JointProblem,
    allocation: ResourceAllocation,
    *,
    converged: bool = True,
    iterations: int = 1,
    note: str = "",
) -> AllocationResult:
    """Wrap a fixed allocation into the same result type Algorithm 2 returns.

    Every baseline produces a concrete ``(p, B, f)``; evaluating it through
    the same :class:`JointProblem` keeps the energy/delay accounting
    identical across schemes, which is what makes the figure comparisons
    meaningful.
    """
    terms = problem.objective_terms(allocation)
    report = problem.feasibility(allocation)
    history = ConvergenceHistory()
    history.append(terms["objective"], note=note or "baseline")
    return AllocationResult(
        allocation=allocation,
        round_deadline_s=allocation.round_time_s(problem.system),
        objective=terms["objective"],
        energy_j=terms["energy_j"],
        completion_time_s=terms["completion_time_s"],
        transmission_energy_j=terms["transmission_energy_j"],
        computation_energy_j=terms["computation_energy_j"],
        converged=converged,
        iterations=iterations,
        feasible=report.is_feasible,
        history=history,
    )
