"""The random "Benchmark" scheme of Section VII-B.

The paper compares its algorithm against a non-optimised allocation:

* when sweeping the maximum transmit power (Fig. 2), the benchmark picks a
  uniformly random CPU frequency in ``[0.1, 2]`` GHz for each device,
  transmits at maximum power and splits the bandwidth equally;
* when sweeping the maximum CPU frequency (Fig. 3), it picks a uniformly
  random transmit power in ``[0, p_max]``, runs the CPU at maximum frequency
  and splits the bandwidth equally.
"""

from __future__ import annotations

import numpy as np

from .. import units
from ..core.allocation import ResourceAllocation
from ..core.allocator import AllocationResult
from ..core.problem import JointProblem
from ..exceptions import ConfigurationError
from .base import evaluate_allocation

__all__ = ["random_benchmark"]

#: Frequency range the benchmark samples from when randomising frequency.
_RANDOM_FREQUENCY_RANGE_HZ = (0.1e9, 2.0e9)


def random_benchmark(
    problem: JointProblem,
    *,
    randomize: str = "frequency",
    rng: np.random.Generator | int | None = None,
) -> AllocationResult:
    """Evaluate the random benchmark allocation.

    Parameters
    ----------
    randomize:
        ``"frequency"`` — random ``f_n``, ``p_n = p_max`` (the Fig. 2
        benchmark); ``"power"`` — random ``p_n``, ``f_n = f_max`` (the Fig. 3
        benchmark).
    """
    system = problem.system
    generator = np.random.default_rng(rng)
    n = system.num_devices
    bandwidth = np.full(n, system.total_bandwidth_hz / n)

    if randomize == "frequency":
        low = np.maximum(_RANDOM_FREQUENCY_RANGE_HZ[0], system.min_frequency_hz)
        high = np.minimum(_RANDOM_FREQUENCY_RANGE_HZ[1], system.max_frequency_hz)
        frequency = generator.uniform(low, high)
        power = system.max_power_w.copy()
    elif randomize == "power":
        # Uniform between 0 and 12 dBm means uniform in dBm, as in the paper.
        min_dbm = np.array([units.watt_to_dbm(max(p, 1e-6)) for p in system.min_power_w])
        max_dbm = np.array([units.watt_to_dbm(p) for p in system.max_power_w])
        power_dbm = generator.uniform(min_dbm, max_dbm)
        power = np.array([units.dbm_to_watt(p) for p in power_dbm])
        frequency = system.max_frequency_hz.copy()
    else:
        raise ConfigurationError(
            f"randomize must be 'frequency' or 'power', got {randomize!r}"
        )

    allocation = ResourceAllocation(
        power_w=power, bandwidth_hz=bandwidth, frequency_hz=frequency
    )
    return evaluate_allocation(problem, allocation, note=f"benchmark-{randomize}")
