"""Communication-only optimisation (Section VII-C).

The CPU frequency of every device is frozen at the fixed value the paper
prescribes,

    f_n = R_g R_l c_n D_n / (T - R_g max_n(d_n / r_n^init)),

i.e. the frequency that spends on computation exactly the part of the
completion-time budget ``T`` left over after the slowest *initial* upload
(initial powers at ``p_max`` and an equal ``B/2N`` bandwidth split).  Only
the transmit powers and bandwidths are then optimised, by running the same
sum-of-ratios machinery the proposed algorithm uses for Subproblem 2.
"""

from __future__ import annotations

import numpy as np

from ..core.allocation import ResourceAllocation
from ..core.allocator import AllocationResult
from ..core.problem import JointProblem
from ..core.sum_of_ratios import SumOfRatiosConfig, SumOfRatiosSolver
from ..exceptions import ConfigurationError, InfeasibleProblemError
from .base import evaluate_allocation

__all__ = ["communication_only"]


def communication_only(
    problem: JointProblem,
    *,
    initial_bandwidth_fraction: float = 0.5,
    sum_of_ratios_config: SumOfRatiosConfig | None = None,
) -> AllocationResult:
    """Optimise ``(p, B)`` only, with frequencies fixed by the paper's rule.

    Requires ``problem.deadline_s`` (the scheme is defined relative to a
    completion-time budget ``T``).
    """
    if problem.deadline_s is None:
        raise ConfigurationError("communication_only requires a completion-time budget")
    system = problem.system
    n = system.num_devices

    initial_power = system.max_power_w.copy()
    initial_bandwidth = np.full(
        n, system.total_bandwidth_hz * initial_bandwidth_fraction / n
    )
    initial_rates = system.rates_bps(initial_power, initial_bandwidth)
    slowest_upload = float(np.max(system.upload_bits / initial_rates))

    compute_budget_total = problem.deadline_s - system.global_rounds * slowest_upload
    if compute_budget_total <= 0.0:
        raise InfeasibleProblemError(
            "the completion-time budget is smaller than the initial upload time alone"
        )
    frequency = (
        system.global_rounds
        * system.local_iterations
        * system.cycles_per_sample
        * system.num_samples
        / compute_budget_total
    )
    frequency = np.clip(frequency, system.min_frequency_hz, system.max_frequency_hz)

    # Rate requirements so that each device meets the per-round deadline with
    # its frozen frequency.
    round_deadline = problem.deadline_s / system.global_rounds
    min_rate = problem.min_rate_requirements(frequency, round_deadline)
    problem.check_rate_requirements_supportable(min_rate)

    energy_weight = problem.energy_weight if problem.energy_weight > 0.0 else 1.0
    solver = SumOfRatiosSolver(
        system, energy_weight, config=sum_of_ratios_config or SumOfRatiosConfig()
    )
    result = solver.solve(min_rate, initial_power, initial_bandwidth)
    allocation = ResourceAllocation(
        power_w=result.power_w,
        bandwidth_hz=result.bandwidth_hz,
        frequency_hz=frequency,
    )
    return evaluate_allocation(
        problem,
        allocation,
        converged=result.converged,
        iterations=result.iterations,
        note="communication-only",
    )
