"""Computation-only optimisation (Section VII-C).

The transmit power and bandwidth are frozen (``p_n = p_max``,
``B_n = B / 2N`` — the setting the paper states gives the scheme its best
results and matches the source code of [7]); only the CPU frequency is
optimised, i.e. every device runs at the slowest frequency that still meets
the per-round deadline implied by the completion-time budget.
"""

from __future__ import annotations

import numpy as np

from ..core.allocation import ResourceAllocation
from ..core.allocator import AllocationResult
from ..core.problem import JointProblem
from ..core.subproblem1 import solve_subproblem1
from ..exceptions import ConfigurationError
from .base import evaluate_allocation

__all__ = ["computation_only"]


def computation_only(
    problem: JointProblem,
    *,
    bandwidth_fraction: float = 0.5,
) -> AllocationResult:
    """Optimise ``f`` only, with ``p = p_max`` and an equal ``B/2N`` split.

    Requires ``problem.deadline_s``.
    """
    if problem.deadline_s is None:
        raise ConfigurationError("computation_only requires a completion-time budget")
    system = problem.system
    n = system.num_devices

    power = system.max_power_w.copy()
    bandwidth = np.full(n, system.total_bandwidth_hz * bandwidth_fraction / n)
    upload_time = system.upload_time_s(power, bandwidth)

    round_deadline = problem.deadline_s / system.global_rounds
    sp1 = solve_subproblem1(
        system,
        problem.energy_weight if problem.energy_weight > 0.0 else 1.0,
        problem.time_weight,
        upload_time,
        round_deadline_s=round_deadline,
    )
    allocation = ResourceAllocation(
        power_w=power, bandwidth_hz=bandwidth, frequency_hz=sp1.frequency_hz
    )
    return evaluate_allocation(problem, allocation, note="computation-only")
