"""Delay minimisation ([14]): the fastest possible FL schedule.

Yang et al. [14] minimise the completion time of FL over FDMA; the paper
uses that scheme as the initial feasible point of Scheme 1 ([7]).  With
every CPU at maximum frequency and every radio at maximum power, the only
remaining decision is the bandwidth split, which is chosen to minimise the
slowest upload (a bisection, see :mod:`repro.core.uplink_delay`).
"""

from __future__ import annotations

from ..core.allocation import ResourceAllocation
from ..core.allocator import AllocationResult
from ..core.problem import JointProblem
from ..core.uplink_delay import minimize_max_upload_time
from .base import evaluate_allocation

__all__ = ["delay_minimization"]


def delay_minimization(problem: JointProblem) -> AllocationResult:
    """Evaluate the delay-minimising allocation of [14]."""
    system = problem.system
    uplink = minimize_max_upload_time(system)
    allocation = ResourceAllocation(
        power_w=uplink.power_w,
        bandwidth_hz=uplink.bandwidth_hz,
        frequency_hz=system.max_frequency_hz.copy(),
    )
    return evaluate_allocation(problem, allocation, note="delay-min")
