"""Name-based registry of the baseline schemes.

The experiment runners refer to schemes by name so a figure definition is a
plain list of strings; the registry maps those names to callables with the
uniform signature ``baseline(problem, **kwargs) -> AllocationResult``.
"""

from __future__ import annotations

from typing import Callable

from ..core.allocator import AllocationResult
from ..core.problem import JointProblem
from ..exceptions import ConfigurationError
from .benchmark import random_benchmark
from .communication_only import communication_only
from .computation_only import computation_only
from .delay_min import delay_minimization
from .scheme1 import scheme1
from .static import static_equal_allocation

__all__ = ["BASELINES", "get_baseline"]

BaselineFn = Callable[..., AllocationResult]

#: All registered baseline schemes, keyed by the name used in experiment
#: definitions and result tables.
BASELINES: dict[str, BaselineFn] = {
    "benchmark": random_benchmark,
    "static": static_equal_allocation,
    "communication_only": communication_only,
    "computation_only": computation_only,
    "delay_min": delay_minimization,
    "scheme1": scheme1,
}


def get_baseline(name: str) -> BaselineFn:
    """Look up a baseline by name; raises :class:`ConfigurationError` if unknown."""
    try:
        return BASELINES[name]
    except KeyError as exc:
        known = ", ".join(sorted(BASELINES))
        raise ConfigurationError(f"unknown baseline {name!r}; known: {known}") from exc


def run_baseline(name: str, problem: JointProblem, **kwargs) -> AllocationResult:
    """Convenience wrapper: look up and immediately run a baseline."""
    return get_baseline(name)(problem, **kwargs)
