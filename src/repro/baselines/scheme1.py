"""Scheme 1: the state of the art the paper compares against (Section VII-D).

Scheme 1 is the FDMA energy-minimisation-under-deadline algorithm of Yang
et al. [7] ("Energy efficient federated learning over wireless communication
networks").  Its source is not available, so this module is a
reimplementation that follows the structure the ICDCS paper describes:

1. obtain an initial feasible schedule from the delay-minimisation
   subroutine of [14] (every CPU at maximum frequency, every radio at
   maximum power, bandwidth split to minimise the slowest upload) —
   exactly the role [14] plays inside [7];
2. scale that schedule to the completion-time budget: each device's
   per-round time budget is split between computation and upload in the
   same proportion as in the delay-minimising schedule;
3. given its fixed time split, each device independently picks the
   energy-minimal CPU frequency (fill the computation window exactly) and
   the bandwidth/power pair that delivers its upload inside the upload
   window (bandwidth proportional to the required rates, then the minimum
   power that meets the rate on that share).

The fixed per-device time split is the structural simplification that
separates Scheme 1 from the proposed algorithm, which re-optimises the
frequency, power and bandwidth jointly against the energy objective.  The
consequence — reproduced in the Fig. 8 experiment — is that Scheme 1 spends
more energy, and the gap widens as the deadline tightens, because an
oversized upload window forces a quadratically more expensive computation
sprint.  Setting ``Scheme1Config.optimize_split=True`` upgrades the baseline
to a per-device optimal split (used by the ablation benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.allocation import ResourceAllocation
from ..core.allocator import AllocationResult
from ..core.problem import JointProblem
from ..core.uplink_delay import minimize_max_upload_time
from ..exceptions import ConfigurationError, InfeasibleProblemError
from ..solvers.scalar import golden_section_vector
from ..wireless.rate import min_bandwidth_for_rate, required_power_for_rate
from .base import evaluate_allocation

__all__ = ["Scheme1Config", "scheme1"]


@dataclass(frozen=True)
class Scheme1Config:
    """Knobs of the Scheme-1 reimplementation."""

    #: When True, each device optimises its own computation/upload time split
    #: (a strictly stronger variant used for ablations); when False (default,
    #: paper-faithful structure) the split is inherited from the
    #: delay-minimising schedule.
    optimize_split: bool = False
    #: Penalty used to mark infeasible upload times during the optional
    #: per-device split search.
    infeasible_penalty: float = 1e9


def _allocate_for_split(
    problem: JointProblem,
    upload_window_s: np.ndarray,
    round_deadline_s: float,
) -> ResourceAllocation:
    """Build the Scheme-1 allocation for a fixed per-device upload window."""
    system = problem.system
    compute_window = round_deadline_s - upload_window_s
    if np.any(compute_window <= 0.0):
        raise InfeasibleProblemError("upload windows leave no time for computation")

    frequency = np.clip(
        system.cycles_per_round / compute_window,
        system.min_frequency_hz,
        system.max_frequency_hz,
    )
    # Bandwidth proportional to the required rates, then the cheapest power
    # that meets the rate on that share.  Devices whose proportional share is
    # too small to reach their rate even at maximum power get topped up to
    # the bandwidth they need (funded by shrinking everyone else's slack).
    rate_needed = system.upload_bits / upload_window_s
    bandwidth = system.total_bandwidth_hz * rate_needed / rate_needed.sum()
    floor = min_bandwidth_for_rate(
        rate_needed,
        system.max_power_w,
        system.gains,
        system.noise_psd_w_per_hz,
        bandwidth_cap_hz=system.total_bandwidth_hz,
    )
    if np.any(~np.isfinite(floor)) or floor.sum() > system.total_bandwidth_hz * (1 + 1e-9):
        raise InfeasibleProblemError(
            "Scheme 1's time split needs more bandwidth than the budget offers"
        )
    short = bandwidth < floor
    if np.any(short):
        deficit = float(np.sum(floor[short] - bandwidth[short]))
        surplus = np.maximum(bandwidth - floor, 0.0)
        scale = max(1.0 - deficit / max(surplus.sum(), 1e-12), 0.0)
        bandwidth = np.where(short, floor, floor + (bandwidth - floor) * scale)
    power = required_power_for_rate(
        rate_needed, bandwidth, system.gains, system.noise_psd_w_per_hz
    )
    power = np.clip(power, system.min_power_w, system.max_power_w)
    return ResourceAllocation(
        power_w=power, bandwidth_hz=bandwidth, frequency_hz=frequency
    )


def _optimize_split(
    problem: JointProblem,
    round_deadline_s: float,
    initial_upload_window_s: np.ndarray,
    penalty: float,
) -> np.ndarray:
    """Per-device search of the upload window minimising each device's energy.

    Used by the ``optimize_split=True`` variant; the bandwidth share is held
    at the value implied by the initial windows while each device trades its
    own computation energy against its own transmission energy.
    """
    system = problem.system
    rate_needed0 = system.upload_bits / initial_upload_window_s
    bandwidth = system.total_bandwidth_hz * rate_needed0 / rate_needed0.sum()
    compute_floor = system.cycles_per_round / system.max_frequency_hz

    t_lower = np.maximum(
        system.upload_bits / system.rates_bps(system.max_power_w, bandwidth), 1e-9
    )
    t_upper = np.maximum(round_deadline_s - compute_floor, t_lower * (1.0 + 1e-9))

    def split_energy(upload_window: np.ndarray) -> np.ndarray:
        window = np.maximum(upload_window, 1e-9)
        compute_window = round_deadline_s - window
        rate_needed = system.upload_bits / window
        power = required_power_for_rate(
            rate_needed, bandwidth, system.gains, system.noise_psd_w_per_hz
        )
        frequency = np.where(
            compute_window > 0.0,
            system.cycles_per_round / np.maximum(compute_window, 1e-12),
            np.inf,
        )
        bad = (
            (power > system.max_power_w * (1.0 + 1e-9))
            | (frequency > system.max_frequency_hz * (1.0 + 1e-9))
            | (compute_window <= 0.0)
        )
        power = np.clip(power, system.min_power_w, system.max_power_w)
        frequency = np.clip(frequency, system.min_frequency_hz, system.max_frequency_hz)
        energy = power * window + system.effective_capacitance * system.cycles_per_round * frequency**2
        return energy + np.where(bad, penalty, 0.0)

    windows, _ = golden_section_vector(split_energy, t_lower, t_upper, tol=1e-10)
    return windows


def scheme1(
    problem: JointProblem,
    *,
    config: Scheme1Config | None = None,
) -> AllocationResult:
    """Run the Scheme-1 baseline.  Requires ``problem.deadline_s``."""
    if problem.deadline_s is None:
        raise ConfigurationError("Scheme 1 minimises energy under a completion-time budget")
    config = config or Scheme1Config()
    system = problem.system
    round_deadline = problem.deadline_s / system.global_rounds

    # Step 1: initial feasible schedule from the delay-minimisation subroutine.
    fastest = minimize_max_upload_time(system)
    compute_min = system.cycles_per_round / system.max_frequency_hz
    upload_min = system.upload_bits / system.rates_bps(
        fastest.power_w, fastest.bandwidth_hz
    )
    fastest_round = float(np.max(compute_min + upload_min))
    if fastest_round > round_deadline * (1.0 + 1e-9):
        raise InfeasibleProblemError(
            f"the per-round deadline {round_deadline:.4f} s is below the fastest "
            f"achievable round {fastest_round:.4f} s"
        )

    # Step 2: scale each device's delay-minimising split to fill the deadline.
    scale = round_deadline / (compute_min + upload_min)
    upload_window = upload_min * scale

    # Step 3 (optional stronger variant): per-device optimal split.
    if config.optimize_split:
        upload_window = _optimize_split(
            problem, round_deadline, upload_window, config.infeasible_penalty
        )

    allocation = _allocate_for_split(problem, upload_window, round_deadline)
    return evaluate_allocation(problem, allocation, note="scheme1")
