"""Fully static equal allocation (no optimisation at all).

Not part of the paper's figures but a useful sanity reference: every device
transmits at maximum power, computes at maximum frequency, and receives an
equal share of the bandwidth.  Any optimisation scheme should beat it on the
weighted objective.
"""

from __future__ import annotations

import numpy as np

from ..core.allocation import ResourceAllocation
from ..core.allocator import AllocationResult
from ..core.problem import JointProblem
from .base import evaluate_allocation

__all__ = ["static_equal_allocation"]


def static_equal_allocation(problem: JointProblem) -> AllocationResult:
    """Evaluate the max-power / max-frequency / equal-bandwidth allocation."""
    system = problem.system
    n = system.num_devices
    allocation = ResourceAllocation(
        power_w=system.max_power_w.copy(),
        bandwidth_hz=np.full(n, system.total_bandwidth_hz / n),
        frequency_hz=system.max_frequency_hz.copy(),
    )
    return evaluate_allocation(problem, allocation, note="static-equal")
