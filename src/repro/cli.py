"""Command-line interface: regenerate any paper figure from the terminal.

Examples
--------
List the available experiments, and the registered scenario families::

    python -m repro.cli list
    python -m repro.cli list-scenarios

Regenerate Figure 2 at the default (reduced) scale and print the table::

    python -m repro.cli run fig2

Fan the Figure-8 sweep out over four worker processes::

    python -m repro.cli run fig8 --jobs 4

Run an experiment on a non-paper scenario family::

    python -m repro.cli run fig2 --scenario hotspot --scenario-param num_clusters=5

Regenerate Figure 8 at the full paper scale and save the rows::

    python -m repro.cli run fig8 --paper --output fig8.json --csv fig8.csv

Repeated runs are instant thanks to the on-disk result cache (disable with
``--no-cache``; relocate with ``--cache-dir`` or ``$REPRO_CACHE_DIR``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Any, Sequence

from .core.subproblem2 import BACKENDS
from .exceptions import ConfigurationError
from .experiments.registry import EXPERIMENTS, get_experiment
from .experiments.results import ResultTable
from .experiments.runner import SweepRunner, TaskOutcome, use_runner
from .scenarios import get_scenario_family, scenario_families
from .store import BACKENDS as STORE_BACKENDS
from .store import merge_stores, migrate_store, open_store

__all__ = ["main", "build_parser"]

#: Experiment config classes (each exposes defaults via ``cls()`` and the
#: full Section VII-A setting via ``cls.paper()``).
_CONFIGS = {
    "fig2": ("repro.experiments.fig2", "Fig2Config"),
    "fig3": ("repro.experiments.fig3", "Fig3Config"),
    "fig4": ("repro.experiments.fig4", "Fig4Config"),
    "fig5": ("repro.experiments.fig5", "Fig5Config"),
    "fig6": ("repro.experiments.fig6", "Fig6Config"),
    "fig7": ("repro.experiments.fig7", "Fig7Config"),
    "fig8": ("repro.experiments.fig8", "Fig8Config"),
    "flcurve": ("repro.experiments.flcurve", "FLCurveConfig"),
    "samples": ("repro.experiments.samples", "SamplesConfig"),
    "ablation": ("repro.experiments.ablation", "AblationConfig"),
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Joint Optimization of Energy Consumption and "
        "Completion Time in Federated Learning' (ICDCS 2022).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")
    subparsers.add_parser(
        "list-scenarios",
        help="list the registered scenario families with their default parameters",
    )

    run = subparsers.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    run.add_argument(
        "--paper",
        action="store_true",
        help="use the full Section VII-A configuration instead of the reduced default",
    )
    run.add_argument(
        "--scenario",
        metavar="FAMILY",
        help="scenario family to build the sweep's drops from "
        "(see `repro list-scenarios`; default: the experiment's, usually 'paper')",
    )
    run.add_argument(
        "--scenario-param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="family-specific scenario parameter (repeatable; VALUE is parsed "
        "as JSON, falling back to a plain string)",
    )
    run.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="SP2 inner-solve backend: 'vector' (batched array passes, the "
        "default) or 'scalar' (probe-sequential reference oracle)",
    )
    run.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the sweep (1 = serial, 0 = all CPU cores)",
    )
    run.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="solve up to N same-shape cold tasks in one lockstep multi-solve "
        "pass (results bit-identical to the per-drop path; requires --jobs 1)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every task instead of reusing the on-disk result cache",
    )
    run.add_argument(
        "--warm-start",
        action="store_true",
        help="seed each sweep point from its neighbour's solution along the "
        "sweep axis (faster; results match a cold run within solver tolerance)",
    )
    run.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="result-cache root (default: $REPRO_CACHE_DIR or ./.repro-cache)",
    )
    run.add_argument(
        "--store",
        choices=sorted(STORE_BACKENDS),
        default=None,
        help="result-store backend for the cache: 'json' (one file per task) "
        "or 'columnar' (append log + packed segments); default: whatever "
        "the cache directory already holds, else json",
    )
    run.add_argument(
        "--shard",
        metavar="I/N",
        default=None,
        help="run only the tasks whose hash lands in shard I of N (0-based); "
        "N invocations partition the sweep exactly, and `repro store merge` "
        "reassembles the shard caches into the serial store bit-for-bit",
    )
    run.add_argument("--output", help="write the result table to this JSON file")
    run.add_argument("--csv", help="write the result rows to this CSV file")

    fl = subparsers.add_parser(
        "fl",
        help="run the closed-loop FL training simulation: every global round "
        "redraws the fading, re-solves the resource allocation and prices "
        "the round's training",
    )
    fl.add_argument(
        "--scenario",
        metavar="FAMILY",
        default="paper",
        help="scenario family the drop is built from (default: paper)",
    )
    fl.add_argument(
        "--scenario-param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="family-specific scenario parameter (repeatable; VALUE is parsed "
        "as JSON, falling back to a plain string)",
    )
    fl.add_argument(
        "--rounds", type=int, default=10, metavar="N", help="global rounds (default 10)"
    )
    fl.add_argument(
        "--devices", type=int, default=12, metavar="N", help="fleet size (default 12)"
    )
    fl.add_argument(
        "--scheme",
        default="proposed",
        help="'proposed' (Algorithm 2, re-solved each round) or a baseline "
        "scheme name (see repro.baselines)",
    )
    fl.add_argument(
        "--selection",
        default="all",
        help="client-selection strategy: all, random-k, fastest-k, deadline-k",
    )
    fl.add_argument(
        "--select-k",
        type=int,
        default=None,
        metavar="K",
        help="the k of a k-style selection strategy (default: half the fleet)",
    )
    fl.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="SP2 inner-solve backend for the per-round allocation solves",
    )
    fl.add_argument(
        "--warm-start",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="chain consecutive rounds through warm-start hints (default on; "
        "results are bit-identical either way, warm is faster)",
    )
    fl.add_argument(
        "--energy-weight",
        type=float,
        default=0.5,
        metavar="W1",
        help="objective weight w1 on energy (w2 = 1 - w1; default 0.5)",
    )
    fl.add_argument(
        "--fading",
        default="rayleigh",
        help="per-round fading model (rayleigh, rician, nakagami) or 'none' "
        "for a static channel",
    )
    fl.add_argument(
        "--local-iterations",
        type=int,
        default=None,
        metavar="N",
        help="local SGD iterations per round (default: the scenario's R_l)",
    )
    fl.add_argument(
        "--churn",
        metavar="SPEC",
        default=None,
        help="dynamic-fleet churn schedule: a JSON spec (see repro.fl.churn) "
        "or the shorthand 'poisson:arrive=0.3,depart=0.2,absent=0.25' — "
        "devices then join/leave mid-training and the allocator re-solves "
        "over the changed fleet",
    )
    fl.add_argument(
        "--battery",
        type=float,
        default=None,
        metavar="JOULES",
        help="per-device battery capacity in joules; each round's allocated "
        "energy drains it and drained devices are retired (re-solved around)",
    )
    fl.add_argument(
        "--battery-policy",
        choices=["graceful", "loud"],
        default="graceful",
        help="what an over-budget draw does: 'graceful' retires the device, "
        "'loud' raises BatteryDrainedError (default: graceful)",
    )
    fl.add_argument(
        "--estimate-profiles",
        action="store_true",
        help="solve each round's allocation on device profiles fitted from "
        "observed round timings (recursive least squares) instead of the "
        "oracle parameters",
    )
    fl.add_argument("--seed", type=int, default=0, help="master seed (default 0)")
    fl.add_argument(
        "--quick",
        action="store_true",
        help="tiny smoke configuration (2 rounds, 6 devices) — what CI runs",
    )
    fl.add_argument("--output", help="write the per-round table to this JSON file")
    fl.add_argument("--csv", help="write the per-round rows to this CSV file")

    bench = subparsers.add_parser(
        "bench",
        help="run the benchmark suite (cold vs warm-started fig2 sweep) and "
        "write a BENCH_PR<k>.json perf report",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="reduced suite (smaller fleet/grid) — what CI runs",
    )
    bench.add_argument(
        "--label",
        default="PR10",
        help="report label; also names the default output file (default: PR10)",
    )
    bench.add_argument(
        "--output",
        help="report path (default: BENCH_<label>.json in the current directory)",
    )
    bench.add_argument(
        "--compare",
        metavar="BASELINE",
        help="compare against a committed baseline report and exit non-zero "
        "on a tracked-metric regression, a missed floor, or a parity breach",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative regression tolerance for tracked metrics (default 0.20)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="start the long-lived allocation service: POST /solve answers "
        "allocation requests (cache hits from the result store, cold "
        "misses coalesced into lockstep batch solves), GET /metrics and "
        "GET /healthz export observability",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8100,
        help="TCP port (default 8100; 0 binds an ephemeral port)",
    )
    serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="result-store root the service answers cache hits from and "
        "writes solves into (default: $REPRO_CACHE_DIR or ./.repro-cache)",
    )
    serve.add_argument(
        "--store",
        choices=sorted(STORE_BACKENDS),
        default=None,
        help="result-store backend (default: whatever the store directory "
        "already holds, else json)",
    )
    serve.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="default SP2 inner-solve backend for requests that do not "
        "override it (enters the cache key, exactly like `repro run "
        "--backend`)",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=8,
        metavar="N",
        help="maximum concurrent requests coalesced into one lockstep "
        "multi-solve pass (default 8)",
    )
    serve.add_argument(
        "--gather-window-ms",
        type=float,
        default=5.0,
        metavar="MS",
        help="how long the coalescer waits after the first queued request "
        "before solving, so a concurrent burst lands in one batch "
        "(default 5 ms)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=300.0,
        metavar="S",
        help="per-request solve timeout in seconds (default 300)",
    )

    store = subparsers.add_parser(
        "store",
        help="inspect and transform result stores (the sweep caches): "
        "stat, query, compact, migrate, merge",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_stat = store_sub.add_parser(
        "stat", help="summarise one store: backend, entries, files, bytes"
    )
    store_stat.add_argument("root", help="store root directory (a cache dir)")

    store_query = store_sub.add_parser(
        "query",
        help="extract metric columns across every stored entry as CSV "
        "(digest + one column per requested metric)",
    )
    store_query.add_argument("root", help="store root directory")
    store_query.add_argument(
        "--columns",
        required=True,
        metavar="A,B,...",
        help="comma-separated metric names to extract",
    )
    store_query.add_argument(
        "--output", help="write the CSV here instead of stdout"
    )

    store_compact = store_sub.add_parser(
        "compact",
        help="fold a columnar store's append log into one packed segment "
        "(a no-op for backends without a log)",
    )
    store_compact.add_argument("root", help="store root directory")

    store_migrate = store_sub.add_parser(
        "migrate",
        help="copy every entry of one store into a fresh store of another "
        "backend (entries are preserved bit-identically)",
    )
    store_migrate.add_argument("source", help="source store root")
    store_migrate.add_argument("dest", help="destination store root (created)")
    store_migrate.add_argument(
        "--backend",
        choices=sorted(STORE_BACKENDS),
        default="columnar",
        help="destination backend (default: columnar)",
    )

    store_merge = store_sub.add_parser(
        "merge",
        help="union N shard stores into one store; the result is "
        "byte-identical whatever the shard order",
    )
    store_merge.add_argument("dest", help="destination store root (created)")
    store_merge.add_argument(
        "sources", nargs="+", metavar="source", help="shard store roots"
    )
    store_merge.add_argument(
        "--backend",
        choices=sorted(STORE_BACKENDS),
        default="columnar",
        help="destination backend (default: columnar)",
    )

    lint = subparsers.add_parser(
        "lint",
        help="run the repro-lint static-analysis rules (determinism, "
        "convergence, and cache-key invariants); needs a source checkout",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint, relative to the repo root "
        "(default: src)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _config_class(name: str):
    module_name, class_name = _CONFIGS[name]
    module = __import__(module_name, fromlist=[class_name])
    return getattr(module, class_name)


def _parse_scenario_params(pairs: Sequence[str]) -> dict[str, Any]:
    """Parse repeated ``KEY=VALUE`` flags (VALUE as JSON, else string)."""
    params: dict[str, Any] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ConfigurationError(
                f"--scenario-param expects KEY=VALUE, got {pair!r}"
            )
        try:
            params[key] = json.loads(raw)
        except ValueError:
            params[key] = raw
    return params


#: Shorthand keys of the ``--churn poisson:...`` spec and the churn-spec
#: fields they expand to.
_CHURN_SHORTHAND_KEYS = {
    "arrive": "arrive_rate",
    "depart": "depart_rate",
    "absent": "initial_absent_fraction",
}


def _parse_churn_spec(text: str) -> dict[str, Any]:
    """Parse ``--churn``: raw JSON, or ``poisson:arrive=0.3,depart=0.2``."""
    text = text.strip()
    if text.startswith(("{", "[")):
        spec = json.loads(text)
        if not isinstance(spec, dict):
            raise ConfigurationError("--churn JSON must be an object")
        return spec
    mode, _, rest = text.partition(":")
    if mode != "poisson":
        raise ConfigurationError(
            f"--churn shorthand must start with 'poisson', got {mode!r} "
            "(use a JSON spec for explicit event schedules)"
        )
    spec: dict[str, Any] = {"mode": "poisson"}
    if rest:
        for pair in rest.split(","):
            key, sep, raw = pair.partition("=")
            if not sep or key not in _CHURN_SHORTHAND_KEYS:
                known = ", ".join(sorted(_CHURN_SHORTHAND_KEYS))
                raise ConfigurationError(
                    f"--churn poisson shorthand expects KEY=VALUE with KEY in "
                    f"{{{known}}}, got {pair!r}"
                )
            spec[_CHURN_SHORTHAND_KEYS[key]] = float(raw)
    return spec


def _apply_scenario(config, family: str | None, params: dict[str, Any]):
    """Point ``config.sweep`` at another scenario family / extra params."""
    if family is not None:
        get_scenario_family(family)  # fail fast with the known-family list
    sweep = config.sweep.with_scenario(family or config.sweep.scenario_family, **params)
    return dataclasses.replace(config, sweep=sweep)


def _list_scenarios(stream=None) -> None:
    stream = stream if stream is not None else sys.stdout
    for name in scenario_families():
        family = get_scenario_family(name)
        defaults = ", ".join(f"{k}={v!r}" for k, v in sorted(family.defaults.items()))
        print(f"{name}: {family.description}", file=stream)
        if defaults:
            print(f"    defaults: {defaults}", file=stream)


class _ProgressPrinter:
    """One stderr status line per completed sweep task."""

    def __init__(self, name: str, stream=None) -> None:
        self.name = name
        self.stream = stream if stream is not None else sys.stderr
        self.cached = 0
        self.failed = 0

    def __call__(self, done: int, total: int, outcome: TaskOutcome) -> None:
        self.cached += outcome.cached
        self.failed += outcome.error is not None
        detail = f" ({self.cached} cached, {self.failed} failed)" if self.cached or self.failed else ""
        end = "\n" if done == total else "\r"
        print(f"[{self.name}] {done}/{total} tasks{detail}", end=end, file=self.stream, flush=True)


def _make_runner(name: str, args: argparse.Namespace) -> SweepRunner:
    return SweepRunner(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        warm_start=getattr(args, "warm_start", False),
        progress=_ProgressPrinter(name),
        batch_size=getattr(args, "batch_size", None),
        store_backend=getattr(args, "store", None),
        shard=getattr(args, "shard", None),
    )


def _run(
    name: str,
    *,
    paper: bool,
    output: str | None,
    csv: str | None,
    scenario: str | None = None,
    scenario_params: dict[str, Any] | None = None,
    backend: str | None = None,
    runner: SweepRunner | None = None,
) -> ResultTable:
    experiment = get_experiment(name)
    config = _config_class(name).paper() if paper else None
    if scenario is not None or scenario_params:
        # A scenario override needs a config object to hang off; fall back
        # to the experiment's reduced default when --paper wasn't given.
        config = config if config is not None else _config_class(name)()
        config = _apply_scenario(config, scenario, scenario_params or {})
    if backend is not None:
        config = config if config is not None else _config_class(name)()
        config = dataclasses.replace(config, sweep=config.sweep.with_backend(backend))
    if runner is None:
        table = experiment(config) if config is not None else experiment()
    else:
        # Install the configured runner as the ambient default so experiment
        # callables that predate the ``runner=`` keyword still pick it up.
        with use_runner(runner):
            table = experiment(config) if config is not None else experiment()
        stats = runner.last_stats
        if stats.total:
            warm = f", {stats.warm_started} warm-started" if stats.warm_started else ""
            skipped = (
                f", {stats.skipped} other-shard" if stats.skipped else ""
            )
            backend = f", store={stats.store_backend}" if stats.store_backend else ""
            print(
                f"[{name}] {stats.total} tasks in {stats.elapsed_s:.1f}s "
                f"({stats.cache_hits} cached, {stats.failed} failed{warm}"
                f"{skipped}, jobs={runner.jobs}{backend})",
                file=sys.stderr,
            )
    print(table.to_markdown())
    if table.errors:
        print(f"\n{len(table.errors)} grid point(s) recorded failures; "
              "see the table metadata for messages.", file=sys.stderr)
    if output:
        table.to_json(output)
        print(f"\nwrote {output}")
    if csv:
        table.to_csv(csv)
        print(f"wrote {csv}")
    return table


def _run_fl(args: argparse.Namespace) -> int:
    from .fl.roundloop import FLRoundLoop, RoundLoopConfig

    rounds = 2 if args.quick else args.rounds
    devices = 6 if args.quick else args.devices
    get_scenario_family(args.scenario)  # fail fast with the known-family list
    scenario = {
        "family": args.scenario,
        "num_devices": devices,
        "seed": args.seed,
        **_parse_scenario_params(args.scenario_param),
    }
    selection_params = {} if args.select_k is None else {"k": args.select_k}
    churn = _parse_churn_spec(args.churn) if args.churn else None
    battery = (
        None
        if args.battery is None
        else {"capacity_j": args.battery, "policy": args.battery_policy}
    )
    config = RoundLoopConfig(
        scenario=scenario,
        rounds=rounds,
        local_iterations=args.local_iterations,
        energy_weight=args.energy_weight,
        scheme=args.scheme,
        backend=args.backend,
        warm_start=args.warm_start,
        selection=args.selection,
        selection_params=selection_params,
        fading=None if args.fading in ("none", "") else args.fading,
        seed=args.seed,
        churn=churn,
        battery=battery,
        estimate_profiles=args.estimate_profiles,
    )
    report = FLRoundLoop(config).run()
    table = report.to_table()
    print(table.to_markdown())
    print(
        f"[fl:{args.scheme}] {len(report)} rounds on {devices} devices "
        f"({args.scenario}, selection={args.selection}): accuracy "
        f"{report.final_accuracy:.3f} after {report.total_time_s:.1f}s "
        f"simulated wall-clock and {report.total_energy_j:.2f}J "
        f"({report.total_allocator_iterations} allocator iterations, "
        f"allocate {report.stage_seconds('fl_allocate'):.2f}s / train "
        f"{report.stage_seconds('fl_train'):.2f}s real)",
        file=sys.stderr,
    )
    if args.output:
        table.to_json(args.output)
        print(f"\nwrote {args.output}")
    if args.csv:
        table.to_csv(args.csv)
        print(f"wrote {args.csv}")
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    from .perf import bench

    report = bench.run_bench(quick=args.quick, label=args.label)
    metrics = report["metrics"]
    output = args.output or f"BENCH_{args.label}.json"
    bench.write_report(report, output)
    print(
        f"[bench:{report['mode']}] cold {metrics['cold_wall_s']:.2f}s -> warm "
        f"{metrics['warm_wall_s']:.2f}s ({metrics['warm_wall_speedup']:.2f}x), "
        f"outer iterations {metrics['cold_outer_iterations']:.0f} -> "
        f"{metrics['warm_outer_iterations']:.0f}, parity "
        f"{metrics['parity_max_rel_dev']:.2e}; batch "
        f"{metrics['batch_wall_s']:.2f}s ({metrics['batch_wall_speedup']:.2f}x, "
        f"fill {metrics['batch_fill']:.2f}, parity "
        f"{metrics['batch_parity_max_rel_dev']:.2e}); backend sp2 "
        f"{metrics['backend_sp2_speedup']:.2f}x (scalar/vector parity "
        f"{metrics['backend_parity_max_rel_dev']:.2e}); fl loop "
        f"{metrics['fl_rounds_per_s']:.1f} rounds/s "
        f"(warm parity {metrics['fl_warm_parity_max_rel_dev']:.2e}, "
        f"backend parity {metrics['fl_backend_parity_max_rel_dev']:.2e}); "
        f"dynamic fleet churn resolve {metrics['fl_churn_resolve_s']:.2f}s, "
        f"{metrics['fl_dynamic_punctures']:.0f} punctures "
        f"(warm parity {metrics['fl_dynamic_warm_parity_max_rel_dev']:.2e}, "
        f"backend parity {metrics['fl_dynamic_backend_parity_max_rel_dev']:.2e}, "
        f"estimated-vs-oracle accuracy gap "
        f"{metrics['fl_estimated_vs_oracle_accuracy_gap']:.3f})",
        file=sys.stderr,
    )
    print(f"wrote {output}")
    if args.compare:
        baseline = bench.load_report(args.compare)
        tolerance = args.tolerance if args.tolerance is not None else bench.DEFAULT_TOLERANCE
        problems = bench.compare_reports(report, baseline, tolerance=tolerance)
        if problems:
            for problem in problems:
                print(f"PERF REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(
            f"no regression against {args.compare} "
            f"(tolerance {tolerance:.0%}, baseline {baseline.get('label')})",
            file=sys.stderr,
        )
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """Run the allocation service until SIGINT, then shut down gracefully."""
    from .serve import AllocationServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        store_root=args.cache_dir,
        store_backend=args.store,
        backend=args.backend,
        batch_size=args.batch_size,
        gather_window_s=args.gather_window_ms / 1000.0,
        request_timeout_s=args.request_timeout,
    )
    server = AllocationServer(config)
    store = server.service.store
    store_info = f"{store.backend}:{store.root}" if store is not None else "off"
    print(
        f"[serve] listening on {server.url} (store={store_info}, "
        f"batch_size={config.batch_size}, "
        f"gather_window={config.gather_window_s * 1000:.0f}ms) — "
        "POST /solve, GET /metrics, GET /healthz; Ctrl-C to stop",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print(
            "[serve] interrupt: draining the coalescing queue and flushing "
            "the store...",
            file=sys.stderr,
        )
    finally:
        server.close()
    print("[serve] stopped", file=sys.stderr)
    return 0


def _run_store(args: argparse.Namespace) -> int:
    """Dispatch the ``repro store`` subcommands."""
    import csv as _csv

    if args.store_command == "stat":
        stat = open_store(args.root).stat()
        print(f"backend: {stat.backend}")
        print(f"root: {stat.root}")
        print(f"entries: {stat.entries}")
        print(f"files: {stat.files}")
        print(f"bytes: {stat.bytes}")
        if stat.backend == "columnar":
            print(f"segments: {stat.segments}")
            print(f"log entries: {stat.log_entries}")
        return 0
    if args.store_command == "query":
        columns = [c for c in args.columns.split(",") if c]
        if not columns:
            print("error: --columns needs at least one metric name", file=sys.stderr)
            return 2
        store = open_store(args.root)
        rows = store.query(columns)
        handle = open(args.output, "w", newline="") if args.output else sys.stdout
        try:
            writer = _csv.writer(handle)
            writer.writerow(["digest", *columns])
            for digest, values in rows:
                writer.writerow(
                    [digest, *["" if v is None else v for v in values]]
                )
        finally:
            if args.output:
                handle.close()
        if args.output:
            print(f"wrote {args.output} ({len(rows)} entries)", file=sys.stderr)
        return 0
    if args.store_command == "compact":
        store = open_store(args.root)
        compact = getattr(store, "compact", None)
        if callable(compact):
            packed = compact()
            print(f"compacted {packed} entries under {store.root}")
        else:
            print(f"{store.backend} store has no log to compact; nothing to do")
        return 0
    if args.store_command == "migrate":
        source = open_store(args.source)
        dest = open_store(args.dest, args.backend)
        count = migrate_store(source, dest)
        print(
            f"migrated {count} entries: {source.backend}:{source.root} -> "
            f"{dest.backend}:{dest.root}"
        )
        return 0
    if args.store_command == "merge":
        sources = [open_store(root) for root in args.sources]
        dest = open_store(args.dest, args.backend)
        count = merge_stores(sources, dest)
        print(
            f"merged {count} entries from {len(sources)} stores into "
            f"{dest.backend}:{dest.root}"
        )
        return 0
    print(f"error: unknown store command {args.store_command!r}", file=sys.stderr)
    return 2  # pragma: no cover


def _run_lint(args: argparse.Namespace) -> int:
    """Dispatch ``repro lint`` to :mod:`tools.lint`.

    The linter lives outside the installed package (it lints the *source
    tree*, so shipping it in a wheel would be misleading); a source checkout
    is located from this file's position and put on ``sys.path`` when
    ``tools`` is not already importable.
    """
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[2]
    try:
        from tools.lint import main as lint_main
    except ImportError:
        if not (repo_root / "tools" / "lint" / "__init__.py").is_file():
            print(
                "error: `repro lint` needs a source checkout (tools/lint/ "
                f"not found under {repo_root})",
                file=sys.stderr,
            )
            return 2
        sys.path.insert(0, str(repo_root))
        from tools.lint import main as lint_main

    argv: list[str] = ["--root", str(repo_root), "--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    if args.ignore:
        argv += ["--ignore", args.ignore]
    if args.list_rules:
        argv.append("--list-rules")
    # Anchor relative paths at the repo root so `repro lint` works from any
    # working directory (rule scoping is relative-path based).
    argv += [
        path if Path(path).is_absolute() else str(repo_root / path)
        for path in args.paths
    ]
    return lint_main(argv)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro.cli`` and the ``repro`` script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "serve":
        try:
            return _run_serve(args)
        except (ConfigurationError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.command == "store":
        try:
            return _run_store(args)
        except (ConfigurationError, ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.command == "fl":
        try:
            return _run_fl(args)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.command == "list-scenarios":
        _list_scenarios()
        return 0
    if args.command == "run":
        try:
            scenario_params = _parse_scenario_params(args.scenario_param)
            _run(
                args.experiment,
                paper=args.paper,
                output=args.output,
                csv=args.csv,
                scenario=args.scenario,
                scenario_params=scenario_params,
                backend=args.backend,
                runner=_make_runner(args.experiment, args),
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
