"""Command-line interface: regenerate any paper figure from the terminal.

Examples
--------
List the available experiments::

    python -m repro.cli list

Regenerate Figure 2 at the default (reduced) scale and print the table::

    python -m repro.cli run fig2

Regenerate Figure 8 at the full paper scale and save the rows::

    python -m repro.cli run fig8 --paper --output fig8.json --csv fig8.csv
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .experiments.registry import EXPERIMENTS, get_experiment
from .experiments.results import ResultTable

__all__ = ["main", "build_parser"]

#: Experiments whose config classes expose a ``paper()`` constructor.
_PAPER_CONFIGS = {
    "fig2": ("repro.experiments.fig2", "Fig2Config"),
    "fig3": ("repro.experiments.fig3", "Fig3Config"),
    "fig4": ("repro.experiments.fig4", "Fig4Config"),
    "fig5": ("repro.experiments.fig5", "Fig5Config"),
    "fig6": ("repro.experiments.fig6", "Fig6Config"),
    "fig7": ("repro.experiments.fig7", "Fig7Config"),
    "fig8": ("repro.experiments.fig8", "Fig8Config"),
    "samples": ("repro.experiments.samples", "SamplesConfig"),
    "ablation": ("repro.experiments.ablation", "AblationConfig"),
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Joint Optimization of Energy Consumption and "
        "Completion Time in Federated Learning' (ICDCS 2022).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run = subparsers.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    run.add_argument(
        "--paper",
        action="store_true",
        help="use the full Section VII-A configuration instead of the reduced default",
    )
    run.add_argument("--output", help="write the result table to this JSON file")
    run.add_argument("--csv", help="write the result rows to this CSV file")
    return parser


def _paper_config(name: str):
    module_name, class_name = _PAPER_CONFIGS[name]
    module = __import__(module_name, fromlist=[class_name])
    return getattr(module, class_name).paper()


def _run(name: str, *, paper: bool, output: str | None, csv: str | None) -> ResultTable:
    runner = get_experiment(name)
    table = runner(_paper_config(name)) if paper else runner()
    print(table.to_markdown())
    if output:
        table.to_json(output)
        print(f"\nwrote {output}")
    if csv:
        table.to_csv(csv)
        print(f"wrote {csv}")
    return table


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro.cli``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.command == "run":
        _run(args.experiment, paper=args.paper, output=args.output, csv=args.csv)
        return 0
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
