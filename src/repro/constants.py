"""Default experiment constants from Section VII-A of the paper.

Every constant is expressed both in the unit the paper quotes and in SI
units (the solvers consume the SI values).  The values come from the
"Parameter Setting" subsection (Section VII-A):

* 50 devices uniformly placed in a 500 m x 500 m circular area around the
  base station (i.e. cell radius 0.25 km);
* path loss 128.1 + 37.6 log10(d[km]) dB with 8 dB shadow-fading standard
  deviation;
* noise power spectral density N0 = -174 dBm/Hz;
* local iterations R_l = 10, global rounds R_g = 400;
* upload size d_n = 28.1 kbit, D_n = 500 samples per device;
* CPU cycles per sample c_n uniform in [1, 3] * 1e4;
* effective switched capacitance kappa = 1e-28;
* f_max = 2 GHz, p_max = 12 dBm, p_min = 0 dBm, total bandwidth B = 20 MHz.
"""

from __future__ import annotations

from . import units

__all__ = [
    "DEFAULT_NUM_DEVICES",
    "DEFAULT_CELL_RADIUS_KM",
    "PATH_LOSS_CONSTANT_DB",
    "PATH_LOSS_EXPONENT_DB_PER_DECADE",
    "SHADOWING_STD_DB",
    "NOISE_PSD_DBM_PER_HZ",
    "NOISE_PSD_W_PER_HZ",
    "DEFAULT_LOCAL_ITERATIONS",
    "DEFAULT_GLOBAL_ROUNDS",
    "DEFAULT_UPLOAD_KBITS",
    "DEFAULT_UPLOAD_BITS",
    "DEFAULT_SAMPLES_PER_DEVICE",
    "CPU_CYCLES_PER_SAMPLE_RANGE",
    "EFFECTIVE_CAPACITANCE",
    "DEFAULT_MAX_FREQUENCY_HZ",
    "DEFAULT_MIN_FREQUENCY_HZ",
    "DEFAULT_MAX_POWER_DBM",
    "DEFAULT_MIN_POWER_DBM",
    "DEFAULT_MAX_POWER_W",
    "DEFAULT_MIN_POWER_W",
    "DEFAULT_TOTAL_BANDWIDTH_HZ",
]

#: Number of user devices in the default setting.
DEFAULT_NUM_DEVICES = 50

#: Radius of the circular deployment area (the paper's 500 m x 500 m circle).
DEFAULT_CELL_RADIUS_KM = 0.25

#: 3GPP-style macro-cell path loss intercept, in dB.
PATH_LOSS_CONSTANT_DB = 128.1

#: Path loss slope in dB per decade of distance (distance in km).
PATH_LOSS_EXPONENT_DB_PER_DECADE = 37.6

#: Standard deviation of log-normal shadow fading, in dB.
SHADOWING_STD_DB = 8.0

#: Noise power spectral density, in dBm/Hz.
NOISE_PSD_DBM_PER_HZ = -174.0

#: Noise power spectral density, in W/Hz.
NOISE_PSD_W_PER_HZ = units.dbm_per_hz_to_watt_per_hz(NOISE_PSD_DBM_PER_HZ)

#: Default number of local iterations per global round (R_l).
DEFAULT_LOCAL_ITERATIONS = 10

#: Default number of global aggregation rounds (R_g).
DEFAULT_GLOBAL_ROUNDS = 400

#: Model-update upload size per device per round, in kbit.
DEFAULT_UPLOAD_KBITS = 28.1

#: Model-update upload size per device per round, in bits.
DEFAULT_UPLOAD_BITS = units.kbit_to_bit(DEFAULT_UPLOAD_KBITS)

#: Number of training samples on each device.
DEFAULT_SAMPLES_PER_DEVICE = 500

#: CPU cycles needed to process one sample, drawn uniformly from this range.
CPU_CYCLES_PER_SAMPLE_RANGE = (1e4, 3e4)

#: Effective switched capacitance kappa of the device CPUs.
EFFECTIVE_CAPACITANCE = 1e-28

#: Maximum CPU frequency of a device, in Hz (2 GHz).
DEFAULT_MAX_FREQUENCY_HZ = units.ghz_to_hz(2.0)

#: Minimum CPU frequency of a device, in Hz.  The paper sweeps the maximum
#: frequency down to 0.1 GHz in Fig. 3, so the floor is set below that.
DEFAULT_MIN_FREQUENCY_HZ = units.ghz_to_hz(0.01)

#: Maximum uplink transmission power, in dBm.
DEFAULT_MAX_POWER_DBM = 12.0

#: Minimum uplink transmission power, in dBm.
DEFAULT_MIN_POWER_DBM = 0.0

#: Maximum uplink transmission power, in watts.
DEFAULT_MAX_POWER_W = units.dbm_to_watt(DEFAULT_MAX_POWER_DBM)

#: Minimum uplink transmission power, in watts.
DEFAULT_MIN_POWER_W = units.dbm_to_watt(DEFAULT_MIN_POWER_DBM)

#: Total uplink bandwidth shared by all devices, in Hz (20 MHz).
DEFAULT_TOTAL_BANDWIDTH_HZ = units.mhz_to_hz(20.0)
