"""The paper's primary contribution: joint energy/completion-time optimization.

Modules
-------
``allocation``
    The decision variables ``(p, B, f)`` and the metrics derived from them.
``problem``
    Problem (8)/(9): the weighted objective, constraints, feasibility checks
    and initial feasible points.
``subproblem1``
    Subproblem 1 (CPU frequency and round deadline), solved exactly by a
    one-dimensional primal search and, paper-faithfully, through the dual
    water-filling of problem (17).
``subproblem2``
    The inner convex problem SP2_v2 of Theorem 1, solved in closed form via
    Theorem 2 / Appendix B (Lambert-W + box LP) with a numeric
    dual-decomposition fallback.
``sum_of_ratios``
    Algorithm 1: the Newton-like (Jong) iteration over the auxiliary
    variables ``(beta, nu)`` that makes SP2_v2 equivalent to Subproblem 2.
``uplink_delay``
    Bandwidth/power allocation minimising the slowest upload (used when the
    energy weight is zero and by the delay-minimisation baseline of [14]).
``allocator``
    Algorithm 2: the alternating resource-allocation algorithm that is the
    paper's headline contribution.
``convergence``
    Iteration histories recorded by the iterative solvers.
``verify``
    KKT-residual certificates: feasibility + stationarity + complementary
    slackness checks the tests (and the backend differential harness) use
    to certify candidate solutions without re-solving.
"""

from .allocation import ResourceAllocation
from .allocator import AllocatorConfig, AllocationResult, ResourceAllocator
from .convergence import ConvergenceHistory, IterationRecord
from .problem import JointProblem, ProblemWeights
from .subproblem1 import Subproblem1Result, solve_subproblem1
from .subproblem2 import SP2Result, solve_sp2_v2, solve_sp2_v2_numeric
from .sum_of_ratios import SumOfRatiosConfig, SumOfRatiosResult, SumOfRatiosSolver
from .uplink_delay import minimize_max_upload_time
from .verify import KKTCertificate, check_kkt, check_primal, check_sp1

__all__ = [
    "ResourceAllocation",
    "AllocatorConfig",
    "AllocationResult",
    "ResourceAllocator",
    "ConvergenceHistory",
    "IterationRecord",
    "JointProblem",
    "ProblemWeights",
    "Subproblem1Result",
    "solve_subproblem1",
    "SP2Result",
    "solve_sp2_v2",
    "solve_sp2_v2_numeric",
    "SumOfRatiosConfig",
    "SumOfRatiosResult",
    "SumOfRatiosSolver",
    "minimize_max_upload_time",
    "KKTCertificate",
    "check_kkt",
    "check_primal",
    "check_sp1",
]
