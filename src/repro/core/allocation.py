"""The decision variables of problem (8): transmit power, bandwidth, CPU frequency."""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..exceptions import ConfigurationError
from ..system import SystemModel

__all__ = ["ResourceAllocation"]


@dataclass(frozen=True)
class ResourceAllocation:
    """One candidate resource allocation ``(p, B, f)`` for every device."""

    power_w: np.ndarray
    bandwidth_hz: np.ndarray
    frequency_hz: np.ndarray

    def __post_init__(self) -> None:
        power = np.asarray(self.power_w, dtype=float)
        bandwidth = np.asarray(self.bandwidth_hz, dtype=float)
        frequency = np.asarray(self.frequency_hz, dtype=float)
        if not power.shape == bandwidth.shape == frequency.shape:
            raise ConfigurationError(
                "power, bandwidth and frequency must have identical shapes, got "
                f"{power.shape}, {bandwidth.shape}, {frequency.shape}"
            )
        if power.ndim != 1:
            raise ConfigurationError("allocation arrays must be one-dimensional")
        if np.any(power < 0.0):
            raise ConfigurationError("transmit powers must be non-negative")
        if np.any(bandwidth < 0.0):
            raise ConfigurationError("bandwidths must be non-negative")
        if np.any(frequency <= 0.0):
            raise ConfigurationError("CPU frequencies must be strictly positive")
        object.__setattr__(self, "power_w", power)
        object.__setattr__(self, "bandwidth_hz", bandwidth)
        object.__setattr__(self, "frequency_hz", frequency)

    @property
    def num_devices(self) -> int:
        return int(self.power_w.shape[0])

    def as_vector(self) -> np.ndarray:
        """Concatenated ``[p, B, f]`` vector, used for convergence checks."""
        return np.concatenate([self.power_w, self.bandwidth_hz, self.frequency_hz])

    def distance_to(self, other: "ResourceAllocation") -> float:
        """Relative change between two allocations (per-variable, scale-free).

        Algorithm 2 stops when this drops below its tolerance.  Each of the
        three variable blocks is normalised by its own magnitude so that the
        very different units (watts / hertz / hertz) contribute comparably.
        """
        if other.num_devices != self.num_devices:
            raise ConfigurationError("allocations must describe the same fleet")

        def _block(a: np.ndarray, b: np.ndarray) -> float:
            scale = max(float(np.linalg.norm(b)), 1e-30)
            return float(np.linalg.norm(a - b)) / scale

        return max(
            _block(self.power_w, other.power_w),
            _block(self.bandwidth_hz, other.bandwidth_hz),
            _block(self.frequency_hz, other.frequency_hz),
        )

    def with_frequency(self, frequency_hz: np.ndarray) -> "ResourceAllocation":
        """Copy with replaced CPU frequencies."""
        return replace(self, frequency_hz=np.asarray(frequency_hz, dtype=float))

    def with_communication(
        self, power_w: np.ndarray, bandwidth_hz: np.ndarray
    ) -> "ResourceAllocation":
        """Copy with replaced transmit powers and bandwidths."""
        return replace(
            self,
            power_w=np.asarray(power_w, dtype=float),
            bandwidth_hz=np.asarray(bandwidth_hz, dtype=float),
        )

    # -- derived physical quantities --------------------------------------
    def rates_bps(self, system: SystemModel) -> np.ndarray:
        """Uplink rates under this allocation."""
        return system.rates_bps(self.power_w, self.bandwidth_hz)

    def round_time_s(self, system: SystemModel) -> float:
        """Duration of one global round."""
        return system.round_time_s(self.power_w, self.bandwidth_hz, self.frequency_hz)

    def per_device_time_s(self, system: SystemModel) -> np.ndarray:
        """Per-device round duration ``T^cmp_n + T^up_n`` under this allocation."""
        return system.per_device_round_time_s(
            self.power_w, self.bandwidth_hz, self.frequency_hz
        )

    def per_device_energy_j(self, system: SystemModel) -> np.ndarray:
        """Per-device round energy ``E^trans_n + E^cmp_n`` under this allocation."""
        return system.upload_energy_j(
            self.power_w, self.bandwidth_hz
        ) + system.computation_energy_j(self.frequency_hz)

    def total_time_s(self, system: SystemModel) -> float:
        """Total completion time over ``R_g`` rounds."""
        return system.total_completion_time_s(
            self.power_w, self.bandwidth_hz, self.frequency_hz
        )

    def total_energy_j(self, system: SystemModel) -> float:
        """Total energy over ``R_g`` rounds."""
        return system.total_energy_j(self.power_w, self.bandwidth_hz, self.frequency_hz)

    def energy_breakdown_j(self, system: SystemModel) -> tuple[float, float]:
        """Total (transmission, computation) energy over ``R_g`` rounds."""
        return system.energy_breakdown_j(
            self.power_w, self.bandwidth_hz, self.frequency_hz
        )
