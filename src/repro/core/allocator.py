"""Algorithm 2: the alternating resource-allocation algorithm.

This is the paper's headline contribution.  Starting from a feasible
allocation, it alternates:

1. **Subproblem 1** — given the current upload times, choose the CPU
   frequencies and the per-round deadline ``T`` (Section V-A);
2. **Subproblem 2** — given the per-device rate requirements implied by
   ``T``, choose the transmit powers and bandwidths through the
   sum-of-ratios solver (Algorithm 1, Section V-B/V-C);

until the allocation stops changing (tolerance ``epsilon_0``) or the
iteration budget ``K`` is exhausted.

Two special regimes are handled exactly as the paper's experiments use them:

* ``w1 = 0`` (pure delay minimisation): the communication energy vanishes
  from the objective, so the devices transmit at maximum power and the
  bandwidth minimises the slowest upload (see
  :mod:`repro.core.uplink_delay`).
* A hard completion-time budget (``JointProblem.deadline_s``): the per-round
  deadline is fixed instead of optimised, which is how the paper compares
  against Scheme 1 (Section VII-D) and the single-resource baselines
  (Section VII-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..exceptions import InfeasibleProblemError
from ..perf.timers import StageTimings, stage
from ..solvers.dual_decomposition import minimize_separable_with_budget
from ..wireless.rate import min_bandwidth_for_rate
from .allocation import ResourceAllocation
from .convergence import ConvergenceHistory
from .problem import JointProblem
from .subproblem1 import solve_subproblem1, solve_subproblem1_rows
from .subproblem2 import validate_backend
from .sum_of_ratios import (
    SumOfRatiosConfig,
    SumOfRatiosSolver,
    solve_sum_of_ratios_rows,
)
from .uplink_delay import minimize_max_upload_time

__all__ = ["AllocatorConfig", "AllocationResult", "ResourceAllocator"]


@dataclass(frozen=True)
class AllocatorConfig:
    """Hyper-parameters of Algorithm 2."""

    #: Maximum number of outer alternations (``K`` in the paper).
    max_iterations: int = 20
    #: Relative tolerance ``epsilon_0`` on the allocation change.
    tolerance: float = 1e-5
    #: Subproblem-1 solver: ``"primal"`` (exact) or ``"dual"`` (paper's (17)).
    subproblem1_method: str = "primal"
    #: Configuration of the inner sum-of-ratios solver (Algorithm 1).
    sum_of_ratios: SumOfRatiosConfig = field(default_factory=SumOfRatiosConfig)
    #: Bandwidth fraction of the initial equal split.  The paper initialises
    #: with ``B_n = B / (2N)`` (Sections VII-C/VII-D note this gives better
    #: results than ``B/N`` and matches the source code of [7]); starting
    #: with spare bandwidth also keeps the first Subproblem-2 step from being
    #: pinned to the initial point.
    initial_bandwidth_fraction: float = 0.5
    #: Initial-point strategy: ``"equal"`` uses the equal split above,
    #: ``"delay_min"`` starts from the min-max-upload bandwidth split at
    #: maximum power, and ``"auto"`` (default) picks ``delay_min`` whenever a
    #: hard completion-time budget is set (where a channel-aware start keeps
    #: far devices feasible) and ``equal`` otherwise.
    initial_strategy: str = "auto"


@dataclass(frozen=True)
class AllocationResult:
    """Final outcome of Algorithm 2."""

    allocation: ResourceAllocation
    round_deadline_s: float
    objective: float
    energy_j: float
    completion_time_s: float
    transmission_energy_j: float
    computation_energy_j: float
    converged: bool
    iterations: int
    feasible: bool
    history: ConvergenceHistory = field(default_factory=ConvergenceHistory)
    #: Total Algorithm-1 (sum-of-ratios) iterations across every outer step.
    inner_iterations: int = 0
    #: Per-stage wall-clock seconds (``algorithm2``, ``sp1``, ``sp2``, ...).
    timings: dict[str, float] = field(default_factory=dict)
    #: Numerical warm-start hints for a neighbouring problem (currently the
    #: final bandwidth multiplier ``mu`` of the inner KKT solve).
    warm_hints: dict[str, float] = field(default_factory=dict)

    def summary(self) -> dict[str, float]:
        """Scalar metrics as a plain dictionary (used by the experiment tables)."""
        return {
            "objective": self.objective,
            "energy_j": self.energy_j,
            "completion_time_s": self.completion_time_s,
            "transmission_energy_j": self.transmission_energy_j,
            "computation_energy_j": self.computation_energy_j,
            "iterations": float(self.iterations),
            "inner_iterations": float(self.inner_iterations),
            "converged": float(self.converged),
            "feasible": float(self.feasible),
        }


class ResourceAllocator:
    """Algorithm 2: alternating optimisation of ``(f, T)`` and ``(p, B)``.

    ``backend`` selects the SP2_v2 inner-solve backend (``"vector"`` /
    ``"scalar"``), overriding ``config.sum_of_ratios.backend``; the default
    keeps the configured backend (vector unless configured otherwise).
    """

    def __init__(
        self, config: AllocatorConfig | None = None, *, backend: str | None = None
    ) -> None:
        self.config = config or AllocatorConfig()
        self.backend = validate_backend(
            backend or self.config.sum_of_ratios.backend
        )

    # -- public API --------------------------------------------------------
    def solve(
        self,
        problem: JointProblem,
        initial_allocation: ResourceAllocation | None = None,
        warm_hints: Mapping[str, float] | None = None,
    ) -> AllocationResult:
        """Run Algorithm 2 on ``problem`` and return the final allocation.

        ``initial_allocation`` overrides the configured initial-point
        strategy.  Beware that the alternating scheme is a heuristic with
        many fixed points: a different initial point generally converges to
        a (slightly) different solution.

        ``warm_hints`` switches the inner solvers onto their seeded path
        (optionally carrying a neighbouring problem's final bandwidth
        multiplier under ``"mu"``).  This is the *trajectory-preserving*
        warm start the sweep engine uses: every iterate matches the unhinted
        solve to the inner bisection tolerance, only the root-finding work
        shrinks — so warm and cold runs agree far within the parity
        tolerance while the hot path gets measurably faster.
        """
        system = problem.system
        config = self.config
        timings = StageTimings()
        mu_hint = (
            max(float(warm_hints.get("mu", 0.0)), 0.0)
            if warm_hints is not None
            else None
        )
        last_mu = 0.0
        delay_only = problem.energy_weight <= 0.0 and problem.deadline_s is None
        with stage("algorithm2", timings):
            allocation = initial_allocation or self._initial_allocation(problem)

            if delay_only:
                allocation, history = self._solve_delay_only(problem, timings)
        if delay_only:
            return self._finalize(
                problem,
                allocation,
                allocation.round_time_s(system),
                history,
                converged=True,
                iterations=1,
                feasible=True,
                timings=timings,
            )
        with stage("algorithm2", timings):
            history = ConvergenceHistory()
            converged = False
            feasible = True
            inner_iterations = 0
            round_deadline = allocation.round_time_s(system)
            iteration = 0

            for iteration in range(1, config.max_iterations + 1):
                previous = allocation

                # Step 1: Subproblem 1 — CPU frequencies and round deadline.
                with stage("sp1", timings):
                    upload_time = system.upload_time_s(
                        allocation.power_w, allocation.bandwidth_hz
                    )
                    sp1 = solve_subproblem1(
                        system,
                        problem.energy_weight,
                        problem.time_weight,
                        upload_time,
                        round_deadline_s=problem.round_deadline_s,
                        method=config.subproblem1_method,
                    )
                allocation = allocation.with_frequency(sp1.frequency_hz)
                round_deadline = sp1.round_deadline_s

                # Step 2: Subproblem 2 — transmit power and bandwidth.
                with stage("sp2", timings):
                    allocation, feasible, inner, mu = self._solve_communication(
                        problem, allocation, round_deadline, mu_hint=mu_hint
                    )
                inner_iterations += inner
                if mu > 0.0:
                    last_mu = mu
                    if mu_hint is not None:
                        mu_hint = mu

                objective = problem.objective(allocation)
                step_change = allocation.distance_to(previous)
                history.append(objective, step_change=step_change, note=f"outer-{iteration}")
                if step_change <= config.tolerance:
                    converged = True
                    break

        return self._finalize(
            problem,
            allocation,
            round_deadline,
            history,
            converged,
            iteration,
            feasible,
            inner_iterations=inner_iterations,
            timings=timings,
            warm_hints={"mu": last_mu} if last_mu > 0.0 else {},
        )

    def solve_batch(
        self,
        problems: Sequence[JointProblem],
        *,
        return_exceptions: bool = False,
    ) -> list[AllocationResult | Exception]:
        """Run Algorithm 2 on many independent problems in lockstep.

        Each lane's trajectory — every SP1/SP2 iterate, the convergence
        history, iteration counts and the final allocation — is bit-identical
        to a stand-alone ``solve(problems[i])`` call.  Only the numeric hot
        spots (the SP2 bandwidth-multiplier search and the SP1 golden-section
        search) actually run batched; everything else executes per lane with
        the exact per-drop code.  Lanes the batched kernels do not cover
        (``energy_weight <= 0``, a hard deadline, or a non-vector backend)
        are transparently routed through :meth:`solve`.

        With ``return_exceptions=True`` a failing lane's exception is
        returned in its slot (the :func:`asyncio.gather` idiom) instead of
        aborting the batch; otherwise the first failure propagates.

        Batched lanes report empty ``timings`` — the lockstep loop
        interleaves all lanes' SP1/SP2 work, so per-lane stage wall-clock
        has no meaning there.
        """
        num_lanes = len(problems)
        results: list[AllocationResult | Exception | None] = [None] * num_lanes

        class _Lane:
            """Mutable per-lane outer-loop state (mirrors ``solve`` locals)."""

            def __init__(self, problem: JointProblem, allocation: ResourceAllocation) -> None:
                self.problem = problem
                self.allocation = allocation
                self.history = ConvergenceHistory()
                self.converged = False
                self.feasible = True
                self.inner_iterations = 0
                self.round_deadline = allocation.round_time_s(problem.system)
                self.iteration = 0
                self.last_mu = 0.0

        lanes: dict[int, _Lane] = {}
        for i, problem in enumerate(problems):
            if (
                self.backend != "vector"
                or problem.energy_weight <= 0.0
                or problem.deadline_s is not None
            ):
                # Corners the batched kernels do not model; the per-drop
                # solver is authoritative there (and trivially bit-identical).
                try:
                    results[i] = self.solve(problem)
                except Exception as exc:  # repro-lint: disable=RL005 -- lane isolation: one bad problem must fail its own slot, not the batch
                    if not return_exceptions:
                        raise
                    results[i] = exc
                continue
            try:
                lanes[i] = _Lane(problem, self._initial_allocation(problem))
            except Exception as exc:  # repro-lint: disable=RL005 -- lane isolation: one bad problem must fail its own slot, not the batch
                if not return_exceptions:
                    raise
                results[i] = exc

        config = self.config
        active = [i for i in sorted(lanes) if config.max_iterations >= 1]
        while active:
            for i in active:
                lanes[i].iteration += 1

            # Step 1 (batched): Subproblem 1 across all active lanes.
            sp1_results = solve_subproblem1_rows(
                [lanes[i].problem.system for i in active],
                [lanes[i].problem.energy_weight for i in active],
                [lanes[i].problem.time_weight for i in active],
                [
                    lanes[i].problem.system.upload_time_s(
                        lanes[i].allocation.power_w, lanes[i].allocation.bandwidth_hz
                    )
                    for i in active
                ],
                method=config.subproblem1_method,
            )
            previous: dict[int, ResourceAllocation] = {}
            survivors: list[int] = []
            for k, i in enumerate(active):
                lane = lanes[i]
                sp1 = sp1_results[k]
                if isinstance(sp1, Exception):
                    # ``solve`` would have raised this out of the outer loop.
                    if not return_exceptions:
                        raise sp1
                    results[i] = sp1
                    lanes.pop(i)
                    continue
                previous[i] = lane.allocation
                lane.allocation = lane.allocation.with_frequency(sp1.frequency_hz)
                lane.round_deadline = sp1.round_deadline_s
                survivors.append(i)
            active = survivors

            # Step 2 (batched): Subproblem 2 across the surviving lanes,
            # replicating ``_solve_communication`` lane by lane around one
            # batched Algorithm-1 call.
            min_rates: dict[int, np.ndarray] = {}
            for i in active:
                lane = lanes[i]
                system = lane.problem.system
                min_rate = lane.problem.min_rate_requirements(
                    lane.allocation.frequency_hz, lane.round_deadline
                )
                min_rates[i] = np.where(
                    np.isfinite(min_rate),
                    min_rate,
                    system.rates_bps(lane.allocation.power_w, lane.allocation.bandwidth_hz),
                )
            inner_results = solve_sum_of_ratios_rows(
                [
                    SumOfRatiosSolver(
                        lanes[i].problem.system,
                        lanes[i].problem.energy_weight,
                        config=config.sum_of_ratios,
                        backend=self.backend,
                    )
                    for i in active
                ],
                [min_rates[i] for i in active],
                [lanes[i].allocation.power_w for i in active],
                [lanes[i].allocation.bandwidth_hz for i in active],
            )
            survivors = []
            for k, i in enumerate(active):
                lane = lanes[i]
                inner = inner_results[k]
                if isinstance(inner, InfeasibleProblemError):
                    # Keep the previous (feasible) communication allocation.
                    lane.feasible = False
                    mu = 0.0
                elif isinstance(inner, Exception):
                    if not return_exceptions:
                        raise inner
                    results[i] = inner
                    lanes.pop(i)
                    continue
                else:
                    candidate = lane.allocation.with_communication(
                        inner.power_w, inner.bandwidth_hz
                    )
                    # Same monotone guard as ``_solve_communication`` (the
                    # deadline clause is vacuous here: deadline lanes never
                    # reach the lockstep loop).
                    if lane.problem.objective(candidate) <= lane.problem.objective(
                        lane.allocation
                    ) * (1 + 1e-12):
                        lane.allocation = candidate
                        lane.feasible = inner.feasible
                    else:
                        lane.feasible = True
                    lane.inner_iterations += inner.iterations
                    mu = inner.bandwidth_multiplier
                if mu > 0.0:
                    lane.last_mu = mu

                objective = lane.problem.objective(lane.allocation)
                step_change = lane.allocation.distance_to(previous[i])
                lane.history.append(
                    objective, step_change=step_change, note=f"outer-{lane.iteration}"
                )
                if step_change <= config.tolerance:
                    lane.converged = True
                elif lane.iteration < config.max_iterations:
                    survivors.append(i)
            active = survivors

        for i, lane in lanes.items():
            try:
                results[i] = self._finalize(
                    lane.problem,
                    lane.allocation,
                    lane.round_deadline,
                    lane.history,
                    lane.converged,
                    lane.iteration,
                    lane.feasible,
                    inner_iterations=lane.inner_iterations,
                    warm_hints={"mu": lane.last_mu} if lane.last_mu > 0.0 else {},
                )
            except Exception as exc:  # repro-lint: disable=RL005 -- lane isolation: one bad problem must fail its own slot, not the batch
                if not return_exceptions:
                    raise
                results[i] = exc
        final: list[AllocationResult | Exception] = []
        for i, item in enumerate(results):
            if item is None:  # pragma: no cover - defensive
                raise RuntimeError(f"batch lane {i} was never solved")
            final.append(item)
        return final

    # -- internals ----------------------------------------------------------
    def _initial_allocation(self, problem: JointProblem) -> ResourceAllocation:
        """Build the initial feasible point according to the configured strategy."""
        strategy = self.config.initial_strategy
        if strategy == "auto":
            strategy = "compute_aware" if problem.deadline_s is not None else "equal"
        if strategy == "equal":
            return problem.initial_allocation(
                bandwidth_fraction=self.config.initial_bandwidth_fraction
            )
        if strategy == "compute_aware":
            return self._compute_aware_initial(problem)
        if strategy == "delay_min":
            system = problem.system
            uplink = minimize_max_upload_time(system)
            allocation = ResourceAllocation(
                power_w=uplink.power_w,
                bandwidth_hz=uplink.bandwidth_hz,
                frequency_hz=system.max_frequency_hz.copy(),
            )
            if problem.deadline_s is not None and not problem.is_feasible(allocation):
                raise InfeasibleProblemError(
                    "no feasible allocation exists: even the delay-minimising "
                    f"schedule misses the {problem.deadline_s:.1f} s deadline"
                )
            return allocation
        raise ValueError(f"unknown initial strategy: {strategy!r}")

    def _compute_aware_initial(self, problem: JointProblem) -> ResourceAllocation:
        """Initial point for deadline-constrained problems.

        The alternating scheme inherits its per-device computation/upload
        time split from the initial point (Subproblem 2 only ever tightens
        the communication side), so the initial bandwidth is chosen — at
        maximum power — to minimise the total *computation* energy the
        per-round deadline will then force:

            minimize_B  sum_n kappa_n C_n (C_n / (T_round - T^up_n(B_n)))^2
            subject to  sum_n B_n <= B,   T^up_n(B_n) + C_n / f_max_n <= T_round,

        with ``C_n = R_l c_n D_n``.  Each term is convex in ``B_n`` (the
        upload time is convex decreasing in the bandwidth), so the problem is
        solved exactly by dual decomposition.  This is still just "a feasible
        initial point" in the sense of Algorithm 2; it simply avoids starting
        in the basin of a poor alternating fixed point.
        """
        system = problem.system
        round_deadline = problem.round_deadline_s
        if round_deadline is None:
            return problem.initial_allocation(
                bandwidth_fraction=self.config.initial_bandwidth_fraction
            )
        power = system.max_power_w.copy()
        cycles = system.cycles_per_round
        compute_floor = cycles / system.max_frequency_hz
        upload_budget = round_deadline - compute_floor
        if np.any(upload_budget <= 0.0):
            raise InfeasibleProblemError(
                "some devices cannot finish their computation inside the deadline "
                "even at maximum frequency"
            )
        min_rate = system.upload_bits / upload_budget
        lower = min_bandwidth_for_rate(
            min_rate,
            power,
            system.gains,
            system.noise_psd_w_per_hz,
            bandwidth_cap_hz=system.total_bandwidth_hz,
        )
        if np.any(~np.isfinite(lower)) or lower.sum() > system.total_bandwidth_hz * (1 + 1e-9):
            raise InfeasibleProblemError(
                "no feasible allocation exists: the bandwidth budget cannot meet "
                f"the {problem.deadline_s:.1f} s deadline even at maximum power"
            )
        lower = np.minimum(lower * (1.0 + 1e-9), system.total_bandwidth_hz)

        kappa = system.effective_capacitance

        def compute_energy(bandwidth: np.ndarray) -> np.ndarray:
            bw = np.maximum(bandwidth, 1e-3)
            rates = system.rates_bps(power, bw)
            upload = system.upload_bits / rates
            slack = np.maximum(round_deadline - upload, 1e-12)
            frequency = np.clip(
                cycles / slack, system.min_frequency_hz, system.max_frequency_hz
            )
            penalty = np.where(cycles / slack > system.max_frequency_hz, 1e9, 0.0)
            return kappa * cycles * frequency**2 + penalty

        allocation = minimize_separable_with_budget(
            compute_energy,
            lower,
            np.full_like(lower, system.total_bandwidth_hz),
            system.total_bandwidth_hz,
        )
        bandwidth = allocation.x
        initial = ResourceAllocation(
            power_w=power,
            bandwidth_hz=bandwidth,
            frequency_hz=system.max_frequency_hz.copy(),
        )
        if not problem.is_feasible(initial, rtol=1e-6):
            raise InfeasibleProblemError(
                "no feasible allocation exists for the requested deadline"
            )
        return initial

    def _solve_communication(
        self,
        problem: JointProblem,
        allocation: ResourceAllocation,
        round_deadline_s: float,
        mu_hint: float | None = None,
    ) -> tuple[ResourceAllocation, bool, int, float]:
        """Solve Subproblem 2.

        Returns ``(allocation, feasible, inner iterations, final bandwidth
        multiplier)`` — the multiplier is 0 when the inner solver did not
        run or the budget constraint was slack.
        """
        system = problem.system
        config = self.config

        min_rate = problem.min_rate_requirements(
            allocation.frequency_hz, round_deadline_s
        )
        # The frequencies chosen by Subproblem 1 guarantee positive slack, so
        # the requirements are finite; numerical round-off can still produce
        # an infinity when a device sits exactly on the deadline.
        min_rate = np.where(np.isfinite(min_rate), min_rate, system.rates_bps(
            allocation.power_w, allocation.bandwidth_hz
        ))

        if problem.energy_weight <= 0.0:
            uplink = minimize_max_upload_time(system)
            return (
                allocation.with_communication(uplink.power_w, uplink.bandwidth_hz),
                True,
                0,
                0.0,
            )

        solver = SumOfRatiosSolver(
            system,
            problem.energy_weight,
            config=config.sum_of_ratios,
            backend=self.backend,
        )
        try:
            result = solver.solve(
                min_rate,
                allocation.power_w,
                allocation.bandwidth_hz,
                mu_hint=mu_hint,
            )
        except InfeasibleProblemError:
            # Keep the previous (feasible) communication allocation.
            return allocation, False, 0, 0.0
        candidate = allocation.with_communication(result.power_w, result.bandwidth_hz)
        # Never accept a step that increases the overall weighted objective;
        # the alternating scheme then remains monotone even when the inner
        # solver's heuristic split is slightly off.
        if problem.objective(candidate) <= problem.objective(allocation) * (1 + 1e-12) or (
            problem.deadline_s is not None
            and not problem.is_feasible(allocation, rtol=1e-6)
        ):
            return candidate, result.feasible, result.iterations, result.bandwidth_multiplier
        return allocation, True, result.iterations, result.bandwidth_multiplier

    def _solve_delay_only(
        self, problem: JointProblem, timings: StageTimings
    ) -> tuple[ResourceAllocation, ConvergenceHistory]:
        """Closed-form solution for ``w1 = 0``: max frequency, min-max upload."""
        system = problem.system
        with stage("sp2", timings):
            uplink = minimize_max_upload_time(system)
        allocation = ResourceAllocation(
            power_w=uplink.power_w,
            bandwidth_hz=uplink.bandwidth_hz,
            frequency_hz=system.max_frequency_hz.copy(),
        )
        history = ConvergenceHistory()
        history.append(problem.objective(allocation), note="delay-only")
        return allocation, history

    def _finalize(
        self,
        problem: JointProblem,
        allocation: ResourceAllocation,
        round_deadline_s: float,
        history: ConvergenceHistory,
        converged: bool,
        iterations: int,
        feasible: bool,
        inner_iterations: int = 0,
        timings: StageTimings | None = None,
        warm_hints: dict[str, float] | None = None,
    ) -> AllocationResult:
        terms = problem.objective_terms(allocation)
        report = problem.feasibility(allocation)
        return AllocationResult(
            allocation=allocation,
            round_deadline_s=float(round_deadline_s),
            objective=terms["objective"],
            energy_j=terms["energy_j"],
            completion_time_s=terms["completion_time_s"],
            transmission_energy_j=terms["transmission_energy_j"],
            computation_energy_j=terms["computation_energy_j"],
            converged=converged,
            iterations=iterations,
            feasible=feasible and report.is_feasible,
            history=history,
            inner_iterations=inner_iterations,
            timings=timings.as_dict() if timings is not None else {},
            warm_hints=warm_hints or {},
        )
