"""Iteration histories for the iterative solvers (Algorithms 1 and 2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["IterationRecord", "ConvergenceHistory"]


@dataclass(frozen=True)
class IterationRecord:
    """Snapshot of one iteration of an iterative solver."""

    iteration: int
    objective: float
    residual: float = float("nan")
    step_change: float = float("nan")
    note: str = ""


@dataclass
class ConvergenceHistory:
    """Ordered list of :class:`IterationRecord` with convenience accessors."""

    records: list[IterationRecord] = field(default_factory=list)

    def append(
        self,
        objective: float,
        *,
        residual: float = float("nan"),
        step_change: float = float("nan"),
        note: str = "",
    ) -> IterationRecord:
        """Record one iteration and return the created record."""
        record = IterationRecord(
            iteration=len(self.records),
            objective=float(objective),
            residual=float(residual),
            step_change=float(step_change),
            note=note,
        )
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[IterationRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> IterationRecord:
        return self.records[index]

    @property
    def objectives(self) -> list[float]:
        """Objective value at every recorded iteration."""
        return [r.objective for r in self.records]

    @property
    def residuals(self) -> list[float]:
        """Residual norm at every recorded iteration."""
        return [r.residual for r in self.records]

    @property
    def final_objective(self) -> float:
        """Objective at the last iteration (NaN when empty)."""
        if not self.records:
            return float("nan")
        return self.records[-1].objective

    def improvement(self) -> float:
        """Objective decrease from the first to the last iteration."""
        if len(self.records) < 2:
            return 0.0
        return self.records[0].objective - self.records[-1].objective

    def is_monotone_nonincreasing(self, rtol: float = 1e-6) -> bool:
        """Whether the recorded objectives never increase beyond ``rtol``."""
        objectives = self.objectives
        for previous, current in zip(objectives, objectives[1:]):
            if current > previous * (1.0 + rtol) + rtol:
                return False
        return True
