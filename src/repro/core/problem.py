"""Problem (8)/(9): the weighted energy/completion-time minimisation.

:class:`JointProblem` packages the system model with the two weight
parameters ``(w1, w2)`` (and, optionally, the fixed completion-time budget
used in Sections VII-C/VII-D, where ``w1 = 1, w2 = 0`` and the total delay
appears as a hard constraint instead of an objective term).  It knows how to

* evaluate the weighted objective of any allocation,
* check feasibility against constraints (8a)-(8c) and (9a),
* produce the initial feasible points the paper's experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError, InfeasibleProblemError
from ..system import SystemModel
from ..wireless.rate import min_bandwidth_for_rate
from .allocation import ResourceAllocation

__all__ = ["ProblemWeights", "JointProblem", "FeasibilityReport"]


@dataclass(frozen=True)
class ProblemWeights:
    """The weight pair ``(w1, w2)`` with ``w1 + w2 = 1`` (Section IV).

    ``w1`` weights total energy, ``w2`` weights total completion time.  The
    deadline-constrained experiments use ``(1, 0)`` together with
    ``JointProblem.deadline_s``.
    """

    energy: float
    time: float

    def __post_init__(self) -> None:
        if self.energy < 0.0 or self.time < 0.0:
            raise ConfigurationError("weights must be non-negative")
        if abs(self.energy + self.time - 1.0) > 1e-9:
            raise ConfigurationError(
                f"weights must sum to 1, got {self.energy} + {self.time}"
            )

    @classmethod
    def from_energy_weight(cls, w1: float) -> "ProblemWeights":
        """Build ``(w1, 1 - w1)``."""
        return cls(energy=float(w1), time=float(1.0 - w1))

    def as_tuple(self) -> tuple[float, float]:
        return self.energy, self.time

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"(w1={self.energy:g}, w2={self.time:g})"


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of a feasibility check against constraints (8a)-(8c), (9a)."""

    power_violation: float
    frequency_violation: float
    bandwidth_violation: float
    deadline_violation: float

    @property
    def is_feasible(self) -> bool:
        """All constraint violations below a 1e-6 relative tolerance."""
        return (
            self.power_violation <= 1e-6
            and self.frequency_violation <= 1e-6
            and self.bandwidth_violation <= 1e-6
            and self.deadline_violation <= 1e-6
        )

    @property
    def worst_violation(self) -> float:
        return max(
            self.power_violation,
            self.frequency_violation,
            self.bandwidth_violation,
            self.deadline_violation,
        )


@dataclass(frozen=True)
class JointProblem:
    """Problem (9): minimise ``w1 E + w2 T`` over ``(p, B, f)``."""

    system: SystemModel
    weights: ProblemWeights = field(
        default_factory=lambda: ProblemWeights(energy=0.5, time=0.5)
    )
    #: Optional hard bound on the total completion time (seconds over all
    #: ``R_g`` rounds).  Used by the Section VII-C / VII-D experiments.
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0.0:
            raise ConfigurationError("deadline_s must be positive when given")
        if (
            self.deadline_s is None
            and self.weights.time == 0.0
            and self.weights.energy == 0.0
        ):
            raise ConfigurationError("at least one weight must be positive")

    # -- shorthands ---------------------------------------------------------
    @property
    def energy_weight(self) -> float:
        return self.weights.energy

    @property
    def time_weight(self) -> float:
        return self.weights.time

    @property
    def round_deadline_s(self) -> float | None:
        """Per-round deadline implied by ``deadline_s`` (or None)."""
        if self.deadline_s is None:
            return None
        return self.deadline_s / self.system.global_rounds

    # -- objective -----------------------------------------------------------
    def objective(self, allocation: ResourceAllocation) -> float:
        """Weighted objective ``w1 E + w2 T`` of an allocation."""
        energy = allocation.total_energy_j(self.system)
        time = allocation.total_time_s(self.system)
        return self.energy_weight * energy + self.time_weight * time

    def objective_terms(self, allocation: ResourceAllocation) -> dict[str, float]:
        """Detailed objective decomposition for reporting."""
        transmission, computation = allocation.energy_breakdown_j(self.system)
        total_time = allocation.total_time_s(self.system)
        energy = transmission + computation
        return {
            "energy_j": energy,
            "transmission_energy_j": transmission,
            "computation_energy_j": computation,
            "completion_time_s": total_time,
            "objective": self.energy_weight * energy + self.time_weight * total_time,
        }

    # -- feasibility -----------------------------------------------------------
    def feasibility(self, allocation: ResourceAllocation) -> FeasibilityReport:
        """Constraint violations of an allocation (relative magnitudes)."""
        system = self.system
        p, b, f = allocation.power_w, allocation.bandwidth_hz, allocation.frequency_hz

        def _box_violation(x: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> float:
            scale = np.maximum(1e-30, np.maximum(np.abs(lo), np.abs(hi)))
            below = np.maximum(lo - x, 0.0) / scale
            above = np.maximum(x - hi, 0.0) / scale
            return float(np.max(np.maximum(below, above), initial=0.0))

        power_violation = _box_violation(p, system.min_power_w, system.max_power_w)
        frequency_violation = _box_violation(
            f, system.min_frequency_hz, system.max_frequency_hz
        )
        bandwidth_violation = max(
            0.0,
            (float(b.sum()) - system.total_bandwidth_hz) / system.total_bandwidth_hz,
        )
        if self.deadline_s is None:
            deadline_violation = 0.0
        else:
            total_time = allocation.total_time_s(system)
            deadline_violation = max(0.0, (total_time - self.deadline_s) / self.deadline_s)
        return FeasibilityReport(
            power_violation=power_violation,
            frequency_violation=frequency_violation,
            bandwidth_violation=bandwidth_violation,
            deadline_violation=deadline_violation,
        )

    def is_feasible(self, allocation: ResourceAllocation, *, rtol: float = 1e-6) -> bool:
        """Whether the allocation satisfies every constraint within ``rtol``."""
        report = self.feasibility(allocation)
        return report.worst_violation <= rtol

    # -- initial points ----------------------------------------------------------
    def initial_allocation(
        self, *, bandwidth_fraction: float = 1.0, power_at_max: bool = True
    ) -> ResourceAllocation:
        """A feasible starting point for Algorithm 2.

        The default mirrors the paper's initialisation: transmit at maximum
        power and split the (possibly fractional) bandwidth equally.  The CPU
        frequency starts at its maximum so the point is also feasible when a
        hard deadline is set (if even that fails, the deadline itself is
        infeasible and an :class:`InfeasibleProblemError` is raised).
        """
        system = self.system
        n = system.num_devices
        if not 0.0 < bandwidth_fraction <= 1.0:
            raise ConfigurationError("bandwidth_fraction must lie in (0, 1]")
        power = system.max_power_w if power_at_max else system.min_power_w.copy()
        power = np.asarray(power, dtype=float).copy()
        # A zero minimum power with ``power_at_max=False`` would give zero
        # rate; nudge to a strictly positive value.
        power = np.maximum(power, 1e-6)
        bandwidth = np.full(n, system.total_bandwidth_hz * bandwidth_fraction / n)
        frequency = system.max_frequency_hz.copy()
        allocation = ResourceAllocation(
            power_w=power, bandwidth_hz=bandwidth, frequency_hz=frequency
        )
        if self.deadline_s is not None and not self.is_feasible(allocation, rtol=1e-6):
            raise InfeasibleProblemError(
                "no feasible allocation exists: even maximum power/frequency with an "
                f"equal bandwidth split misses the {self.deadline_s:.1f} s deadline"
            )
        return allocation

    def min_rate_requirements(
        self, frequency_hz: np.ndarray, round_deadline_s: float
    ) -> np.ndarray:
        """Per-device minimum rates ``r_min_n = d_n / (T - R_l c_n D_n / f_n)``.

        This is the rate each device needs so that computation plus upload
        fits inside the per-round deadline ``T`` (constraint (9a) rewritten
        as in Section V-B).  Devices whose computation alone exceeds the
        deadline make the requirement infinite.
        """
        compute_time = self.system.computation_time_s(frequency_hz)
        slack = round_deadline_s - compute_time
        rates = np.full(slack.shape, np.inf)
        ok = slack > 0.0
        rates[ok] = self.system.upload_bits[ok] / slack[ok]
        return rates

    def check_rate_requirements_supportable(self, min_rate_bps: np.ndarray) -> None:
        """Raise if the rate requirements cannot be met even at maximum power.

        The check allocates to every device the minimum bandwidth it needs at
        maximum power and verifies the bandwidth budget can hold them all.
        """
        system = self.system
        if np.any(~np.isfinite(min_rate_bps)):
            raise InfeasibleProblemError(
                "some devices cannot finish their computation inside the deadline"
            )
        needed = min_bandwidth_for_rate(
            np.asarray(min_rate_bps, dtype=float),
            system.max_power_w,
            system.gains,
            system.noise_psd_w_per_hz,
            bandwidth_cap_hz=system.total_bandwidth_hz,
        )
        if np.any(~np.isfinite(needed)) or needed.sum() > system.total_bandwidth_hz * (1 + 1e-9):
            raise InfeasibleProblemError(
                "the bandwidth budget cannot support the per-device rate requirements"
            )
