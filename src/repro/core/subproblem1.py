"""Subproblem 1: CPU frequencies and the per-round deadline (problem (10)).

Given the upload times ``T^up_n`` implied by the current ``(p, B)``,
Subproblem 1 chooses the CPU frequencies ``f_n`` and the per-round deadline
``T`` minimising

    w1 R_g sum_n kappa R_l c_n D_n f_n^2  +  w2 R_g T
    s.t.  f_min <= f_n <= f_max,
          R_l c_n D_n / f_n + T^up_n <= T.

Two solvers are provided:

* ``method="primal"`` (default, exact): for a fixed ``T`` the optimal
  frequency is ``f_n(T) = clip(R_l c_n D_n / (T - T^up_n), f_min, f_max)``
  (energy is increasing in ``f``, so each device runs as slowly as the
  deadline allows), and the remaining one-dimensional problem in ``T`` is
  convex — solved by golden section.  This handles the frequency box
  exactly.
* ``method="dual"`` (paper-faithful): the Lagrangian dual (17) is a concave
  maximisation over the scaled simplex ``sum lambda_n = w2 R_g``; its
  water-filling solution gives ``f_n = (lambda_n / (2 w1 R_g kappa))^(1/3)``
  (eq. (16)), clipped into the box as in eq. (18) (the paper's eq. (18) has
  an obvious typo — it clips with ``f_min`` twice — which we fix by clipping
  to ``[f_min, f_max]``).

A third mode handles the deadline-constrained experiments of Sections
VII-C/VII-D: when ``round_deadline_s`` is given, ``T`` is not a variable and
every device simply runs at the slowest feasible frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError, ConvergenceError, InfeasibleProblemError
from ..solvers.scalar import golden_section_rows, golden_section_scalar
from ..solvers.waterfilling import maximize_concave_on_simplex
from ..system import SystemModel

__all__ = ["Subproblem1Result", "solve_subproblem1", "solve_subproblem1_rows"]


@dataclass(frozen=True)
class Subproblem1Result:
    """Solution of Subproblem 1."""

    frequency_hz: np.ndarray
    round_deadline_s: float
    objective: float
    dual_variables: np.ndarray | None = None
    method: str = "primal"

    @property
    def num_devices(self) -> int:
        return int(self.frequency_hz.shape[0])


def _frequency_for_deadline(
    system: SystemModel, upload_time_s: np.ndarray, round_deadline_s: float
) -> np.ndarray:
    """Slowest feasible frequency per device for a fixed per-round deadline."""
    slack = round_deadline_s - upload_time_s
    if np.any(slack <= 0.0):
        raise InfeasibleProblemError(
            "round deadline leaves no time for computation on some devices"
        )
    needed = system.cycles_per_round / slack
    if np.any(needed > system.max_frequency_hz * (1.0 + 1e-9)):
        raise InfeasibleProblemError(
            "round deadline cannot be met even at the maximum CPU frequency"
        )
    return np.clip(needed, system.min_frequency_hz, system.max_frequency_hz)


def _objective(
    system: SystemModel,
    w1: float,
    w2: float,
    frequency_hz: np.ndarray,
    round_deadline_s: float,
) -> float:
    energy_per_round = float(system.computation_energy_j(frequency_hz).sum())
    return system.global_rounds * (w1 * energy_per_round + w2 * round_deadline_s)


def _solve_primal(
    system: SystemModel,
    w1: float,
    w2: float,
    upload_time_s: np.ndarray,
) -> Subproblem1Result:
    """Exact solution by one-dimensional search over the deadline ``T``."""
    cycles = system.cycles_per_round
    f_min = system.min_frequency_hz
    f_max = system.max_frequency_hz

    t_lower = float(np.max(upload_time_s + cycles / f_max))
    t_upper = float(np.max(upload_time_s + cycles / f_min))

    if w2 <= 0.0:
        # Only energy matters and T is free: run every CPU at its minimum.
        frequency = f_min.copy()
        deadline = t_upper
        return Subproblem1Result(
            frequency_hz=frequency,
            round_deadline_s=deadline,
            objective=_objective(system, w1, w2, frequency, deadline),
            method="primal",
        )

    def frequencies_at(deadline: float) -> np.ndarray:
        slack = np.maximum(deadline - upload_time_s, 1e-300)
        return np.clip(cycles / slack, f_min, f_max)

    def objective_at(deadline: float) -> float:
        return _objective(system, w1, w2, frequencies_at(deadline), deadline)

    if w1 <= 0.0:
        # Only time matters: the smallest feasible deadline is optimal.
        deadline = t_lower
    elif t_upper <= t_lower * (1.0 + 1e-12):
        deadline = t_lower
    else:
        deadline, _ = golden_section_scalar(
            objective_at, t_lower, t_upper, tol=1e-12
        )
    frequency = frequencies_at(deadline)
    # Report the deadline actually realised by the chosen frequencies (it can
    # only be smaller than the searched value, never larger).
    realised = float(np.max(upload_time_s + cycles / frequency))
    deadline = min(deadline, realised) if w2 > 0 else realised
    deadline = max(deadline, realised)
    return Subproblem1Result(
        frequency_hz=frequency,
        round_deadline_s=deadline,
        objective=_objective(system, w1, w2, frequency, deadline),
        method="primal",
    )


def _solve_dual(
    system: SystemModel,
    w1: float,
    w2: float,
    upload_time_s: np.ndarray,
) -> Subproblem1Result:
    """Paper-faithful solution through the dual problem (17)."""
    if w1 <= 0.0 or w2 <= 0.0:
        # The dual derivation divides by both weights; defer to the primal
        # solver for the degenerate corners.
        return _solve_primal(system, w1, w2, upload_time_s)
    cycles_local = system.local_iterations * system.cycles_per_sample * system.num_samples
    rg = system.global_rounds
    kappa = system.effective_capacitance
    # h = R_l (w1 kappa R_g)^(1/3); the dual objective coefficient of
    # lambda^(2/3) is (2^(-2/3) + 2^(1/3)) h c_n D_n.  Using per-device kappa
    # keeps the formula valid for heterogeneous fleets.
    h = system.local_iterations * (w1 * kappa * rg) ** (1.0 / 3.0)
    coeff = (2.0 ** (-2.0 / 3.0) + 2.0 ** (1.0 / 3.0)) * h * (
        system.cycles_per_sample * system.num_samples
    )
    lambdas, _eta = maximize_concave_on_simplex(coeff, upload_time_s, w2 * rg)
    frequency = (lambdas / (2.0 * w1 * rg * kappa)) ** (1.0 / 3.0)
    frequency = np.clip(frequency, system.min_frequency_hz, system.max_frequency_hz)
    deadline = float(np.max(upload_time_s + cycles_local / frequency))
    return Subproblem1Result(
        frequency_hz=frequency,
        round_deadline_s=deadline,
        objective=_objective(system, w1, w2, frequency, deadline),
        dual_variables=lambdas,
        method="dual",
    )


def solve_subproblem1(
    system: SystemModel,
    energy_weight: float,
    time_weight: float,
    upload_time_s: np.ndarray,
    *,
    round_deadline_s: float | None = None,
    method: str = "primal",
) -> Subproblem1Result:
    """Solve Subproblem 1 for fixed upload times.

    Parameters
    ----------
    energy_weight, time_weight:
        The weights ``w1`` and ``w2``.
    upload_time_s:
        Upload times ``T^up_n`` implied by the current ``(p, B)``.
    round_deadline_s:
        If given, the per-round deadline is fixed (Sections VII-C/VII-D) and
        only the frequencies are optimised.
    method:
        ``"primal"`` (exact) or ``"dual"`` (paper's problem (17)).
    """
    upload = np.asarray(upload_time_s, dtype=float)
    if upload.shape != (system.num_devices,):
        raise ConfigurationError(
            f"upload_time_s must have shape ({system.num_devices},), got {upload.shape}"
        )
    if np.any(~np.isfinite(upload)) or np.any(upload < 0.0):
        raise ConfigurationError("upload times must be finite and non-negative")
    if energy_weight < 0.0 or time_weight < 0.0:
        raise ConfigurationError("weights must be non-negative")

    if round_deadline_s is not None:
        frequency = _frequency_for_deadline(system, upload, round_deadline_s)
        return Subproblem1Result(
            frequency_hz=frequency,
            round_deadline_s=float(round_deadline_s),
            objective=_objective(system, energy_weight, time_weight, frequency, round_deadline_s),
            method="deadline",
        )
    if method == "primal":
        return _solve_primal(system, energy_weight, time_weight, upload)
    if method == "dual":
        return _solve_dual(system, energy_weight, time_weight, upload)
    raise ConfigurationError(f"unknown Subproblem 1 method: {method!r}")


def solve_subproblem1_rows(
    systems: Sequence[SystemModel],
    energy_weights: Sequence[float],
    time_weights: Sequence[float],
    upload_times_s: Sequence[np.ndarray],
    *,
    method: str = "primal",
) -> list[Subproblem1Result | Exception]:
    """Batched Subproblem-1 solve across independent lanes.

    Lane ``i`` solves ``solve_subproblem1(systems[i], energy_weights[i],
    time_weights[i], upload_times_s[i], method=method)`` and the result is
    bit-identical to that per-drop call.  Only the primal golden-section
    search over the deadline ``T`` is genuinely batched (through
    :func:`~repro.solvers.scalar.golden_section_rows`, whose lanes
    replicate the scalar search exactly); degenerate corners — ``w1 <= 0``,
    ``w2 <= 0``, an already-collapsed interval, or a non-primal ``method``
    — fall through to the per-drop solver lane by lane.  Exceptions the
    per-drop call would raise are returned in that lane's slot.

    Golden lanes are sub-grouped by device count so the stacked objective
    sums run over rectangular ``(lanes, n)`` arrays, which NumPy reduces
    with the same pairwise trees as the per-drop 1-D sums — the keystone of
    the bit-parity guarantee.
    """
    num_lanes = len(systems)
    results: list[Subproblem1Result | Exception] = [
        ConfigurationError("lane not solved") for _ in range(num_lanes)
    ]
    golden: dict[int, list[int]] = {}
    uploads: dict[int, np.ndarray] = {}
    bounds: dict[int, tuple[float, float]] = {}
    for i in range(num_lanes):
        system = systems[i]
        w1 = float(energy_weights[i])
        w2 = float(time_weights[i])
        upload = np.asarray(upload_times_s[i], dtype=float)
        try:
            if upload.shape != (system.num_devices,):
                raise ConfigurationError(
                    f"upload_time_s must have shape ({system.num_devices},), "
                    f"got {upload.shape}"
                )
            if np.any(~np.isfinite(upload)) or np.any(upload < 0.0):
                raise ConfigurationError(
                    "upload times must be finite and non-negative"
                )
            if w1 < 0.0 or w2 < 0.0:
                raise ConfigurationError("weights must be non-negative")
            t_lower = float(np.max(upload + system.cycles_per_round / system.max_frequency_hz))
            t_upper = float(np.max(upload + system.cycles_per_round / system.min_frequency_hz))
            if (
                method == "primal"
                and w1 > 0.0
                and w2 > 0.0
                and t_upper > t_lower * (1.0 + 1e-12)
            ):
                golden.setdefault(system.num_devices, []).append(i)
                uploads[i] = upload
                bounds[i] = (t_lower, t_upper)
            else:
                results[i] = solve_subproblem1(
                    system, w1, w2, upload, method=method
                )
        except (ConfigurationError, InfeasibleProblemError, ConvergenceError) as exc:
            results[i] = exc

    for n, lanes in golden.items():
        upload_rows = np.stack([uploads[i] for i in lanes])
        cycles_rows = np.stack([systems[i].cycles_per_round for i in lanes])
        fmin_rows = np.stack([systems[i].min_frequency_hz for i in lanes])
        fmax_rows = np.stack([systems[i].max_frequency_hz for i in lanes])
        kappa_rows = np.stack(
            [
                np.broadcast_to(
                    np.asarray(systems[i].effective_capacitance, dtype=float), (n,)
                )
                for i in lanes
            ]
        )
        rg = np.array([float(systems[i].global_rounds) for i in lanes])
        w1_arr = np.array([float(energy_weights[i]) for i in lanes])
        w2_arr = np.array([float(time_weights[i]) for i in lanes])
        t_lo = np.array([bounds[i][0] for i in lanes])
        t_hi = np.array([bounds[i][1] for i in lanes])

        def objective_rows(sel: np.ndarray, deadlines: np.ndarray) -> np.ndarray:
            slack = np.maximum(deadlines[:, None] - upload_rows[sel], 1e-300)
            freq = np.clip(cycles_rows[sel] / slack, fmin_rows[sel], fmax_rows[sel])
            energy = (kappa_rows[sel] * cycles_rows[sel] * freq**2).sum(axis=1)
            return rg[sel] * (w1_arr[sel] * energy + w2_arr[sel] * deadlines)

        try:
            deadlines, _ = golden_section_rows(objective_rows, t_lo, t_hi, tol=1e-12)
        except ConvergenceError:
            # One stuck lane aborts the whole rows search; redo the group
            # lane by lane so only the genuinely failing lanes error out.
            for i in lanes:
                try:
                    results[i] = solve_subproblem1(
                        systems[i],
                        float(energy_weights[i]),
                        float(time_weights[i]),
                        uploads[i],
                        method=method,
                    )
                except (ConfigurationError, InfeasibleProblemError, ConvergenceError) as exc:
                    results[i] = exc
            continue
        for k, i in enumerate(lanes):
            system = systems[i]
            w1 = float(energy_weights[i])
            w2 = float(time_weights[i])
            upload = uploads[i]
            deadline = float(deadlines[k])
            slack = np.maximum(deadline - upload, 1e-300)
            frequency = np.clip(
                system.cycles_per_round / slack,
                system.min_frequency_hz,
                system.max_frequency_hz,
            )
            realised = float(np.max(upload + system.cycles_per_round / frequency))
            deadline = min(deadline, realised)
            deadline = max(deadline, realised)
            results[i] = Subproblem1Result(
                frequency_hz=frequency,
                round_deadline_s=deadline,
                objective=_objective(system, w1, w2, frequency, deadline),
                method="primal",
            )
    return results
