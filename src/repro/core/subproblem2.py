"""The inner convex problem SP2_v2 (Theorem 1) and its solvers.

For fixed auxiliary variables ``(nu, beta)`` the parametric subtractive
problem of Theorem 1 is

    minimize    sum_n nu_n (p_n d_n - beta_n G_n(p_n, B_n))
    subject to  p_min <= p_n <= p_max,
                sum_n B_n <= B,
                G_n(p_n, B_n) >= r_min_n,

with ``G_n`` the Shannon rate of eq. (1).  Two solvers are implemented:

* :func:`solve_sp2_v2` — the paper's closed-form KKT solution (Theorem 2 /
  Appendix B): a bisection on the bandwidth multiplier ``mu`` whose
  per-device solution is expressed through the Lambert-W function, followed
  by the box LP (A.6) for the devices whose rate constraint is slack, and a
  final clipping of the power into its box (eq. (38)).
* :func:`solve_sp2_v2_numeric` — an exact numeric fallback based on dual
  decomposition: for each device the optimal power for a given bandwidth is
  known in closed form, and the remaining bandwidth allocation is a
  separable convex problem solved by bisection on the budget multiplier.
  It is used to cross-check the closed form in the tests and as a fallback
  whenever the closed-form path reports infeasibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConvergenceError, InfeasibleProblemError
from ..solvers.boxlp import solve_box_budget_lp
from ..solvers.dual_decomposition import minimize_separable_with_budget
from ..solvers.lambert import (
    lambert_solve_rows,
    lambert_solve_vector,
    solve_x_log_x,
    solve_x_log_x_rows,
)
from ..system import SystemModel
from ..wireless.rate import min_bandwidth_for_rate, required_power_for_rate, shannon_rate

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "MU_BRACKET_MAX_EXPANSIONS",
    "MU_BRACKET_MAX_CONTRACTIONS",
    "MU_SEARCH_MAX_ITERATIONS",
    "SP2Result",
    "sp2_objective",
    "solve_sp2_v2",
    "solve_sp2_v2_rows",
    "solve_sp2_v2_numeric",
    "validate_backend",
]

_LN2 = np.log(2.0)

#: The available SP2_v2 inner-solve backends.  ``"vector"`` (the default)
#: finds the bandwidth multiplier through batched array passes — a chunked
#: geometric bracket scan plus a safeguarded Newton iteration with the
#: analytic ``d(excess)/d(mu)`` — evaluating every device at once through
#: :func:`~repro.solvers.lambert.lambert_solve_vector`.  ``"scalar"`` is the
#: original probe-at-a-time bisection, retained float-for-float as the
#: reference oracle for the differential tests.
BACKENDS: tuple[str, ...] = ("scalar", "vector")
DEFAULT_BACKEND = "vector"

#: Iteration caps of the bandwidth-multiplier search.  Exhausting any of
#: them raises :class:`~repro.exceptions.ConvergenceError` (callers fall
#: back to the numeric solver) instead of silently returning a bad point.
#: Upper-bracket expansions (``mu_hi *= 4`` / batched chunks thereof).
MU_BRACKET_MAX_EXPANSIONS = 400
#: Lower-bracket contractions (``mu_lo *= 0.25`` / batched chunks thereof).
MU_BRACKET_MAX_CONTRACTIONS = 2000
#: Root-refinement iterations (bisection / Illinois / safeguarded Newton).
MU_SEARCH_MAX_ITERATIONS = 300

#: Candidate multipliers evaluated per batched bracket-scan pass (vector
#: backend): one ``(chunk, num_devices)`` Lambert evaluation replaces up to
#: ``chunk`` sequential scalar probes.
_VECTOR_SCAN_CHUNK = 16


def validate_backend(backend: str) -> str:
    """Return ``backend`` if it is a known SP2 backend, else raise."""
    if backend not in BACKENDS:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(f"unknown SP2 backend {backend!r}; known: {known}")
    return backend


@dataclass(frozen=True)
class SP2Result:
    """Solution of SP2_v2 for one ``(nu, beta)`` pair."""

    power_w: np.ndarray
    bandwidth_hz: np.ndarray
    objective: float
    bandwidth_multiplier: float
    rate_multipliers: np.ndarray
    feasible: bool
    method: str

    @property
    def num_devices(self) -> int:
        return int(self.power_w.shape[0])


def sp2_objective(
    system: SystemModel,
    nu: np.ndarray,
    beta: np.ndarray,
    power_w: np.ndarray,
    bandwidth_hz: np.ndarray,
) -> float:
    """Objective of SP2_v2: ``sum nu_n (p_n d_n - beta_n G_n)``."""
    rates = system.rates_bps(power_w, bandwidth_hz)
    return float(np.sum(nu * (power_w * system.upload_bits - beta * rates)))


def _rate_feasibility(
    system: SystemModel,
    power_w: np.ndarray,
    bandwidth_hz: np.ndarray,
    min_rate_bps: np.ndarray,
    rtol: float = 1e-6,
) -> bool:
    rates = system.rates_bps(power_w, bandwidth_hz)
    return bool(np.all(rates >= min_rate_bps * (1.0 - rtol) - 1e-9))


def _repair_rates(
    system: SystemModel,
    power_w: np.ndarray,
    bandwidth_hz: np.ndarray,
    min_rate_bps: np.ndarray,
) -> np.ndarray:
    """Raise power (within its box) wherever the rate target is missed.

    The closed-form path clips power into ``[p_min, p_max]`` after the KKT
    step, which can leave a small rate shortfall; bumping the power back up
    is always feasible for the power box and never increases bandwidth.
    """
    rates = system.rates_bps(power_w, bandwidth_hz)
    short = rates < min_rate_bps * (1.0 - 1e-9)
    if not np.any(short):
        return power_w
    repaired = power_w.copy()
    needed = required_power_for_rate(
        min_rate_bps[short],
        bandwidth_hz[short],
        system.gains[short],
        system.noise_psd_w_per_hz,
    )
    repaired[short] = np.clip(
        np.maximum(power_w[short], needed),
        system.min_power_w[short],
        system.max_power_w[short],
    )
    return repaired


def _polish_mu(
    mu: float,
    j_c: np.ndarray,
    rmin_c: np.ndarray,
    budget: float,
    steps: int = 8,
) -> tuple[float, np.ndarray]:
    """Newton-polish ``mu`` onto the exact root of the excess equation.

    The bracketed searches stop at ``mu_tol`` relative width, which leaves
    each backend (and each warm/cold path) on its own side of the root; a
    few analytic Newton steps (``d excess / d mu = -sum rmin ln2 /
    (j x ln(x)^3)``) collapse that residual to round-off.

    The polish is deliberately **entry-independent**: the entry multiplier
    is first snapped to a 26-bit-mantissa grid — far coarser than the
    ``mu_tol`` agreement between the searches, far finer than the Newton
    basin — so every search path (scalar/vector, warm/cold) almost surely
    starts the polish from the *same* double; ``x`` is then evaluated
    through one canonical, unseeded evaluator, and the Newton map is
    iterated into its double-precision attractor (fixed point, or 2-cycle
    tie-broken to the smaller value).  The backends therefore return
    bit-identical multipliers call for call — which is what keeps their
    downstream Algorithm-1/2 trajectories, and therefore the reported
    sweep metrics, in lockstep.
    """
    mantissa, exponent = np.frexp(mu)
    mu = float(np.ldexp(np.round(mantissa * (1 << 26)) / float(1 << 26), exponent))
    lead = rmin_c * _LN2
    x = solve_x_log_x(mu / j_c)
    previous = None
    for _ in range(steps):
        log_x = np.maximum(np.log(x), 1e-300)
        excess = float((lead / log_x).sum()) - budget
        slope = -float((lead / (j_c * x * log_x**3)).sum())
        if not np.isfinite(slope) or slope >= 0.0:
            break
        mu_new = mu - excess / slope
        if not np.isfinite(mu_new) or mu_new <= 0.0 or mu_new == mu:
            break
        if mu_new == previous:
            # 2-cycle between adjacent doubles: the cycle is a property of
            # the map, not of the entry point, so the deterministic
            # tie-break makes the result entry-independent.
            if mu_new < mu:
                mu = mu_new
                x = solve_x_log_x(mu / j_c)
            break
        previous = mu
        mu = mu_new
        x = solve_x_log_x(mu / j_c)
    return mu, x


def _polish_mu_rows(
    mu: np.ndarray,
    j_rows: np.ndarray,
    rmin_rows: np.ndarray,
    budgets: np.ndarray,
    steps: int = 8,
) -> tuple[np.ndarray, np.ndarray]:
    """Lockstep batch of independent :func:`_polish_mu` polishes.

    Lane ``i`` of the result is bitwise equal to
    ``_polish_mu(mu[i], j_rows[i], rmin_rows[i], budgets[i])``: the snap,
    the canonical unseeded root evaluation, and every Newton/tie-break
    decision are the same float-for-float expressions, applied per lane
    with a per-lane stop mask.  Two properties carry that guarantee over
    from the scalar polish:

    * :func:`solve_x_log_x_rows` freezes each row on its own criterion, so
      a row equals a stand-alone 1-D solve bitwise;
    * the excess/slope row sums run over the rectangular ``(lanes, n_c)``
      stack with ``.sum(axis=1)``, which NumPy evaluates with the same
      pairwise tree as the 1-D sums of the scalar polish.

    Together with the entry-independence of the polish itself, this is what
    lets the batched multiplier search return bit-identical results to the
    per-drop path even though its bracket iterates differ in round-off.
    """
    mantissa, exponent = np.frexp(mu)
    mu = np.ldexp(np.round(mantissa * (1 << 26)) / float(1 << 26), exponent)
    lead = rmin_rows * _LN2
    x = solve_x_log_x_rows(mu[:, None] / j_rows)
    previous = np.full_like(mu, np.nan)
    active = np.ones(mu.shape[0], dtype=bool)
    for _ in range(steps):
        idx = np.flatnonzero(active)
        if idx.size == 0:
            break
        xa = x[idx]
        log_x = np.maximum(np.log(xa), 1e-300)
        excess = (lead[idx] / log_x).sum(axis=1) - budgets[idx]
        slope = -(lead[idx] / (j_rows[idx] * xa * log_x**3)).sum(axis=1)
        ok = np.isfinite(slope) & (slope < 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            mu_new = np.where(ok, mu[idx] - excess / slope, mu[idx])
        ok &= np.isfinite(mu_new) & (mu_new > 0.0) & (mu_new != mu[idx])
        cycle = ok & (mu_new == previous[idx])
        take_cycle = cycle & (mu_new < mu[idx])
        advance = ok & ~cycle
        update = advance | take_cycle
        previous[idx[advance]] = mu[idx[advance]]
        mu[idx[update]] = mu_new[update]
        if np.any(update):
            upd = idx[update]
            x[upd] = solve_x_log_x_rows(mu[upd][:, None] / j_rows[upd])
        active[idx[~advance]] = False
    return mu, x


def _mu_search_scalar(
    j_c: np.ndarray,
    rmin_c: np.ndarray,
    budget: float,
    *,
    mu_tol: float,
    mu_hint: float | None,
) -> tuple[float, np.ndarray | None]:
    """Reference bandwidth-multiplier search: one probe at a time.

    Returns ``(mu, x)`` with ``x`` the per-device SNR factors at ``mu`` (or
    ``None`` when ``mu == 0``, i.e. the budget constraint is slack for the
    rate-active set).  This is the original probe-sequential implementation,
    kept float-for-float identical as the oracle the vector backend is
    differential-tested against.
    """
    # Newton seed threaded across evaluations: consecutive mu probes are
    # close, so the previous root is an excellent starting iterate.
    # Only used on the warm path to keep the cold path's float-for-float
    # behaviour identical to the reference implementation.
    x_seed: list[np.ndarray | None] = [None]
    thread_seed = mu_hint is not None

    def solve_x(mu_value: float) -> np.ndarray:
        x = solve_x_log_x(mu_value / j_c, x0=x_seed[0] if thread_seed else None)
        if thread_seed:
            x_seed[0] = x
        return x

    def bandwidth_at(mu_value: float) -> np.ndarray:
        x = solve_x(mu_value)
        return rmin_c * _LN2 / np.maximum(np.log(x), 1e-300)

    def excess(mu_value: float) -> float:
        return float(bandwidth_at(mu_value).sum()) - budget

    # Bracket the multiplier: bandwidth demand explodes as mu -> 0 and
    # vanishes as mu -> infinity.  A warm hint replaces the generic
    # starting point, typically collapsing the expansion/contraction
    # scans to a couple of probes.
    if mu_hint is not None and np.isfinite(mu_hint) and mu_hint > 0.0:
        mu_hi = float(mu_hint)
    else:
        mu_hi = float(np.median(j_c))
    f_hi = excess(mu_hi)
    expansions = 0
    while f_hi > 0.0:
        if expansions >= MU_BRACKET_MAX_EXPANSIONS:
            raise ConvergenceError(
                "bandwidth multiplier could not be bracketed from above in "
                f"{MU_BRACKET_MAX_EXPANSIONS} expansions (excess {f_hi:.3g} "
                f"at mu {mu_hi:.3g})"
            )
        mu_hi *= 4.0
        f_hi = excess(mu_hi)
        expansions += 1
    mu_lo, f_lo = mu_hi, f_hi
    contractions = 0
    while f_lo < 0.0:
        if contractions >= MU_BRACKET_MAX_CONTRACTIONS:
            raise ConvergenceError(
                "bandwidth multiplier could not be bracketed from below in "
                f"{MU_BRACKET_MAX_CONTRACTIONS} contractions (excess "
                f"{f_lo:.3g} at mu {mu_lo:.3g})"
            )
        mu_lo *= 0.25
        f_lo = excess(mu_lo)
        contractions += 1
    if mu_lo > 0.0:
        # The multiplier lives at the scale of j_n (often ~1e-11), so the
        # stopping rule must be relative to mu itself, and the returned
        # value is taken from the feasible side of the bracket so the
        # active-set bandwidth can never exceed the budget.
        converged = False
        if mu_hint is not None:
            # Seeded path: safeguarded regula falsi (Illinois) — the
            # excess is smooth and monotone, so the superlinear update
            # reaches the same ``mu_tol`` bracket in a fraction of the
            # probes plain bisection needs.  f_lo/f_hi carry over from
            # the bracket scans above — no re-evaluation.
            last_side = 0
            for _ in range(MU_SEARCH_MAX_ITERATIONS):
                if mu_hi - mu_lo <= mu_tol * mu_hi or f_lo == 0.0 or f_hi == 0.0:
                    converged = True
                    break
                denom = f_lo - f_hi
                mu_mid = (
                    (mu_lo * (-f_hi) + mu_hi * f_lo) / denom
                    if denom > 0.0
                    else 0.5 * (mu_lo + mu_hi)
                )
                if not mu_lo < mu_mid < mu_hi:
                    mu_mid = 0.5 * (mu_lo + mu_hi)
                f_mid = excess(mu_mid)
                if f_mid > 0.0:
                    mu_lo, f_lo = mu_mid, f_mid
                    if last_side < 0:
                        f_hi *= 0.5
                    last_side = -1
                else:
                    mu_hi, f_hi = mu_mid, f_mid
                    if last_side > 0:
                        f_lo *= 0.5
                    last_side = 1
        else:
            for _ in range(MU_SEARCH_MAX_ITERATIONS):
                mu_mid = 0.5 * (mu_lo + mu_hi)
                if excess(mu_mid) > 0.0:
                    mu_lo = mu_mid
                else:
                    mu_hi = mu_mid
                if mu_hi - mu_lo <= mu_tol * mu_hi:
                    converged = True
                    break
        if not converged:
            raise ConvergenceError(
                "bandwidth-multiplier search did not converge in "
                f"{MU_SEARCH_MAX_ITERATIONS} iterations: the bracket "
                f"[{mu_lo:.6g}, {mu_hi:.6g}] is still wider than "
                f"tol={mu_tol:.3g}"
            )
        return _polish_mu(mu_hi, j_c, rmin_c, budget)
    return 0.0, None


def _mu_search_vector(
    j_c: np.ndarray,
    rmin_c: np.ndarray,
    budget: float,
    *,
    mu_tol: float,
    mu_hint: float | None,
) -> tuple[float, np.ndarray | None]:
    """Batched bandwidth-multiplier search (the ``"vector"`` backend).

    Same monotone root problem as :func:`_mu_search_scalar`, solved in a
    handful of array passes instead of dozens of sequential probes:

    * **batched bracket scan** — whole chunks of geometrically spaced
      candidate multipliers are evaluated at once through a
      ``(chunk, num_devices)`` :func:`lambert_solve_vector` call;
    * **safeguarded Newton refinement** — the excess-bandwidth derivative is
      analytic (``d B_n / d mu = -rmin_n ln2 / (j_n x_n ln(x_n)^3)``), so
      each iteration takes a quadratically convergent Newton step, clipped
      into the running bracket (with a bisection fallback), and threads the
      previous Lambert iterates as seeds.

    The stopping rule is the same relative bracket width on the feasible
    side, so scalar and vector backends agree on ``mu`` to ``mu_tol``-level
    round-off — the differential harness holds them to that.
    """
    lead = rmin_c * _LN2

    def batch_excess(mu_values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Excess bandwidth at each candidate mu: one array pass for all."""
        x = lambert_solve_vector(mu_values[:, None] / j_c[None, :])
        log_x = np.maximum(np.log(x), 1e-300)
        return (lead / log_x).sum(axis=1) - budget, x

    def point_excess(
        mu_value: float, seed: np.ndarray | None
    ) -> tuple[float, float, np.ndarray]:
        """Excess and its mu-derivative at one multiplier, seeded."""
        x = lambert_solve_vector(np.atleast_1d(mu_value) / j_c, x0=seed)
        log_x = np.maximum(np.log(x), 1e-300)
        excess = float((lead / log_x).sum()) - budget
        slope = -float((lead / (j_c * x * log_x**3)).sum())
        return excess, slope, x

    if mu_hint is not None and np.isfinite(mu_hint) and mu_hint > 0.0:
        mu_0 = float(mu_hint)
    else:
        mu_0 = float(np.median(j_c))
    (f_0,), _ = batch_excess(np.array([mu_0]))
    f_0 = float(f_0)

    if f_0 > 0.0:
        # Scan upward in chunks of geometrically growing candidates.  The
        # first chunk is small: a warm hint (and usually the median start)
        # sits within a few factors of the root, so a full-width batch
        # would mostly evaluate candidates beyond the bracket.
        mu_lo, f_lo = mu_0, f_0
        mu_hi = f_hi = None
        scanned = 0
        width = 4
        while mu_hi is None and scanned < MU_BRACKET_MAX_EXPANSIONS:
            chunk = min(width, _VECTOR_SCAN_CHUNK, MU_BRACKET_MAX_EXPANSIONS - scanned)
            width *= 2
            candidates = mu_lo * 4.0 ** np.arange(1, chunk + 1)
            excesses, _ = batch_excess(candidates)
            hits = np.flatnonzero(excesses <= 0.0)
            if hits.size:
                first = int(hits[0])
                mu_hi, f_hi = float(candidates[first]), float(excesses[first])
                if first > 0:
                    mu_lo, f_lo = float(candidates[first - 1]), float(excesses[first - 1])
            else:
                mu_lo, f_lo = float(candidates[-1]), float(excesses[-1])
                scanned += chunk
        if mu_hi is None:
            raise ConvergenceError(
                "bandwidth multiplier could not be bracketed from above in "
                f"{MU_BRACKET_MAX_EXPANSIONS} expansions (excess {f_lo:.3g} "
                f"at mu {mu_lo:.3g})"
            )
    elif f_0 < 0.0:
        # Scan downward; demand grows without bound as mu -> 0, so a sign
        # change (or exact underflow to mu = 0, where the budget is slack
        # for the active set) must appear before the cap.
        mu_hi, f_hi = mu_0, f_0
        mu_lo = f_lo = None
        scanned = 0
        width = 4
        while mu_lo is None and scanned < MU_BRACKET_MAX_CONTRACTIONS:
            chunk = min(width, _VECTOR_SCAN_CHUNK, MU_BRACKET_MAX_CONTRACTIONS - scanned)
            width *= 2
            candidates = mu_hi * 0.25 ** np.arange(1, chunk + 1)
            excesses, _ = batch_excess(candidates)
            hits = np.flatnonzero(excesses >= 0.0)
            if hits.size:
                first = int(hits[0])
                mu_lo, f_lo = float(candidates[first]), float(excesses[first])
                if first > 0:
                    mu_hi, f_hi = float(candidates[first - 1]), float(excesses[first - 1])
            else:
                mu_hi, f_hi = float(candidates[-1]), float(excesses[-1])
                scanned += chunk
        if mu_lo is None:
            raise ConvergenceError(
                "bandwidth multiplier could not be bracketed from below in "
                f"{MU_BRACKET_MAX_CONTRACTIONS} contractions (excess "
                f"{f_hi:.3g} at mu {mu_hi:.3g})"
            )
        if mu_lo == 0.0:
            return 0.0, None
    else:
        mu_lo = mu_hi = mu_0
        f_lo = f_hi = 0.0

    # Safeguarded Newton on the bracket [mu_lo, mu_hi] (f_lo >= 0 >= f_hi).
    mu_k, f_k, x_k = mu_hi, f_hi, None
    converged = mu_hi - mu_lo <= mu_tol * mu_hi or f_lo == 0.0 or f_hi == 0.0
    for _ in range(MU_SEARCH_MAX_ITERATIONS):
        if converged:
            break
        f_k, slope, x_k = point_excess(mu_k, x_k)
        if f_k > 0.0:
            mu_lo, f_lo = mu_k, f_k
        else:
            mu_hi, f_hi = mu_k, f_k
        if mu_hi - mu_lo <= mu_tol * mu_hi or f_k == 0.0:
            converged = True
            break
        mu_next = mu_k - f_k / slope if slope < 0.0 else 0.5 * (mu_lo + mu_hi)
        if not mu_lo < mu_next < mu_hi:
            mu_next = 0.5 * (mu_lo + mu_hi)
        mu_k = mu_next
    if not converged:
        raise ConvergenceError(
            "bandwidth-multiplier search did not converge in "
            f"{MU_SEARCH_MAX_ITERATIONS} iterations: the bracket "
            f"[{mu_lo:.6g}, {mu_hi:.6g}] is still wider than tol={mu_tol:.3g}"
        )
    return _polish_mu(mu_hi, j_c, rmin_c, budget)


def _mu_search_vector_rows(
    j_rows: np.ndarray,
    rmin_rows: np.ndarray,
    budgets: np.ndarray,
    *,
    mu_tol: float,
) -> tuple[np.ndarray, np.ndarray, list[str | None]]:
    """Lockstep bandwidth-multiplier search across independent lanes.

    One row per lane: ``j_rows[i]``/``rmin_rows[i]`` are lane ``i``'s
    constrained-device coefficients and ``budgets[i]`` its bandwidth
    budget.  Every lane runs the same state machine as
    :func:`_mu_search_vector` — geometric bracket scan (×4 up / ×0.25 down
    from the median of ``j``), then safeguarded Newton with the analytic
    excess derivative — but each round evaluates *one candidate per lane*,
    batched into a single ``(lanes, n_c)`` :func:`lambert_solve_rows` call.

    Lane isolation is exact: the row kernel freezes each row on its own
    stopping criterion and every bracket/Newton decision reads only that
    lane's values, so perturbing one lane's inputs cannot move another
    lane's iterates by even one ulp.  Bracket iterates may differ from the
    per-drop search in round-off (the per-drop scan evaluates candidate
    *chunks* per lane, this search evaluates candidate *lanes* per round),
    but both stop at the same ``mu_tol`` bracket and hand the feasible side
    to the entry-independent polish, which collapses either path onto the
    same double — the batched-parity suite holds the final results to
    bit-identity.

    Returns ``(mu, x_rows, errors)``: polished multipliers (``0.0`` for
    lanes whose budget is slack for the active set, with that lane's
    ``x_rows`` row meaningless), and per-lane error strings (``None`` on
    success) mirroring the per-drop search's :class:`ConvergenceError`
    messages.
    """
    num_lanes, n_c = j_rows.shape
    lead = rmin_rows * _LN2

    def evaluate(
        lanes: np.ndarray, mu_vals: np.ndarray, seeds: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        x = lambert_solve_rows(mu_vals[:, None] / j_rows[lanes], x0=seeds)
        log_x = np.maximum(np.log(x), 1e-300)
        excess = (lead[lanes] / log_x).sum(axis=1) - budgets[lanes]
        slope = -(lead[lanes] / (j_rows[lanes] * x * log_x**3)).sum(axis=1)
        return excess, slope, x

    SCAN_UP, SCAN_DOWN, NEWTON, DONE, FAILED = range(5)
    phase = np.full(num_lanes, DONE, dtype=np.int64)
    mu_lo = np.zeros(num_lanes)
    f_lo = np.zeros(num_lanes)
    mu_hi = np.zeros(num_lanes)
    f_hi = np.zeros(num_lanes)
    cand = np.zeros(num_lanes)
    mu_k = np.zeros(num_lanes)
    counts = np.zeros(num_lanes, dtype=np.int64)
    # NaN rows mean "no seed" (the row kernel ignores non-finite seeds
    # element-wise), matching the per-drop search: unseeded bracket scan,
    # previous iterates threaded through the Newton refinement.
    x_seed = np.full((num_lanes, n_c), np.nan)
    mu_out = np.zeros(num_lanes)
    slack = np.zeros(num_lanes, dtype=bool)
    errors: list[str | None] = [None] * num_lanes

    def enter_newton(i: int) -> None:
        if mu_hi[i] - mu_lo[i] <= mu_tol * mu_hi[i] or f_lo[i] == 0.0 or f_hi[i] == 0.0:
            phase[i] = DONE
            mu_out[i] = mu_hi[i]
        else:
            phase[i] = NEWTON
            mu_k[i] = mu_hi[i]
            counts[i] = 0
            x_seed[i] = np.nan

    mu_0 = np.median(j_rows, axis=1)
    all_lanes = np.arange(num_lanes)
    f_0, _, _ = evaluate(all_lanes, mu_0, x_seed)
    for i in range(num_lanes):
        if f_0[i] > 0.0:
            phase[i] = SCAN_UP
            mu_lo[i], f_lo[i] = mu_0[i], f_0[i]
            cand[i] = mu_0[i] * 4.0
        elif f_0[i] < 0.0:
            phase[i] = SCAN_DOWN
            mu_hi[i], f_hi[i] = mu_0[i], f_0[i]
            cand[i] = mu_0[i] * 0.25
        else:
            mu_lo[i] = mu_hi[i] = mu_0[i]
            f_lo[i] = f_hi[i] = 0.0
            enter_newton(i)

    while True:
        running = np.flatnonzero(phase <= NEWTON)
        if running.size == 0:
            break
        mu_vals = np.where(phase[running] == NEWTON, mu_k[running], cand[running])
        excess, slope, x = evaluate(running, mu_vals, x_seed[running])
        for k, lane in enumerate(running):
            i = int(lane)
            e = float(excess[k])
            s = float(slope[k])
            if phase[i] == SCAN_UP:
                if e <= 0.0:
                    mu_hi[i], f_hi[i] = cand[i], e
                    enter_newton(i)
                else:
                    mu_lo[i], f_lo[i] = cand[i], e
                    counts[i] += 1
                    if counts[i] >= MU_BRACKET_MAX_EXPANSIONS:
                        phase[i] = FAILED
                        errors[i] = (
                            "bandwidth multiplier could not be bracketed from "
                            f"above in {MU_BRACKET_MAX_EXPANSIONS} expansions "
                            f"(excess {f_lo[i]:.3g} at mu {mu_lo[i]:.3g})"
                        )
                    else:
                        cand[i] = cand[i] * 4.0
            elif phase[i] == SCAN_DOWN:
                if e >= 0.0:
                    mu_lo[i], f_lo[i] = cand[i], e
                    if mu_lo[i] == 0.0:
                        phase[i] = DONE
                        slack[i] = True
                    else:
                        enter_newton(i)
                else:
                    mu_hi[i], f_hi[i] = cand[i], e
                    counts[i] += 1
                    if counts[i] >= MU_BRACKET_MAX_CONTRACTIONS:
                        phase[i] = FAILED
                        errors[i] = (
                            "bandwidth multiplier could not be bracketed from "
                            f"below in {MU_BRACKET_MAX_CONTRACTIONS} "
                            f"contractions (excess {f_hi[i]:.3g} at mu "
                            f"{mu_hi[i]:.3g})"
                        )
                    else:
                        cand[i] = cand[i] * 0.25
            else:
                x_seed[i] = x[k]
                if e > 0.0:
                    mu_lo[i], f_lo[i] = mu_k[i], e
                else:
                    mu_hi[i], f_hi[i] = mu_k[i], e
                if mu_hi[i] - mu_lo[i] <= mu_tol * mu_hi[i] or e == 0.0:
                    phase[i] = DONE
                    mu_out[i] = mu_hi[i]
                    continue
                counts[i] += 1
                if counts[i] >= MU_SEARCH_MAX_ITERATIONS:
                    phase[i] = FAILED
                    errors[i] = (
                        "bandwidth-multiplier search did not converge in "
                        f"{MU_SEARCH_MAX_ITERATIONS} iterations: the bracket "
                        f"[{mu_lo[i]:.6g}, {mu_hi[i]:.6g}] is still wider "
                        f"than tol={mu_tol:.3g}"
                    )
                    continue
                mu_next = mu_k[i] - e / s if s < 0.0 else 0.5 * (mu_lo[i] + mu_hi[i])
                if not mu_lo[i] < mu_next < mu_hi[i]:
                    mu_next = 0.5 * (mu_lo[i] + mu_hi[i])
                mu_k[i] = mu_next

    mu_final = np.zeros(num_lanes)
    x_rows = np.ones((num_lanes, n_c))
    to_polish = np.flatnonzero((phase == DONE) & ~slack)
    if to_polish.size:
        mu_p, x_p = _polish_mu_rows(
            mu_out[to_polish],
            j_rows[to_polish],
            rmin_rows[to_polish],
            budgets[to_polish],
        )
        mu_final[to_polish] = mu_p
        x_rows[to_polish] = x_p
    return mu_final, x_rows, errors


_MU_SEARCHES = {"scalar": _mu_search_scalar, "vector": _mu_search_vector}


def _sp2_prepare(
    system: SystemModel,
    nu: np.ndarray,
    beta: np.ndarray,
    min_rate_bps: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Clamp the SP2_v2 inputs and derive the multiplier-search coefficients.

    Returns ``(nu, beta, rmin, j, constrained)`` with
    ``j_n = nu_n d_n N0 / g_n`` and ``constrained`` the rate-constrained
    device mask.  Shared head of the per-drop and batched solve paths.
    """
    nu = np.maximum(np.asarray(nu, dtype=float), 1e-300)
    beta = np.maximum(np.asarray(beta, dtype=float), 0.0)
    rmin = np.maximum(np.asarray(min_rate_bps, dtype=float), 0.0)
    if np.any(~np.isfinite(rmin)):
        raise InfeasibleProblemError("infinite rate requirement in SP2_v2")
    j = nu * system.upload_bits * system.noise_psd_w_per_hz / system.gains
    return nu, beta, rmin, j, rmin > 0.0


def solve_sp2_v2(
    system: SystemModel,
    nu: np.ndarray,
    beta: np.ndarray,
    min_rate_bps: np.ndarray,
    *,
    mu_tol: float = 1e-13,
    mu_hint: float | None = None,
    backend: str = DEFAULT_BACKEND,
) -> SP2Result:
    """Closed-form KKT solution of SP2_v2 (Theorem 2 / Appendix B).

    Raises :class:`InfeasibleProblemError` when the decomposition's lower
    bounds cannot fit into the bandwidth budget, and
    :class:`~repro.exceptions.ConvergenceError` when the multiplier search
    exhausts one of its iteration caps (callers fall back to
    :func:`solve_sp2_v2_numeric` in both cases).

    ``backend`` selects the bandwidth-multiplier search: ``"vector"``
    (default) batches the bracket scan and runs a safeguarded Newton
    iteration over all devices in single array passes; ``"scalar"`` is the
    probe-sequential reference implementation.  Both converge ``mu`` to the
    same relative tolerance, so they agree within ``mu_tol``-level
    round-off — the backend-parity tests enforce it.

    ``mu_hint`` warm-starts the **scalar** bandwidth-multiplier search from
    a nearby problem's multiplier (the previous Algorithm-1 iteration, or
    the neighbouring sweep point): the bracket expansion starts at the hint
    and every Lambert evaluation reuses the previous iterate as its Newton
    seed, which collapses the probe-sequential scan to a couple of
    evaluations.  On the vector backend the hint is a deliberate no-op: the
    chunked bracket scan already amortises the probes a hint would skip, so
    threading it bought nothing and cost measurable bookkeeping — ignoring
    it makes warm and cold vector runs bit-identical (and keeps the warm
    path's wall-clock at parity instead of slightly behind).
    """
    mu_search = _MU_SEARCHES[validate_backend(backend)]
    if backend == "vector":
        mu_hint = None
    budget = system.total_bandwidth_hz
    nu, beta, rmin, j, constrained = _sp2_prepare(system, nu, beta, min_rate_bps)

    mu = 0.0
    x_c: np.ndarray | None = None
    if np.any(constrained):
        mu, x_c = mu_search(
            j[constrained], rmin[constrained], budget, mu_tol=mu_tol, mu_hint=mu_hint
        )
    return _sp2_finish(system, nu, beta, rmin, j, constrained, mu, x_c)


def _sp2_finish(
    system: SystemModel,
    nu: np.ndarray,
    beta: np.ndarray,
    rmin: np.ndarray,
    j: np.ndarray,
    constrained: np.ndarray,
    mu: float,
    x_c: np.ndarray | None,
) -> SP2Result:
    """Assemble the SP2_v2 allocation from a solved bandwidth multiplier.

    The tail of the closed-form path — rate-active bandwidths, the box LP
    (A.6) for the slack devices, power repair, and the feasibility verdict —
    shared verbatim between :func:`solve_sp2_v2` and the batched
    :func:`solve_sp2_v2_rows` so the two are trivially bit-identical from
    the multiplier onward.
    """
    gains = system.gains
    bits = system.upload_bits
    noise = system.noise_psd_w_per_hz
    p_min = system.min_power_w
    p_max = system.max_power_w
    budget = system.total_bandwidth_hz
    n = system.num_devices

    power = np.zeros(n)
    bandwidth = np.zeros(n)
    tau = np.zeros(n)

    if np.any(constrained):
        j_c = j[constrained]

        if mu > 0.0:
            a_c = j_c * _LN2 * x_c  # a_n = nu_n beta_n + tau_n at stationarity
            tau_c = a_c - nu[constrained] * beta[constrained]
            tau_full = np.zeros(n)
            tau_full[constrained] = np.maximum(tau_c, 0.0)
            tau = tau_full

            active = constrained.copy()
            active[constrained] = tau_c > 0.0
            if np.any(active):
                x_active = x_c[tau_c > 0.0]
                bw_active = rmin[active] * _LN2 / np.log(x_active)
                pw_active = (x_active - 1.0) * noise * bw_active / gains[active]
                bandwidth[active] = bw_active
                power[active] = np.clip(pw_active, p_min[active], p_max[active])
        else:
            active = np.zeros(n, dtype=bool)
    else:
        active = np.zeros(n, dtype=bool)

    inactive = ~active
    remaining = budget - float(bandwidth[active].sum())
    if remaining < -1e-6 * budget:
        raise InfeasibleProblemError("active rate constraints exceed the bandwidth budget")
    remaining = max(remaining, 0.0)

    if np.any(inactive):
        g_i = gains[inactive]
        d_i = bits[inactive]
        nu_i = nu[inactive]
        beta_i = beta[inactive]
        rmin_i = rmin[inactive]
        p_min_i = p_min[inactive]
        p_max_i = p_max[inactive]

        # Stationary SNR factor with tau = 0 (eq. (A.1) specialised); the
        # clamp guards the theoretical corner beta -> 0, which cannot occur
        # when beta comes from an actual feasible iterate.
        x0 = np.maximum(beta_i * g_i / (noise * d_i * _LN2), 1.0 + 1e-12)
        slope = np.log2(x0)
        # Problem (A.6): linear cost per hertz of bandwidth.
        costs = nu_i * ((x0 - 1.0) * noise * d_i / g_i - beta_i * slope)

        lower_rate = np.where(rmin_i > 0.0, rmin_i / slope, 0.0)
        lower_power = p_min_i * g_i / ((x0 - 1.0) * noise)
        upper_power = p_max_i * g_i / ((x0 - 1.0) * noise)
        lower = np.maximum(lower_rate, lower_power)
        upper = np.maximum(upper_power, lower)

        if lower.sum() > remaining * (1.0 + 1e-9):
            # Relax the p_min-induced lower bound (the final clip to p_min can
            # only increase the achieved rate) and retry before giving up.
            lower = lower_rate
            upper = np.maximum(upper, lower)
            if lower.sum() > remaining * (1.0 + 1e-9):
                raise InfeasibleProblemError(
                    "LP lower bounds exceed the remaining bandwidth budget"
                )
        lp = solve_box_budget_lp(costs, lower, upper, remaining)
        bw_i = lp.x
        pw_i = np.clip((x0 - 1.0) * noise * bw_i / g_i, p_min_i, p_max_i)
        bandwidth[inactive] = bw_i
        power[inactive] = pw_i

    power = _repair_rates(system, power, bandwidth, rmin)
    feasible = (
        _rate_feasibility(system, power, bandwidth, rmin)
        and float(bandwidth.sum()) <= budget * (1.0 + 1e-6)
    )
    return SP2Result(
        power_w=power,
        bandwidth_hz=bandwidth,
        objective=sp2_objective(system, nu, beta, power, bandwidth),
        bandwidth_multiplier=float(mu),
        rate_multipliers=tau,
        feasible=feasible,
        method="kkt",
    )


def solve_sp2_v2_rows(
    systems: Sequence[SystemModel],
    nus: Sequence[np.ndarray],
    betas: Sequence[np.ndarray],
    min_rates: Sequence[np.ndarray],
    *,
    mu_tol: float = 1e-13,
) -> list[SP2Result | Exception]:
    """Batched closed-form SP2_v2 across independent lanes (vector backend).

    Lane ``i`` solves the same problem as
    ``solve_sp2_v2(systems[i], nus[i], betas[i], min_rates[i])`` and the
    returned :class:`SP2Result` is bit-identical to that per-drop call:
    preparation and the allocation tail run the exact per-lane code
    (:func:`_sp2_prepare` / :func:`_sp2_finish`), and the only genuinely
    batched stage — the bandwidth-multiplier search — hands its bracket to
    the entry-independent polish, which collapses every search path onto
    the same double.  Lanes are grouped by constrained-device count so all
    array passes run over rectangular stacks (ragged padding would change
    NumPy's pairwise-summation trees and break bit parity).

    Exceptions are returned in-place rather than raised so one diverged or
    infeasible lane cannot abort its neighbours: each element is either a
    result or the :class:`InfeasibleProblemError` /
    :class:`~repro.exceptions.ConvergenceError` the per-drop call would
    have raised, letting callers replicate their per-lane fallback logic.
    """
    num_lanes = len(systems)
    results: list[SP2Result | Exception] = [
        InfeasibleProblemError("lane not solved") for _ in range(num_lanes)
    ]
    prepared: dict[int, tuple] = {}
    for i in range(num_lanes):
        try:
            prepared[i] = _sp2_prepare(systems[i], nus[i], betas[i], min_rates[i])
        except InfeasibleProblemError as exc:
            results[i] = exc

    # (mu, x_c) per prepared lane; lanes with no rate-constrained device
    # skip the search entirely, exactly like the per-drop path.
    solved: dict[int, tuple[float, np.ndarray | None]] = {}
    groups: dict[int, list[int]] = {}
    for i, (_, _, rmin, _, constrained) in prepared.items():
        if np.any(constrained):
            groups.setdefault(int(np.sum(constrained)), []).append(i)
        else:
            solved[i] = (0.0, None)
    for n_c, lanes in groups.items():
        j_rows = np.empty((len(lanes), n_c))
        rmin_rows = np.empty((len(lanes), n_c))
        budgets = np.empty(len(lanes))
        for k, i in enumerate(lanes):
            _, _, rmin, j, constrained = prepared[i]
            j_rows[k] = j[constrained]
            rmin_rows[k] = rmin[constrained]
            budgets[k] = systems[i].total_bandwidth_hz
        mu_arr, x_rows, errors = _mu_search_vector_rows(
            j_rows, rmin_rows, budgets, mu_tol=mu_tol
        )
        for k, i in enumerate(lanes):
            if errors[k] is not None:
                results[i] = ConvergenceError(errors[k])
            elif mu_arr[k] > 0.0:
                solved[i] = (float(mu_arr[k]), x_rows[k])
            else:
                solved[i] = (0.0, None)

    for i, (mu, x_c) in solved.items():
        nu, beta, rmin, j, constrained = prepared[i]
        try:
            results[i] = _sp2_finish(
                systems[i], nu, beta, rmin, j, constrained, mu, x_c
            )
        except InfeasibleProblemError as exc:
            results[i] = exc
    return results


def solve_sp2_v2_numeric(
    system: SystemModel,
    nu: np.ndarray,
    beta: np.ndarray,
    min_rate_bps: np.ndarray,
    *,
    infeasible_penalty: float = 1e12,
) -> SP2Result:
    """Numeric dual-decomposition solution of SP2_v2 (fallback / cross-check).

    For a fixed bandwidth ``B_n`` the optimal power is

        p_n*(B_n) = clip( (x0_n - 1) N0 B_n / g_n,  max(p_min, p_req(B_n)),  p_max )

    with ``x0_n = beta_n g_n / (N0 d_n ln 2)`` the unconstrained stationary
    SNR factor and ``p_req`` the power needed to meet the rate target.  The
    per-device value function is convex in ``B_n``; the bandwidth budget is
    then handled by :func:`minimize_separable_with_budget`.
    """
    gains = system.gains
    bits = system.upload_bits
    noise = system.noise_psd_w_per_hz
    p_min = system.min_power_w
    p_max = system.max_power_w
    budget = system.total_bandwidth_hz

    nu = np.maximum(np.asarray(nu, dtype=float), 0.0)
    beta = np.maximum(np.asarray(beta, dtype=float), 0.0)
    rmin = np.maximum(np.asarray(min_rate_bps, dtype=float), 0.0)

    lower = min_bandwidth_for_rate(
        rmin, p_max, gains, noise, bandwidth_cap_hz=budget
    )
    if np.any(~np.isfinite(lower)) or lower.sum() > budget * (1.0 + 1e-6):
        raise InfeasibleProblemError(
            "rate requirements cannot be met within the bandwidth budget"
        )
    if lower.sum() > budget:
        # The requirements fill the budget exactly (up to round-off); shrink
        # marginally so the feasible box is non-empty.
        lower *= budget / lower.sum()
    upper = np.maximum(np.full_like(lower, budget), lower)
    x0 = np.maximum(beta * gains / (noise * bits * _LN2), 1.0 + 1e-12)

    def optimal_power(bandwidth: np.ndarray) -> np.ndarray:
        stationary = (x0 - 1.0) * noise * bandwidth / gains
        required = required_power_for_rate(rmin, bandwidth, gains, noise)
        lower_p = np.maximum(p_min, np.minimum(required, infeasible_penalty))
        return np.clip(stationary, lower_p, p_max)

    def per_device_objective(bandwidth: np.ndarray) -> np.ndarray:
        bw = np.maximum(bandwidth, 1e-6)
        power = optimal_power(bw)
        rates = shannon_rate(power, bw, gains, noise)
        value = nu * (power * bits - beta * rates)
        shortfall = np.maximum(rmin - rates, 0.0)
        return value + infeasible_penalty * shortfall / np.maximum(rmin, 1.0)

    result = minimize_separable_with_budget(
        per_device_objective, lower, upper, budget
    )
    bandwidth = result.x
    power = optimal_power(bandwidth)
    power = _repair_rates(system, power, bandwidth, rmin)
    feasible = (
        _rate_feasibility(system, power, bandwidth, rmin)
        and float(bandwidth.sum()) <= budget * (1.0 + 1e-6)
    )
    return SP2Result(
        power_w=power,
        bandwidth_hz=bandwidth,
        objective=sp2_objective(system, nu, beta, power, bandwidth),
        bandwidth_multiplier=result.multiplier,
        rate_multipliers=np.zeros_like(power),
        feasible=feasible,
        method="numeric",
    )
