"""Algorithm 1: the Newton-like sum-of-ratios solver for Subproblem 2.

Subproblem 2 minimises the total communication energy

    w1 R_g sum_n p_n d_n / G_n(p_n, B_n)

subject to the power box, the bandwidth budget and the per-device rate
requirements — an NP-hard sum-of-ratios problem.  Theorem 1 (after Jong's
parametric transformation) reduces it to finding auxiliary variables
``(beta, nu)`` such that the solution ``(p, B)`` of the subtractive problem
SP2_v2 satisfies

    phi_1,n = -p_n d_n + beta_n G_n = 0     and
    phi_2,n = -w1 R_g  + nu_n  G_n  = 0.

Algorithm 1 alternates (i) solving SP2_v2 for the current ``(beta, nu)`` and
(ii) a damped Newton update of ``(beta, nu)`` towards the exact ratios at
the new point.  Because the Jacobian of ``phi`` is ``diag(G_n)`` for both
blocks, the Newton direction is simply the difference between the exact
ratios and the current auxiliary values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import ConvergenceError, InfeasibleProblemError, SolverError
from ..perf.timers import stage
from ..solvers.newton import damped_newton_step
from ..system import SystemModel
from .convergence import ConvergenceHistory
from .subproblem2 import (
    DEFAULT_BACKEND,
    SP2Result,
    solve_sp2_v2,
    solve_sp2_v2_numeric,
    solve_sp2_v2_rows,
    sp2_objective,
    validate_backend,
)

__all__ = [
    "SumOfRatiosConfig",
    "SumOfRatiosResult",
    "SumOfRatiosSolver",
    "solve_sum_of_ratios_rows",
]


@dataclass(frozen=True)
class SumOfRatiosConfig:
    """Hyper-parameters of Algorithm 1."""

    #: Maximum number of outer iterations (``i_0`` in the paper).
    max_iterations: int = 30
    #: Damping base ``xi`` of the Newton-like update, in (0, 1).
    damping_xi: float = 0.5
    #: Sufficient-decrease constant ``epsilon`` of condition (29), in (0, 1).
    damping_eps: float = 0.01
    #: Relative tolerance on the residual ``|phi(beta, nu)|``.
    residual_tol: float = 1e-6
    #: Relative tolerance on the change of ``(p, B)`` between iterations.
    step_tol: float = 1e-8
    #: Whether to fall back to the numeric SP2_v2 solver when the
    #: closed-form path fails or returns an infeasible point.
    use_numeric_fallback: bool = True
    #: SP2_v2 inner-solve backend: ``"vector"`` (batched array passes, the
    #: default) or ``"scalar"`` (probe-sequential reference oracle).  Both
    #: agree within solver tolerance; the parity tests enforce it.
    backend: str = DEFAULT_BACKEND


@dataclass(frozen=True)
class SumOfRatiosResult:
    """Outcome of Algorithm 1."""

    power_w: np.ndarray
    bandwidth_hz: np.ndarray
    nu: np.ndarray
    beta: np.ndarray
    communication_energy_j: float
    converged: bool
    iterations: int
    feasible: bool
    history: ConvergenceHistory = field(default_factory=ConvergenceHistory)
    #: Final bandwidth multiplier of the inner KKT solve (0 when the budget
    #: constraint was slack); a warm-start hint for nearby problems.
    bandwidth_multiplier: float = 0.0


class SumOfRatiosSolver:
    """Solver object binding a system, an energy weight and a configuration."""

    def __init__(
        self,
        system: SystemModel,
        energy_weight: float,
        config: SumOfRatiosConfig | None = None,
        *,
        backend: str | None = None,
    ) -> None:
        if energy_weight <= 0.0:
            raise ValueError(
                "Algorithm 1 requires a positive energy weight; with w1 = 0 the "
                "communication energy does not appear in the objective"
            )
        self.system = system
        self.energy_weight = float(energy_weight)
        self.config = config or SumOfRatiosConfig()
        #: SP2 backend actually used: an explicit ``backend`` argument
        #: overrides the configuration's.
        self.backend = validate_backend(backend or self.config.backend)

    # -- helpers -----------------------------------------------------------
    @property
    def _scale(self) -> float:
        """The constant ``w1 R_g`` multiplying every ratio."""
        return self.energy_weight * self.system.global_rounds

    def _rates(self, power: np.ndarray, bandwidth: np.ndarray) -> np.ndarray:
        rates = self.system.rates_bps(power, bandwidth)
        if np.any(rates <= 0.0):
            raise InfeasibleProblemError(
                "an iterate produced a zero uplink rate; the initial point must "
                "give every device positive power and bandwidth"
            )
        return rates

    def _solve_inner(
        self,
        nu: np.ndarray,
        beta: np.ndarray,
        min_rate_bps: np.ndarray,
        incumbent_power: np.ndarray,
        incumbent_bandwidth: np.ndarray,
        mu_hint: float | None = None,
    ) -> SP2Result:
        """Solve SP2_v2, falling back to the numeric solver and, as a last
        resort, to the (feasible) incumbent point."""
        from .subproblem2 import sp2_objective

        try:
            result = solve_sp2_v2(
                self.system,
                nu,
                beta,
                min_rate_bps,
                mu_hint=mu_hint,
                backend=self.backend,
            )
            if result.feasible or not self.config.use_numeric_fallback:
                return result
        except (InfeasibleProblemError, ConvergenceError):
            if not self.config.use_numeric_fallback:
                raise
        try:
            return solve_sp2_v2_numeric(self.system, nu, beta, min_rate_bps)
        except (InfeasibleProblemError, SolverError):
            # SolverError covers the numeric path's own failure modes (e.g.
            # an unbracketable budget multiplier); the incumbent is the
            # documented last resort either way, and the caller's monotone
            # objective guard keeps a bad step from being accepted.
            return SP2Result(
                power_w=incumbent_power.copy(),
                bandwidth_hz=incumbent_bandwidth.copy(),
                objective=sp2_objective(
                    self.system, nu, beta, incumbent_power, incumbent_bandwidth
                ),
                bandwidth_multiplier=0.0,
                rate_multipliers=np.zeros_like(incumbent_power),
                feasible=True,
                method="incumbent",
            )

    def _residual(
        self,
        beta: np.ndarray,
        nu: np.ndarray,
        power: np.ndarray,
        rates: np.ndarray,
    ) -> np.ndarray:
        phi1 = -power * self.system.upload_bits + beta * rates
        phi2 = -self._scale + nu * rates
        return np.concatenate([phi1, phi2])

    def communication_energy(self, power: np.ndarray, bandwidth: np.ndarray) -> float:
        """Total transmission energy ``R_g sum p d / r`` of an allocation."""
        rates = self._rates(power, bandwidth)
        return self.system.global_rounds * float(
            np.sum(power * self.system.upload_bits / rates)
        )

    # -- main loop ---------------------------------------------------------
    def solve(
        self,
        min_rate_bps: np.ndarray,
        initial_power_w: np.ndarray,
        initial_bandwidth_hz: np.ndarray,
        *,
        initial_beta: np.ndarray | None = None,
        initial_nu: np.ndarray | None = None,
        mu_hint: float | None = None,
    ) -> SumOfRatiosResult:
        """Run Algorithm 1 from a feasible ``(p, B)`` starting point.

        ``initial_beta`` / ``initial_nu`` warm-start the auxiliary variables
        (both must be given together); by default they are derived from the
        initial point's exact ratios, which is the paper's initialisation.
        A warm pair from a nearby problem can save Newton iterations — the
        converged solution is the same root either way.

        ``mu_hint`` switches the inner KKT solve onto its seeded path: the
        bandwidth-multiplier search starts from the hint (pass ``0.0`` for
        "seeded path, no prior value") and each subsequent inner solve is
        seeded with its predecessor's multiplier.  Unlike ``initial_beta`` /
        ``initial_nu`` — which select the Newton root and can change which
        stationary point Algorithm 1 converges to — the hint is
        trajectory-preserving: every iterate matches the unhinted solve to
        the multiplier bisection's tolerance.
        """
        system = self.system
        config = self.config
        min_rate = np.maximum(np.asarray(min_rate_bps, dtype=float), 0.0)
        power = np.asarray(initial_power_w, dtype=float).copy()
        bandwidth = np.asarray(initial_bandwidth_hz, dtype=float).copy()

        if (initial_beta is None) != (initial_nu is None):
            raise ValueError("initial_beta and initial_nu must be given together")

        rates = self._rates(power, bandwidth)
        if initial_beta is not None:
            beta = np.asarray(initial_beta, dtype=float).copy()
            nu = np.asarray(initial_nu, dtype=float).copy()
            if beta.shape != power.shape or nu.shape != power.shape:
                raise ValueError(
                    "initial_beta/initial_nu must have one entry per device"
                )
            if np.any(~np.isfinite(beta)) or np.any(~np.isfinite(nu)) or np.any(nu <= 0.0):
                raise ValueError("initial_beta/initial_nu must be finite with nu > 0")
        else:
            beta = power * system.upload_bits / rates
            nu = self._scale / rates

        history = ConvergenceHistory()
        converged = False
        feasible = True
        residual_scale = float(
            np.linalg.norm(np.concatenate([power * system.upload_bits, np.full_like(power, self._scale)]))
        )
        residual_scale = max(residual_scale, 1e-12)

        last_multiplier = 0.0
        iteration = 0
        for iteration in range(1, config.max_iterations + 1):
            with stage("sp2_inner"):
                inner = self._solve_inner(
                    nu, beta, min_rate, power, bandwidth, mu_hint=mu_hint
                )
            if inner.bandwidth_multiplier > 0.0:
                last_multiplier = inner.bandwidth_multiplier
            if mu_hint is not None and inner.bandwidth_multiplier > 0.0:
                mu_hint = inner.bandwidth_multiplier
            new_power, new_bandwidth = inner.power_w, inner.bandwidth_hz
            feasible = inner.feasible
            new_rates = self._rates(new_power, new_bandwidth)

            residual = self._residual(beta, nu, new_power, new_rates)
            residual_norm = float(np.linalg.norm(residual))
            objective = self.energy_weight * system.global_rounds * float(
                np.sum(new_power * system.upload_bits / new_rates)
            )
            step_change = float(
                np.linalg.norm(new_power - power) / max(np.linalg.norm(power), 1e-30)
                + np.linalg.norm(new_bandwidth - bandwidth)
                / max(np.linalg.norm(bandwidth), 1e-30)
            )
            history.append(
                objective,
                residual=residual_norm,
                step_change=step_change,
                note=inner.method,
            )

            power, bandwidth = new_power, new_bandwidth
            if residual_norm <= config.residual_tol * residual_scale:
                converged = True
                break
            if iteration > 1 and step_change <= config.step_tol:
                converged = True
                break

            # Damped Newton-like update of (beta, nu) — steps 5-6 of Algorithm 1.
            alpha = np.concatenate([beta, nu])
            target_beta = power * system.upload_bits / new_rates
            target_nu = self._scale / new_rates
            direction = np.concatenate([target_beta - beta, target_nu - nu])

            def residual_of_alpha(a: np.ndarray) -> np.ndarray:
                half = a.shape[0] // 2
                return self._residual(a[:half], a[half:], power, new_rates)

            update = damped_newton_step(
                alpha,
                residual_of_alpha,
                direction,
                xi=config.damping_xi,
                eps=config.damping_eps,
            )
            half = update.alpha.shape[0] // 2
            beta, nu = update.alpha[:half], update.alpha[half:]

        return SumOfRatiosResult(
            power_w=power,
            bandwidth_hz=bandwidth,
            nu=nu,
            beta=beta,
            communication_energy_j=self.communication_energy(power, bandwidth),
            converged=converged,
            iterations=iteration,
            feasible=feasible,
            history=history,
            bandwidth_multiplier=last_multiplier,
        )


class _BatchLane:
    """Per-lane Algorithm-1 state of the lockstep batched solve.

    Replicates :meth:`SumOfRatiosSolver.solve` float-for-float, split into
    an initialisation (`__init__`), a fallback resolution for the batched
    inner solve (:meth:`resolve_inner`) and a per-iteration bookkeeping
    step (:meth:`step`), so :func:`solve_sum_of_ratios_rows` can drive many
    lanes in lockstep while each lane's trajectory stays bit-identical to a
    stand-alone ``solve`` call.  Keep the arithmetic in sync with ``solve``
    — the batched-parity suite holds the two to exact equality.
    """

    def __init__(
        self,
        solver: SumOfRatiosSolver,
        min_rate_bps: np.ndarray,
        initial_power_w: np.ndarray,
        initial_bandwidth_hz: np.ndarray,
    ) -> None:
        self.solver = solver
        self.system = solver.system
        self.config = solver.config
        self.min_rate = np.maximum(np.asarray(min_rate_bps, dtype=float), 0.0)
        self.power = np.asarray(initial_power_w, dtype=float).copy()
        self.bandwidth = np.asarray(initial_bandwidth_hz, dtype=float).copy()
        rates = solver._rates(self.power, self.bandwidth)
        self.beta = self.power * self.system.upload_bits / rates
        self.nu = solver._scale / rates
        self.history = ConvergenceHistory()
        self.converged = False
        self.feasible = True
        scale = float(
            np.linalg.norm(
                np.concatenate(
                    [
                        self.power * self.system.upload_bits,
                        np.full_like(self.power, solver._scale),
                    ]
                )
            )
        )
        self.residual_scale = max(scale, 1e-12)
        self.last_multiplier = 0.0
        self.iteration = 0

    def resolve_inner(self, attempt: SP2Result | Exception) -> SP2Result:
        """Apply :meth:`SumOfRatiosSolver._solve_inner`'s fallback ladder.

        ``attempt`` is this lane's outcome of the batched closed-form solve:
        either the :class:`SP2Result` or the exception the per-drop call
        would have raised.  Infeasible-or-failed attempts fall back to the
        numeric solver and, as a last resort, the incumbent point — the
        same ladder, per lane.
        """
        if isinstance(attempt, SP2Result):
            if attempt.feasible or not self.config.use_numeric_fallback:
                return attempt
        elif not self.config.use_numeric_fallback:
            raise attempt
        try:
            return solve_sp2_v2_numeric(
                self.system, self.nu, self.beta, self.min_rate
            )
        except (InfeasibleProblemError, SolverError):
            return SP2Result(
                power_w=self.power.copy(),
                bandwidth_hz=self.bandwidth.copy(),
                objective=sp2_objective(
                    self.system, self.nu, self.beta, self.power, self.bandwidth
                ),
                bandwidth_multiplier=0.0,
                rate_multipliers=np.zeros_like(self.power),
                feasible=True,
                method="incumbent",
            )

    def step(self, inner: SP2Result) -> bool:
        """One Algorithm-1 iteration given the resolved inner solve.

        Returns ``True`` while the lane should keep iterating; mirrors one
        pass of the ``solve`` loop body, including the convergence tests
        and the damped Newton update of ``(beta, nu)``.
        """
        system = self.system
        config = self.config
        solver = self.solver
        self.iteration += 1
        if inner.bandwidth_multiplier > 0.0:
            self.last_multiplier = inner.bandwidth_multiplier
        new_power, new_bandwidth = inner.power_w, inner.bandwidth_hz
        self.feasible = inner.feasible
        new_rates = solver._rates(new_power, new_bandwidth)

        residual = solver._residual(self.beta, self.nu, new_power, new_rates)
        residual_norm = float(np.linalg.norm(residual))
        objective = solver.energy_weight * system.global_rounds * float(
            np.sum(new_power * system.upload_bits / new_rates)
        )
        step_change = float(
            np.linalg.norm(new_power - self.power)
            / max(np.linalg.norm(self.power), 1e-30)
            + np.linalg.norm(new_bandwidth - self.bandwidth)
            / max(np.linalg.norm(self.bandwidth), 1e-30)
        )
        self.history.append(
            objective,
            residual=residual_norm,
            step_change=step_change,
            note=inner.method,
        )

        self.power, self.bandwidth = new_power, new_bandwidth
        if residual_norm <= config.residual_tol * self.residual_scale:
            self.converged = True
            return False
        if self.iteration > 1 and step_change <= config.step_tol:
            self.converged = True
            return False
        if self.iteration >= config.max_iterations:
            return False

        alpha = np.concatenate([self.beta, self.nu])
        target_beta = self.power * system.upload_bits / new_rates
        target_nu = solver._scale / new_rates
        direction = np.concatenate(
            [target_beta - self.beta, target_nu - self.nu]
        )
        power = self.power

        def residual_of_alpha(a: np.ndarray) -> np.ndarray:
            half = a.shape[0] // 2
            return solver._residual(a[:half], a[half:], power, new_rates)

        update = damped_newton_step(
            alpha,
            residual_of_alpha,
            direction,
            xi=config.damping_xi,
            eps=config.damping_eps,
        )
        half = update.alpha.shape[0] // 2
        self.beta, self.nu = update.alpha[:half], update.alpha[half:]
        return True

    def result(self) -> SumOfRatiosResult:
        return SumOfRatiosResult(
            power_w=self.power,
            bandwidth_hz=self.bandwidth,
            nu=self.nu,
            beta=self.beta,
            communication_energy_j=self.solver.communication_energy(
                self.power, self.bandwidth
            ),
            converged=self.converged,
            iterations=self.iteration,
            feasible=self.feasible,
            history=self.history,
            bandwidth_multiplier=self.last_multiplier,
        )


def solve_sum_of_ratios_rows(
    solvers: Sequence[SumOfRatiosSolver],
    min_rates: Sequence[np.ndarray],
    initial_powers: Sequence[np.ndarray],
    initial_bandwidths: Sequence[np.ndarray],
) -> list[SumOfRatiosResult | Exception]:
    """Lockstep batch of independent Algorithm-1 solves (vector backend).

    Lane ``i`` runs ``solvers[i].solve(min_rates[i], initial_powers[i],
    initial_bandwidths[i])`` in lockstep with its neighbours: each round,
    every active lane's SP2_v2 closed form is solved in one batched
    :func:`~repro.core.subproblem2.solve_sp2_v2_rows` call, then the
    per-lane bookkeeping (fallback ladder, residuals, convergence tests,
    damped Newton update) runs with the exact per-drop code.  Converged or
    failed lanes drop out of subsequent rounds; stragglers keep iterating.

    Results are bit-identical to the per-drop calls.  Exceptions a
    per-drop ``solve`` would raise (e.g. infeasible iterates) are returned
    in that lane's slot instead of raised, so one bad lane cannot abort
    the batch.  Intended for the vector backend, where warm hints are a
    no-op — lanes therefore need no hint threading.
    """
    num_lanes = len(solvers)
    results: list[SumOfRatiosResult | Exception] = [
        SolverError("lane not solved") for _ in range(num_lanes)
    ]
    lanes: dict[int, _BatchLane] = {}
    for i in range(num_lanes):
        try:
            lanes[i] = _BatchLane(
                solvers[i], min_rates[i], initial_powers[i], initial_bandwidths[i]
            )
        except InfeasibleProblemError as exc:
            results[i] = exc
    active = [i for i in lanes if lanes[i].config.max_iterations >= 1]
    while active:
        attempts = solve_sp2_v2_rows(
            [lanes[i].system for i in active],
            [lanes[i].nu for i in active],
            [lanes[i].beta for i in active],
            [lanes[i].min_rate for i in active],
        )
        still: list[int] = []
        for k, i in enumerate(active):
            lane = lanes[i]
            try:
                inner = lane.resolve_inner(attempts[k])
                if lane.step(inner):
                    still.append(i)
            except (InfeasibleProblemError, ConvergenceError) as exc:
                results[i] = exc
                lanes.pop(i)
        active = still
    for i, lane in lanes.items():
        try:
            results[i] = lane.result()
        except InfeasibleProblemError as exc:
            results[i] = exc
    return results
