"""Algorithm 1: the Newton-like sum-of-ratios solver for Subproblem 2.

Subproblem 2 minimises the total communication energy

    w1 R_g sum_n p_n d_n / G_n(p_n, B_n)

subject to the power box, the bandwidth budget and the per-device rate
requirements — an NP-hard sum-of-ratios problem.  Theorem 1 (after Jong's
parametric transformation) reduces it to finding auxiliary variables
``(beta, nu)`` such that the solution ``(p, B)`` of the subtractive problem
SP2_v2 satisfies

    phi_1,n = -p_n d_n + beta_n G_n = 0     and
    phi_2,n = -w1 R_g  + nu_n  G_n  = 0.

Algorithm 1 alternates (i) solving SP2_v2 for the current ``(beta, nu)`` and
(ii) a damped Newton update of ``(beta, nu)`` towards the exact ratios at
the new point.  Because the Jacobian of ``phi`` is ``diag(G_n)`` for both
blocks, the Newton direction is simply the difference between the exact
ratios and the current auxiliary values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConvergenceError, InfeasibleProblemError, SolverError
from ..perf.timers import stage
from ..solvers.newton import damped_newton_step
from ..system import SystemModel
from .convergence import ConvergenceHistory
from .subproblem2 import (
    DEFAULT_BACKEND,
    SP2Result,
    solve_sp2_v2,
    solve_sp2_v2_numeric,
    validate_backend,
)

__all__ = ["SumOfRatiosConfig", "SumOfRatiosResult", "SumOfRatiosSolver"]


@dataclass(frozen=True)
class SumOfRatiosConfig:
    """Hyper-parameters of Algorithm 1."""

    #: Maximum number of outer iterations (``i_0`` in the paper).
    max_iterations: int = 30
    #: Damping base ``xi`` of the Newton-like update, in (0, 1).
    damping_xi: float = 0.5
    #: Sufficient-decrease constant ``epsilon`` of condition (29), in (0, 1).
    damping_eps: float = 0.01
    #: Relative tolerance on the residual ``|phi(beta, nu)|``.
    residual_tol: float = 1e-6
    #: Relative tolerance on the change of ``(p, B)`` between iterations.
    step_tol: float = 1e-8
    #: Whether to fall back to the numeric SP2_v2 solver when the
    #: closed-form path fails or returns an infeasible point.
    use_numeric_fallback: bool = True
    #: SP2_v2 inner-solve backend: ``"vector"`` (batched array passes, the
    #: default) or ``"scalar"`` (probe-sequential reference oracle).  Both
    #: agree within solver tolerance; the parity tests enforce it.
    backend: str = DEFAULT_BACKEND


@dataclass(frozen=True)
class SumOfRatiosResult:
    """Outcome of Algorithm 1."""

    power_w: np.ndarray
    bandwidth_hz: np.ndarray
    nu: np.ndarray
    beta: np.ndarray
    communication_energy_j: float
    converged: bool
    iterations: int
    feasible: bool
    history: ConvergenceHistory = field(default_factory=ConvergenceHistory)
    #: Final bandwidth multiplier of the inner KKT solve (0 when the budget
    #: constraint was slack); a warm-start hint for nearby problems.
    bandwidth_multiplier: float = 0.0


class SumOfRatiosSolver:
    """Solver object binding a system, an energy weight and a configuration."""

    def __init__(
        self,
        system: SystemModel,
        energy_weight: float,
        config: SumOfRatiosConfig | None = None,
        *,
        backend: str | None = None,
    ) -> None:
        if energy_weight <= 0.0:
            raise ValueError(
                "Algorithm 1 requires a positive energy weight; with w1 = 0 the "
                "communication energy does not appear in the objective"
            )
        self.system = system
        self.energy_weight = float(energy_weight)
        self.config = config or SumOfRatiosConfig()
        #: SP2 backend actually used: an explicit ``backend`` argument
        #: overrides the configuration's.
        self.backend = validate_backend(backend or self.config.backend)

    # -- helpers -----------------------------------------------------------
    @property
    def _scale(self) -> float:
        """The constant ``w1 R_g`` multiplying every ratio."""
        return self.energy_weight * self.system.global_rounds

    def _rates(self, power: np.ndarray, bandwidth: np.ndarray) -> np.ndarray:
        rates = self.system.rates_bps(power, bandwidth)
        if np.any(rates <= 0.0):
            raise InfeasibleProblemError(
                "an iterate produced a zero uplink rate; the initial point must "
                "give every device positive power and bandwidth"
            )
        return rates

    def _solve_inner(
        self,
        nu: np.ndarray,
        beta: np.ndarray,
        min_rate_bps: np.ndarray,
        incumbent_power: np.ndarray,
        incumbent_bandwidth: np.ndarray,
        mu_hint: float | None = None,
    ) -> SP2Result:
        """Solve SP2_v2, falling back to the numeric solver and, as a last
        resort, to the (feasible) incumbent point."""
        from .subproblem2 import sp2_objective

        try:
            result = solve_sp2_v2(
                self.system,
                nu,
                beta,
                min_rate_bps,
                mu_hint=mu_hint,
                backend=self.backend,
            )
            if result.feasible or not self.config.use_numeric_fallback:
                return result
        except (InfeasibleProblemError, ConvergenceError):
            if not self.config.use_numeric_fallback:
                raise
        try:
            return solve_sp2_v2_numeric(self.system, nu, beta, min_rate_bps)
        except (InfeasibleProblemError, SolverError):
            # SolverError covers the numeric path's own failure modes (e.g.
            # an unbracketable budget multiplier); the incumbent is the
            # documented last resort either way, and the caller's monotone
            # objective guard keeps a bad step from being accepted.
            return SP2Result(
                power_w=incumbent_power.copy(),
                bandwidth_hz=incumbent_bandwidth.copy(),
                objective=sp2_objective(
                    self.system, nu, beta, incumbent_power, incumbent_bandwidth
                ),
                bandwidth_multiplier=0.0,
                rate_multipliers=np.zeros_like(incumbent_power),
                feasible=True,
                method="incumbent",
            )

    def _residual(
        self,
        beta: np.ndarray,
        nu: np.ndarray,
        power: np.ndarray,
        rates: np.ndarray,
    ) -> np.ndarray:
        phi1 = -power * self.system.upload_bits + beta * rates
        phi2 = -self._scale + nu * rates
        return np.concatenate([phi1, phi2])

    def communication_energy(self, power: np.ndarray, bandwidth: np.ndarray) -> float:
        """Total transmission energy ``R_g sum p d / r`` of an allocation."""
        rates = self._rates(power, bandwidth)
        return self.system.global_rounds * float(
            np.sum(power * self.system.upload_bits / rates)
        )

    # -- main loop ---------------------------------------------------------
    def solve(
        self,
        min_rate_bps: np.ndarray,
        initial_power_w: np.ndarray,
        initial_bandwidth_hz: np.ndarray,
        *,
        initial_beta: np.ndarray | None = None,
        initial_nu: np.ndarray | None = None,
        mu_hint: float | None = None,
    ) -> SumOfRatiosResult:
        """Run Algorithm 1 from a feasible ``(p, B)`` starting point.

        ``initial_beta`` / ``initial_nu`` warm-start the auxiliary variables
        (both must be given together); by default they are derived from the
        initial point's exact ratios, which is the paper's initialisation.
        A warm pair from a nearby problem can save Newton iterations — the
        converged solution is the same root either way.

        ``mu_hint`` switches the inner KKT solve onto its seeded path: the
        bandwidth-multiplier search starts from the hint (pass ``0.0`` for
        "seeded path, no prior value") and each subsequent inner solve is
        seeded with its predecessor's multiplier.  Unlike ``initial_beta`` /
        ``initial_nu`` — which select the Newton root and can change which
        stationary point Algorithm 1 converges to — the hint is
        trajectory-preserving: every iterate matches the unhinted solve to
        the multiplier bisection's tolerance.
        """
        system = self.system
        config = self.config
        min_rate = np.maximum(np.asarray(min_rate_bps, dtype=float), 0.0)
        power = np.asarray(initial_power_w, dtype=float).copy()
        bandwidth = np.asarray(initial_bandwidth_hz, dtype=float).copy()

        if (initial_beta is None) != (initial_nu is None):
            raise ValueError("initial_beta and initial_nu must be given together")

        rates = self._rates(power, bandwidth)
        if initial_beta is not None:
            beta = np.asarray(initial_beta, dtype=float).copy()
            nu = np.asarray(initial_nu, dtype=float).copy()
            if beta.shape != power.shape or nu.shape != power.shape:
                raise ValueError(
                    "initial_beta/initial_nu must have one entry per device"
                )
            if np.any(~np.isfinite(beta)) or np.any(~np.isfinite(nu)) or np.any(nu <= 0.0):
                raise ValueError("initial_beta/initial_nu must be finite with nu > 0")
        else:
            beta = power * system.upload_bits / rates
            nu = self._scale / rates

        history = ConvergenceHistory()
        converged = False
        feasible = True
        residual_scale = float(
            np.linalg.norm(np.concatenate([power * system.upload_bits, np.full_like(power, self._scale)]))
        )
        residual_scale = max(residual_scale, 1e-12)

        last_multiplier = 0.0
        iteration = 0
        for iteration in range(1, config.max_iterations + 1):
            with stage("sp2_inner"):
                inner = self._solve_inner(
                    nu, beta, min_rate, power, bandwidth, mu_hint=mu_hint
                )
            if inner.bandwidth_multiplier > 0.0:
                last_multiplier = inner.bandwidth_multiplier
            if mu_hint is not None and inner.bandwidth_multiplier > 0.0:
                mu_hint = inner.bandwidth_multiplier
            new_power, new_bandwidth = inner.power_w, inner.bandwidth_hz
            feasible = inner.feasible
            new_rates = self._rates(new_power, new_bandwidth)

            residual = self._residual(beta, nu, new_power, new_rates)
            residual_norm = float(np.linalg.norm(residual))
            objective = self.energy_weight * system.global_rounds * float(
                np.sum(new_power * system.upload_bits / new_rates)
            )
            step_change = float(
                np.linalg.norm(new_power - power) / max(np.linalg.norm(power), 1e-30)
                + np.linalg.norm(new_bandwidth - bandwidth)
                / max(np.linalg.norm(bandwidth), 1e-30)
            )
            history.append(
                objective,
                residual=residual_norm,
                step_change=step_change,
                note=inner.method,
            )

            power, bandwidth = new_power, new_bandwidth
            if residual_norm <= config.residual_tol * residual_scale:
                converged = True
                break
            if iteration > 1 and step_change <= config.step_tol:
                converged = True
                break

            # Damped Newton-like update of (beta, nu) — steps 5-6 of Algorithm 1.
            alpha = np.concatenate([beta, nu])
            target_beta = power * system.upload_bits / new_rates
            target_nu = self._scale / new_rates
            direction = np.concatenate([target_beta - beta, target_nu - nu])

            def residual_of_alpha(a: np.ndarray) -> np.ndarray:
                half = a.shape[0] // 2
                return self._residual(a[:half], a[half:], power, new_rates)

            update = damped_newton_step(
                alpha,
                residual_of_alpha,
                direction,
                xi=config.damping_xi,
                eps=config.damping_eps,
            )
            half = update.alpha.shape[0] // 2
            beta, nu = update.alpha[:half], update.alpha[half:]

        return SumOfRatiosResult(
            power_w=power,
            bandwidth_hz=bandwidth,
            nu=nu,
            beta=beta,
            communication_energy_j=self.communication_energy(power, bandwidth),
            converged=converged,
            iterations=iteration,
            feasible=feasible,
            history=history,
            bandwidth_multiplier=last_multiplier,
        )
