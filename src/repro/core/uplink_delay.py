"""Bandwidth allocation minimising the slowest upload.

This is the communication half of the delay-minimisation problem studied in
[14] (the subroutine the paper's Scheme-1 baseline builds on) and the
natural choice for the proposed algorithm when the energy weight is zero:
with ``w1 = 0`` the communication energy does not matter, so every device
transmits at maximum power and the bandwidth is split so that the slowest
upload is as fast as possible.

The minimal achievable value ``t*`` of ``max_n d_n / r_n(p_max, B_n)`` is
found by bisection: for a candidate ``t`` each device needs the bandwidth
``B_n(t)`` that achieves rate ``d_n / t`` at maximum power (a monotone
quantity computed by :func:`repro.wireless.rate.min_bandwidth_for_rate`),
and ``t`` is feasible iff ``sum_n B_n(t) <= B``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConvergenceError, InfeasibleProblemError
from ..system import SystemModel
from ..wireless.rate import min_bandwidth_for_rate

__all__ = ["UploadTimeAllocation", "minimize_max_upload_time"]


@dataclass(frozen=True)
class UploadTimeAllocation:
    """Result of the min-max upload-time allocation."""

    power_w: np.ndarray
    bandwidth_hz: np.ndarray
    max_upload_time_s: float


def minimize_max_upload_time(
    system: SystemModel,
    *,
    power_w: np.ndarray | None = None,
    tol: float = 1e-9,
    max_iter: int = 100,
) -> UploadTimeAllocation:
    """Minimise the slowest upload time by splitting the bandwidth budget.

    Parameters
    ----------
    power_w:
        Transmit powers to use (defaults to every device's maximum).
    """
    power = system.max_power_w.copy() if power_w is None else np.asarray(power_w, dtype=float)
    if np.any(power <= 0.0):
        raise InfeasibleProblemError("transmit power must be positive to upload at all")
    gains = system.gains
    noise = system.noise_psd_w_per_hz
    bits = system.upload_bits
    budget = system.total_bandwidth_hz

    if not np.any(bits > 0.0):
        # Degenerate fleet with nothing to upload: every split achieves the
        # optimal (zero) upload time; return the equal split.
        return UploadTimeAllocation(
            power_w=power,
            bandwidth_hz=np.full(system.num_devices, budget / system.num_devices),
            max_upload_time_s=0.0,
        )

    def bandwidth_needed(t: float) -> np.ndarray:
        return min_bandwidth_for_rate(
            bits / t, power, gains, noise, bandwidth_cap_hz=budget
        )

    # Upper bound: the equal split is always feasible for its own max time.
    equal = np.full(system.num_devices, budget / system.num_devices)
    t_hi = float(np.max(system.upload_bits / np.maximum(
        system.rates_bps(power, equal), 1e-300
    )))
    needed_hi = bandwidth_needed(t_hi)
    if np.any(~np.isfinite(needed_hi)) or needed_hi.sum() > budget * (1 + 1e-9):
        # The equal-split time should always be feasible; guard against
        # numerical corner cases by growing the bound.
        for _ in range(100):
            t_hi *= 2.0
            needed_hi = bandwidth_needed(t_hi)
            if np.all(np.isfinite(needed_hi)) and needed_hi.sum() <= budget:
                break
        else:
            raise InfeasibleProblemError("could not find a feasible upload schedule")

    # Lower bound: even giving the whole band to the slowest single device
    # cannot beat its solo upload time.
    solo_rates = system.rates_bps(power, np.full(system.num_devices, budget))
    t_lo = float(np.max(bits / solo_rates))

    for _ in range(max_iter):
        t_mid = 0.5 * (t_lo + t_hi)
        needed = bandwidth_needed(t_mid)
        if np.all(np.isfinite(needed)) and needed.sum() <= budget:
            t_hi = t_mid
        else:
            t_lo = t_mid
        if t_hi - t_lo <= tol * max(1.0, t_mid):
            break
    else:
        raise ConvergenceError(
            f"min-max upload-time bisection did not converge in {max_iter} "
            f"steps: time bracket [{t_lo:.6g}, {t_hi:.6g}] is still wider "
            f"than tol={tol:.3g}"
        )

    bandwidth = bandwidth_needed(t_hi)
    # Hand out any numerically unassigned slack proportionally (it can only
    # reduce upload times further).  Devices with nothing to upload need no
    # bandwidth, so a fleet where only some devices upload keeps the slack
    # with the uploaders; an all-zero demand falls back to an equal split.
    slack = budget - bandwidth.sum()
    if slack > 0:
        total = bandwidth.sum()
        if total > 0.0:
            bandwidth = bandwidth + slack * bandwidth / total
        else:
            bandwidth = bandwidth + slack / system.num_devices
    rates = system.rates_bps(power, bandwidth)
    with np.errstate(divide="ignore", invalid="ignore"):
        upload_times = np.where(bits > 0.0, bits / rates, 0.0)
    return UploadTimeAllocation(
        power_w=power,
        bandwidth_hz=bandwidth,
        max_upload_time_s=float(np.max(upload_times)),
    )
