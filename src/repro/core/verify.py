"""KKT-residual certificates for the closed-form solver stack.

The solvers in this package are derived from KKT systems (Theorem 2 /
Appendix B for SP2_v2, problem (17) for Subproblem 1), so a candidate
solution can be *certified* without re-solving: evaluate the primal
feasibility residuals, the stationarity equations the closed forms were
derived from, and complementary slackness, and check that every residual is
round-off-small.  The tests use these certificates instead of ad-hoc
per-test tolerances, and the differential backend harness uses them to
prove both backends optimal rather than merely mutually consistent.

All residuals are **relative** magnitudes (scaled by the constraint's own
size), so one tolerance applies across scenario families whose powers,
bandwidths and rates span orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..solvers.kkt import box_constraint_violation, budget_violation
from ..system import SystemModel
from .allocation import ResourceAllocation
from .problem import JointProblem
from .subproblem1 import Subproblem1Result
from .subproblem2 import SP2Result

__all__ = ["KKTCertificate", "check_kkt", "check_primal", "check_sp1"]

_LN2 = np.log(2.0)

#: Default tolerance on every certificate residual.
DEFAULT_TOL = 1e-6


@dataclass(frozen=True)
class KKTCertificate:
    """Named relative residuals of a candidate solution's KKT system.

    ``residuals`` maps a residual name (``"power_box"``, ``"stationarity"``,
    ...) to its relative magnitude; :meth:`problems` renders every breach of
    a tolerance as a message, which is what the ``assert_kkt`` test fixture
    asserts empty.
    """

    residuals: Mapping[str, float]
    context: str = ""

    @property
    def max_residual(self) -> float:
        return max(self.residuals.values(), default=0.0)

    def problems(
        self, tol: float = DEFAULT_TOL, **overrides: float
    ) -> list[str]:
        """Messages for every residual above its tolerance (empty = pass).

        ``overrides`` loosens (or tightens) individual residuals by name,
        e.g. ``problems(stationarity=1e-4)``.  A non-finite residual always
        fails.
        """
        unknown = set(overrides) - set(self.residuals)
        if unknown:
            raise KeyError(
                f"unknown residual override(s) {sorted(unknown)}; "
                f"known: {sorted(self.residuals)}"
            )
        messages = []
        for name, value in sorted(self.residuals.items()):
            limit = overrides.get(name, tol)
            if not value <= limit:  # catches NaN/inf as well as breaches
                prefix = f"{self.context}: " if self.context else ""
                messages.append(
                    f"{prefix}{name} residual {value:.3e} exceeds {limit:.1e}"
                )
        return messages

    def ok(self, tol: float = DEFAULT_TOL, **overrides: float) -> bool:
        """Whether every residual is within tolerance."""
        return not self.problems(tol, **overrides)


def _relative_rate_violation(
    rates: np.ndarray, min_rate_bps: np.ndarray
) -> float:
    constrained = min_rate_bps > 0.0
    if not np.any(constrained):
        return 0.0
    shortfall = np.maximum(min_rate_bps[constrained] - rates[constrained], 0.0)
    return float(np.max(shortfall / min_rate_bps[constrained], initial=0.0))


def check_kkt(
    system: SystemModel,
    nu: np.ndarray,
    beta: np.ndarray,
    min_rate_bps: np.ndarray,
    result: SP2Result,
) -> KKTCertificate:
    """Certify an SP2_v2 solution against its KKT system (Theorem 2).

    Primal residuals (always checked):

    * ``power_box`` / ``bandwidth_sign`` — the box constraints;
    * ``bandwidth_budget`` — ``sum B_n <= B``;
    * ``min_rate`` — ``G_n(p_n, B_n) >= r_min_n``.

    Dual residuals (checked on the devices where the closed form is exact —
    positive bandwidth, power strictly inside its box, not repaired onto
    the rate boundary):

    * ``stationarity`` — the power stationarity ``x_n = a_n g_n /
      (nu_n d_n N0 ln 2)`` with ``a_n = nu_n beta_n + tau_n``, plus (for
      the closed-form method's rate-active devices) the multiplier
      equation ``j_n (x_n ln x_n - x_n + 1) = mu``;
    * ``complementary_slackness`` — ``tau_n > 0`` forces the rate to its
      bound.

    Clipped or repaired devices trade stationarity for their box/rate
    multipliers, which the result does not expose, so they are excluded
    from the dual residuals — their primal residuals still apply.
    """
    power = np.asarray(result.power_w, dtype=float)
    bandwidth = np.asarray(result.bandwidth_hz, dtype=float)
    nu = np.maximum(np.asarray(nu, dtype=float), 1e-300)
    beta = np.maximum(np.asarray(beta, dtype=float), 0.0)
    rmin = np.maximum(np.asarray(min_rate_bps, dtype=float), 0.0)
    tau = np.asarray(result.rate_multipliers, dtype=float)
    mu = float(result.bandwidth_multiplier)

    gains = system.gains
    bits = system.upload_bits
    noise = system.noise_psd_w_per_hz
    rates = system.rates_bps(power, bandwidth)

    residuals: dict[str, float] = {
        "power_box": box_constraint_violation(
            power, system.min_power_w, system.max_power_w
        ),
        "bandwidth_sign": float(
            np.max(-bandwidth / system.total_bandwidth_hz, initial=0.0)
        ),
        "bandwidth_budget": budget_violation(bandwidth, system.total_bandwidth_hz),
        "min_rate": _relative_rate_violation(rates, rmin),
    }

    # Devices where the interior stationarity conditions apply verbatim.
    margin = 1e-9
    interior = (
        (bandwidth > 1e-9 * system.total_bandwidth_hz)
        & (power > system.min_power_w * (1.0 + margin))
        & (power < system.max_power_w * (1.0 - margin))
    )
    # The rate-repair step moves rate-short devices onto the rate boundary,
    # replacing stationarity by the rate multiplier; treat every device
    # within round-off of its rate bound as boundary, not interior.
    rate_bound = (rmin > 0.0) & (rates <= rmin * (1.0 + 1e-6))

    stationarity = 0.0
    slackness = 0.0
    eligible = interior & ~rate_bound
    if np.any(eligible):
        x = 1.0 + power[eligible] * gains[eligible] / (
            noise * np.maximum(bandwidth[eligible], 1e-300)
        )
        a = nu[eligible] * beta[eligible] + np.maximum(tau[eligible], 0.0)
        x_expected = a * gains[eligible] / (nu[eligible] * bits[eligible] * noise * _LN2)
        stationarity = float(np.max(np.abs(x - x_expected) / np.maximum(x, 1.0)))
    if result.method == "kkt" and mu > 0.0:
        active = interior & (tau > 0.0)
        if np.any(active):
            x = 1.0 + power[active] * gains[active] / (
                noise * np.maximum(bandwidth[active], 1e-300)
            )
            j = nu[active] * bits[active] * noise / gains[active]
            lhs = j * (x * np.log(x) - x + 1.0)
            stationarity = max(
                stationarity,
                float(np.max(np.abs(lhs - mu) / max(mu, float(np.max(j))))),
            )
            # tau_n > 0 must pin the rate to its requirement.
            slackness = float(
                np.max(
                    np.abs(rates[active] - rmin[active])
                    / np.maximum(rmin[active], 1e-300)
                )
            )
    residuals["stationarity"] = stationarity
    residuals["complementary_slackness"] = slackness

    return KKTCertificate(
        residuals=residuals, context=f"SP2_v2[{result.method}]"
    )


def check_sp1(
    system: SystemModel,
    upload_time_s: np.ndarray,
    result: Subproblem1Result,
) -> KKTCertificate:
    """Certify a Subproblem-1 schedule against its optimality structure.

    * ``frequency_box`` — every frequency inside ``[f_min, f_max]``;
    * ``deadline_cover`` — every device finishes its round inside the
      reported deadline;
    * ``stationarity`` — for a fixed deadline the computation energy is
      increasing in ``f``, so the optimal frequency is the slowest feasible
      one: ``f_n = clip(C_n / (T - T^up_n), f_min, f_max)``.
    """
    upload = np.asarray(upload_time_s, dtype=float)
    frequency = np.asarray(result.frequency_hz, dtype=float)
    deadline = float(result.round_deadline_s)
    slack = np.maximum(deadline - upload, 1e-300)
    slowest_feasible = np.clip(
        system.cycles_per_round / slack,
        system.min_frequency_hz,
        system.max_frequency_hz,
    )
    round_time = upload + system.cycles_per_round / frequency
    return KKTCertificate(
        residuals={
            "frequency_box": box_constraint_violation(
                frequency, system.min_frequency_hz, system.max_frequency_hz
            ),
            "deadline_cover": float(
                np.max(np.maximum(round_time - deadline, 0.0) / deadline, initial=0.0)
            ),
            "stationarity": float(
                np.max(np.abs(frequency - slowest_feasible) / slowest_feasible)
            ),
        },
        context=f"SP1[{result.method}]",
    )


def check_primal(
    problem: JointProblem, allocation: ResourceAllocation
) -> KKTCertificate:
    """Certify an allocation's primal feasibility for problem (9).

    Wraps :meth:`JointProblem.feasibility` into the same certificate type
    the SP2 checker produces, so allocator-level tests assert feasibility
    through the one ``assert_kkt`` fixture instead of ad-hoc comparisons.
    """
    report = problem.feasibility(allocation)
    return KKTCertificate(
        residuals={
            "power_box": report.power_violation,
            "frequency_box": report.frequency_violation,
            "bandwidth_budget": report.bandwidth_violation,
            "deadline": report.deadline_violation,
        },
        context="JointProblem",
    )
