"""Device substrate: CPU, radio and battery models plus fleet generation.

The paper's per-device quantities (equations (2)-(7)) are all simple
analytical models of the device hardware: the CPU burns
``kappa * c_n * D_n * f_n^2`` joules per local iteration and takes
``c_n * D_n / f_n`` seconds; the radio burns ``p_n * d_n / r_n`` joules per
upload.  This package implements those models, per-device parameter
profiles, and a generator of heterogeneous device fleets matching
Section VII-A.
"""

from .battery import Battery, BatteryDrainedError
from .cpu import CpuModel
from .fleet import (
    DEVICE_CLASSES,
    DeviceClass,
    DeviceFleet,
    device_classes,
    generate_fleet,
    generate_mixed_fleet,
)
from .profiles import DeviceProfile
from .radio import RadioModel

__all__ = [
    "Battery",
    "BatteryDrainedError",
    "CpuModel",
    "DeviceClass",
    "DEVICE_CLASSES",
    "device_classes",
    "DeviceFleet",
    "generate_fleet",
    "generate_mixed_fleet",
    "DeviceProfile",
    "RadioModel",
]
