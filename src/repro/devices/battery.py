"""Simple battery bookkeeping for low-battery scenarios.

The paper motivates the energy weight ``w1`` with low-battery devices; the
:class:`Battery` class lets examples and the FL simulator track how much of
a device's budget the chosen allocation actually consumes over ``R_g``
rounds, and fail loudly when a device would die mid-training.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ReproError

__all__ = ["Battery", "BatteryDrainedError"]


class BatteryDrainedError(ReproError):
    """Raised when an energy draw exceeds the remaining battery charge."""


@dataclass
class Battery:
    """Energy reservoir with draw tracking.

    ``charge_j`` is an optional pre-init sentinel: ``None`` (the default)
    means "full", and ``__post_init__`` resolves it to ``capacity_j`` — so
    after construction the attribute is always a plain ``float``.
    """

    capacity_j: float
    charge_j: float | None = None
    drawn_j: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_j <= 0.0:
            raise ValueError("battery capacity must be positive")
        if self.charge_j is None:
            self.charge_j = self.capacity_j
        if not 0.0 <= self.charge_j <= self.capacity_j:
            raise ValueError("charge must lie in [0, capacity]")

    @property
    def state_of_charge(self) -> float:
        """Remaining fraction of the full capacity, in [0, 1]."""
        return self.charge_j / self.capacity_j

    def can_supply(self, energy_j: float) -> bool:
        """Whether a draw of ``energy_j`` is possible without going negative."""
        return energy_j <= self.charge_j + 1e-12

    def draw(self, energy_j: float) -> float:
        """Consume ``energy_j`` joules; returns the remaining charge.

        Raises :class:`BatteryDrainedError` if the draw exceeds the charge.
        """
        if energy_j < 0.0:
            raise ValueError("energy draw must be non-negative")
        if not self.can_supply(energy_j):
            raise BatteryDrainedError(
                f"draw of {energy_j:.3f} J exceeds remaining charge {self.charge_j:.3f} J"
            )
        self.charge_j -= energy_j
        self.drawn_j += energy_j
        return self.charge_j

    def recharge(self, energy_j: float | None = None) -> None:
        """Recharge by ``energy_j`` joules (fully if omitted)."""
        if energy_j is None:
            self.charge_j = self.capacity_j
            return
        if energy_j < 0.0:
            raise ValueError("recharge energy must be non-negative")
        self.charge_j = min(self.capacity_j, self.charge_j + energy_j)

    def rounds_supported(self, energy_per_round_j: float) -> int:
        """How many FL rounds the current charge can sustain."""
        if energy_per_round_j <= 0.0:
            raise ValueError("energy_per_round_j must be positive")
        return int(self.charge_j // energy_per_round_j)
