"""CPU computation time and energy (equations (4), (5) and (7))."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants
from ..exceptions import ConfigurationError

__all__ = ["CpuModel"]


@dataclass(frozen=True)
class CpuModel:
    """Dynamic-voltage-frequency-scaling CPU energy/latency model.

    One local iteration over ``D_n`` samples costs ``c_n D_n`` cycles, takes
    ``c_n D_n / f`` seconds, and burns ``kappa c_n D_n f^2`` joules (the
    energy per cycle at frequency ``f`` is ``kappa f^2``).
    """

    effective_capacitance: float = constants.EFFECTIVE_CAPACITANCE

    def __post_init__(self) -> None:
        if self.effective_capacitance <= 0.0:
            raise ConfigurationError("effective_capacitance must be positive")

    def iteration_time_s(
        self,
        cycles_per_sample: np.ndarray | float,
        num_samples: np.ndarray | float,
        frequency_hz: np.ndarray | float,
    ) -> np.ndarray:
        """Wall-clock seconds of one local iteration: ``c D / f``."""
        c = np.asarray(cycles_per_sample, dtype=float)
        d = np.asarray(num_samples, dtype=float)
        f = np.asarray(frequency_hz, dtype=float)
        if np.any(f <= 0.0):
            raise ValueError("CPU frequency must be strictly positive")
        return c * d / f

    def iteration_energy_j(
        self,
        cycles_per_sample: np.ndarray | float,
        num_samples: np.ndarray | float,
        frequency_hz: np.ndarray | float,
    ) -> np.ndarray:
        """Energy (J) of one local iteration: ``kappa c D f^2`` (eq. (4))."""
        c = np.asarray(cycles_per_sample, dtype=float)
        d = np.asarray(num_samples, dtype=float)
        f = np.asarray(frequency_hz, dtype=float)
        return self.effective_capacitance * c * d * f**2

    def round_time_s(
        self,
        cycles_per_sample: np.ndarray | float,
        num_samples: np.ndarray | float,
        frequency_hz: np.ndarray | float,
        local_iterations: int,
    ) -> np.ndarray:
        """Computation time of one global round (eq. (7)): ``R_l c D / f``."""
        return local_iterations * self.iteration_time_s(
            cycles_per_sample, num_samples, frequency_hz
        )

    def round_energy_j(
        self,
        cycles_per_sample: np.ndarray | float,
        num_samples: np.ndarray | float,
        frequency_hz: np.ndarray | float,
        local_iterations: int,
    ) -> np.ndarray:
        """Computation energy of one global round (eq. (5)): ``kappa R_l c D f^2``."""
        return local_iterations * self.iteration_energy_j(
            cycles_per_sample, num_samples, frequency_hz
        )

    def frequency_for_deadline(
        self,
        cycles_per_sample: np.ndarray | float,
        num_samples: np.ndarray | float,
        local_iterations: int,
        deadline_s: np.ndarray | float,
    ) -> np.ndarray:
        """Smallest frequency finishing ``local_iterations`` within ``deadline_s``.

        Entries with a non-positive deadline are returned as ``np.inf``
        (no finite frequency can meet them).
        """
        c = np.asarray(cycles_per_sample, dtype=float)
        d = np.asarray(num_samples, dtype=float)
        t = np.asarray(deadline_s, dtype=float)
        c, d, t = np.broadcast_arrays(c, d, np.asarray(t, dtype=float))
        freq = np.full(t.shape, np.inf)
        ok = t > 0.0
        freq[ok] = local_iterations * c[ok] * d[ok] / t[ok]
        if freq.ndim == 0:
            return freq[()]
        return freq
