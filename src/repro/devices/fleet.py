"""Fleet generation: a heterogeneous set of device profiles.

Section VII-A draws the per-sample CPU requirement ``c_n`` uniformly from
``[1, 3] * 1e4`` cycles and gives every device 500 samples; Fig. 4 instead
splits a fixed total of 25 000 samples equally.  :func:`generate_fleet`
covers both, plus optional heterogeneity in dataset sizes for the FL
simulator examples.

Beyond the paper's homogeneous table, :func:`generate_mixed_fleet` draws
each device from a :class:`DeviceClass` mix (phone / laptop / IoT by
default), scaling the Section VII-A baseline per class — the substrate of
the ``hetero-fleet`` scenario family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from .. import constants
from ..exceptions import ConfigurationError
from .profiles import DeviceProfile

__all__ = [
    "DeviceFleet",
    "generate_fleet",
    "DeviceClass",
    "DEVICE_CLASSES",
    "device_classes",
    "generate_mixed_fleet",
]


@dataclass(frozen=True)
class DeviceFleet:
    """An ordered collection of :class:`DeviceProfile` with array views.

    The optimizer consumes numpy arrays; the FL simulator and examples
    prefer per-device objects.  This class provides both views over the same
    data.
    """

    profiles: tuple[DeviceProfile, ...]

    def __post_init__(self) -> None:
        if not self.profiles:
            raise ConfigurationError("a fleet needs at least one device")
        object.__setattr__(self, "profiles", tuple(self.profiles))

    def __len__(self) -> int:
        return len(self.profiles)

    def __iter__(self) -> Iterator[DeviceProfile]:
        return iter(self.profiles)

    def __getitem__(self, index: int) -> DeviceProfile:
        return self.profiles[index]

    @property
    def num_devices(self) -> int:
        return len(self.profiles)

    # -- array views ------------------------------------------------------
    @property
    def cycles_per_sample(self) -> np.ndarray:
        return np.array([p.cycles_per_sample for p in self.profiles], dtype=float)

    @property
    def num_samples(self) -> np.ndarray:
        return np.array([p.num_samples for p in self.profiles], dtype=float)

    @property
    def upload_bits(self) -> np.ndarray:
        return np.array([p.upload_bits for p in self.profiles], dtype=float)

    @property
    def min_frequency_hz(self) -> np.ndarray:
        return np.array([p.min_frequency_hz for p in self.profiles], dtype=float)

    @property
    def max_frequency_hz(self) -> np.ndarray:
        return np.array([p.max_frequency_hz for p in self.profiles], dtype=float)

    @property
    def min_power_w(self) -> np.ndarray:
        return np.array([p.min_power_w for p in self.profiles], dtype=float)

    @property
    def max_power_w(self) -> np.ndarray:
        return np.array([p.max_power_w for p in self.profiles], dtype=float)

    @property
    def effective_capacitance(self) -> np.ndarray:
        return np.array([p.effective_capacitance for p in self.profiles], dtype=float)

    @property
    def total_samples(self) -> int:
        return int(self.num_samples.sum())

    def sample_fractions(self) -> np.ndarray:
        """FedAvg aggregation weights ``D_n / D``."""
        samples = self.num_samples
        return samples / samples.sum()

    # -- transformations --------------------------------------------------
    def with_max_power_w(self, max_power_w: float) -> "DeviceFleet":
        """Fleet copy with every device's maximum transmit power replaced."""
        return DeviceFleet(
            tuple(
                p.with_power_range(min(p.min_power_w, max_power_w), max_power_w)
                for p in self.profiles
            )
        )

    def with_max_frequency_hz(self, max_frequency_hz: float) -> "DeviceFleet":
        """Fleet copy with every device's maximum CPU frequency replaced."""
        return DeviceFleet(
            tuple(
                p.with_frequency_range(
                    min(p.min_frequency_hz, max_frequency_hz), max_frequency_hz
                )
                for p in self.profiles
            )
        )

    def with_samples_per_device(self, num_samples: int) -> "DeviceFleet":
        """Fleet copy with every device's dataset size replaced."""
        return DeviceFleet(tuple(p.with_samples(num_samples) for p in self.profiles))

    def subset(self, indices: Sequence[int]) -> "DeviceFleet":
        """Fleet restricted to the given device indices."""
        return DeviceFleet(tuple(self.profiles[i] for i in indices))


def generate_fleet(
    num_devices: int = constants.DEFAULT_NUM_DEVICES,
    *,
    rng: np.random.Generator | int | None = None,
    samples_per_device: int | None = constants.DEFAULT_SAMPLES_PER_DEVICE,
    total_samples: int | None = None,
    upload_bits: float = constants.DEFAULT_UPLOAD_BITS,
    cycles_range: tuple[float, float] = constants.CPU_CYCLES_PER_SAMPLE_RANGE,
    min_frequency_hz: float = constants.DEFAULT_MIN_FREQUENCY_HZ,
    max_frequency_hz: float = constants.DEFAULT_MAX_FREQUENCY_HZ,
    min_power_w: float = constants.DEFAULT_MIN_POWER_W,
    max_power_w: float = constants.DEFAULT_MAX_POWER_W,
    effective_capacitance: float = constants.EFFECTIVE_CAPACITANCE,
    sample_imbalance: float = 0.0,
) -> DeviceFleet:
    """Generate a heterogeneous fleet matching Section VII-A.

    Parameters
    ----------
    samples_per_device:
        Samples on every device (the default 500).  Ignored when
        ``total_samples`` is given.
    total_samples:
        If given, distribute this many samples across the fleet (equally when
        ``sample_imbalance`` is 0, Dirichlet-skewed otherwise) — the setting
        of Fig. 4.
    sample_imbalance:
        0 gives equal datasets; larger values skew the dataset sizes using a
        Dirichlet distribution with concentration ``1 / sample_imbalance``.
    """
    if num_devices <= 0:
        raise ConfigurationError("num_devices must be positive")
    if cycles_range[0] <= 0.0 or cycles_range[1] < cycles_range[0]:
        raise ConfigurationError("cycles_range must be positive and ordered")
    if sample_imbalance < 0.0:
        raise ConfigurationError("sample_imbalance must be non-negative")
    generator = np.random.default_rng(rng)
    cycles = generator.uniform(cycles_range[0], cycles_range[1], size=num_devices)

    if total_samples is not None:
        if total_samples < num_devices:
            raise ConfigurationError("total_samples must be at least num_devices")
        if sample_imbalance == 0.0:
            samples = np.full(num_devices, total_samples // num_devices, dtype=int)
            samples[: total_samples % num_devices] += 1
        else:
            concentration = 1.0 / sample_imbalance
            shares = generator.dirichlet(np.full(num_devices, concentration))
            samples = np.maximum((shares * total_samples).astype(int), 1)
    else:
        if samples_per_device is None or samples_per_device <= 0:
            raise ConfigurationError("samples_per_device must be positive")
        samples = np.full(num_devices, int(samples_per_device), dtype=int)

    profiles = tuple(
        DeviceProfile(
            cycles_per_sample=float(cycles[i]),
            num_samples=int(samples[i]),
            upload_bits=upload_bits,
            min_frequency_hz=min_frequency_hz,
            max_frequency_hz=max_frequency_hz,
            min_power_w=min_power_w,
            max_power_w=max_power_w,
            effective_capacitance=effective_capacitance,
            name=f"device-{i:03d}",
        )
        for i in range(num_devices)
    )
    return DeviceFleet(profiles)


@dataclass(frozen=True)
class DeviceClass:
    """One hardware class of a mixed fleet, as scalings of the paper table.

    Every factor multiplies the corresponding Section VII-A baseline value,
    so a class mix stays meaningful under the experiments' parameter sweeps
    (sweeping ``p_max`` rescales every class's power budget together).
    """

    name: str
    cycles_scale: float = 1.0
    frequency_scale: float = 1.0
    power_scale: float = 1.0
    samples_scale: float = 1.0
    capacitance_scale: float = 1.0

    def __post_init__(self) -> None:
        for label in ("cycles_scale", "frequency_scale", "power_scale",
                      "samples_scale", "capacitance_scale"):
            if getattr(self, label) <= 0.0:
                raise ConfigurationError(f"{label} must be positive")


#: Built-in device classes for heterogeneous fleets.
DEVICE_CLASSES: dict[str, DeviceClass] = {
    # The paper's device table, unscaled.
    "phone": DeviceClass(name="phone"),
    # Mains-adjacent laptops: faster CPUs, stronger radios, bigger datasets.
    "laptop": DeviceClass(
        name="laptop",
        frequency_scale=2.0,
        power_scale=1.5,
        samples_scale=2.0,
    ),
    # Battery-class IoT sensors: slow CPUs, weak radios, small datasets,
    # but simpler per-sample models.
    "iot": DeviceClass(
        name="iot",
        cycles_scale=0.6,
        frequency_scale=0.25,
        power_scale=0.5,
        samples_scale=0.3,
    ),
}


def device_classes() -> tuple[str, ...]:
    """The built-in device-class names."""
    return tuple(sorted(DEVICE_CLASSES))


def generate_mixed_fleet(
    num_devices: int = constants.DEFAULT_NUM_DEVICES,
    class_shares: Mapping[str, float] | None = None,
    *,
    rng: np.random.Generator | int | None = None,
    samples_per_device: int | None = constants.DEFAULT_SAMPLES_PER_DEVICE,
    upload_bits: float = constants.DEFAULT_UPLOAD_BITS,
    cycles_range: tuple[float, float] = constants.CPU_CYCLES_PER_SAMPLE_RANGE,
    min_frequency_hz: float = constants.DEFAULT_MIN_FREQUENCY_HZ,
    max_frequency_hz: float = constants.DEFAULT_MAX_FREQUENCY_HZ,
    min_power_w: float = constants.DEFAULT_MIN_POWER_W,
    max_power_w: float = constants.DEFAULT_MAX_POWER_W,
    effective_capacitance: float = constants.EFFECTIVE_CAPACITANCE,
) -> DeviceFleet:
    """Generate a fleet whose devices are drawn from a device-class mix.

    ``class_shares`` maps class names (keys of :data:`DEVICE_CLASSES`) to
    non-negative weights; the class of each device is drawn independently
    with those probabilities (weights are normalised).  The remaining
    keyword arguments set the *baseline* the class factors scale — they are
    the same knobs as :func:`generate_fleet`, so experiment sweeps apply
    uniformly across classes.
    """
    if num_devices <= 0:
        raise ConfigurationError("num_devices must be positive")
    if samples_per_device is None or samples_per_device <= 0:
        raise ConfigurationError("samples_per_device must be positive")
    if class_shares is None:
        class_shares = {"phone": 0.5, "laptop": 0.2, "iot": 0.3}
    shares = dict(class_shares)
    if not shares:
        raise ConfigurationError("class_shares must name at least one class")
    unknown = sorted(set(shares) - set(DEVICE_CLASSES))
    if unknown:
        known = ", ".join(device_classes())
        raise ConfigurationError(
            f"unknown device class(es) {', '.join(map(repr, unknown))}; known: {known}"
        )
    names = sorted(shares)
    weights = np.array([float(shares[name]) for name in names])
    if np.any(weights < 0.0) or weights.sum() <= 0.0:
        raise ConfigurationError("class shares must be non-negative and sum > 0")
    weights = weights / weights.sum()

    generator = np.random.default_rng(rng)
    assignments = generator.choice(len(names), size=num_devices, p=weights)
    cycles = generator.uniform(cycles_range[0], cycles_range[1], size=num_devices)

    profiles = []
    for i in range(num_devices):
        cls = DEVICE_CLASSES[names[assignments[i]]]
        profiles.append(
            DeviceProfile(
                cycles_per_sample=float(cycles[i]) * cls.cycles_scale,
                num_samples=max(1, int(round(samples_per_device * cls.samples_scale))),
                upload_bits=upload_bits,
                min_frequency_hz=min_frequency_hz * cls.frequency_scale,
                max_frequency_hz=max_frequency_hz * cls.frequency_scale,
                min_power_w=min_power_w * cls.power_scale,
                max_power_w=max_power_w * cls.power_scale,
                effective_capacitance=effective_capacitance * cls.capacitance_scale,
                name=f"{cls.name}-{i:03d}",
            )
        )
    return DeviceFleet(tuple(profiles))
