"""Per-device hardware and workload profiles."""

from __future__ import annotations

from dataclasses import dataclass, replace

from .. import constants
from ..exceptions import ConfigurationError

__all__ = ["DeviceProfile"]


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of one participating device.

    Attributes mirror the per-device symbols of Table I in the paper:

    * ``cycles_per_sample`` — ``c_n``, CPU cycles needed per training sample;
    * ``num_samples`` — ``D_n``, local dataset size;
    * ``upload_bits`` — ``d_n``, size of one model upload in bits;
    * ``min_frequency_hz`` / ``max_frequency_hz`` — CPU frequency range;
    * ``min_power_w`` / ``max_power_w`` — transmit power range;
    * ``effective_capacitance`` — ``kappa`` of the CPU.
    """

    cycles_per_sample: float
    num_samples: int = constants.DEFAULT_SAMPLES_PER_DEVICE
    upload_bits: float = constants.DEFAULT_UPLOAD_BITS
    min_frequency_hz: float = constants.DEFAULT_MIN_FREQUENCY_HZ
    max_frequency_hz: float = constants.DEFAULT_MAX_FREQUENCY_HZ
    min_power_w: float = constants.DEFAULT_MIN_POWER_W
    max_power_w: float = constants.DEFAULT_MAX_POWER_W
    effective_capacitance: float = constants.EFFECTIVE_CAPACITANCE
    name: str = ""

    def __post_init__(self) -> None:
        if self.cycles_per_sample <= 0.0:
            raise ConfigurationError("cycles_per_sample must be positive")
        if self.num_samples <= 0:
            raise ConfigurationError("num_samples must be positive")
        if self.upload_bits < 0.0:
            raise ConfigurationError("upload_bits must be non-negative")
        if not 0.0 < self.min_frequency_hz <= self.max_frequency_hz:
            raise ConfigurationError(
                "frequencies must satisfy 0 < min_frequency_hz <= max_frequency_hz"
            )
        if not 0.0 <= self.min_power_w <= self.max_power_w:
            raise ConfigurationError(
                "powers must satisfy 0 <= min_power_w <= max_power_w"
            )
        if self.max_power_w <= 0.0:
            raise ConfigurationError("max_power_w must be positive")
        if self.effective_capacitance <= 0.0:
            raise ConfigurationError("effective_capacitance must be positive")

    @property
    def cycles_per_local_iteration(self) -> float:
        """Total CPU cycles of one local iteration: ``c_n * D_n``."""
        return self.cycles_per_sample * self.num_samples

    def with_samples(self, num_samples: int) -> "DeviceProfile":
        """Copy of this profile with a different dataset size."""
        return replace(self, num_samples=num_samples)

    def with_power_range(self, min_power_w: float, max_power_w: float) -> "DeviceProfile":
        """Copy of this profile with a different transmit-power range."""
        return replace(self, min_power_w=min_power_w, max_power_w=max_power_w)

    def with_frequency_range(
        self, min_frequency_hz: float, max_frequency_hz: float
    ) -> "DeviceProfile":
        """Copy of this profile with a different CPU frequency range."""
        return replace(
            self, min_frequency_hz=min_frequency_hz, max_frequency_hz=max_frequency_hz
        )
