"""Uplink radio time and energy (equations (2) and (3))."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..wireless.noise import NoiseModel
from ..wireless.rate import shannon_rate

__all__ = ["RadioModel"]


@dataclass(frozen=True)
class RadioModel:
    """Uplink transmission model over an FDMA sub-band.

    The transmission time of device ``n`` is ``T^up_n = d_n / r_n`` with the
    Shannon rate ``r_n`` of eq. (1), and the transmission energy is
    ``E^trans_n = p_n T^up_n`` (eqs. (2)-(3)).  The downlink is ignored, as
    in the paper, because the base station transmits at much higher power.
    """

    noise: NoiseModel = field(default_factory=NoiseModel)

    def rate_bps(
        self,
        power_w: np.ndarray | float,
        bandwidth_hz: np.ndarray | float,
        gain: np.ndarray | float,
    ) -> np.ndarray:
        """Achievable uplink rate (bit/s)."""
        return shannon_rate(power_w, bandwidth_hz, gain, self.noise.effective_psd_w_per_hz)

    def upload_time_s(
        self,
        upload_bits: np.ndarray | float,
        power_w: np.ndarray | float,
        bandwidth_hz: np.ndarray | float,
        gain: np.ndarray | float,
    ) -> np.ndarray:
        """Time (s) to upload ``upload_bits`` at the achievable rate.

        Devices with zero rate (e.g. zero bandwidth) get an infinite upload
        time, which keeps downstream feasibility checks honest.
        """
        bits = np.asarray(upload_bits, dtype=float)
        rate = self.rate_bps(power_w, bandwidth_hz, gain)
        bits, rate = np.broadcast_arrays(bits, rate)
        time = np.full(rate.shape, np.inf)
        ok = rate > 0.0
        time[ok] = bits[ok] / rate[ok]
        if time.ndim == 0:
            return time[()]
        return time

    def upload_energy_j(
        self,
        upload_bits: np.ndarray | float,
        power_w: np.ndarray | float,
        bandwidth_hz: np.ndarray | float,
        gain: np.ndarray | float,
    ) -> np.ndarray:
        """Energy (J) of one upload: ``p * d / r``."""
        p = np.asarray(power_w, dtype=float)
        time = self.upload_time_s(upload_bits, power_w, bandwidth_hz, gain)
        p, time = np.broadcast_arrays(p, time)
        # Guard the 0 * inf corner (zero power, zero bandwidth) explicitly.
        with np.errstate(invalid="ignore"):
            energy = np.where(p == 0.0, 0.0, p * time)
        if energy.ndim == 0:
            return energy[()]
        return energy
