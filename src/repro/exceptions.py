"""Exception hierarchy for the reproduction library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "InfeasibleProblemError",
    "SolverError",
    "ConvergenceError",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is inconsistent or out of its valid range."""


class InfeasibleProblemError(ReproError):
    """The optimization problem has no feasible point under the constraints."""


class SolverError(ReproError):
    """A numerical solver failed in a way that cannot be recovered from."""


class ConvergenceError(SolverError):
    """An iterative solver exhausted its iteration budget without converging."""
