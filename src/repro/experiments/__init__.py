"""Experiment runners that regenerate every figure of the paper's evaluation.

Each ``figN`` module exposes a config dataclass and a ``run_figN`` function
returning one or more :class:`~repro.experiments.results.ResultTable`.  The
default configurations are scaled down (fewer trials / grid points) so the
benchmark suite completes quickly; every config has a ``paper()``
constructor with the full Section VII-A settings.

See DESIGN.md for the experiment index (figure -> module -> bench target)
and EXPERIMENTS.md for the paper-versus-measured comparison.
"""

from ..scenarios import (
    ScenarioSpec,
    build_scenario_spec,
    register_scenario_family,
    scenario_families,
)
from .ablation import AblationConfig, run_ablation
from .base import (
    PAPER_WEIGHT_PAIRS,
    GridPoint,
    SweepConfig,
    average_metrics,
    baseline_tasks,
    proposed_tasks,
    run_sweep,
    solve_baseline,
    solve_proposed,
)
from .fig2 import Fig2Config, run_fig2
from .fig3 import Fig3Config, run_fig3
from .fig4 import Fig4Config, run_fig4
from .fig5 import Fig5Config, run_fig5
from .fig6 import Fig6Config, run_fig6
from .fig7 import Fig7Config, run_fig7
from .fig8 import Fig8Config, run_fig8
from .flcurve import FLCurveConfig, run_flcurve
from .plotting import ascii_line_plot
from .registry import EXPERIMENTS, get_experiment, run_experiment
from .results import ResultTable
from .runner import (
    SweepCache,
    SweepRunner,
    SweepStats,
    SweepTask,
    TaskOutcome,
    parse_shard,
    register_solver_kind,
    set_default_runner,
    task_hash,
    use_runner,
)
from .samples import SamplesConfig, run_samples_sweep

__all__ = [
    "PAPER_WEIGHT_PAIRS",
    "GridPoint",
    "SweepConfig",
    "SweepCache",
    "SweepRunner",
    "SweepStats",
    "SweepTask",
    "TaskOutcome",
    "average_metrics",
    "baseline_tasks",
    "proposed_tasks",
    "parse_shard",
    "register_solver_kind",
    "run_sweep",
    "set_default_runner",
    "solve_baseline",
    "solve_proposed",
    "task_hash",
    "use_runner",
    "ScenarioSpec",
    "build_scenario_spec",
    "register_scenario_family",
    "scenario_families",
    "Fig2Config",
    "run_fig2",
    "Fig3Config",
    "run_fig3",
    "Fig4Config",
    "run_fig4",
    "Fig5Config",
    "run_fig5",
    "Fig6Config",
    "run_fig6",
    "Fig7Config",
    "run_fig7",
    "Fig8Config",
    "run_fig8",
    "FLCurveConfig",
    "run_flcurve",
    "SamplesConfig",
    "run_samples_sweep",
    "AblationConfig",
    "run_ablation",
    "ascii_line_plot",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
    "ResultTable",
]
