"""Ablations over the design choices DESIGN.md calls out.

Four internal choices of the proposed algorithm are compared on the same
random drops:

* the Subproblem-1 solver (exact primal search vs the paper's dual
  water-filling with clipping);
* the damping base ``xi`` of the Newton-like update in Algorithm 1;
* the initial-point strategy of Algorithm 2 (equal split vs delay-min);
* the SP2_v2 solver (closed-form KKT vs numeric dual decomposition).

The SP2-agreement measurement is not an Algorithm-2 run, so it plugs into
the sweep engine as its own registered solver kind (``"sp2_agreement"``)
rather than going through the ``"proposed"`` kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

import numpy as np

from ..core.problem import JointProblem, ProblemWeights
from ..core.subproblem1 import solve_subproblem1
from ..core.subproblem2 import solve_sp2_v2, solve_sp2_v2_numeric
from .base import SweepConfig, add_grid_row, proposed_tasks, run_sweep
from .results import ResultTable
from .runner import SweepRunner, SweepTask, register_solver_kind

__all__ = ["AblationConfig", "run_ablation"]

_METRICS = {"objective": "objective", "energy_j": "energy_j", "time_s": "completion_time_s"}


@dataclass(frozen=True)
class AblationConfig:
    """Sweep definition for the ablation study."""

    sweep: SweepConfig = field(default_factory=lambda: SweepConfig(num_devices=25, num_trials=2))
    energy_weight: float = 0.5
    damping_values: tuple[float, ...] = (0.25, 0.5, 0.75)

    @classmethod
    def paper(cls) -> "AblationConfig":
        """A larger-scale ablation at the paper's device count."""
        return cls(sweep=SweepConfig(num_devices=50, num_trials=10))

    def variants(self) -> list[tuple[str, str, SweepConfig]]:
        """Every (variant, setting, sweep-with-that-allocator) combination."""
        sweep = self.sweep
        variants: list[tuple[str, str, SweepConfig]] = []
        for method in ("primal", "dual"):
            allocator = replace(sweep.allocator, subproblem1_method=method)
            variants.append(("subproblem1", method, replace(sweep, allocator=allocator)))
        for xi in self.damping_values:
            # Vary only the damping: every other configured sum-of-ratios
            # field (backend, fallback, tolerances) must survive the variant.
            sum_of_ratios = replace(sweep.allocator.sum_of_ratios, damping_xi=xi)
            allocator = replace(sweep.allocator, sum_of_ratios=sum_of_ratios)
            variants.append(("damping_xi", f"{xi:g}", replace(sweep, allocator=allocator)))
        for strategy in ("equal", "delay_min"):
            allocator = replace(sweep.allocator, initial_strategy=strategy)
            variants.append(("initialisation", strategy, replace(sweep, allocator=allocator)))
        return variants

    def tasks(self) -> list[SweepTask]:
        """The full (variant × trial) task list of the ablation."""
        tasks: list[SweepTask] = []
        for variant, setting, sweep in self.variants():
            tasks += proposed_tasks((variant, setting), sweep, self.energy_weight)
        tasks += [
            SweepTask(
                key=("sp2_solver", "kkt_vs_numeric"),
                scenario=self.sweep.scenario_params(seed=seed),
                solver_kind="sp2_agreement",
                solver_params={"energy_weight": self.energy_weight},
            )
            for seed in self.sweep.trial_seeds()
        ]
        return tasks


@register_solver_kind("sp2_agreement")
def _sp2_solver_agreement(system, params: Mapping[str, Any]) -> dict[str, float]:
    """Objective gap between the closed-form and numeric SP2_v2 solvers."""
    energy_weight = params["energy_weight"]
    problem = JointProblem(system, ProblemWeights.from_energy_weight(energy_weight))
    allocation = problem.initial_allocation(bandwidth_fraction=0.5)
    upload = system.upload_time_s(allocation.power_w, allocation.bandwidth_hz)
    sp1 = solve_subproblem1(system, energy_weight, 1.0 - energy_weight, upload)
    min_rate = problem.min_rate_requirements(sp1.frequency_hz, sp1.round_deadline_s)
    rates = system.rates_bps(allocation.power_w, allocation.bandwidth_hz)
    beta = allocation.power_w * system.upload_bits / rates
    nu = energy_weight * system.global_rounds / rates
    kkt = solve_sp2_v2(system, nu, beta, min_rate)
    numeric = solve_sp2_v2_numeric(system, nu, beta, min_rate)
    scale = max(abs(numeric.objective), 1e-12)
    return {
        "kkt_objective": kkt.objective,
        "numeric_objective": numeric.objective,
        "relative_gap": (kkt.objective - numeric.objective) / scale,
    }


def run_ablation(
    config: AblationConfig | None = None, *, runner: SweepRunner | None = None
) -> ResultTable:
    """Run the ablation grid and collect the weighted objectives."""
    config = config or AblationConfig()
    points = run_sweep(config.tasks(), runner=runner)
    table = ResultTable(
        name="ablation",
        columns=["variant", "setting", "objective", "energy_j", "time_s"],
        metadata={"experiment": "ablation", "w1": config.energy_weight},
    )
    for variant, setting, _sweep in config.variants():
        add_grid_row(table, points[(variant, setting)], _METRICS, variant=variant, setting=setting)

    # Agreement between the two SP2_v2 solvers (reported as objectives).
    gap_point = points[("sp2_solver", "kkt_vs_numeric")]
    if gap_point.ok:
        if gap_point.failures:
            table.add_error(gap_point.key, gap_point.errors)
        averaged_gap = gap_point.metrics
        table.add_row(
            variant="sp2_solver",
            setting="kkt_vs_numeric",
            objective=float(np.abs(averaged_gap["relative_gap"])),
            energy_j=averaged_gap["kkt_objective"],
            time_s=averaged_gap["numeric_objective"],
        )
    else:
        add_grid_row(table, gap_point, _METRICS, variant="sp2_solver", setting="kkt_vs_numeric")
    return table
