"""Ablations over the design choices DESIGN.md calls out.

Four internal choices of the proposed algorithm are compared on the same
random drops:

* the Subproblem-1 solver (exact primal search vs the paper's dual
  water-filling with clipping);
* the damping base ``xi`` of the Newton-like update in Algorithm 1;
* the initial-point strategy of Algorithm 2 (equal split vs delay-min);
* the SP2_v2 solver (closed-form KKT vs numeric dual decomposition).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..core.allocator import AllocatorConfig
from ..core.problem import JointProblem, ProblemWeights
from ..core.subproblem1 import solve_subproblem1
from ..core.subproblem2 import solve_sp2_v2, solve_sp2_v2_numeric
from ..core.sum_of_ratios import SumOfRatiosConfig
from .base import SweepConfig, average_metrics, solve_proposed
from .results import ResultTable

__all__ = ["AblationConfig", "run_ablation"]


@dataclass(frozen=True)
class AblationConfig:
    """Sweep definition for the ablation study."""

    sweep: SweepConfig = field(default_factory=lambda: SweepConfig(num_devices=25, num_trials=2))
    energy_weight: float = 0.5
    damping_values: tuple[float, ...] = (0.25, 0.5, 0.75)

    @classmethod
    def paper(cls) -> "AblationConfig":
        """A larger-scale ablation at the paper's device count."""
        return cls(sweep=SweepConfig(num_devices=50, num_trials=10))


def _sp2_solver_agreement(system, energy_weight: float) -> dict[str, float]:
    """Objective gap between the closed-form and numeric SP2_v2 solvers."""
    problem = JointProblem(system, ProblemWeights.from_energy_weight(energy_weight))
    allocation = problem.initial_allocation(bandwidth_fraction=0.5)
    upload = system.upload_time_s(allocation.power_w, allocation.bandwidth_hz)
    sp1 = solve_subproblem1(system, energy_weight, 1.0 - energy_weight, upload)
    min_rate = problem.min_rate_requirements(sp1.frequency_hz, sp1.round_deadline_s)
    rates = system.rates_bps(allocation.power_w, allocation.bandwidth_hz)
    beta = allocation.power_w * system.upload_bits / rates
    nu = energy_weight * system.global_rounds / rates
    kkt = solve_sp2_v2(system, nu, beta, min_rate)
    numeric = solve_sp2_v2_numeric(system, nu, beta, min_rate)
    scale = max(abs(numeric.objective), 1e-12)
    return {
        "kkt_objective": kkt.objective,
        "numeric_objective": numeric.objective,
        "relative_gap": (kkt.objective - numeric.objective) / scale,
    }


def run_ablation(config: AblationConfig | None = None) -> ResultTable:
    """Run the ablation grid and collect the weighted objectives."""
    config = config or AblationConfig()
    sweep = config.sweep
    table = ResultTable(
        name="ablation",
        columns=["variant", "setting", "objective", "energy_j", "time_s"],
        metadata={"experiment": "ablation", "w1": config.energy_weight},
    )

    def run_with(allocator: AllocatorConfig) -> dict[str, float]:
        metrics = []
        for trial in range(sweep.num_trials):
            system = sweep.scenario(seed=sweep.base_seed + trial)
            result = solve_proposed(system, config.energy_weight, allocator_config=allocator)
            metrics.append(result.summary())
        return average_metrics(metrics)

    # Subproblem-1 solver.
    for method in ("primal", "dual"):
        averaged = run_with(replace(sweep.allocator, subproblem1_method=method))
        table.add_row(
            variant="subproblem1",
            setting=method,
            objective=averaged["objective"],
            energy_j=averaged["energy_j"],
            time_s=averaged["completion_time_s"],
        )

    # Damping base of the Newton-like update.
    for xi in config.damping_values:
        allocator = replace(
            sweep.allocator, sum_of_ratios=SumOfRatiosConfig(damping_xi=xi)
        )
        averaged = run_with(allocator)
        table.add_row(
            variant="damping_xi",
            setting=f"{xi:g}",
            objective=averaged["objective"],
            energy_j=averaged["energy_j"],
            time_s=averaged["completion_time_s"],
        )

    # Initial-point strategy.
    for strategy in ("equal", "delay_min"):
        averaged = run_with(replace(sweep.allocator, initial_strategy=strategy))
        table.add_row(
            variant="initialisation",
            setting=strategy,
            objective=averaged["objective"],
            energy_j=averaged["energy_j"],
            time_s=averaged["completion_time_s"],
        )

    # Agreement between the two SP2_v2 solvers (reported as objectives).
    gaps = []
    for trial in range(sweep.num_trials):
        system = sweep.scenario(seed=sweep.base_seed + trial)
        gaps.append(_sp2_solver_agreement(system, config.energy_weight))
    averaged_gap = average_metrics(gaps)
    table.add_row(
        variant="sp2_solver",
        setting="kkt_vs_numeric",
        objective=float(np.abs(averaged_gap["relative_gap"])),
        energy_j=averaged_gap["kkt_objective"],
        time_s=averaged_gap["numeric_objective"],
    )
    return table
