"""Shared machinery for the per-figure experiment runners.

The paper evaluates every scheme on random user drops and reports averages;
this module provides the drop/solve/average loop so each ``figN`` module
only has to declare its sweep grid and the schemes to compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from .. import constants
from ..core.allocator import AllocationResult, AllocatorConfig, ResourceAllocator
from ..core.problem import JointProblem, ProblemWeights
from ..baselines.registry import get_baseline
from ..scenario import ScenarioConfig, build_scenario
from ..system import SystemModel

__all__ = [
    "PAPER_WEIGHT_PAIRS",
    "SweepConfig",
    "average_metrics",
    "solve_proposed",
    "solve_baseline",
    "sweep_scenarios",
]

#: The five weight pairs the paper compares in Figs. 2-4.
PAPER_WEIGHT_PAIRS: tuple[tuple[float, float], ...] = (
    (0.9, 0.1),
    (0.7, 0.3),
    (0.5, 0.5),
    (0.3, 0.7),
    (0.1, 0.9),
)


@dataclass(frozen=True)
class SweepConfig:
    """Common knobs of every figure experiment."""

    num_devices: int = constants.DEFAULT_NUM_DEVICES
    num_trials: int = 3
    base_seed: int = 0
    radius_km: float = constants.DEFAULT_CELL_RADIUS_KM
    local_iterations: int = constants.DEFAULT_LOCAL_ITERATIONS
    global_rounds: int = constants.DEFAULT_GLOBAL_ROUNDS
    max_power_dbm: float = constants.DEFAULT_MAX_POWER_DBM
    max_frequency_hz: float = constants.DEFAULT_MAX_FREQUENCY_HZ
    allocator: AllocatorConfig = field(default_factory=AllocatorConfig)

    def scenario(self, *, seed: int, **overrides: Any) -> SystemModel:
        """Build one random drop with this sweep's shared parameters."""
        params: dict[str, Any] = {
            "num_devices": self.num_devices,
            "radius_km": self.radius_km,
            "local_iterations": self.local_iterations,
            "global_rounds": self.global_rounds,
            "max_power_dbm": self.max_power_dbm,
            "max_frequency_hz": self.max_frequency_hz,
            "seed": seed,
        }
        params.update(overrides)
        return build_scenario(ScenarioConfig(**params))


def solve_proposed(
    system: SystemModel,
    energy_weight: float,
    *,
    deadline_s: float | None = None,
    allocator_config: AllocatorConfig | None = None,
) -> AllocationResult:
    """Run the proposed algorithm (Algorithm 2) on one scenario."""
    weights = ProblemWeights.from_energy_weight(energy_weight)
    problem = JointProblem(system, weights, deadline_s=deadline_s)
    allocator = ResourceAllocator(allocator_config)
    return allocator.solve(problem)


def solve_baseline(
    name: str,
    system: SystemModel,
    energy_weight: float,
    *,
    deadline_s: float | None = None,
    **kwargs: Any,
) -> AllocationResult:
    """Run a named baseline on one scenario."""
    weights = ProblemWeights.from_energy_weight(energy_weight)
    problem = JointProblem(system, weights, deadline_s=deadline_s)
    return get_baseline(name)(problem, **kwargs)


def average_metrics(results: list[Mapping[str, float]]) -> dict[str, float]:
    """Average a list of scalar-metric dictionaries key by key."""
    if not results:
        raise ValueError("cannot average an empty result list")
    keys = results[0].keys()
    return {key: float(np.mean([r[key] for r in results])) for key in keys}


def sweep_scenarios(
    config: SweepConfig,
    solve: Callable[[SystemModel, int], Mapping[str, float]],
    **scenario_overrides: Any,
) -> dict[str, float]:
    """Average ``solve(system, trial_seed)`` over the configured random drops."""
    metrics = []
    for trial in range(config.num_trials):
        seed = config.base_seed + trial
        system = config.scenario(seed=seed, **scenario_overrides)
        metrics.append(dict(solve(system, seed)))
    return average_metrics(metrics)
