"""Shared machinery for the per-figure experiment runners.

The paper evaluates every scheme on random user drops and reports averages.
Each ``figN`` module declares its sweep grid as a flat list of
:class:`~repro.experiments.runner.SweepTask` (one per grid point × trial),
hands the list to a :class:`~repro.experiments.runner.SweepRunner` — which
executes it serially or over a process pool, with caching and per-task crash
isolation — and folds the outcomes back into a
:class:`~repro.experiments.results.ResultTable` with the helpers here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from .. import constants
from ..baselines.registry import get_baseline
from ..core.allocator import AllocationResult, AllocatorConfig, ResourceAllocator
from ..core.problem import JointProblem, ProblemWeights
from ..core.subproblem2 import validate_backend
from ..exceptions import ConfigurationError
from ..scenarios import ScenarioSpec, build_scenario_spec
from ..system import SystemModel
from .results import ResultTable
from .runner import SweepRunner, SweepTask, TaskOutcome, get_active_runner

__all__ = [
    "DEFAULT_METRICS",
    "PAPER_WEIGHT_PAIRS",
    "SweepConfig",
    "GridPoint",
    "average_metrics",
    "solve_proposed",
    "solve_baseline",
    "proposed_tasks",
    "baseline_tasks",
    "run_sweep",
    "add_grid_row",
    "sweep_scenarios",
]

#: The five weight pairs the paper compares in Figs. 2-4.
PAPER_WEIGHT_PAIRS: tuple[tuple[float, float], ...] = (
    (0.9, 0.1),
    (0.7, 0.3),
    (0.5, 0.5),
    (0.3, 0.7),
    (0.1, 0.9),
)


@dataclass(frozen=True)
class SweepConfig:
    """Common knobs of every figure experiment.

    ``scenario_family`` selects the registered scenario recipe the sweep's
    drops are built from (default: the paper's Section VII-A recipe), and
    ``scenario_extra`` carries family-specific parameters (e.g.
    ``{"num_clusters": 5}`` for ``hotspot``).  The standard knobs below are
    passed to every family, so ``p_max`` / ``f_max`` / device-count sweeps
    apply to any workload.
    """

    num_devices: int = constants.DEFAULT_NUM_DEVICES
    num_trials: int = 3
    base_seed: int = 0
    radius_km: float = constants.DEFAULT_CELL_RADIUS_KM
    local_iterations: int = constants.DEFAULT_LOCAL_ITERATIONS
    global_rounds: int = constants.DEFAULT_GLOBAL_ROUNDS
    max_power_dbm: float = constants.DEFAULT_MAX_POWER_DBM
    max_frequency_hz: float = constants.DEFAULT_MAX_FREQUENCY_HZ
    allocator: AllocatorConfig = field(default_factory=AllocatorConfig)
    scenario_family: str = "paper"
    scenario_extra: Mapping[str, Any] = field(default_factory=dict)

    def with_scenario(self, family: str, /, **extra: Any) -> "SweepConfig":
        """Copy of this sweep targeting another scenario family.

        ``extra`` updates the family-specific parameters (merged over any
        already configured).
        """
        if "family" in extra:
            raise ConfigurationError(
                "scenario parameters must not include 'family'; pass the "
                "family as with_scenario's first argument / --scenario"
            )
        if "seed" in extra:
            raise ConfigurationError(
                "scenario parameters must not include 'seed'; the sweep "
                "derives one seed per trial from base_seed"
            )
        return replace(
            self,
            scenario_family=family,
            scenario_extra={**dict(self.scenario_extra), **extra},
        )

    def with_backend(self, backend: str) -> "SweepConfig":
        """Copy of this sweep solving SP2 with the given backend.

        The backend lives inside the allocator's sum-of-ratios
        configuration, so it travels with every task (and enters the cache
        key: scalar and vector results agree only within solver tolerance,
        never byte-for-byte).
        """
        validate_backend(backend)
        allocator = replace(
            self.allocator,
            sum_of_ratios=replace(self.allocator.sum_of_ratios, backend=backend),
        )
        return replace(self, allocator=allocator)

    def scenario_params(self, *, seed: int, **overrides: Any) -> dict[str, Any]:
        """The flat scenario-spec mapping of one random drop.

        The ``"family"`` key names the scenario family; the rest are the
        family's builder parameters (see :mod:`repro.scenarios`).
        """
        if "family" in self.scenario_extra or "family" in overrides:
            raise ConfigurationError(
                "scenario parameters must not include 'family'; select the "
                "family via SweepConfig.scenario_family / --scenario instead"
            )
        if "seed" in self.scenario_extra:
            # A fixed seed would make every "random" trial the same drop.
            raise ConfigurationError(
                "scenario_extra must not include 'seed'; the sweep derives "
                "one seed per trial from base_seed"
            )
        params: dict[str, Any] = {
            "family": self.scenario_family,
            "num_devices": self.num_devices,
            "radius_km": self.radius_km,
            "local_iterations": self.local_iterations,
            "global_rounds": self.global_rounds,
            "max_power_dbm": self.max_power_dbm,
            "max_frequency_hz": self.max_frequency_hz,
            "seed": seed,
        }
        params.update(self.scenario_extra)
        params.update(overrides)
        return params

    def scenario(self, *, seed: int, **overrides: Any) -> SystemModel:
        """Build one random drop with this sweep's shared parameters."""
        return build_scenario_spec(
            ScenarioSpec.from_mapping(self.scenario_params(seed=seed, **overrides))
        )

    def trial_seeds(self) -> tuple[int, ...]:
        """The deterministic per-trial seeds (``base_seed + trial``)."""
        return tuple(self.base_seed + trial for trial in range(self.num_trials))


def solve_proposed(
    system: SystemModel,
    energy_weight: float,
    *,
    deadline_s: float | None = None,
    allocator_config: AllocatorConfig | None = None,
) -> AllocationResult:
    """Run the proposed algorithm (Algorithm 2) on one scenario."""
    weights = ProblemWeights.from_energy_weight(energy_weight)
    problem = JointProblem(system, weights, deadline_s=deadline_s)
    allocator = ResourceAllocator(allocator_config)
    return allocator.solve(problem)


def solve_baseline(
    name: str,
    system: SystemModel,
    energy_weight: float,
    *,
    deadline_s: float | None = None,
    **kwargs: Any,
) -> AllocationResult:
    """Run a named baseline on one scenario."""
    weights = ProblemWeights.from_energy_weight(energy_weight)
    problem = JointProblem(system, weights, deadline_s=deadline_s)
    return get_baseline(name)(problem, **kwargs)


def average_metrics(results: list[Mapping[str, float]]) -> dict[str, float]:
    """Average a list of scalar-metric dictionaries key by key."""
    if not results:
        raise ValueError("cannot average an empty result list")
    keys = results[0].keys()
    return {key: float(np.mean([r[key] for r in results])) for key in keys}


# -- task construction -------------------------------------------------------

def proposed_tasks(
    key: tuple,
    sweep: SweepConfig,
    energy_weight: float,
    *,
    deadline_s: float | None = None,
    warm_group: tuple | None = None,
    warm_order: float = 0.0,
    **scenario_overrides: Any,
) -> list[SweepTask]:
    """One ``"proposed"`` task per trial of ``sweep`` for this grid point.

    ``warm_group`` names the warm-start chain this grid point belongs to
    (everything that stays fixed along the sweep axis — the trial seed is
    appended automatically so different drops never chain together), and
    ``warm_order`` is the point's position on the axis.  Runners ignore
    both unless warm starts are enabled.
    """
    return [
        SweepTask(
            key=key,
            scenario=sweep.scenario_params(seed=seed, **scenario_overrides),
            solver_kind="proposed",
            solver_params={
                "energy_weight": energy_weight,
                "deadline_s": deadline_s,
                "allocator": sweep.allocator,
            },
            warm_key=None if warm_group is None else (*warm_group, seed),
            warm_order=warm_order,
        )
        for seed in sweep.trial_seeds()
    ]


def baseline_tasks(
    key: tuple,
    sweep: SweepConfig,
    name: str,
    energy_weight: float,
    *,
    deadline_s: float | None = None,
    solver_kwargs: Mapping[str, Any] | None = None,
    seed_rng_kwarg: str | None = None,
    **scenario_overrides: Any,
) -> list[SweepTask]:
    """One ``"baseline"`` task per trial of ``sweep`` for this grid point.

    ``seed_rng_kwarg`` names a baseline keyword argument to fill with the
    trial seed (the random benchmark takes its RNG that way), keeping the
    per-trial randomness deterministic under any execution order.
    """
    tasks = []
    for seed in sweep.trial_seeds():
        kwargs = dict(solver_kwargs or {})
        if seed_rng_kwarg is not None:
            kwargs[seed_rng_kwarg] = seed
        tasks.append(
            SweepTask(
                key=key,
                scenario=sweep.scenario_params(seed=seed, **scenario_overrides),
                solver_kind="baseline",
                solver_params={
                    "name": name,
                    "energy_weight": energy_weight,
                    "deadline_s": deadline_s,
                    "kwargs": kwargs,
                },
            )
        )
    return tasks


# -- aggregation -------------------------------------------------------------

#: The column -> summary-metric mapping shared by the energy/delay figures.
DEFAULT_METRICS: Mapping[str, str] = {
    "energy_j": "energy_j",
    "time_s": "completion_time_s",
    "objective": "objective",
}


@dataclass(frozen=True)
class GridPoint:
    """The aggregate of every trial sharing one task key.

    ``skipped`` counts trials belonging to another shard of a sharded run —
    they were never attempted, so they are neither successes nor failures
    (a point whose every trial was skipped simply has ``metrics=None``
    without error records).
    """

    key: tuple
    metrics: dict[str, float] | None
    trials: int
    failures: int
    errors: tuple[str, ...]
    skipped: int = 0

    @property
    def ok(self) -> bool:
        return self.metrics is not None


def run_sweep(
    tasks: Sequence[SweepTask],
    *,
    runner: SweepRunner | None = None,
) -> dict[tuple, GridPoint]:
    """Execute ``tasks`` and average the outcomes per grid-point key.

    Trials are averaged in task order, so the aggregate is identical whether
    the runner executed serially or over a process pool.  Failed trials are
    excluded from the average; a grid point whose every trial failed gets
    ``metrics=None`` and shows up as an error row in the tables.  Trials a
    sharded runner skipped (they belong to another shard) are excluded from
    both the average and the failure count.
    """
    outcomes = get_active_runner(runner).run(tasks)
    grouped: dict[tuple, list[TaskOutcome]] = {}
    for outcome in outcomes:
        grouped.setdefault(outcome.task.key, []).append(outcome)
    points: dict[tuple, GridPoint] = {}
    for key, group in grouped.items():
        successes = [dict(o.metrics) for o in group if o.ok]
        errors = tuple(o.error for o in group if o.error is not None)
        skipped = sum(1 for o in group if o.skipped)
        points[key] = GridPoint(
            key=key,
            metrics=average_metrics(successes) if successes else None,
            trials=len(group),
            failures=len(group) - len(successes) - skipped,
            errors=errors,
            skipped=skipped,
        )
    return points


def add_grid_row(
    table: ResultTable,
    point: GridPoint,
    metric_columns: Mapping[str, str],
    **fixed: Any,
) -> None:
    """Append one table row for ``point``.

    ``metric_columns`` maps table columns to keys of the averaged metrics
    (e.g. ``{"time_s": "completion_time_s"}``).  If every trial of the grid
    point failed, the metric columns are filled with NaN and the error
    messages are recorded in the table metadata — the sweep keeps its full
    shape instead of dying on one bad drop.  A point whose trials were all
    *skipped* (they belong to another shard of a ``--shard I/N`` run) is
    not a failure: its metric columns are ``None`` (empty cells in CSV and
    markdown, where a crash renders NaN) and the skip is recorded via
    :meth:`ResultTable.add_skip`.  Unsharded runs never skip, so their
    tables are byte-identical to before.
    """
    if point.ok:
        values = {column: point.metrics[source] for column, source in metric_columns.items()}
    elif point.skipped and not point.failures:
        values = {column: None for column in metric_columns}
        table.add_skip(point.key)
    else:
        values = {column: float("nan") for column in metric_columns}
    if point.failures:
        table.add_error(point.key, point.errors)
    table.add_row(**fixed, **values)


def sweep_scenarios(
    config: SweepConfig,
    solve: Callable[[SystemModel, int], Mapping[str, float]],
    **scenario_overrides: Any,
) -> dict[str, float]:
    """Average ``solve(system, trial_seed)`` over the configured random drops.

    This is the in-process escape hatch for ad-hoc callables that cannot be
    expressed as a registered solver kind; the figure runners all go through
    :func:`run_sweep` instead.
    """
    metrics = []
    for seed in config.trial_seeds():
        system = config.scenario(seed=seed, **scenario_overrides)
        metrics.append(dict(solve(system, seed)))
    return average_metrics(metrics)
