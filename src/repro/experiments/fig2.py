"""Figure 2: energy and delay versus the maximum transmit power limit.

The paper sweeps ``p_max`` from 5 to 12 dBm and plots, for five weight pairs
plus the random benchmark, the total energy consumption (Fig. 2a) and the
total completion time (Fig. 2b).  The qualitative claims are: larger ``w1``
gives lower energy and higher delay; every weight pair beats the benchmark
on energy by a wide margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .base import (
    DEFAULT_METRICS,
    PAPER_WEIGHT_PAIRS,
    SweepConfig,
    add_grid_row,
    baseline_tasks,
    proposed_tasks,
    run_sweep,
)
from .results import ResultTable
from .runner import SweepRunner, SweepTask

__all__ = ["Fig2Config", "run_fig2"]


@dataclass(frozen=True)
class Fig2Config:
    """Sweep definition for Figure 2."""

    sweep: SweepConfig = field(default_factory=lambda: SweepConfig(num_devices=30, num_trials=2))
    max_power_dbm_grid: tuple[float, ...] = (5.0, 7.0, 9.0, 12.0)
    weight_pairs: tuple[tuple[float, float], ...] = PAPER_WEIGHT_PAIRS
    include_benchmark: bool = True

    @classmethod
    def paper(cls) -> "Fig2Config":
        """The full Section VII-A setting (50 devices, 5-12 dBm, 100 drops)."""
        return cls(
            sweep=SweepConfig(num_devices=50, num_trials=100),
            max_power_dbm_grid=(5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0),
        )

    def tasks(self) -> list[SweepTask]:
        """The full (grid point × trial) task list of this sweep.

        Proposed-scheme tasks sharing a weight pair (and trial seed) chain
        along the ``p_max`` axis, so a warm-started runner seeds each grid
        point from its neighbour's solution.
        """
        tasks: list[SweepTask] = []
        for p_max_dbm in self.max_power_dbm_grid:
            sweep = replace(self.sweep, max_power_dbm=p_max_dbm)
            for w1, _w2 in self.weight_pairs:
                tasks += proposed_tasks(
                    ("proposed", p_max_dbm, w1),
                    sweep,
                    w1,
                    warm_group=("fig2", w1),
                    warm_order=p_max_dbm,
                )
            if self.include_benchmark:
                tasks += baseline_tasks(
                    ("benchmark", p_max_dbm),
                    sweep,
                    "benchmark",
                    0.5,
                    solver_kwargs={"randomize": "frequency"},
                    seed_rng_kwarg="rng",
                )
        return tasks


def run_fig2(config: Fig2Config | None = None, *, runner: SweepRunner | None = None) -> ResultTable:
    """Regenerate the Figure-2 series."""
    config = config or Fig2Config()
    points = run_sweep(config.tasks(), runner=runner)
    table = ResultTable(
        name="fig2",
        columns=["max_power_dbm", "scheme", "w1", "w2", "energy_j", "time_s", "objective"],
        metadata={"figure": "2", "x_axis": "max_power_dbm"},
    )
    for p_max_dbm in config.max_power_dbm_grid:
        for w1, w2 in config.weight_pairs:
            add_grid_row(
                table,
                points[("proposed", p_max_dbm, w1)],
                DEFAULT_METRICS,
                max_power_dbm=p_max_dbm,
                scheme="proposed",
                w1=w1,
                w2=w2,
            )
        if config.include_benchmark:
            add_grid_row(
                table,
                points[("benchmark", p_max_dbm)],
                DEFAULT_METRICS,
                max_power_dbm=p_max_dbm,
                scheme="benchmark",
                w1=0.5,
                w2=0.5,
            )
    return table
