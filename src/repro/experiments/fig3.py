"""Figure 3: energy and delay versus the maximum CPU frequency.

The paper sweeps ``f_max`` from 0.1 to 2 GHz.  Expected behaviour: the
benchmark's energy grows with ``f_max`` (it always runs at random/maximum
frequency) while its delay falls; the proposed algorithm's curves flatten
once the optimal frequency for the given weights is below ``f_max``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .base import (
    DEFAULT_METRICS,
    PAPER_WEIGHT_PAIRS,
    SweepConfig,
    add_grid_row,
    baseline_tasks,
    proposed_tasks,
    run_sweep,
)
from .results import ResultTable
from .runner import SweepRunner, SweepTask

__all__ = ["Fig3Config", "run_fig3"]


@dataclass(frozen=True)
class Fig3Config:
    """Sweep definition for Figure 3."""

    sweep: SweepConfig = field(default_factory=lambda: SweepConfig(num_devices=30, num_trials=2))
    max_frequency_ghz_grid: tuple[float, ...] = (0.3, 0.6, 1.0, 2.0)
    weight_pairs: tuple[tuple[float, float], ...] = PAPER_WEIGHT_PAIRS
    include_benchmark: bool = True

    @classmethod
    def paper(cls) -> "Fig3Config":
        """The full Section VII-A setting (0.1-2 GHz, 50 devices, 100 drops)."""
        return cls(
            sweep=SweepConfig(num_devices=50, num_trials=100),
            max_frequency_ghz_grid=(0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0),
        )

    def tasks(self) -> list[SweepTask]:
        """The full (grid point × trial) task list of this sweep."""
        tasks: list[SweepTask] = []
        for f_max_ghz in self.max_frequency_ghz_grid:
            sweep = replace(self.sweep, max_frequency_hz=f_max_ghz * 1e9)
            for w1, _w2 in self.weight_pairs:
                tasks += proposed_tasks(
                    ("proposed", f_max_ghz, w1),
                    sweep,
                    w1,
                    warm_group=("fig3", w1),
                    warm_order=f_max_ghz,
                )
            if self.include_benchmark:
                tasks += baseline_tasks(
                    ("benchmark", f_max_ghz),
                    sweep,
                    "benchmark",
                    0.5,
                    solver_kwargs={"randomize": "power"},
                    seed_rng_kwarg="rng",
                )
        return tasks


def run_fig3(config: Fig3Config | None = None, *, runner: SweepRunner | None = None) -> ResultTable:
    """Regenerate the Figure-3 series."""
    config = config or Fig3Config()
    points = run_sweep(config.tasks(), runner=runner)
    table = ResultTable(
        name="fig3",
        columns=["max_frequency_ghz", "scheme", "w1", "w2", "energy_j", "time_s", "objective"],
        metadata={"figure": "3", "x_axis": "max_frequency_ghz"},
    )
    for f_max_ghz in config.max_frequency_ghz_grid:
        for w1, w2 in config.weight_pairs:
            add_grid_row(
                table,
                points[("proposed", f_max_ghz, w1)],
                DEFAULT_METRICS,
                max_frequency_ghz=f_max_ghz,
                scheme="proposed",
                w1=w1,
                w2=w2,
            )
        if config.include_benchmark:
            add_grid_row(
                table,
                points[("benchmark", f_max_ghz)],
                DEFAULT_METRICS,
                max_frequency_ghz=f_max_ghz,
                scheme="benchmark",
                w1=0.5,
                w2=0.5,
            )
    return table
