"""Figure 4: energy and delay versus the number of devices.

The total dataset is fixed at 25 000 samples and split equally, so adding
devices shrinks every local dataset.  Expected behaviour: both energy and
delay fall as the device count grows (less computation per device), with a
possible slight delay increase for the most energy-focused weight pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .base import DEFAULT_METRICS, PAPER_WEIGHT_PAIRS, SweepConfig, add_grid_row, proposed_tasks, run_sweep
from .results import ResultTable
from .runner import SweepRunner, SweepTask

__all__ = ["Fig4Config", "run_fig4"]


@dataclass(frozen=True)
class Fig4Config:
    """Sweep definition for Figure 4."""

    sweep: SweepConfig = field(default_factory=lambda: SweepConfig(num_trials=2))
    num_devices_grid: tuple[int, ...] = (20, 40, 60, 80)
    total_samples: int = 25_000
    weight_pairs: tuple[tuple[float, float], ...] = PAPER_WEIGHT_PAIRS

    @classmethod
    def paper(cls) -> "Fig4Config":
        """The full setting: 20-80 devices, 100 drops."""
        return cls(
            sweep=SweepConfig(num_trials=100),
            num_devices_grid=(20, 30, 40, 50, 60, 70, 80),
        )

    def tasks(self) -> list[SweepTask]:
        """The full (grid point × trial) task list of this sweep."""
        tasks: list[SweepTask] = []
        for num_devices in self.num_devices_grid:
            sweep = replace(self.sweep, num_devices=num_devices)
            for w1, _w2 in self.weight_pairs:
                tasks += proposed_tasks(
                    ("proposed", num_devices, w1),
                    sweep,
                    w1,
                    samples_per_device=None,
                    total_samples=self.total_samples,
                )
        return tasks


def run_fig4(config: Fig4Config | None = None, *, runner: SweepRunner | None = None) -> ResultTable:
    """Regenerate the Figure-4 series."""
    config = config or Fig4Config()
    points = run_sweep(config.tasks(), runner=runner)
    table = ResultTable(
        name="fig4",
        columns=["num_devices", "scheme", "w1", "w2", "energy_j", "time_s", "objective"],
        metadata={"figure": "4", "x_axis": "num_devices", "total_samples": config.total_samples},
    )
    for num_devices in config.num_devices_grid:
        for w1, w2 in config.weight_pairs:
            add_grid_row(
                table,
                points[("proposed", num_devices, w1)],
                DEFAULT_METRICS,
                num_devices=num_devices,
                scheme="proposed",
                w1=w1,
                w2=w2,
            )
    return table
