"""Figure 4: energy and delay versus the number of devices.

The total dataset is fixed at 25 000 samples and split equally, so adding
devices shrinks every local dataset.  Expected behaviour: both energy and
delay fall as the device count grows (less computation per device), with a
possible slight delay increase for the most energy-focused weight pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .base import PAPER_WEIGHT_PAIRS, SweepConfig, average_metrics, solve_proposed
from .results import ResultTable

__all__ = ["Fig4Config", "run_fig4"]


@dataclass(frozen=True)
class Fig4Config:
    """Sweep definition for Figure 4."""

    sweep: SweepConfig = field(default_factory=lambda: SweepConfig(num_trials=2))
    num_devices_grid: tuple[int, ...] = (20, 40, 60, 80)
    total_samples: int = 25_000
    weight_pairs: tuple[tuple[float, float], ...] = PAPER_WEIGHT_PAIRS

    @classmethod
    def paper(cls) -> "Fig4Config":
        """The full setting: 20-80 devices, 100 drops."""
        return cls(
            sweep=SweepConfig(num_trials=100),
            num_devices_grid=(20, 30, 40, 50, 60, 70, 80),
        )


def run_fig4(config: Fig4Config | None = None) -> ResultTable:
    """Regenerate the Figure-4 series."""
    config = config or Fig4Config()
    table = ResultTable(
        name="fig4",
        columns=["num_devices", "scheme", "w1", "w2", "energy_j", "time_s", "objective"],
        metadata={"figure": "4", "x_axis": "num_devices", "total_samples": config.total_samples},
    )
    for num_devices in config.num_devices_grid:
        sweep = replace(config.sweep, num_devices=num_devices)
        for w1, w2 in config.weight_pairs:
            metrics = []
            for trial in range(sweep.num_trials):
                system = sweep.scenario(
                    seed=sweep.base_seed + trial,
                    samples_per_device=None,
                    total_samples=config.total_samples,
                )
                result = solve_proposed(system, w1, allocator_config=sweep.allocator)
                metrics.append(result.summary())
            averaged = average_metrics(metrics)
            table.add_row(
                num_devices=num_devices,
                scheme="proposed",
                w1=w1,
                w2=w2,
                energy_j=averaged["energy_j"],
                time_s=averaged["completion_time_s"],
                objective=averaged["objective"],
            )
    return table
