"""Figure 5: energy and delay versus the radius of the deployment area.

Devices keep 500 samples each (so the total workload grows with ``N``) and
the weights are fixed at ``w1 = w2 = 0.5``.  Expected behaviour: the total
completion time grows with the radius (weaker channels force slower
uploads), while the energy has no clean monotone relationship with the
radius (the optimizer trades power, frequency and time against each other).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .base import DEFAULT_METRICS, SweepConfig, add_grid_row, proposed_tasks, run_sweep
from .results import ResultTable
from .runner import SweepRunner, SweepTask

__all__ = ["Fig5Config", "run_fig5"]


@dataclass(frozen=True)
class Fig5Config:
    """Sweep definition for Figure 5."""

    sweep: SweepConfig = field(default_factory=lambda: SweepConfig(num_trials=2))
    radius_km_grid: tuple[float, ...] = (0.1, 0.5, 0.9, 1.3)
    num_devices_grid: tuple[int, ...] = (20, 50, 80)
    energy_weight: float = 0.5

    @classmethod
    def paper(cls) -> "Fig5Config":
        """The full setting: radii 0.1-1.5 km, 100 drops."""
        return cls(
            sweep=SweepConfig(num_trials=100),
            radius_km_grid=(0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5),
        )

    def tasks(self) -> list[SweepTask]:
        """The full (grid point × trial) task list of this sweep."""
        tasks: list[SweepTask] = []
        for radius_km in self.radius_km_grid:
            for num_devices in self.num_devices_grid:
                sweep = replace(self.sweep, radius_km=radius_km, num_devices=num_devices)
                tasks += proposed_tasks((radius_km, num_devices), sweep, self.energy_weight)
        return tasks


def run_fig5(config: Fig5Config | None = None, *, runner: SweepRunner | None = None) -> ResultTable:
    """Regenerate the Figure-5 series."""
    config = config or Fig5Config()
    points = run_sweep(config.tasks(), runner=runner)
    table = ResultTable(
        name="fig5",
        columns=["radius_km", "num_devices", "energy_j", "time_s", "objective"],
        metadata={"figure": "5", "x_axis": "radius_km", "w1": config.energy_weight},
    )
    for radius_km in config.radius_km_grid:
        for num_devices in config.num_devices_grid:
            add_grid_row(
                table,
                points[(radius_km, num_devices)],
                DEFAULT_METRICS,
                radius_km=radius_km,
                num_devices=num_devices,
            )
    return table
