"""Figure 6: energy and delay versus the FL schedule (R_l and R_g).

The number of local iterations per round is swept from 10 to 110 for
several global-round counts, with ``w1 = w2 = 0.5``.  Expected behaviour:
energy and delay both grow with ``R_l`` and with ``R_g`` (they are
essentially multiplicative factors on the per-round cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .base import DEFAULT_METRICS, SweepConfig, add_grid_row, proposed_tasks, run_sweep
from .results import ResultTable
from .runner import SweepRunner, SweepTask

__all__ = ["Fig6Config", "run_fig6"]


@dataclass(frozen=True)
class Fig6Config:
    """Sweep definition for Figure 6."""

    sweep: SweepConfig = field(default_factory=lambda: SweepConfig(num_devices=30, num_trials=1))
    local_iterations_grid: tuple[int, ...] = (10, 50, 110)
    global_rounds_grid: tuple[int, ...] = (50, 200, 400)
    energy_weight: float = 0.5

    @classmethod
    def paper(cls) -> "Fig6Config":
        """The full setting: R_l in 10..110, R_g in {50, 100, 200, 300, 400}."""
        return cls(
            sweep=SweepConfig(num_devices=50, num_trials=100),
            local_iterations_grid=(10, 30, 50, 70, 90, 110),
            global_rounds_grid=(50, 100, 200, 300, 400),
        )

    def tasks(self) -> list[SweepTask]:
        """The full (grid point × trial) task list of this sweep."""
        tasks: list[SweepTask] = []
        for global_rounds in self.global_rounds_grid:
            for local_iterations in self.local_iterations_grid:
                sweep = replace(
                    self.sweep,
                    local_iterations=local_iterations,
                    global_rounds=global_rounds,
                )
                tasks += proposed_tasks(
                    (global_rounds, local_iterations), sweep, self.energy_weight
                )
        return tasks


def run_fig6(config: Fig6Config | None = None, *, runner: SweepRunner | None = None) -> ResultTable:
    """Regenerate the Figure-6 series."""
    config = config or Fig6Config()
    points = run_sweep(config.tasks(), runner=runner)
    table = ResultTable(
        name="fig6",
        columns=["local_iterations", "global_rounds", "energy_j", "time_s", "objective"],
        metadata={"figure": "6", "x_axis": "local_iterations", "w1": config.energy_weight},
    )
    for global_rounds in config.global_rounds_grid:
        for local_iterations in config.local_iterations_grid:
            add_grid_row(
                table,
                points[(global_rounds, local_iterations)],
                DEFAULT_METRICS,
                local_iterations=local_iterations,
                global_rounds=global_rounds,
            )
    return table
