"""Figure 7: joint optimisation versus single-resource optimisation.

At ``w1 = 1, w2 = 0`` with a hard completion-time budget ``T`` (swept from
100 to 150 s) and ``p_max = 10`` dBm, the paper compares the proposed joint
algorithm against optimising only the communication side (fixed CPU
frequency) and only the computation side (fixed power/bandwidth).  Expected
behaviour: the proposed scheme uses the least energy at every budget, all
three curves fall as the budget loosens, and the gaps shrink for large
budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .base import SweepConfig, add_grid_row, baseline_tasks, proposed_tasks, run_sweep
from .results import ResultTable
from .runner import SweepRunner, SweepTask

__all__ = ["Fig7Config", "run_fig7"]

_METRICS = {"energy_j": "energy_j", "time_s": "completion_time_s", "feasible": "feasible"}


@dataclass(frozen=True)
class Fig7Config:
    """Sweep definition for Figure 7."""

    sweep: SweepConfig = field(
        default_factory=lambda: SweepConfig(num_devices=30, num_trials=2, max_power_dbm=10.0)
    )
    deadline_s_grid: tuple[float, ...] = (100.0, 120.0, 150.0)
    schemes: tuple[str, ...] = ("proposed", "communication_only", "computation_only")

    @classmethod
    def paper(cls) -> "Fig7Config":
        """The full setting: deadlines 100-150 s, 50 devices."""
        return cls(
            sweep=SweepConfig(num_devices=50, num_trials=100, max_power_dbm=10.0),
            deadline_s_grid=(100.0, 110.0, 120.0, 130.0, 140.0, 150.0),
        )

    def tasks(self) -> list[SweepTask]:
        """The full (grid point × trial) task list of this sweep."""
        tasks: list[SweepTask] = []
        for deadline in self.deadline_s_grid:
            for scheme in self.schemes:
                key = (deadline, scheme)
                if scheme == "proposed":
                    tasks += proposed_tasks(key, self.sweep, 1.0, deadline_s=deadline)
                else:
                    tasks += baseline_tasks(key, self.sweep, scheme, 1.0, deadline_s=deadline)
        return tasks


def run_fig7(config: Fig7Config | None = None, *, runner: SweepRunner | None = None) -> ResultTable:
    """Regenerate the Figure-7 series."""
    config = config or Fig7Config()
    points = run_sweep(config.tasks(), runner=runner)
    table = ResultTable(
        name="fig7",
        columns=["deadline_s", "scheme", "energy_j", "time_s", "feasible"],
        metadata={"figure": "7", "x_axis": "deadline_s", "w1": 1.0, "w2": 0.0},
    )
    for deadline in config.deadline_s_grid:
        for scheme in config.schemes:
            add_grid_row(
                table,
                points[(deadline, scheme)],
                _METRICS,
                deadline_s=deadline,
                scheme=scheme,
            )
    return table
