"""Figure 7: joint optimisation versus single-resource optimisation.

At ``w1 = 1, w2 = 0`` with a hard completion-time budget ``T`` (swept from
100 to 150 s) and ``p_max = 10`` dBm, the paper compares the proposed joint
algorithm against optimising only the communication side (fixed CPU
frequency) and only the computation side (fixed power/bandwidth).  Expected
behaviour: the proposed scheme uses the least energy at every budget, all
three curves fall as the budget loosens, and the gaps shrink for large
budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .base import SweepConfig, average_metrics, solve_baseline, solve_proposed
from .results import ResultTable

__all__ = ["Fig7Config", "run_fig7"]


@dataclass(frozen=True)
class Fig7Config:
    """Sweep definition for Figure 7."""

    sweep: SweepConfig = field(
        default_factory=lambda: SweepConfig(num_devices=30, num_trials=2, max_power_dbm=10.0)
    )
    deadline_s_grid: tuple[float, ...] = (100.0, 120.0, 150.0)
    schemes: tuple[str, ...] = ("proposed", "communication_only", "computation_only")

    @classmethod
    def paper(cls) -> "Fig7Config":
        """The full setting: deadlines 100-150 s, 50 devices."""
        return cls(
            sweep=SweepConfig(num_devices=50, num_trials=100, max_power_dbm=10.0),
            deadline_s_grid=(100.0, 110.0, 120.0, 130.0, 140.0, 150.0),
        )


def run_fig7(config: Fig7Config | None = None) -> ResultTable:
    """Regenerate the Figure-7 series."""
    config = config or Fig7Config()
    sweep = config.sweep
    table = ResultTable(
        name="fig7",
        columns=["deadline_s", "scheme", "energy_j", "time_s", "feasible"],
        metadata={"figure": "7", "x_axis": "deadline_s", "w1": 1.0, "w2": 0.0},
    )
    for deadline in config.deadline_s_grid:
        for scheme in config.schemes:
            metrics = []
            for trial in range(sweep.num_trials):
                system = sweep.scenario(seed=sweep.base_seed + trial)
                if scheme == "proposed":
                    result = solve_proposed(
                        system, 1.0, deadline_s=deadline, allocator_config=sweep.allocator
                    )
                else:
                    result = solve_baseline(scheme, system, 1.0, deadline_s=deadline)
                metrics.append(result.summary())
            averaged = average_metrics(metrics)
            table.add_row(
                deadline_s=deadline,
                scheme=scheme,
                energy_j=averaged["energy_j"],
                time_s=averaged["completion_time_s"],
                feasible=averaged["feasible"],
            )
    return table
