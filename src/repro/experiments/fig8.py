"""Figure 8: the proposed algorithm versus Scheme 1 ([7], Yang et al.).

At ``w1 = 1, w2 = 0`` with hard completion-time budgets ``T`` of 80, 100 and
150 s, the maximum transmit power is swept from 5 to 12 dBm.  Expected
behaviour: the proposed algorithm uses less energy than Scheme 1 at every
point, and the gap widens as the deadline tightens.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .base import SweepConfig, add_grid_row, baseline_tasks, proposed_tasks, run_sweep
from .results import ResultTable
from .runner import SweepRunner, SweepTask

__all__ = ["Fig8Config", "run_fig8"]

_METRICS = {"energy_j": "energy_j", "feasible": "feasible"}


@dataclass(frozen=True)
class Fig8Config:
    """Sweep definition for Figure 8."""

    sweep: SweepConfig = field(default_factory=lambda: SweepConfig(num_devices=30, num_trials=2))
    max_power_dbm_grid: tuple[float, ...] = (5.0, 8.0, 12.0)
    deadline_s_grid: tuple[float, ...] = (80.0, 100.0, 150.0)

    @classmethod
    def paper(cls) -> "Fig8Config":
        """The full setting: 5-12 dBm, deadlines {80, 100, 150} s, 50 devices."""
        return cls(
            sweep=SweepConfig(num_devices=50, num_trials=100),
            max_power_dbm_grid=(5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0),
        )

    def tasks(self) -> list[SweepTask]:
        """The full (grid point × trial) task list of this sweep."""
        tasks: list[SweepTask] = []
        for deadline in self.deadline_s_grid:
            for p_max_dbm in self.max_power_dbm_grid:
                sweep = replace(self.sweep, max_power_dbm=p_max_dbm)
                key = (deadline, p_max_dbm, "proposed")
                tasks += proposed_tasks(key, sweep, 1.0, deadline_s=deadline)
                key = (deadline, p_max_dbm, "scheme1")
                tasks += baseline_tasks(key, sweep, "scheme1", 1.0, deadline_s=deadline)
        return tasks


def run_fig8(config: Fig8Config | None = None, *, runner: SweepRunner | None = None) -> ResultTable:
    """Regenerate the Figure-8 series."""
    config = config or Fig8Config()
    points = run_sweep(config.tasks(), runner=runner)
    table = ResultTable(
        name="fig8",
        columns=["max_power_dbm", "deadline_s", "scheme", "energy_j", "feasible"],
        metadata={"figure": "8", "x_axis": "max_power_dbm", "w1": 1.0, "w2": 0.0},
    )
    for deadline in config.deadline_s_grid:
        for p_max_dbm in config.max_power_dbm_grid:
            for scheme in ("proposed", "scheme1"):
                add_grid_row(
                    table,
                    points[(deadline, p_max_dbm, scheme)],
                    _METRICS,
                    max_power_dbm=p_max_dbm,
                    deadline_s=deadline,
                    scheme=scheme,
                )
    return table
