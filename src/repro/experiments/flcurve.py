"""Closed-loop FL training curves: accuracy versus wall-clock per scheme.

The paper's core claim is that joint communication/computation resource
allocation changes the *wall-clock trajectory* of federated training: for
the same FedAvg schedule, a better allocation reaches a given accuracy in
fewer seconds and joules.  This experiment runs the closed-loop round loop
(:mod:`repro.fl.roundloop`) once per (scenario family × scheme × trial) —
the proposed Algorithm 2, re-solved every round with warm starts on the
vector backend, against the registered baseline schemes — and reports one
row per global round: cumulative wall-clock, cumulative energy and test
accuracy.  Plotting ``accuracy`` against ``elapsed_s`` per scheme is the
accuracy-versus-wall-clock comparison.

Each (family, scheme, trial) run is one :class:`SweepTask` of solver kind
``"fl_roundloop"``, so the sweep engine's parallelism, caching and crash
isolation apply: trajectories are flattened to scalar metrics
(``r012_accuracy`` …) for the cache and unfolded back into rows here.

A ``profiles`` axis compares the oracle allocator (true device profiles)
against the estimated one (:mod:`repro.fl.estimation` fits compute and
channel parameters from observed round timings), surfacing the
oracle-versus-estimated accuracy gap the paper's idealised system model
hides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..fl.roundloop import FLRoundLoop, RoundLoopConfig
from ..system import SystemModel
from .base import SweepConfig, run_sweep
from .results import ResultTable
from .runner import SweepRunner, SweepTask, register_solver_kind

__all__ = ["FLCurveConfig", "run_flcurve"]


@register_solver_kind("fl_roundloop")
def _run_fl_roundloop(
    system: SystemModel, params: Mapping[str, Any]
) -> Mapping[str, float]:
    """One full closed-loop training run on a pre-built drop (worker entry)."""
    config: RoundLoopConfig = params["roundloop"]
    return FLRoundLoop(config, system=system).run().flat_metrics()


@dataclass(frozen=True)
class FLCurveConfig:
    """Sweep definition for the closed-loop FL training comparison."""

    sweep: SweepConfig = field(
        default_factory=lambda: SweepConfig(num_devices=10, num_trials=1)
    )
    #: Global rounds each run trains for.
    rounds: int = 12
    #: Schemes to compare: ``"proposed"`` plus baseline-registry names.
    schemes: tuple[str, ...] = ("proposed", "static", "delay_min")
    #: Scenario families each scheme runs on.
    families: tuple[str, ...] = ("paper", "hotspot")
    #: Client-selection strategy (shared by every scheme, so the FedAvg
    #: schedule is identical and only the allocation differs).
    selection: str = "all"
    selection_params: Mapping[str, Any] = field(default_factory=dict)
    #: Per-round fading redraw (None = static channel).
    fading: str | None = "rayleigh"
    energy_weight: float = 0.5
    warm_start: bool = True
    local_iterations: int = 8
    #: Device-profile modes the allocator runs on: ``"oracle"`` (the true
    #: profiles) and/or ``"estimated"`` (profiles fitted online from
    #: observed round timings).  The gap between the two curves is the
    #: price of not knowing the fleet.
    profile_modes: tuple[str, ...] = ("oracle",)
    #: Optional churn schedule / battery spec applied to every run (see
    #: :class:`repro.fl.roundloop.RoundLoopConfig`).
    churn: Mapping[str, Any] | None = None
    battery: Mapping[str, Any] | None = None

    @classmethod
    def paper(cls) -> "FLCurveConfig":
        """The fuller comparison: more rounds, trials and families."""
        return cls(
            sweep=SweepConfig(num_devices=20, num_trials=3),
            rounds=30,
            families=("paper", "hotspot", "cell-edge", "hetero-fleet"),
            profile_modes=("oracle", "estimated"),
        )

    def __post_init__(self) -> None:
        for mode in self.profile_modes:
            if mode not in ("oracle", "estimated"):
                raise ValueError(
                    f"unknown profile mode {mode!r}; known: oracle, estimated"
                )
        if not self.profile_modes:
            raise ValueError("profile_modes must name at least one mode")

    def roundloop_config(
        self, scheme: str, seed: int, profiles: str = "oracle"
    ) -> RoundLoopConfig:
        """The per-task round-loop config (scenario comes from the task)."""
        return RoundLoopConfig(
            rounds=self.rounds,
            local_iterations=self.local_iterations,
            energy_weight=self.energy_weight,
            scheme=scheme,
            backend=None,
            warm_start=self.warm_start,
            selection=self.selection,
            selection_params=dict(self.selection_params),
            fading=self.fading,
            seed=seed,
            allocator=self.sweep.allocator,
            churn=dict(self.churn) if self.churn is not None else None,
            battery=dict(self.battery) if self.battery is not None else None,
            estimate_profiles=profiles == "estimated",
        )

    def tasks(self) -> list[SweepTask]:
        """One task per (family × scheme × profile mode × trial)."""
        tasks: list[SweepTask] = []
        for family in self.families:
            sweep = self.sweep.with_scenario(family)
            for scheme in self.schemes:
                for profiles in self.profile_modes:
                    for seed in sweep.trial_seeds():
                        tasks.append(
                            SweepTask(
                                key=("fl", family, scheme, profiles),
                                scenario=sweep.scenario_params(seed=seed),
                                solver_kind="fl_roundloop",
                                solver_params={
                                    "roundloop": self.roundloop_config(
                                        scheme, seed, profiles
                                    )
                                },
                            )
                        )
        return tasks


def run_flcurve(
    config: FLCurveConfig | None = None, *, runner: SweepRunner | None = None
) -> ResultTable:
    """Run the comparison and return one row per (family, scheme, round)."""
    config = config or FLCurveConfig()
    points = run_sweep(config.tasks(), runner=runner)
    table = ResultTable(
        name="flcurve",
        columns=[
            "family",
            "scheme",
            "profiles",
            "round",
            "elapsed_s",
            "energy_j",
            "accuracy",
            "test_loss",
            "selected",
        ],
        metadata={
            "figure": "fl-curve",
            "x_axis": "elapsed_s",
            "rounds": config.rounds,
            "selection": config.selection,
            "profile_modes": list(config.profile_modes),
        },
    )
    for family in config.families:
        for scheme in config.schemes:
            for profiles in config.profile_modes:
                point = points[("fl", family, scheme, profiles)]
                if not point.ok:
                    table.add_error(point.key, point.errors)
                    for round_index in range(1, config.rounds + 1):
                        table.add_row(
                            family=family,
                            scheme=scheme,
                            profiles=profiles,
                            round=round_index,
                            elapsed_s=float("nan"),
                            energy_j=float("nan"),
                            accuracy=float("nan"),
                            test_loss=float("nan"),
                            selected=float("nan"),
                        )
                    continue
                metrics = point.metrics
                for round_index in range(1, config.rounds + 1):
                    prefix = f"r{round_index:03d}"
                    table.add_row(
                        family=family,
                        scheme=scheme,
                        profiles=profiles,
                        round=round_index,
                        elapsed_s=metrics[f"{prefix}_elapsed_s"],
                        energy_j=metrics[f"{prefix}_energy_j"],
                        accuracy=metrics[f"{prefix}_accuracy"],
                        test_loss=metrics[f"{prefix}_test_loss"],
                        selected=metrics[f"{prefix}_selected"],
                    )
    return table
