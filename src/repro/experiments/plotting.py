"""ASCII line plots for terminal-friendly figure previews.

Matplotlib is not available offline, so the examples and experiment runners
render their series as simple character plots — enough to eyeball the
trends the paper's figures show (who is above whom, where lines cross).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_line_plot"]

_MARKERS = "ox+*#@%&"


def ascii_line_plot(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 72,
    height: int = 20,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more series over a shared x-axis as ASCII art.

    Each series gets its own marker character; the legend maps markers back
    to series names.  Returns the plot as a single string.
    """
    if not x_values:
        raise ValueError("x_values must not be empty")
    if not series:
        raise ValueError("series must not be empty")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, expected {len(x_values)}"
            )
    if width < 16 or height < 4:
        raise ValueError("plot area too small")

    all_y = [v for values in series.values() for v in values if v == v]  # skip NaN
    if not all_y:
        raise ValueError("series contain no finite values")
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x_values), max(x_values)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" " for _ in range(width)] for _ in range(height)]

    def to_col(x: float) -> int:
        return int(round((x - x_min) / (x_max - x_min) * (width - 1)))

    def to_row(y: float) -> int:
        return int(round((y_max - y) / (y_max - y_min) * (height - 1)))

    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(x_values, values):
            if y != y:  # NaN
                continue
            grid[to_row(y)][to_col(x)] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    label_width = 11
    for row_index, row in enumerate(grid):
        y_value = y_max - (y_max - y_min) * row_index / (height - 1)
        prefix = f"{y_value:>{label_width}.3g} |"
        lines.append(prefix + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(
        " " * label_width
        + f"  {x_min:<.4g}"
        + " " * max(1, width - 16)
        + f"{x_max:>.4g}"
    )
    if x_label:
        lines.append(" " * label_width + f"  x: {x_label}")
    if y_label:
        lines.append(" " * label_width + f"  y: {y_label}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)
