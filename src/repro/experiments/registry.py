"""Registry mapping experiment names to their runners.

``run_experiment("fig2")`` regenerates the Figure-2 table with the default
(scaled-down) configuration; passing a config object switches to any other
setting, e.g. ``run_experiment("fig2", Fig2Config.paper())``, and passing a
configured :class:`~repro.experiments.runner.SweepRunner` parallelises the
sweep: ``run_experiment("fig2", runner=SweepRunner(jobs=4))``.

Importing this module also pulls in every experiment module, which is how
their custom solver kinds (e.g. the ablation's ``"sp2_agreement"``) get
registered inside sweep worker processes.
"""

from __future__ import annotations

from typing import Any, Callable

from ..exceptions import ConfigurationError
from .ablation import run_ablation
from .fig2 import run_fig2
from .fig3 import run_fig3
from .fig4 import run_fig4
from .fig5 import run_fig5
from .fig6 import run_fig6
from .fig7 import run_fig7
from .fig8 import run_fig8
from .flcurve import run_flcurve
from .results import ResultTable
from .runner import SweepRunner
from .samples import run_samples_sweep

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]

ExperimentFn = Callable[..., ResultTable]

#: All registered experiment runners, keyed by figure/experiment id.
EXPERIMENTS: dict[str, ExperimentFn] = {
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "flcurve": run_flcurve,
    "samples": run_samples_sweep,
    "ablation": run_ablation,
}


def get_experiment(name: str) -> ExperimentFn:
    """Look up an experiment runner by name."""
    try:
        return EXPERIMENTS[name]
    except KeyError as exc:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigurationError(f"unknown experiment {name!r}; known: {known}") from exc


def run_experiment(
    name: str,
    config: Any | None = None,
    *,
    runner: SweepRunner | None = None,
) -> ResultTable:
    """Run an experiment by name with an optional configuration and runner."""
    experiment = get_experiment(name)
    kwargs: dict[str, Any] = {}
    if runner is not None:
        kwargs["runner"] = runner
    if config is None:
        return experiment(**kwargs)
    return experiment(config, **kwargs)
