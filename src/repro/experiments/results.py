"""Result tables: the rows/series the paper's figures report.

A :class:`ResultTable` is a small, dependency-free tabular container with
named columns, JSON/CSV serialisation and markdown rendering — enough to
print the same series a figure plots and to archive benchmark outputs.

Storage is **column-major**: the table keeps one value list per column
(mirroring the packed layout of :mod:`repro.store`'s columnar backend), so
``column()`` / ``series()`` — what every figure actually consumes — are
single list copies instead of a per-row dict walk.  The row API is
unchanged: ``rows`` materialises the same list-of-dicts view as before,
``add_row`` validates against the schema, and JSON/CSV output is
byte-identical to the row-major implementation it replaces.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

__all__ = ["ResultTable"]


class ResultTable:
    """An ordered collection of homogeneous result rows."""

    def __init__(
        self,
        name: str,
        columns: Iterable[str],
        rows: Iterable[Mapping[str, Any]] | None = None,
        metadata: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.columns = list(columns)
        self.metadata: dict[str, Any] = metadata if metadata is not None else {}
        self._series: dict[str, list[Any]] = {c: [] for c in self.columns}
        if len(self._series) != len(self.columns):
            raise ValueError(f"duplicate column names in {self.columns}")
        for row in rows or []:
            self.add_row(**row)

    @property
    def rows(self) -> list[dict[str, Any]]:
        """The row-major view: one dict per row, keys in column order."""
        return [
            {c: self._series[c][i] for c in self.columns} for i in range(len(self))
        ]

    def add_row(self, **values: Any) -> None:
        """Append one row; every table column must be provided."""
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"row is missing columns {missing}")
        extra = [c for c in values if c not in self.columns]
        if extra:
            raise ValueError(f"row has unknown columns {extra}")
        for c in self.columns:
            self._series[c].append(values[c])

    def add_error(self, key: Any, messages: Iterable[str]) -> None:
        """Record failed sweep trials for one grid point in the metadata.

        Error rows keep the table's shape when a drop crashes: the row itself
        carries NaN metrics (see the experiment runners) and this entry keeps
        the failure messages inspectable and serialisable.
        """
        self.metadata.setdefault("errors", []).append(
            {"key": list(key) if isinstance(key, (list, tuple)) else key,
             "messages": list(messages)}
        )

    @property
    def errors(self) -> list[dict[str, Any]]:
        """Failure records appended by :meth:`add_error` (empty if none)."""
        return list(self.metadata.get("errors", []))

    def add_skip(self, key: Any) -> None:
        """Record a grid point whose every trial was skipped (sharded runs).

        A skipped point was never attempted — its trials belong to another
        shard of a ``--shard I/N`` run — so it must stay distinguishable
        from a crashed point: its row carries ``None`` metrics (rendered as
        empty cells, where a crash renders NaN) and this entry records the
        skip instead of an error.  Unsharded runs never skip, so tables
        without skips serialise byte-identically to before.
        """
        self.metadata.setdefault("skipped", []).append(
            list(key) if isinstance(key, (list, tuple)) else key
        )

    @property
    def skips(self) -> list[Any]:
        """Skipped-point keys recorded by :meth:`add_skip` (empty if none)."""
        return list(self.metadata.get("skipped", []))

    def __len__(self) -> int:
        return len(self._series[self.columns[0]]) if self.columns else 0

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultTable):
            return NotImplemented
        return (
            self.name == other.name
            and self.columns == other.columns
            and self._series == other._series
            and self.metadata == other.metadata
        )

    def __repr__(self) -> str:
        return (
            f"ResultTable(name={self.name!r}, columns={self.columns!r}, "
            f"rows={len(self)}, metadata={self.metadata!r})"
        )

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order (a single list copy)."""
        if name not in self._series:
            raise KeyError(f"unknown column {name!r}")
        return list(self._series[name])

    def filter(self, **criteria: Any) -> "ResultTable":
        """Rows whose columns equal the given criteria, as a new table."""
        for key in criteria:
            if key not in self._series:
                return ResultTable(
                    name=self.name, columns=list(self.columns),
                    metadata=dict(self.metadata),
                )
        keep = [
            i
            for i in range(len(self))
            if all(self._series[k][i] == v for k, v in criteria.items())
        ]
        table = ResultTable(
            name=self.name, columns=list(self.columns), metadata=dict(self.metadata)
        )
        for c in self.columns:
            series = self._series[c]
            table._series[c] = [series[i] for i in keep]
        return table

    def series(self, x: str, y: str, **criteria: Any) -> tuple[list[Any], list[Any]]:
        """The ``(x, y)`` series of the rows matching ``criteria``."""
        table = self.filter(**criteria) if criteria else self
        return table.column(x), table.column(y)

    # -- rendering -----------------------------------------------------------
    def to_markdown(self, float_format: str = "{:.4g}") -> str:
        """Render as a GitHub-flavoured markdown table."""

        def fmt(value: Any) -> str:
            if value is None:
                # Skipped-trial cells (sharded runs): empty, never "nan" —
                # a NaN cell means a *crash*, an empty one "not attempted".
                return ""
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        header = "| " + " | ".join(self.columns) + " |"
        divider = "| " + " | ".join("---" for _ in self.columns) + " |"
        body = [
            "| " + " | ".join(fmt(self._series[c][i]) for c in self.columns) + " |"
            for i in range(len(self))
        ]
        return "\n".join([header, divider, *body])

    # -- persistence -----------------------------------------------------------
    def to_json(self, path: str | Path) -> Path:
        """Write the table (rows + metadata) to a JSON file."""
        path = Path(path)
        payload = {
            "name": self.name,
            "columns": self.columns,
            "rows": self.rows,
            "metadata": self.metadata,
        }
        path.write_text(json.dumps(payload, indent=2, default=float))
        return path

    @classmethod
    def from_json(cls, path: str | Path) -> "ResultTable":
        """Load a table previously written by :meth:`to_json`."""
        payload = json.loads(Path(path).read_text())
        return cls(
            name=payload["name"],
            columns=list(payload["columns"]),
            rows=list(payload["rows"]),
            metadata=dict(payload.get("metadata", {})),
        )

    def to_csv(self, path: str | Path) -> Path:
        """Write the rows to a CSV file."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self.columns)
            writer.writeheader()
            writer.writerows(self.rows)
        return path

    @classmethod
    def from_rows(
        cls, name: str, rows: Iterable[dict[str, Any]], metadata: dict[str, Any] | None = None
    ) -> "ResultTable":
        """Build a table from an iterable of dict rows (columns inferred)."""
        rows = list(rows)
        if not rows:
            raise ValueError("cannot infer columns from an empty row set")
        columns = list(rows[0].keys())
        table = cls(name=name, columns=columns, metadata=metadata or {})
        for row in rows:
            table.add_row(**row)
        return table
