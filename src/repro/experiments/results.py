"""Result tables: the rows/series the paper's figures report.

A :class:`ResultTable` is a small, dependency-free tabular container with
named columns, JSON/CSV serialisation and markdown rendering — enough to
print the same series a figure plots and to archive benchmark outputs.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = ["ResultTable"]


@dataclass
class ResultTable:
    """An ordered collection of homogeneous result rows."""

    name: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        """Append one row; every table column must be provided."""
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"row is missing columns {missing}")
        extra = [c for c in values if c not in self.columns]
        if extra:
            raise ValueError(f"row has unknown columns {extra}")
        self.rows.append({c: values[c] for c in self.columns})

    def add_error(self, key: Any, messages: Iterable[str]) -> None:
        """Record failed sweep trials for one grid point in the metadata.

        Error rows keep the table's shape when a drop crashes: the row itself
        carries NaN metrics (see the experiment runners) and this entry keeps
        the failure messages inspectable and serialisable.
        """
        self.metadata.setdefault("errors", []).append(
            {"key": list(key) if isinstance(key, (list, tuple)) else key,
             "messages": list(messages)}
        )

    @property
    def errors(self) -> list[dict[str, Any]]:
        """Failure records appended by :meth:`add_error` (empty if none)."""
        return list(self.metadata.get("errors", []))

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.rows)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row[name] for row in self.rows]

    def filter(self, **criteria: Any) -> "ResultTable":
        """Rows whose columns equal the given criteria, as a new table."""
        selected = [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in criteria.items())
        ]
        return ResultTable(
            name=self.name, columns=list(self.columns), rows=selected, metadata=dict(self.metadata)
        )

    def series(self, x: str, y: str, **criteria: Any) -> tuple[list[Any], list[Any]]:
        """The ``(x, y)`` series of the rows matching ``criteria``."""
        table = self.filter(**criteria) if criteria else self
        return table.column(x), table.column(y)

    # -- rendering -----------------------------------------------------------
    def to_markdown(self, float_format: str = "{:.4g}") -> str:
        """Render as a GitHub-flavoured markdown table."""

        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        header = "| " + " | ".join(self.columns) + " |"
        divider = "| " + " | ".join("---" for _ in self.columns) + " |"
        body = [
            "| " + " | ".join(fmt(row[c]) for c in self.columns) + " |"
            for row in self.rows
        ]
        return "\n".join([header, divider, *body])

    # -- persistence -----------------------------------------------------------
    def to_json(self, path: str | Path) -> Path:
        """Write the table (rows + metadata) to a JSON file."""
        path = Path(path)
        payload = {
            "name": self.name,
            "columns": self.columns,
            "rows": self.rows,
            "metadata": self.metadata,
        }
        path.write_text(json.dumps(payload, indent=2, default=float))
        return path

    @classmethod
    def from_json(cls, path: str | Path) -> "ResultTable":
        """Load a table previously written by :meth:`to_json`."""
        payload = json.loads(Path(path).read_text())
        return cls(
            name=payload["name"],
            columns=list(payload["columns"]),
            rows=list(payload["rows"]),
            metadata=dict(payload.get("metadata", {})),
        )

    def to_csv(self, path: str | Path) -> Path:
        """Write the rows to a CSV file."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self.columns)
            writer.writeheader()
            writer.writerows(self.rows)
        return path

    @classmethod
    def from_rows(
        cls, name: str, rows: Iterable[dict[str, Any]], metadata: dict[str, Any] | None = None
    ) -> "ResultTable":
        """Build a table from an iterable of dict rows (columns inferred)."""
        rows = list(rows)
        if not rows:
            raise ValueError("cannot infer columns from an empty row set")
        columns = list(rows[0].keys())
        table = cls(name=name, columns=columns, metadata=metadata or {})
        for row in rows:
            table.add_row(**row)
        return table
