"""The parallel sweep engine behind every experiment runner.

The paper's evaluation is a large grid of independent allocator solves —
(grid point × random drop) — and nothing in one solve depends on another.
This module turns that structure into an explicit task list and executes it
through a pluggable :class:`SweepRunner`:

* a **task** (:class:`SweepTask`) is pure data — the scenario recipe, the
  solver kind and its parameters — so it can be hashed, cached and shipped
  to a worker process;
* **solver kinds** live in a registry (:func:`register_solver_kind`), so an
  experiment can plug in a custom metric function without the engine
  knowing about it (the built-in kinds are ``"proposed"`` and
  ``"baseline"``);
* the runner fans tasks out over a :class:`~concurrent.futures.ProcessPoolExecutor`
  (``jobs > 1``) or runs them inline (``jobs == 1``), with **deterministic
  seeding** (the seed is part of the task, so serial and parallel runs
  produce bit-identical tables), **crash isolation** (a failing task becomes
  an error outcome instead of killing the sweep) and optional **progress
  reporting**;
* successful results are stored in an **on-disk JSON cache** keyed by a
  SHA-256 hash of the task's canonical payload, so repeating a sweep with an
  unchanged configuration is instant and changing any knob invalidates
  exactly the affected tasks.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from ..baselines.registry import get_baseline
from ..core.allocator import AllocatorConfig, ResourceAllocator
from ..core.problem import JointProblem, ProblemWeights
from ..scenarios import SCENARIO_SCHEMA_VERSION, ScenarioSpec
from ..system import SystemModel

__all__ = [
    "SweepTask",
    "TaskOutcome",
    "SweepStats",
    "SweepCache",
    "SweepRunner",
    "register_solver_kind",
    "solver_kinds",
    "execute_task",
    "task_hash",
    "default_cache_dir",
    "get_active_runner",
    "set_default_runner",
    "use_runner",
]

#: Bump to invalidate every cached result (e.g. if the metric schema changes).
#: 2: scenarios became (family, params) specs — the family name and scenario
#: schema version joined the payload, so pre-registry entries are stale.
CACHE_VERSION = 2

SolverFn = Callable[[SystemModel, Mapping[str, Any]], Mapping[str, float]]

_SOLVER_KINDS: dict[str, SolverFn] = {}


def register_solver_kind(name: str) -> Callable[[SolverFn], SolverFn]:
    """Register ``fn(system, params) -> metrics`` under ``name``.

    The registry is what keeps the engine pluggable: experiments declare the
    *name* of the computation in their tasks and the worker looks the
    function up at execution time, so task objects stay pure data.
    """

    def decorator(fn: SolverFn) -> SolverFn:
        _SOLVER_KINDS[name] = fn
        return fn

    return decorator


def solver_kinds() -> tuple[str, ...]:
    """The currently registered solver-kind names."""
    return tuple(sorted(_SOLVER_KINDS))


def _resolve_solver(name: str) -> SolverFn:
    if name not in _SOLVER_KINDS:
        # Experiment modules register extra kinds at import time; a worker
        # process may not have imported them yet, so pull in the full
        # experiment registry before giving up.
        from . import registry  # noqa: F401  (import for side effects)
    if name not in _SOLVER_KINDS and ":" in name:
        # ``"pkg.module:function"`` kinds resolve by import, which keeps
        # third-party solver kinds working in worker processes even under
        # the spawn/forkserver start methods (where a decorator run in the
        # parent never executes in the child).
        module_name, _, attr = name.partition(":")
        fn = getattr(importlib.import_module(module_name), attr)
        _SOLVER_KINDS[name] = fn
        return fn
    try:
        return _SOLVER_KINDS[name]
    except KeyError as exc:
        known = ", ".join(solver_kinds())
        raise KeyError(f"unknown solver kind {name!r}; known: {known}") from exc


@register_solver_kind("proposed")
def _run_proposed(system: SystemModel, params: Mapping[str, Any]) -> Mapping[str, float]:
    """Algorithm 2 on one drop (the paper's proposed scheme)."""
    weights = ProblemWeights.from_energy_weight(params["energy_weight"])
    problem = JointProblem(system, weights, deadline_s=params.get("deadline_s"))
    allocator = ResourceAllocator(params.get("allocator"))
    return allocator.solve(problem).summary()


@register_solver_kind("baseline")
def _run_baseline(system: SystemModel, params: Mapping[str, Any]) -> Mapping[str, float]:
    """A named baseline scheme on one drop."""
    weights = ProblemWeights.from_energy_weight(params["energy_weight"])
    problem = JointProblem(system, weights, deadline_s=params.get("deadline_s"))
    kwargs = dict(params.get("kwargs", {}))
    return get_baseline(params["name"])(problem, **kwargs).summary()


@dataclass(frozen=True)
class SweepTask:
    """One independent unit of sweep work: build a drop, solve it, report.

    ``key`` identifies the grid point; the trials sharing a key are averaged
    by the aggregation layer.  ``scenario`` holds the
    :class:`~repro.scenario.ScenarioConfig` keyword arguments *including the
    trial seed*, which is what makes execution order irrelevant.
    """

    key: tuple
    scenario: Mapping[str, Any]
    solver_kind: str
    solver_params: Mapping[str, Any] = field(default_factory=dict)

    def scenario_spec(self) -> ScenarioSpec:
        """The task's scenario as a (family, params) spec.

        ``scenario`` is a flat mapping whose optional ``"family"`` key names
        the scenario family (default ``"paper"``, matching the pre-registry
        task format).
        """
        return ScenarioSpec.from_mapping(self.scenario)

    def payload(self) -> dict[str, Any]:
        """The canonical JSON-able description used for cache hashing.

        The scenario family and scenario schema version are explicit fields,
        so results from different families (or from an older scenario
        encoding) can never collide.  The package version is part of the
        payload so a release that changes solver behaviour invalidates the
        cache automatically; CACHE_VERSION handles schema changes between
        releases.
        """
        from .. import __version__

        spec = self.scenario_spec()
        return {
            "cache_version": CACHE_VERSION,
            "scenario_schema": SCENARIO_SCHEMA_VERSION,
            "repro_version": __version__,
            "scenario_family": spec.family,
            "scenario": _jsonify(spec.params),
            "solver_kind": self.solver_kind,
            "solver_params": _jsonify(self.solver_params),
        }


def _jsonify(value: Any) -> Any:
    """Canonicalise a task component into JSON-stable plain data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": _jsonify(dataclasses.asdict(value)),
        }
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__} for cache hashing")


def task_hash(task: SweepTask) -> str:
    """A stable SHA-256 over the task's canonical payload (the cache key)."""
    blob = json.dumps(task.payload(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def execute_task(task: SweepTask) -> dict[str, float]:
    """Build the task's scenario and run its solver kind (worker entry point).

    The scenario family resolves through the registry (importing
    :mod:`repro.scenarios` registered the built-ins; dotted
    ``module:function`` families resolve by import), so custom families
    work in spawned worker processes exactly like custom solver kinds.
    """
    solver = _resolve_solver(task.solver_kind)
    system = task.scenario_spec().build()
    return dict(solver(system, task.solver_params))


def _execute_safely(task: SweepTask) -> tuple[dict[str, float] | None, str | None]:
    """Run one task, trading exceptions for an error string.

    Keeping the failure a plain string (instead of re-raising across the
    process boundary) guarantees the outcome is picklable and that one bad
    drop cannot take the whole sweep down.
    """
    try:
        return execute_task(task), None
    except Exception as exc:  # noqa: BLE001 — crash isolation is the point
        return None, f"{type(exc).__name__}: {exc}"


@dataclass(frozen=True)
class TaskOutcome:
    """What happened to one task: metrics, a cache hit, or an error."""

    task: SweepTask
    metrics: dict[str, float] | None
    error: str | None = None
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.metrics is not None


@dataclass
class SweepStats:
    """Bookkeeping of one :meth:`SweepRunner.run` call."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    failed: int = 0
    elapsed_s: float = 0.0


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``.repro-cache`` in the cwd."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))


class SweepCache:
    """On-disk JSON store of per-task metrics, keyed by :func:`task_hash`.

    Layout: ``<root>/sweeps/<hash[:2]>/<hash>.json`` with the task payload
    stored alongside the metrics so entries stay debuggable.  Only
    successful results are stored — a failed task is always retried on the
    next run.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def _path(self, digest: str) -> Path:
        return self.root / "sweeps" / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> dict[str, float] | None:
        path = self._path(digest)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        metrics = payload.get("metrics")
        return dict(metrics) if isinstance(metrics, dict) else None

    def put(self, digest: str, task: SweepTask, metrics: Mapping[str, float]) -> None:
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"task": task.payload(), "metrics": dict(metrics)}
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2, default=float))
        os.replace(tmp, path)


ProgressFn = Callable[[int, int, TaskOutcome], None]


class SweepRunner:
    """Execute a batch of :class:`SweepTask` with caching and parallelism.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs inline in this process —
        no pool, no pickling; ``0`` or ``None`` means "all CPU cores";
        ``N > 1`` uses a :class:`~concurrent.futures.ProcessPoolExecutor`.
    cache_dir:
        Root of the result cache; defaults to :func:`default_cache_dir`.
    use_cache:
        Disable to force recomputation (the cache is neither read nor
        written).
    progress:
        Optional ``fn(done, total, outcome)`` invoked in the parent process
        after every task completes (including cache hits).
    """

    def __init__(
        self,
        jobs: int | None = 1,
        *,
        cache_dir: str | Path | None = None,
        use_cache: bool = False,
        progress: ProgressFn | None = None,
    ) -> None:
        if jobs is None or jobs <= 0:
            jobs = os.cpu_count() or 1
        self.jobs = int(jobs)
        self.use_cache = use_cache
        self.cache = SweepCache(cache_dir)
        self.progress = progress
        self.last_stats = SweepStats()

    # -- execution -----------------------------------------------------------
    def run(self, tasks: Sequence[SweepTask]) -> list[TaskOutcome]:
        """Run every task, returning outcomes in task order."""
        started = time.monotonic()
        stats = SweepStats(total=len(tasks))
        outcomes: list[TaskOutcome | None] = [None] * len(tasks)
        done = 0

        pending: list[int] = []
        for index, task in enumerate(tasks):
            cached = self.cache.get(task_hash(task)) if self.use_cache else None
            if cached is not None:
                outcome = TaskOutcome(task=task, metrics=cached, cached=True)
                outcomes[index] = outcome
                stats.cache_hits += 1
                done += 1
                self._report(done, stats.total, outcome)
            else:
                pending.append(index)

        if pending:
            executor = (
                ProcessPoolExecutor(max_workers=min(self.jobs, len(pending)))
                if self.jobs > 1
                else None
            )
            try:
                for index, outcome in self._execute(tasks, pending, executor):
                    outcomes[index] = outcome
                    stats.executed += 1
                    if outcome.error is not None:
                        stats.failed += 1
                    elif self.use_cache:
                        self._cache_put(outcome)
                    done += 1
                    self._report(done, stats.total, outcome)
            finally:
                if executor is not None:
                    executor.shutdown(wait=True, cancel_futures=True)

        stats.elapsed_s = time.monotonic() - started
        self.last_stats = stats
        return [outcome for outcome in outcomes if outcome is not None]

    def _execute(
        self,
        tasks: Sequence[SweepTask],
        pending: Sequence[int],
        executor: ProcessPoolExecutor | None,
    ) -> Iterator[tuple[int, TaskOutcome]]:
        if executor is None:
            for index in pending:
                metrics, error = _execute_safely(tasks[index])
                yield index, TaskOutcome(task=tasks[index], metrics=metrics, error=error)
            return

        futures: dict[Future, int] = {
            executor.submit(_execute_safely, tasks[index]): index for index in pending
        }
        remaining = set(futures)
        while remaining:
            finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in finished:
                index = futures[future]
                try:
                    metrics, error = future.result()
                except Exception as exc:  # e.g. BrokenProcessPool
                    metrics, error = None, f"{type(exc).__name__}: {exc}"
                yield index, TaskOutcome(task=tasks[index], metrics=metrics, error=error)

    def _cache_put(self, outcome: TaskOutcome) -> None:
        """Store one result, degrading to cache-off if the disk won't take it.

        A computed result must never be lost to a cache problem — an
        unwritable or misconfigured cache directory downgrades the run to
        uncached instead of crashing it.
        """
        try:
            self.cache.put(task_hash(outcome.task), outcome.task, outcome.metrics)
        except OSError as exc:
            self.use_cache = False
            warnings.warn(
                f"result cache disabled: cannot write under {self.cache.root}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )

    def _report(self, done: int, total: int, outcome: TaskOutcome) -> None:
        if self.progress is not None:
            self.progress(done, total, outcome)


# -- the ambient runner ------------------------------------------------------
#
# Experiment functions accept an explicit ``runner=`` argument, but the CLI
# (and ad-hoc scripts) can install a configured runner once and have every
# ``run_figN`` call pick it up without threading it through each signature.

_DEFAULT_RUNNER: SweepRunner | None = None


def get_active_runner(runner: SweepRunner | None = None) -> SweepRunner:
    """Resolve the runner to use: explicit > installed default > serial."""
    if runner is not None:
        return runner
    if _DEFAULT_RUNNER is not None:
        return _DEFAULT_RUNNER
    return SweepRunner()


def set_default_runner(runner: SweepRunner | None) -> None:
    """Install (or clear, with ``None``) the process-wide default runner."""
    global _DEFAULT_RUNNER
    _DEFAULT_RUNNER = runner


@contextmanager
def use_runner(runner: SweepRunner) -> Iterator[SweepRunner]:
    """Temporarily install ``runner`` as the process-wide default."""
    global _DEFAULT_RUNNER
    previous = _DEFAULT_RUNNER
    _DEFAULT_RUNNER = runner
    try:
        yield runner
    finally:
        _DEFAULT_RUNNER = previous
