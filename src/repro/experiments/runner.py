"""The parallel sweep engine behind every experiment runner.

The paper's evaluation is a large grid of independent allocator solves —
(grid point × random drop) — and nothing in one solve depends on another.
This module turns that structure into an explicit task list and executes it
through a pluggable :class:`SweepRunner`:

* a **task** (:class:`SweepTask`) is pure data — the scenario recipe, the
  solver kind and its parameters — so it can be hashed, cached and shipped
  to a worker process;
* **solver kinds** live in a registry (:func:`register_solver_kind`), so an
  experiment can plug in a custom metric function without the engine
  knowing about it (the built-in kinds are ``"proposed"`` and
  ``"baseline"``);
* the runner fans tasks out over a :class:`~concurrent.futures.ProcessPoolExecutor`
  (``jobs > 1``) or runs them inline (``jobs == 1``), with **deterministic
  seeding** (the seed is part of the task, so serial and parallel runs
  produce bit-identical tables), **crash isolation** (a failing task becomes
  an error outcome instead of killing the sweep) and optional **progress
  reporting**;
* successful results are stored in a pluggable **on-disk result store**
  (:mod:`repro.store` — JSON-per-task or packed columnar) keyed by a
  SHA-256 hash of the task's canonical payload, so repeating a sweep with an
  unchanged configuration is instant and changing any knob invalidates
  exactly the affected tasks;
* with ``shard="I/N"`` the runner executes only the tasks whose hash lands
  in shard ``I`` of ``N``, returning the rest as ``skipped`` outcomes — N
  independent invocations partition any task list exactly, and
  ``repro store merge`` reassembles their shard stores into the serial
  store bit-for-bit;
* with ``warm_start=True`` the runner chains tasks that share a
  ``warm_key`` **along the sweep axis** (``warm_order``) and seeds each
  solve from its neighbour's solution: the iterative allocator then starts
  next to its fixed point instead of from the cold equal split, cutting
  outer iterations several-fold.  Chains run sequentially but *different*
  chains still fan out over the pool, and the cache key is unchanged (a
  warm result must agree with the cold one within solver tolerance — the
  parity tests enforce it).
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from ..baselines.registry import get_baseline
from ..core.allocation import ResourceAllocation
from ..core.allocator import ResourceAllocator
from ..core.problem import JointProblem, ProblemWeights
from ..exceptions import ConfigurationError
from ..perf.timers import StageTimings, collect_timings, stage, wall_clock
from ..scenarios import SCENARIO_SCHEMA_VERSION, ScenarioSpec
from ..store import JsonResultStore, ResultStore, open_store, shard_for_digest
from ..system import SystemModel

__all__ = [
    "BatchConfig",
    "SweepTask",
    "TaskOutcome",
    "SweepStats",
    "SweepCache",
    "SweepRunner",
    "register_solver_kind",
    "solver_kinds",
    "warm_solver_kinds",
    "allocation_from_state",
    "batchable_task",
    "execute_batch",
    "execute_task",
    "execute_task_detailed",
    "task_hash",
    "parse_shard",
    "default_cache_dir",
    "get_active_runner",
    "set_default_runner",
    "use_runner",
]

#: Bump to invalidate every cached result (e.g. if the metric schema changes).
#: 2: scenarios became (family, params) specs — the family name and scenario
#: schema version joined the payload, so pre-registry entries are stale.
#: 3: the metrics schema gained solver iteration counts (inner_iterations)
#: and entries may carry the final allocation as warm-start state.
#: 4: the SP2 backend knob joined the allocator configuration (and the
#: multiplier search gained its exact-root polish), so pre-backend entries
#: were solved to a different tolerance profile and are stale.
#: 5: RoundLoopConfig grew the dynamic-fleet layer (churn / battery /
#: estimated-profile knobs ride into the payload through the asdict
#: carrier) and fl_roundloop metrics gained the per-round dynamic keys, so
#: pre-dynamic FL entries carry an incomplete schema.
CACHE_VERSION = 5

SolverFn = Callable[[SystemModel, Mapping[str, Any]], Mapping[str, float]]

_SOLVER_KINDS: dict[str, SolverFn] = {}
#: Kinds whose function accepts a ``warm_state`` third argument and returns
#: ``(metrics, state)`` — the contract that makes warm-start chains work.
_WARM_SOLVER_KINDS: set[str] = set()


def register_solver_kind(name: str, *, warm: bool = False) -> Callable[[SolverFn], SolverFn]:
    """Register ``fn(system, params) -> metrics`` under ``name``.

    The registry is what keeps the engine pluggable: experiments declare the
    *name* of the computation in their tasks and the worker looks the
    function up at execution time, so task objects stay pure data.

    With ``warm=True`` the function is registered as warm-start capable and
    must instead have the signature ``fn(system, params, warm_state=None)
    -> (metrics, state)``: ``state`` is a JSON-able snapshot of the solution
    that the runner feeds to the next task of a warm chain (and stores in
    the result cache), and ``warm_state`` is the neighbouring task's
    snapshot — or ``None`` for a cold start.
    """

    def decorator(fn: SolverFn) -> SolverFn:
        _SOLVER_KINDS[name] = fn
        if warm:
            _WARM_SOLVER_KINDS.add(name)
        return fn

    return decorator


def warm_solver_kinds() -> tuple[str, ...]:
    """The registered solver kinds that support warm-start chaining."""
    return tuple(sorted(_WARM_SOLVER_KINDS))


def solver_kinds() -> tuple[str, ...]:
    """The currently registered solver-kind names."""
    return tuple(sorted(_SOLVER_KINDS))


def allocation_from_state(
    system: SystemModel, state: Mapping[str, Any]
) -> ResourceAllocation | None:
    """Rebuild a warm-start allocation from a neighbour's state snapshot.

    The neighbouring sweep point has (slightly) different constraints, so
    the snapshot is projected into the new problem's boxes: power and
    frequency are clipped, the bandwidth split is rescaled into the budget.
    Anything unusable (wrong fleet size, non-finite values, zero rates)
    returns ``None`` and the task simply starts cold.
    """
    try:
        power = np.asarray(state["power_w"], dtype=float)
        bandwidth = np.asarray(state["bandwidth_hz"], dtype=float)
        frequency = np.asarray(state["frequency_hz"], dtype=float)
    except (KeyError, TypeError, ValueError):
        return None
    shape = (system.num_devices,)
    if power.shape != shape or bandwidth.shape != shape or frequency.shape != shape:
        return None
    finite = (
        np.all(np.isfinite(power))
        and np.all(np.isfinite(bandwidth))
        and np.all(np.isfinite(frequency))
    )
    if not finite:
        return None
    power = np.clip(power, np.maximum(system.min_power_w, 1e-6), system.max_power_w)
    frequency = np.clip(frequency, system.min_frequency_hz, system.max_frequency_hz)
    bandwidth = np.maximum(bandwidth, 0.0)
    total = float(bandwidth.sum())
    if total <= 0.0 or np.any(bandwidth <= 0.0) or np.any(power <= 0.0):
        return None
    if total > system.total_bandwidth_hz:
        bandwidth = bandwidth * (system.total_bandwidth_hz / total)
    return ResourceAllocation(
        power_w=power, bandwidth_hz=bandwidth, frequency_hz=frequency
    )


def _resolve_solver(name: str) -> SolverFn:
    if name not in _SOLVER_KINDS:
        # Experiment modules register extra kinds at import time; a worker
        # process may not have imported them yet, so pull in the full
        # experiment registry before giving up.
        from . import registry  # noqa: F401  (import for side effects)
    if name not in _SOLVER_KINDS and ":" in name:
        # ``"pkg.module:function"`` kinds resolve by import, which keeps
        # third-party solver kinds working in worker processes even under
        # the spawn/forkserver start methods (where a decorator run in the
        # parent never executes in the child).
        module_name, _, attr = name.partition(":")
        fn = getattr(importlib.import_module(module_name), attr)
        _SOLVER_KINDS[name] = fn
        return fn
    try:
        return _SOLVER_KINDS[name]
    except KeyError as exc:
        known = ", ".join(solver_kinds())
        raise KeyError(f"unknown solver kind {name!r}; known: {known}") from exc


@register_solver_kind("proposed", warm=True)
def _run_proposed(
    system: SystemModel,
    params: Mapping[str, Any],
    warm_state: Mapping[str, Any] | None = None,
) -> tuple[Mapping[str, float], dict[str, Any]]:
    """Algorithm 2 on one drop (the paper's proposed scheme).

    Warm-start capable: a neighbouring sweep point's state switches the
    allocator onto its seeded hot path, with the neighbour's final
    bandwidth multiplier priming the inner KKT solves.  The seeding is
    deliberately *trajectory-preserving* — Algorithm 2 is an alternating
    heuristic whose fixed point depends on the initial allocation, so
    seeding the initial point itself would converge to a (measurably)
    different solution and break warm/cold parity.  The snapshot still
    carries the full allocation for API consumers who want genuine
    continuation via ``ResourceAllocator.solve(initial_allocation=...)``.
    """
    weights = ProblemWeights.from_energy_weight(params["energy_weight"])
    problem = JointProblem(system, weights, deadline_s=params.get("deadline_s"))
    allocator = ResourceAllocator(params.get("allocator"))
    hints = None
    if warm_state is not None:
        hints = {"mu": float(warm_state.get("mu") or 0.0)}
    result = allocator.solve(problem, warm_hints=hints)
    state = {
        "power_w": result.allocation.power_w.tolist(),
        "bandwidth_hz": result.allocation.bandwidth_hz.tolist(),
        "frequency_hz": result.allocation.frequency_hz.tolist(),
        "mu": result.warm_hints.get("mu", 0.0),
    }
    return result.summary(), state


@register_solver_kind("baseline")
def _run_baseline(system: SystemModel, params: Mapping[str, Any]) -> Mapping[str, float]:
    """A named baseline scheme on one drop."""
    weights = ProblemWeights.from_energy_weight(params["energy_weight"])
    problem = JointProblem(system, weights, deadline_s=params.get("deadline_s"))
    kwargs = dict(params.get("kwargs", {}))
    return get_baseline(params["name"])(problem, **kwargs).summary()


@dataclass(frozen=True)
class SweepTask:
    """One independent unit of sweep work: build a drop, solve it, report.

    ``key`` identifies the grid point; the trials sharing a key are averaged
    by the aggregation layer.  ``scenario`` holds the
    :class:`~repro.scenario.ScenarioConfig` keyword arguments *including the
    trial seed*, which is what makes execution order irrelevant.

    ``warm_key`` / ``warm_order`` describe the task's position on its sweep
    axis: tasks sharing a ``warm_key`` form one warm-start chain, executed
    in ``warm_order`` when the runner's ``warm_start`` flag is on.  Both are
    *scheduling hints only* — they are deliberately excluded from
    :meth:`payload`, so warm and cold runs share cache keys (their results
    agree within solver tolerance).
    """

    key: tuple
    scenario: Mapping[str, Any]
    solver_kind: str
    solver_params: Mapping[str, Any] = field(default_factory=dict)
    warm_key: tuple | None = None
    warm_order: float = 0.0

    def scenario_spec(self) -> ScenarioSpec:
        """The task's scenario as a (family, params) spec.

        ``scenario`` is a flat mapping whose optional ``"family"`` key names
        the scenario family (default ``"paper"``, matching the pre-registry
        task format).
        """
        return ScenarioSpec.from_mapping(self.scenario)

    def payload(self) -> dict[str, Any]:
        """The canonical JSON-able description used for cache hashing.

        The scenario family and scenario schema version are explicit fields,
        so results from different families (or from an older scenario
        encoding) can never collide.  The package version is part of the
        payload so a release that changes solver behaviour invalidates the
        cache automatically; CACHE_VERSION handles schema changes between
        releases.
        """
        from .. import __version__

        spec = self.scenario_spec()
        return {
            "cache_version": CACHE_VERSION,
            "scenario_schema": SCENARIO_SCHEMA_VERSION,
            "repro_version": __version__,
            "scenario_family": spec.family,
            "scenario": _jsonify(spec.params),
            "solver_kind": self.solver_kind,
            "solver_params": _jsonify(self.solver_params),
        }


def _jsonify(value: Any) -> Any:
    """Canonicalise a task component into JSON-stable plain data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": _jsonify(dataclasses.asdict(value)),
        }
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__} for cache hashing")


def task_hash(task: SweepTask) -> str:
    """A stable SHA-256 over the task's canonical payload (the cache key)."""
    blob = json.dumps(task.payload(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def execute_task(task: SweepTask) -> dict[str, float]:
    """Build the task's scenario and run its solver kind (worker entry point).

    The scenario family resolves through the registry (importing
    :mod:`repro.scenarios` registered the built-ins; dotted
    ``module:function`` families resolve by import), so custom families
    work in spawned worker processes exactly like custom solver kinds.
    """
    metrics, _state, _timings = execute_task_detailed(task)
    return metrics


def execute_task_detailed(
    task: SweepTask, warm_state: Mapping[str, Any] | None = None
) -> tuple[dict[str, float], dict[str, Any] | None, dict[str, float]]:
    """Run one task and also return its solution state and stage timings.

    ``warm_state`` seeds warm-capable solver kinds; others ignore it.  The
    returned state is ``None`` for kinds that do not expose one.  Timings
    cover the whole execution (``scenario_build`` / ``solve`` plus whatever
    stages the solver recorded through :mod:`repro.perf.timers`).
    """
    solver = _resolve_solver(task.solver_kind)
    collector = StageTimings()
    with collect_timings(collector):
        with stage("scenario_build"):
            system = task.scenario_spec().build()
        with stage("solve"):
            if task.solver_kind in _WARM_SOLVER_KINDS:
                metrics, state = solver(system, task.solver_params, warm_state)
            else:
                metrics, state = solver(system, task.solver_params), None
    return dict(metrics), state, collector.as_dict()


def _execute_safely(
    task: SweepTask, warm_state: Mapping[str, Any] | None = None
) -> tuple[dict[str, float] | None, dict[str, Any] | None, dict[str, float] | None, str | None]:
    """Run one task, trading exceptions for an error string.

    Keeping the failure a plain string (instead of re-raising across the
    process boundary) guarantees the outcome is picklable and that one bad
    drop cannot take the whole sweep down.
    """
    try:
        metrics, state, timings = execute_task_detailed(task, warm_state)
        return metrics, state, timings, None
    except Exception as exc:  # repro-lint: disable=RL005 -- crash isolation: one bad drop must become an error row, not kill the sweep
        return None, None, None, f"{type(exc).__name__}: {exc}"


def batchable_task(task: SweepTask) -> bool:
    """Whether ``task`` can ride the lockstep multi-solve path.

    This is the *shape* check shared by every batched execution surface
    (the runner's batch mode and the ``repro serve`` coalescer): the
    corners it rejects mirror the lanes
    :meth:`ResourceAllocator.solve_batch` would route through the per-drop
    solver anyway (baseline kinds, a hard deadline, ``energy_weight <= 0``),
    so callers keep their batches densely packed with lanes that genuinely
    run in lockstep.  Scheduling-level exclusions (e.g. warm chains, which
    are sequential by definition) are the caller's business.
    """
    if task.solver_kind != "proposed":
        return False
    params = task.solver_params
    if params.get("deadline_s") is not None:
        return False
    return float(params.get("energy_weight", 0.0)) > 0.0


def execute_batch(
    tasks: Sequence[SweepTask],
) -> list[tuple[dict[str, float] | None, dict[str, Any] | None, str | None]]:
    """Solve one group of batchable tasks in a single lockstep pass.

    ``tasks`` must share a :meth:`SweepRunner.batch_group_key` (same solver
    configuration and device count), so one :class:`ResourceAllocator`
    serves the whole group.  Returns one ``(metrics, state, error)`` triple
    per task, in task order; metrics and state snapshots are built exactly
    as ``_run_proposed`` builds them, so a batched result's cache entry is
    byte-identical to the per-drop one.  Failures follow
    :func:`_execute_safely`'s contract: a broken lane (scenario build or
    solve) becomes an error triple with the same ``"Type: message"``
    string, never an exception.
    """
    results: list[tuple[dict[str, float] | None, dict[str, Any] | None, str | None]] = [
        (None, None, None)
    ] * len(tasks)
    lanes: list[tuple[int, JointProblem]] = []
    for position, task in enumerate(tasks):
        try:
            system = task.scenario_spec().build()
            weights = ProblemWeights.from_energy_weight(
                task.solver_params["energy_weight"]
            )
            problem = JointProblem(
                system, weights, deadline_s=task.solver_params.get("deadline_s")
            )
        except Exception as exc:  # repro-lint: disable=RL005 -- crash isolation: one bad drop must become an error row, not kill the batch
            results[position] = (None, None, f"{type(exc).__name__}: {exc}")
            continue
        lanes.append((position, problem))
    if not lanes:
        return results
    # One allocator serves the batch: the group key pins the configuration,
    # so every lane would build this same instance.
    allocator = ResourceAllocator(tasks[lanes[0][0]].solver_params.get("allocator"))
    solved = allocator.solve_batch(
        [problem for _, problem in lanes], return_exceptions=True
    )
    for (position, _problem), result in zip(lanes, solved):
        if isinstance(result, Exception):
            results[position] = (None, None, f"{type(result).__name__}: {result}")
            continue
        state = {
            "power_w": result.allocation.power_w.tolist(),
            "bandwidth_hz": result.allocation.bandwidth_hz.tolist(),
            "frequency_hz": result.allocation.frequency_hz.tolist(),
            "mu": result.warm_hints.get("mu", 0.0),
        }
        results[position] = (dict(result.summary()), state, None)
    return results


@dataclass(frozen=True)
class TaskOutcome:
    """What happened to one task: metrics, a cache hit, an error, or a skip.

    ``state`` is the solver's solution snapshot (used to seed the next task
    of a warm chain), ``timings`` the per-stage wall-clock breakdown of the
    execution, and ``warm`` whether the solve was seeded from a neighbour.
    ``skipped`` marks a task that belongs to a *different* shard of a
    ``--shard I/N`` run: it was neither executed nor failed, and the
    aggregation layer must not count it against the grid point.
    """

    task: SweepTask
    metrics: dict[str, float] | None
    error: str | None = None
    cached: bool = False
    state: dict[str, Any] | None = None
    timings: dict[str, float] | None = None
    warm: bool = False
    skipped: bool = False

    @property
    def ok(self) -> bool:
        return self.metrics is not None


@dataclass(frozen=True)
class BatchConfig:
    """How the runner groups tasks for the batched multi-solve path.

    The batch size is a *scheduling knob only*: a batched lane's trajectory
    is bit-identical to the per-drop solve (``ResourceAllocator.solve_batch``
    guarantees it, the parity tests enforce it), so the size is deliberately
    excluded from :meth:`SweepTask.payload` and cache keys are unchanged —
    exactly like ``warm_key`` / ``warm_order``.
    """

    #: Maximum number of lanes solved in one lockstep Algorithm-2 pass.
    size: int = 8


@dataclass
class SweepStats:
    """Bookkeeping of one :meth:`SweepRunner.run` call."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    failed: int = 0
    warm_started: int = 0
    elapsed_s: float = 0.0
    cache_io_s: float = 0.0
    #: Lockstep multi-solve groups executed (0 unless ``batch_size`` is set).
    batches: int = 0
    #: Tasks that went through the batched path (the rest ran per drop).
    batched_tasks: int = 0
    #: Tasks belonging to another shard of a ``--shard I/N`` run.
    skipped: int = 0
    #: Result-store backend the run's cache lived on ("" when uncached).
    store_backend: str = ""


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``.repro-cache`` in the cwd."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))


def parse_shard(spec: str | tuple[int, int] | None) -> tuple[int, int] | None:
    """Normalise a ``--shard`` spec (``"I/N"`` or ``(I, N)``) to ``(I, N)``.

    ``I`` is the zero-based shard index, ``N`` the shard count; ``None``
    (and the trivial ``(0, 1)`` spec, which selects every task) mean
    unsharded.  Anything malformed raises :class:`ConfigurationError`.
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        index_text, sep, count_text = spec.partition("/")
        try:
            if not sep:
                raise ValueError("missing '/'")
            parsed = (int(index_text), int(count_text))
        except ValueError:
            raise ConfigurationError(
                f"shard spec must look like I/N (e.g. 0/4), got {spec!r}"
            ) from None
    else:
        parsed = (int(spec[0]), int(spec[1]))
    index, count = parsed
    if count < 1 or not 0 <= index < count:
        raise ConfigurationError(
            f"shard index must satisfy 0 <= I < N, got {index}/{count}"
        )
    return None if count == 1 else (index, count)


class SweepCache:
    """The runner's view of its result store, keyed by :func:`task_hash`.

    A thin facade over a :class:`repro.store.ResultStore` backend: the
    default ``"json"`` backend keeps the original
    ``<root>/sweeps/<hash[:2]>/<hash>.json`` layout (payload stored
    alongside the metrics so entries stay debuggable), ``"columnar"``
    switches to the packed append-log layout of
    :class:`repro.store.ColumnarResultStore`.  With ``backend=None`` the
    on-disk layout decides, so pre-existing cache directories keep working.

    Only successful results are stored — a failed task is always retried
    on the next run.  Entries may additionally carry the solver's solution
    ``state``, which lets a warm chain keep seeding across cache hits.
    """

    def __init__(
        self, root: str | Path | None = None, backend: str | None = None
    ) -> None:
        self.store: ResultStore = open_store(
            root if root is not None else default_cache_dir(), backend
        )

    @property
    def root(self) -> Path:
        return self.store.root

    @property
    def backend(self) -> str:
        return self.store.backend

    def _path(self, digest: str) -> Path:
        """Entry path of ``digest`` (JSON backend only — columnar entries
        live inside shared files and have no per-digest path)."""
        if not isinstance(self.store, JsonResultStore):
            raise AttributeError(
                f"{self.store.backend!r} store entries have no per-digest path"
            )
        return self.store.entry_path(digest)

    def get(self, digest: str) -> dict[str, float] | None:
        return self.store.get(digest)

    def get_entry(
        self, digest: str
    ) -> tuple[dict[str, float], dict[str, Any] | None] | None:
        """Cached ``(metrics, state)`` for ``digest``, or ``None`` on a miss."""
        return self.store.get_entry(digest)

    def put(
        self,
        digest: str,
        task: SweepTask,
        metrics: Mapping[str, float],
        state: Mapping[str, Any] | None = None,
    ) -> None:
        self.store.put(digest, task.payload(), metrics, state)

    def flush(self) -> None:
        self.store.flush()


ProgressFn = Callable[[int, int, TaskOutcome], None]


class SweepRunner:
    """Execute a batch of :class:`SweepTask` with caching and parallelism.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs inline in this process —
        no pool, no pickling; ``0`` or ``None`` means "all CPU cores";
        ``N > 1`` uses a :class:`~concurrent.futures.ProcessPoolExecutor`.
    cache_dir:
        Root of the result cache; defaults to :func:`default_cache_dir`.
    use_cache:
        Disable to force recomputation (the cache is neither read nor
        written).
    warm_start:
        Chain tasks sharing a ``warm_key`` along their ``warm_order`` and
        seed each solve from its neighbour's solution.  Off by default: a
        warm-started result matches the cold one within solver tolerance
        but is not bit-identical, so reproducibility-first runs stay cold.
    progress:
        Optional ``fn(done, total, outcome)`` invoked in the parent process
        after every task completes (including cache hits).
    batch_size:
        When > 1, group eligible cold ``"proposed"`` tasks by problem shape
        and solve each group in one lockstep multi-solve pass
        (:meth:`ResourceAllocator.solve_batch`).  Results and cache keys are
        bit-identical to the per-drop path; only the wall clock changes.
        Mutually exclusive with ``jobs > 1`` (the batched pass is itself the
        parallelism).
    store_backend:
        Result-store backend for the cache (``"json"`` / ``"columnar"``);
        ``None`` auto-detects from the cache directory's on-disk layout.
        A scheduling/storage knob only — cache keys are unchanged.
    shard:
        ``"I/N"`` (or ``(I, N)``) hash-shards the task list: only tasks
        whose :func:`task_hash` lands in shard ``I`` of ``N`` (by
        :func:`repro.store.shard_for_digest`) execute; the rest come back
        as ``skipped`` outcomes.  N invocations with the same task list
        and different ``I`` partition it exactly, so independent hosts can
        each fill a shard store and ``repro store merge`` reassembles the
        serial result bit-for-bit.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        *,
        cache_dir: str | Path | None = None,
        use_cache: bool = False,
        warm_start: bool = False,
        progress: ProgressFn | None = None,
        batch_size: int | None = None,
        store_backend: str | None = None,
        shard: str | tuple[int, int] | None = None,
    ) -> None:
        if jobs is None or jobs <= 0:
            jobs = os.cpu_count() or 1
        self.jobs = int(jobs)
        self.use_cache = use_cache
        self.warm_start = warm_start
        self.cache = SweepCache(cache_dir, store_backend)
        self.shard = parse_shard(shard)
        self.progress = progress
        self.batch = (
            BatchConfig(size=int(batch_size))
            if batch_size is not None and batch_size > 1
            else None
        )
        if self.batch is not None and self.jobs > 1:
            raise ConfigurationError(
                "batch mode runs inline: use batch_size with jobs=1 "
                f"(got jobs={self.jobs}, batch_size={batch_size})"
            )
        self.last_stats = SweepStats()

    # -- execution -----------------------------------------------------------
    def run(self, tasks: Sequence[SweepTask]) -> list[TaskOutcome]:
        """Run every task, returning outcomes in task order."""
        started = wall_clock()
        stats = SweepStats(total=len(tasks))
        stats.store_backend = self.cache.backend if self.use_cache else ""
        outcomes: list[TaskOutcome | None] = [None] * len(tasks)
        done = 0

        pending: list[int] = []
        for index, task in enumerate(tasks):
            if self.shard is not None:
                shard_index, shard_count = self.shard
                if shard_for_digest(task_hash(task), shard_count) != shard_index:
                    outcome = TaskOutcome(task=task, metrics=None, skipped=True)
                    outcomes[index] = outcome
                    stats.skipped += 1
                    done += 1
                    self._report(done, stats.total, outcome)
                    continue
            entry = None
            if self.use_cache:
                io_started = wall_clock()
                entry = self.cache.get_entry(task_hash(task))
                stats.cache_io_s += wall_clock() - io_started
            if entry is not None:
                metrics, state = entry
                outcome = TaskOutcome(
                    task=task, metrics=metrics, cached=True, state=state
                )
                outcomes[index] = outcome
                stats.cache_hits += 1
                done += 1
                self._report(done, stats.total, outcome)
            else:
                pending.append(index)

        def record(index: int, outcome: TaskOutcome) -> None:
            nonlocal done
            outcomes[index] = outcome
            stats.executed += 1
            stats.warm_started += outcome.warm
            if outcome.error is not None:
                stats.failed += 1
            elif self.use_cache:
                io_started = wall_clock()
                self._cache_put(outcome)
                stats.cache_io_s += wall_clock() - io_started
            done += 1
            self._report(done, stats.total, outcome)

        try:
            if pending and self.batch is not None:
                batched = [index for index in pending if self._batchable(tasks[index])]
                pending = [index for index in pending if not self._batchable(tasks[index])]
                for index, outcome in self._execute_batches(tasks, batched, stats):
                    record(index, outcome)

            if pending:
                chains = self._plan_chains(tasks, pending, outcomes)
                executor = (
                    ProcessPoolExecutor(max_workers=min(self.jobs, len(pending)))
                    if self.jobs > 1
                    else None
                )
                try:
                    for index, outcome in self._execute(tasks, chains, executor):
                        record(index, outcome)
                finally:
                    if executor is not None:
                        executor.shutdown(wait=True, cancel_futures=True)
        except KeyboardInterrupt:
            # Graceful interrupt: the executor shutdown above already
            # cancelled the not-yet-started futures; flush whatever results
            # made it into the store (a columnar backend may hold pending
            # appends) and record the partial stats before re-raising, so
            # Ctrl-C mid-sweep strands neither workers nor tmp files and
            # the finished work survives for the next (cached) run.
            if self.use_cache:
                self.cache.flush()
            stats.elapsed_s = wall_clock() - started
            self.last_stats = stats
            raise

        if self.use_cache:
            io_started = wall_clock()
            self.cache.flush()
            stats.cache_io_s += wall_clock() - io_started
        stats.elapsed_s = wall_clock() - started
        self.last_stats = stats
        return [outcome for outcome in outcomes if outcome is not None]

    # -- batched multi-solve -------------------------------------------------
    def _batchable(self, task: SweepTask) -> bool:
        """Whether ``task`` can ride the lockstep multi-solve path.

        Warm-chained tasks are excluded (a chain is sequential by
        definition) on top of the shared :func:`batchable_task` shape check.
        """
        if self.warm_start and task.warm_key is not None:
            return False
        return batchable_task(task)

    @staticmethod
    def batch_group_key(task: SweepTask) -> str:
        """The problem-shape key batched tasks are grouped by.

        Derived from the same canonical-payload machinery as the cache key
        (:func:`_jsonify` over the allocator configuration, the scenario
        spec's device count): tasks in one group share ``num_devices`` and
        the full solver configuration, so one :class:`ResourceAllocator`
        serves the whole group.
        """
        key = {
            "solver_kind": task.solver_kind,
            "num_devices": task.scenario_spec().params.get("num_devices"),
            "allocator": _jsonify(task.solver_params.get("allocator")),
        }
        return json.dumps(key, sort_keys=True, separators=(",", ":"))

    def _execute_batches(
        self, tasks: Sequence[SweepTask], pending: Sequence[int], stats: SweepStats
    ) -> Iterator[tuple[int, TaskOutcome]]:
        """Group, fill and run lockstep batches over the batchable tasks."""
        assert self.batch is not None
        groups: dict[str, list[int]] = {}
        for index in pending:
            groups.setdefault(self.batch_group_key(tasks[index]), []).append(index)
        size = self.batch.size
        for indices in groups.values():
            for start in range(0, len(indices), size):
                chunk = indices[start : start + size]
                stats.batches += 1
                stats.batched_tasks += len(chunk)
                yield from self._execute_one_batch(tasks, chunk)

    def _execute_one_batch(
        self, tasks: Sequence[SweepTask], chunk: Sequence[int]
    ) -> Iterator[tuple[int, TaskOutcome]]:
        """Solve one batch, scattering results back to per-task outcomes.

        The lockstep execution (and its crash-isolation contract) lives in
        the module-level :func:`execute_batch`, shared with the ``repro
        serve`` coalescer.
        """
        triples = execute_batch([tasks[index] for index in chunk])
        for index, (metrics, state, error) in zip(chunk, triples):
            yield index, TaskOutcome(
                task=tasks[index], metrics=metrics, error=error, state=state
            )

    def _plan_chains(
        self,
        tasks: Sequence[SweepTask],
        pending: Sequence[int],
        outcomes: Sequence[TaskOutcome | None],
    ) -> list[tuple[list[int], dict[str, Any] | None]]:
        """Group pending task indices into ``(chain, initial seed)`` units.

        Without warm starts every task is its own chain (the pool saturates
        exactly as before).  With warm starts, tasks of a warm-capable kind
        sharing a ``warm_key`` become one sequential chain ordered by
        ``warm_order``; a cache hit inside a chain contributes its stored
        state as the seed of the segment that follows it.
        """
        if not self.warm_start:
            return [([index], None) for index in pending]

        pending_set = set(pending)
        groups: dict[tuple, list[int]] = {}
        singles: list[tuple[list[int], dict[str, Any] | None]] = []
        for index, task in enumerate(tasks):
            if task.warm_key is None or task.solver_kind not in _WARM_SOLVER_KINDS:
                if index in pending_set:
                    singles.append(([index], None))
                continue
            groups.setdefault((task.solver_kind, task.warm_key), []).append(index)

        chains: list[tuple[list[int], dict[str, Any] | None]] = singles
        for indices in groups.values():
            indices.sort(key=lambda i: (tasks[i].warm_order, i))
            segment: list[int] = []
            seed: dict[str, Any] | None = None
            for index in indices:
                if index in pending_set:
                    segment.append(index)
                    continue
                # Cache hit mid-chain: close the running segment and seed
                # the next one from the hit's stored state (if any).
                if segment:
                    chains.append((segment, seed))
                    segment = []
                outcome = outcomes[index]
                seed = outcome.state if outcome is not None else None
            if segment:
                chains.append((segment, seed))
        return chains

    def _execute(
        self,
        tasks: Sequence[SweepTask],
        chains: Sequence[tuple[list[int], dict[str, Any] | None]],
        executor: ProcessPoolExecutor | None,
    ) -> Iterator[tuple[int, TaskOutcome]]:
        if executor is None:
            for indices, seed in chains:
                for index in indices:
                    outcome = self._outcome_of(tasks[index], seed, *_execute_safely(tasks[index], seed))
                    yield index, outcome
                    seed = outcome.state
            return

        futures: dict[Future, tuple[int, int, int, bool]] = {}

        def submit(chain_id: int, position: int, seed: dict[str, Any] | None) -> Future:
            index = chains[chain_id][0][position]
            future = executor.submit(_execute_safely, tasks[index], seed)
            futures[future] = (chain_id, position, index, seed is not None)
            return future

        for chain_id, (indices, seed) in enumerate(chains):
            submit(chain_id, 0, seed)
        remaining = set(futures)
        while remaining:
            finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in finished:
                chain_id, position, index, warm = futures[future]
                try:
                    metrics, state, timings, error = future.result()
                except Exception as exc:  # repro-lint: disable=RL005 -- pool failures (e.g. BrokenProcessPool) must become error outcomes
                    metrics, state, timings, error = (
                        None,
                        None,
                        None,
                        f"{type(exc).__name__}: {exc}",
                    )
                yield index, TaskOutcome(
                    task=tasks[index],
                    metrics=metrics,
                    error=error,
                    state=state,
                    timings=timings,
                    warm=warm and metrics is not None,
                )
                indices = chains[chain_id][0]
                if position + 1 < len(indices):
                    try:
                        # A failed element restarts the rest of its chain cold.
                        remaining.add(submit(chain_id, position + 1, state))
                    except Exception as exc:  # repro-lint: disable=RL005 -- pool failures (e.g. BrokenProcessPool) must become error outcomes
                        # The executor itself is gone: surface the rest of
                        # this chain as error outcomes instead of crashing
                        # the sweep (crash isolation must survive a dead
                        # worker exactly like the submit-everything-upfront
                        # path did).
                        for later in indices[position + 1 :]:
                            yield later, TaskOutcome(
                                task=tasks[later],
                                metrics=None,
                                error=f"{type(exc).__name__}: {exc}",
                            )

    @staticmethod
    def _outcome_of(
        task: SweepTask,
        seed: dict[str, Any] | None,
        metrics: dict[str, float] | None,
        state: dict[str, Any] | None,
        timings: dict[str, float] | None,
        error: str | None,
    ) -> TaskOutcome:
        return TaskOutcome(
            task=task,
            metrics=metrics,
            error=error,
            state=state,
            timings=timings,
            warm=seed is not None and metrics is not None,
        )

    def _cache_put(self, outcome: TaskOutcome) -> None:
        """Store one result, degrading to cache-off if the disk won't take it.

        A computed result must never be lost to a cache problem — an
        unwritable or misconfigured cache directory downgrades the run to
        uncached instead of crashing it.
        """
        try:
            self.cache.put(
                task_hash(outcome.task), outcome.task, outcome.metrics, outcome.state
            )
        except OSError as exc:
            self.use_cache = False
            warnings.warn(
                f"result cache disabled: cannot write under {self.cache.root}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )

    def _report(self, done: int, total: int, outcome: TaskOutcome) -> None:
        if self.progress is not None:
            self.progress(done, total, outcome)


# -- the ambient runner ------------------------------------------------------
#
# Experiment functions accept an explicit ``runner=`` argument, but the CLI
# (and ad-hoc scripts) can install a configured runner once and have every
# ``run_figN`` call pick it up without threading it through each signature.

_DEFAULT_RUNNER: SweepRunner | None = None


def get_active_runner(runner: SweepRunner | None = None) -> SweepRunner:
    """Resolve the runner to use: explicit > installed default > serial."""
    if runner is not None:
        return runner
    if _DEFAULT_RUNNER is not None:
        return _DEFAULT_RUNNER
    return SweepRunner()


def set_default_runner(runner: SweepRunner | None) -> None:
    """Install (or clear, with ``None``) the process-wide default runner."""
    global _DEFAULT_RUNNER
    _DEFAULT_RUNNER = runner


@contextmanager
def use_runner(runner: SweepRunner) -> Iterator[SweepRunner]:
    """Temporarily install ``runner`` as the process-wide default."""
    global _DEFAULT_RUNNER
    previous = _DEFAULT_RUNNER
    _DEFAULT_RUNNER = runner
    try:
        yield runner
    finally:
        _DEFAULT_RUNNER = previous
