"""Samples-per-device sweep (the text experiment at the end of Section VII-B).

The paper states that, keeping every other parameter fixed, the number of
samples on each device is positively correlated with both energy and delay.
This experiment verifies that claim numerically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .base import DEFAULT_METRICS, SweepConfig, add_grid_row, proposed_tasks, run_sweep
from .results import ResultTable
from .runner import SweepRunner, SweepTask

__all__ = ["SamplesConfig", "run_samples_sweep"]


@dataclass(frozen=True)
class SamplesConfig:
    """Sweep definition for the samples-per-device experiment."""

    sweep: SweepConfig = field(default_factory=lambda: SweepConfig(num_devices=30, num_trials=1))
    samples_grid: tuple[int, ...] = (250, 500, 1000)
    energy_weight: float = 0.5

    @classmethod
    def paper(cls) -> "SamplesConfig":
        """A denser sweep at the paper's scale."""
        return cls(
            sweep=SweepConfig(num_devices=50, num_trials=20),
            samples_grid=(100, 250, 500, 750, 1000, 1500),
        )

    def tasks(self) -> list[SweepTask]:
        """The full (grid point × trial) task list of this sweep.

        Tasks sharing a trial seed chain along the samples axis for
        warm-started runners (the fleet size is unchanged, so a neighbour's
        allocation is a valid — and nearby — starting point).
        """
        tasks: list[SweepTask] = []
        for samples in self.samples_grid:
            tasks += proposed_tasks(
                (samples,),
                self.sweep,
                self.energy_weight,
                warm_group=("samples",),
                warm_order=float(samples),
                samples_per_device=samples,
            )
        return tasks


def run_samples_sweep(
    config: SamplesConfig | None = None, *, runner: SweepRunner | None = None
) -> ResultTable:
    """Regenerate the samples-per-device series."""
    config = config or SamplesConfig()
    points = run_sweep(config.tasks(), runner=runner)
    table = ResultTable(
        name="samples",
        columns=["samples_per_device", "energy_j", "time_s", "objective"],
        metadata={"experiment": "samples-per-device", "w1": config.energy_weight},
    )
    for samples in config.samples_grid:
        add_grid_row(table, points[(samples,)], DEFAULT_METRICS, samples_per_device=samples)
    return table
