"""Samples-per-device sweep (the text experiment at the end of Section VII-B).

The paper states that, keeping every other parameter fixed, the number of
samples on each device is positively correlated with both energy and delay.
This experiment verifies that claim numerically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .base import SweepConfig, average_metrics, solve_proposed
from .results import ResultTable

__all__ = ["SamplesConfig", "run_samples_sweep"]


@dataclass(frozen=True)
class SamplesConfig:
    """Sweep definition for the samples-per-device experiment."""

    sweep: SweepConfig = field(default_factory=lambda: SweepConfig(num_devices=30, num_trials=1))
    samples_grid: tuple[int, ...] = (250, 500, 1000)
    energy_weight: float = 0.5

    @classmethod
    def paper(cls) -> "SamplesConfig":
        """A denser sweep at the paper's scale."""
        return cls(
            sweep=SweepConfig(num_devices=50, num_trials=20),
            samples_grid=(100, 250, 500, 750, 1000, 1500),
        )


def run_samples_sweep(config: SamplesConfig | None = None) -> ResultTable:
    """Regenerate the samples-per-device series."""
    config = config or SamplesConfig()
    table = ResultTable(
        name="samples",
        columns=["samples_per_device", "energy_j", "time_s", "objective"],
        metadata={"experiment": "samples-per-device", "w1": config.energy_weight},
    )
    for samples in config.samples_grid:
        sweep = config.sweep
        metrics = []
        for trial in range(sweep.num_trials):
            system = sweep.scenario(seed=sweep.base_seed + trial, samples_per_device=samples)
            result = solve_proposed(
                system, config.energy_weight, allocator_config=sweep.allocator
            )
            metrics.append(result.summary())
        averaged = average_metrics(metrics)
        table.add_row(
            samples_per_device=samples,
            energy_j=averaged["energy_j"],
            time_s=averaged["completion_time_s"],
            objective=averaged["objective"],
        )
    return table
