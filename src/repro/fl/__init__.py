"""A from-scratch FedAvg simulator (numpy only).

The paper's evaluation treats the number of global rounds ``R_g``, local
iterations ``R_l`` and upload size ``d_n`` as exogenous constants; this
package provides the federated-learning substrate that realises them, so
that examples and extension experiments can connect the resource allocation
to actual training behaviour (accuracy versus wall-clock time and energy):

* :mod:`repro.fl.datasets` — synthetic classification datasets;
* :mod:`repro.fl.partition` — IID / Dirichlet non-IID client partitioning;
* :mod:`repro.fl.models` — numpy softmax-regression and MLP models;
* :mod:`repro.fl.optimizer` — minibatch SGD;
* :mod:`repro.fl.client` / :mod:`repro.fl.server` — FedAvg participants;
* :mod:`repro.fl.simulation` — the system-aware simulation that prices every
  round with the wireless/CPU models and one *static* resource allocation;
* :mod:`repro.fl.selection` — pluggable client-selection strategies (all /
  random-k / fastest-k / allocation-aware deadline-k);
* :mod:`repro.fl.roundloop` — the closed loop: per round, redraw the
  fading, re-solve the allocation (warm-started, vector backend), price the
  round, select clients and aggregate.

How the pieces fit: ``datasets`` + ``partition`` produce per-client data;
``models`` + ``optimizer`` give each :class:`Client` a local learner;
the :class:`FedAvgServer` aggregates.  ``simulation`` prices that training
loop with a fixed allocation, while ``roundloop`` closes the loop — the
:class:`~repro.core.allocator.ResourceAllocator` re-solves every round and
its output drives selection, wall-clock and energy accounting
(:class:`~repro.fl.metrics.RoundRecord` per round).
"""

from .client import Client
from .datasets import SyntheticClassificationDataset, make_classification_dataset
from .metrics import RoundLoopReport, RoundRecord, accuracy, cross_entropy
from .models import MLPClassifier, SoftmaxRegression
from .optimizer import SGDConfig
from .partition import dirichlet_partition, iid_partition
from .roundloop import FLRoundLoop, RoundLoopConfig, run_round_loop
from .selection import (
    SelectionContext,
    get_selection_strategy,
    register_selection_strategy,
    select_clients,
    selection_strategies,
)
from .server import FedAvgServer, TrainingHistory
from .simulation import FederatedSimulation, RoundCost, SimulationReport

__all__ = [
    "Client",
    "SyntheticClassificationDataset",
    "make_classification_dataset",
    "accuracy",
    "cross_entropy",
    "MLPClassifier",
    "SoftmaxRegression",
    "SGDConfig",
    "dirichlet_partition",
    "iid_partition",
    "FedAvgServer",
    "TrainingHistory",
    "FederatedSimulation",
    "RoundCost",
    "SimulationReport",
    "RoundRecord",
    "RoundLoopReport",
    "RoundLoopConfig",
    "FLRoundLoop",
    "run_round_loop",
    "SelectionContext",
    "register_selection_strategy",
    "selection_strategies",
    "get_selection_strategy",
    "select_clients",
]
