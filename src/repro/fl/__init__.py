"""A from-scratch FedAvg simulator (numpy only).

The paper's evaluation treats the number of global rounds ``R_g``, local
iterations ``R_l`` and upload size ``d_n`` as exogenous constants; this
package provides the federated-learning substrate that realises them, so
that examples and extension experiments can connect the resource allocation
to actual training behaviour (accuracy versus wall-clock time and energy):

* :mod:`repro.fl.datasets` — synthetic classification datasets;
* :mod:`repro.fl.partition` — IID / Dirichlet non-IID client partitioning;
* :mod:`repro.fl.models` — numpy softmax-regression and MLP models;
* :mod:`repro.fl.optimizer` — minibatch SGD;
* :mod:`repro.fl.client` / :mod:`repro.fl.server` — FedAvg participants;
* :mod:`repro.fl.simulation` — the system-aware simulation that prices every
  round with the wireless/CPU models and a chosen resource allocation.
"""

from .client import Client
from .datasets import SyntheticClassificationDataset, make_classification_dataset
from .metrics import accuracy, cross_entropy
from .models import MLPClassifier, SoftmaxRegression
from .optimizer import SGDConfig
from .partition import dirichlet_partition, iid_partition
from .server import FedAvgServer, TrainingHistory
from .simulation import FederatedSimulation, RoundCost, SimulationReport

__all__ = [
    "Client",
    "SyntheticClassificationDataset",
    "make_classification_dataset",
    "accuracy",
    "cross_entropy",
    "MLPClassifier",
    "SoftmaxRegression",
    "SGDConfig",
    "dirichlet_partition",
    "iid_partition",
    "FedAvgServer",
    "TrainingHistory",
    "FederatedSimulation",
    "RoundCost",
    "SimulationReport",
]
