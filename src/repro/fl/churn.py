"""Device churn schedules for the dynamic-fleet round loop.

The paper's allocator serves fleets of *mobile* devices, yet the closed
loop of :mod:`repro.fl.roundloop` historically re-solved every round
against a frozen fleet.  This module makes the fleet shape itself a
first-class, declarative, seed-deterministic input: a
:class:`ChurnSchedule` says which devices of the drop's *universe* (the
``num_devices`` the scenario was built with) are present at round 1 and
which arrive or depart before each later round.  The round loop re-solves
the allocation over the present subset, so the fleet genuinely grows and
shrinks mid-training.

Two spec modes, both plain JSON-able mappings (they ride inside
:class:`~repro.fl.roundloop.RoundLoopConfig` and therefore into the sweep
cache key):

* ``{"mode": "events", ...}`` — fully explicit: ``initial_absent`` lists
  the universe devices that are not present at round 1, and ``events``
  maps round indices (as ints or strings, since JSON keys are strings) to
  ``{"arrive": [...], "depart": [...]}`` index lists.
* ``{"mode": "poisson", ...}`` — generated: each round, each present
  device departs with probability ``depart_rate`` and each absent device
  (re-)arrives with probability ``arrive_rate`` (a discretised Poisson
  process).  ``initial_absent_fraction`` holds back that share of the
  universe at round 1 so there is room to grow.  Generation draws from a
  dedicated ``(seed, stream)`` RNG, so the same seed always yields the
  same event stream and the loop's fading/selection streams never shift.

Resolution (:func:`resolve_churn`) validates the spec against the
universe size and round count and returns a :class:`ResolvedChurn` whose
invariants the property suite locks down: a device departs only while
present, arrives only while absent, and the present set is never empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["ChurnSchedule", "ResolvedChurn", "resolve_churn", "CHURN_STREAM"]

#: Seed-stream tag of the churn generator: offset far from the round
#: loop's per-round streams (``_ROUND_STREAM + round``) so adding churn
#: can never perturb the fading/selection draws of a fixed seed.
CHURN_STREAM = 500_000


@dataclass(frozen=True)
class ChurnSchedule:
    """A validated churn spec, still in declarative (pre-resolution) form."""

    mode: str
    #: Explicit mode: devices absent at round 1 and per-round event lists.
    initial_absent: tuple[int, ...] = ()
    events: Mapping[int, Mapping[str, tuple[int, ...]]] = field(default_factory=dict)
    #: Poisson mode: per-round arrival/departure probabilities.
    arrive_rate: float = 0.0
    depart_rate: float = 0.0
    initial_absent_fraction: float = 0.0

    @classmethod
    def from_mapping(cls, spec: Mapping[str, Any]) -> "ChurnSchedule":
        """Parse and validate a JSON-able churn spec (see the module doc)."""
        if not isinstance(spec, Mapping):
            raise ConfigurationError("churn spec must be a mapping")
        mode = spec.get("mode", "events")
        known = {"mode", "initial_absent", "events", "arrive_rate",
                 "depart_rate", "initial_absent_fraction"}
        unknown = sorted(set(spec) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown churn spec key(s) {', '.join(map(repr, unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        if mode == "events":
            initial_absent = tuple(int(i) for i in spec.get("initial_absent", ()))
            events: dict[int, dict[str, tuple[int, ...]]] = {}
            for round_key, event in dict(spec.get("events", {})).items():
                round_index = int(round_key)
                if round_index < 2:
                    raise ConfigurationError(
                        "churn events start at round 2 (round 1 presence is "
                        "set by initial_absent)"
                    )
                if not isinstance(event, Mapping):
                    raise ConfigurationError("each churn event must be a mapping")
                bad = sorted(set(event) - {"arrive", "depart"})
                if bad:
                    raise ConfigurationError(
                        f"churn event keys must be 'arrive'/'depart', got "
                        f"{', '.join(map(repr, bad))}"
                    )
                events[round_index] = {
                    "arrive": tuple(int(i) for i in event.get("arrive", ())),
                    "depart": tuple(int(i) for i in event.get("depart", ())),
                }
            return cls(mode="events", initial_absent=initial_absent, events=events)
        if mode == "poisson":
            arrive = float(spec.get("arrive_rate", 0.0))
            depart = float(spec.get("depart_rate", 0.0))
            absent = float(spec.get("initial_absent_fraction", 0.0))
            if not 0.0 <= arrive <= 1.0 or not 0.0 <= depart <= 1.0:
                raise ConfigurationError(
                    "arrive_rate/depart_rate must lie in [0, 1]"
                )
            if not 0.0 <= absent < 1.0:
                raise ConfigurationError(
                    "initial_absent_fraction must lie in [0, 1)"
                )
            return cls(
                mode="poisson",
                arrive_rate=arrive,
                depart_rate=depart,
                initial_absent_fraction=absent,
            )
        raise ConfigurationError(
            f"unknown churn mode {mode!r}; known: events, poisson"
        )


@dataclass(frozen=True)
class ResolvedChurn:
    """A churn schedule bound to a universe size, seed and round count.

    ``initial_present`` is the sorted round-1 fleet; ``arrivals[r]`` /
    ``departures[r]`` are the (possibly empty) sorted event lists applied
    *before* round ``r`` is solved.  Every event is consistent by
    construction: arrivals were absent, departures were present, and the
    present set is non-empty at every round.
    """

    num_devices: int
    rounds: int
    initial_present: tuple[int, ...]
    arrivals: Mapping[int, tuple[int, ...]]
    departures: Mapping[int, tuple[int, ...]]

    def events_for_round(self, round_index: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """The ``(arrivals, departures)`` applied before ``round_index``."""
        return (
            self.arrivals.get(round_index, ()),
            self.departures.get(round_index, ()),
        )

    def present_through(self) -> list[tuple[int, ...]]:
        """The sorted present set at every round (index 0 = round 1)."""
        present = set(self.initial_present)
        trace = [tuple(sorted(present))]
        for round_index in range(2, self.rounds + 1):
            arrive, depart = self.events_for_round(round_index)
            present |= set(arrive)
            present -= set(depart)
            trace.append(tuple(sorted(present)))
        return trace


def _check_index(index: int, num_devices: int) -> int:
    if not 0 <= index < num_devices:
        raise ConfigurationError(
            f"churn device index {index} outside the universe "
            f"[0, {num_devices})"
        )
    return index


def _resolve_events(
    schedule: ChurnSchedule, *, num_devices: int, rounds: int
) -> ResolvedChurn:
    """Validate an explicit event schedule round by round."""
    absent = {_check_index(i, num_devices) for i in schedule.initial_absent}
    present = set(range(num_devices)) - absent
    if not present:
        raise ConfigurationError("initial_absent leaves the round-1 fleet empty")
    arrivals: dict[int, tuple[int, ...]] = {}
    departures: dict[int, tuple[int, ...]] = {}
    for round_index in sorted(schedule.events):
        if round_index > rounds:
            continue  # events past the horizon never fire
        event = schedule.events[round_index]
        arrive = tuple(sorted(_check_index(i, num_devices) for i in event["arrive"]))
        depart = tuple(sorted(_check_index(i, num_devices) for i in event["depart"]))
        if len(set(arrive)) != len(arrive) or len(set(depart)) != len(depart):
            raise ConfigurationError(
                f"churn event at round {round_index} lists a device twice"
            )
        overlap = set(arrive) & set(depart)
        if overlap:
            raise ConfigurationError(
                f"churn event at round {round_index} both arrives and departs "
                f"device(s) {sorted(overlap)}"
            )
        bad_arrive = [i for i in arrive if i in present]
        if bad_arrive:
            raise ConfigurationError(
                f"churn event at round {round_index} arrives device(s) "
                f"{bad_arrive} that are already present"
            )
        bad_depart = [i for i in depart if i not in present]
        if bad_depart:
            raise ConfigurationError(
                f"churn event at round {round_index} departs device(s) "
                f"{bad_depart} that are not present"
            )
        present |= set(arrive)
        present -= set(depart)
        if not present:
            raise ConfigurationError(
                f"churn event at round {round_index} leaves the fleet empty"
            )
        if arrive:
            arrivals[round_index] = arrive
        if depart:
            departures[round_index] = depart
    return ResolvedChurn(
        num_devices=num_devices,
        rounds=rounds,
        initial_present=tuple(sorted(set(range(num_devices)) - absent)),
        arrivals=arrivals,
        departures=departures,
    )


def _resolve_poisson(
    schedule: ChurnSchedule, *, num_devices: int, rounds: int, seed: int
) -> ResolvedChurn:
    """Generate a Poisson-style event stream from the dedicated seed stream.

    The whole stream is drawn upfront from ``default_rng((seed,
    CHURN_STREAM))``: one uniform per (round, device), consumed in a fixed
    order, so the events depend only on ``(seed, num_devices, rounds,
    rates)`` — never on what the loop does with them.  When every present
    device would depart at once the slowest draw (largest uniform) is
    retained, keeping the fleet non-empty without re-drawing.
    """
    rng = np.random.default_rng((seed, CHURN_STREAM))
    hold_back = int(round(schedule.initial_absent_fraction * num_devices))
    hold_back = min(hold_back, num_devices - 1)
    # The held-back devices are a seeded draw, not a prefix, so "who is
    # absent at round 1" is itself part of the generated stream.
    absent_initial = set(
        int(i)
        for i in rng.choice(num_devices, size=hold_back, replace=False)
    ) if hold_back else set()
    present = set(range(num_devices)) - absent_initial
    initial_present = tuple(sorted(present))
    arrivals: dict[int, tuple[int, ...]] = {}
    departures: dict[int, tuple[int, ...]] = {}
    for round_index in range(2, rounds + 1):
        draws = rng.uniform(size=num_devices)
        arrive = tuple(
            sorted(
                i
                for i in range(num_devices)
                if i not in present and draws[i] < schedule.arrive_rate
            )
        )
        departing = [
            i for i in sorted(present) if draws[i] < schedule.depart_rate
        ]
        if arrive == () and len(departing) == len(present):
            # Keep the device whose departure draw was slowest.
            keep = max(departing, key=lambda i: (draws[i], i))
            departing = [i for i in departing if i != keep]
        depart = tuple(departing)
        present |= set(arrive)
        present -= set(depart)
        if arrive:
            arrivals[round_index] = arrive
        if depart:
            departures[round_index] = depart
    return ResolvedChurn(
        num_devices=num_devices,
        rounds=rounds,
        initial_present=initial_present,
        arrivals=arrivals,
        departures=departures,
    )


def resolve_churn(
    spec: Mapping[str, Any] | ChurnSchedule,
    *,
    num_devices: int,
    rounds: int,
    seed: int,
) -> ResolvedChurn:
    """Bind a churn spec to a universe, round count and seed."""
    schedule = (
        spec if isinstance(spec, ChurnSchedule) else ChurnSchedule.from_mapping(spec)
    )
    if num_devices <= 0:
        raise ConfigurationError("num_devices must be positive")
    if rounds <= 0:
        raise ConfigurationError("rounds must be positive")
    if schedule.mode == "events":
        return _resolve_events(schedule, num_devices=num_devices, rounds=rounds)
    return _resolve_poisson(
        schedule, num_devices=num_devices, rounds=rounds, seed=seed
    )
