"""A federated-learning client (one wireless device)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from .optimizer import SGDConfig, sgd_steps

__all__ = ["Client"]


@dataclass
class Client:
    """One participating device: a local dataset plus a local optimiser.

    The client implements the FedAvg contract: receive the global weights,
    run ``R_l`` local iterations on its own data, and return the updated
    weights together with its sample count (the aggregation weight
    ``D_n / D``).
    """

    client_id: int
    features: np.ndarray
    labels: np.ndarray
    sgd: SGDConfig = field(default_factory=SGDConfig)

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=float)
        self.labels = np.asarray(self.labels, dtype=int)
        if self.features.shape[0] != self.labels.shape[0]:
            raise ConfigurationError("features and labels must have matching lengths")
        if self.features.shape[0] == 0:
            raise ConfigurationError("a client needs at least one sample")

    @property
    def num_samples(self) -> int:
        """The paper's ``D_n``."""
        return int(self.features.shape[0])

    def local_update(
        self,
        model,
        global_weights: np.ndarray,
        num_iterations: int,
        *,
        rng: np.random.Generator | int | None = None,
    ) -> tuple[np.ndarray, float]:
        """Run local training from the global weights.

        Returns ``(new_weights, last_minibatch_loss)``.  The shared ``model``
        object is used as a computation engine; its weights are restored by
        the caller (the server) before the next client runs.
        """
        if num_iterations <= 0:
            raise ConfigurationError("num_iterations must be positive")
        model.set_weights(global_weights)
        loss = sgd_steps(
            model, self.features, self.labels, num_iterations, self.sgd, rng=rng
        )
        return model.get_weights(), loss

    def evaluate(self, model, weights: np.ndarray) -> tuple[float, float]:
        """Local loss and accuracy of the given weights on this client's data."""
        model.set_weights(weights)
        probs = model.predict_proba(self.features)
        eps = 1e-12
        picked = probs[np.arange(self.labels.shape[0]), self.labels]
        loss = float(-np.mean(np.log(picked + eps)))
        acc = float(np.mean(np.argmax(probs, axis=1) == self.labels))
        return loss, acc
