"""Synthetic classification datasets for the FedAvg simulator.

No external data is required (or available offline): the datasets are
Gaussian class clusters with a controllable margin, which is enough to
exercise every code path of the FL stack (non-trivial accuracy curves,
class imbalance across clients, convergence behaviour as ``R_l``/``R_g``
change).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["SyntheticClassificationDataset", "make_classification_dataset"]


@dataclass(frozen=True)
class SyntheticClassificationDataset:
    """Feature matrix / label vector pair with a train/test split."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        if self.train_x.shape[0] != self.train_y.shape[0]:
            raise ConfigurationError("train_x and train_y must have matching lengths")
        if self.test_x.shape[0] != self.test_y.shape[0]:
            raise ConfigurationError("test_x and test_y must have matching lengths")

    @property
    def num_features(self) -> int:
        return int(self.train_x.shape[1])

    @property
    def num_train(self) -> int:
        return int(self.train_x.shape[0])

    @property
    def num_test(self) -> int:
        return int(self.test_x.shape[0])


def make_classification_dataset(
    num_samples: int = 5000,
    num_features: int = 20,
    num_classes: int = 5,
    *,
    class_separation: float = 1.5,
    noise_std: float = 1.0,
    test_fraction: float = 0.2,
    rng: np.random.Generator | int | None = None,
) -> SyntheticClassificationDataset:
    """Draw a Gaussian-clusters classification dataset.

    Each class has its own random mean vector of norm ``class_separation``;
    samples are the mean plus isotropic Gaussian noise of ``noise_std``.
    """
    if num_samples < num_classes:
        raise ConfigurationError("need at least one sample per class")
    if not 0.0 < test_fraction < 1.0:
        raise ConfigurationError("test_fraction must lie in (0, 1)")
    if num_classes < 2:
        raise ConfigurationError("need at least two classes")
    generator = np.random.default_rng(rng)

    means = generator.normal(size=(num_classes, num_features))
    means *= class_separation / np.linalg.norm(means, axis=1, keepdims=True)

    labels = generator.integers(0, num_classes, size=num_samples)
    features = means[labels] + generator.normal(
        scale=noise_std, size=(num_samples, num_features)
    )

    order = generator.permutation(num_samples)
    features, labels = features[order], labels[order]
    num_test = int(round(num_samples * test_fraction))
    return SyntheticClassificationDataset(
        train_x=features[num_test:],
        train_y=labels[num_test:],
        test_x=features[:num_test],
        test_y=labels[:num_test],
        num_classes=num_classes,
    )
