"""Estimated device profiles: fitting ``c_n`` and channel gains from timings.

The allocator normally runs on *oracle* profiles — the exact per-sample
CPU requirement ``c_n`` and realised channel gain ``g_n`` of every device.
A deployed server knows neither; it only observes how long each selected
device's round actually took.  This module closes that gap the way
spirit's ``runtime_estimator`` fits performance curves from live metrics:
each round's observed timings are inverted through the paper's own cost
models and folded into per-device recursive-least-squares estimates that
the next round's allocation is solved against.

Two parameters are fitted per device, each from one exactly-invertible
observation:

* **compute** — the observed computation time obeys eq. (7),
  ``T^cmp = R_l c_n D_n / f_n``, and the server knows ``R_l``, ``D_n`` and
  the frequency ``f_n`` it allocated, so every observation yields an
  effective per-sample cycle count ``c_obs = T^cmp f_n / (R_l D_n)`` (this
  is ``c_n`` folded with any unmodelled frequency inefficiency — the
  "``f_i``-effective" view);
* **channel** — the observed upload time gives the realised rate
  ``r = d_n / T^up``, and inverting eq. (1) at the allocated ``(p_n, B_n)``
  yields the realised gain ``g_obs = (2^{r/B} - 1) N_0 B / p``.  Per-round
  fading makes ``g_obs`` a noisy sample around the large-scale gain, which
  is exactly what the RLS filter averages towards (Rayleigh fading factors
  have unit mean power).

Devices that have never been observed are priced at their oracle values —
the bootstrap round a real deployment would spend calibrating — and every
later round replaces oracle parameters with the fitted ones, so the
oracle-vs-estimated gap is measurable and shrinks as observations
accumulate.  Everything here is pure arithmetic on observed values: no RNG,
so estimation can never shift the loop's seed streams.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

import numpy as np

from ..exceptions import ConfigurationError
from ..system import SystemModel

__all__ = ["ScalarRLS", "ProfileEstimator"]


@dataclass
class ScalarRLS:
    """Recursive least squares for one scalar parameter.

    The model is ``y_k = theta + noise``; with forgetting factor
    ``lam = 1`` the estimate is the exact running mean of the
    observations, and ``lam < 1`` discounts old observations
    exponentially (useful when the underlying parameter drifts).  ``P``
    is the scaled covariance of the estimate; the first observation
    snaps ``theta`` to it exactly (infinite prior variance).
    """

    forgetting: float = 1.0
    theta: float = 0.0
    covariance: float = float("inf")
    observations: int = 0

    def update(self, value: float) -> float:
        """Fold one observation in; returns the updated estimate."""
        self.observations += 1
        if self.covariance == float("inf"):
            self.theta = float(value)
            self.covariance = 1.0
            return self.theta
        gain = self.covariance / (self.forgetting + self.covariance)
        self.theta += gain * (float(value) - self.theta)
        self.covariance = (1.0 - gain) * self.covariance / self.forgetting
        return self.theta


class ProfileEstimator:
    """Per-device RLS estimates of compute and channel parameters.

    One estimator instance lives for the whole training run; each round
    the loop calls :meth:`observe_round` with the *true* (simulated)
    per-device timings of the selected devices and the allocation that
    produced them, then :meth:`estimated_system` to build the system model
    the next allocation solve runs against.
    """

    def __init__(
        self,
        num_devices: int,
        *,
        forgetting: float = 1.0,
        params: Mapping[str, Any] | None = None,
    ) -> None:
        if params:
            unknown = sorted(set(params) - {"forgetting"})
            if unknown:
                raise ConfigurationError(
                    f"unknown estimation parameter(s) "
                    f"{', '.join(map(repr, unknown))}; known: forgetting"
                )
            forgetting = float(params.get("forgetting", forgetting))
        if not 0.0 < forgetting <= 1.0:
            raise ConfigurationError("estimation forgetting must lie in (0, 1]")
        if num_devices <= 0:
            raise ConfigurationError("num_devices must be positive")
        self.num_devices = num_devices
        self.forgetting = forgetting
        self._cycles = [ScalarRLS(forgetting=forgetting) for _ in range(num_devices)]
        self._gains = [ScalarRLS(forgetting=forgetting) for _ in range(num_devices)]

    # -- observations -------------------------------------------------------
    def observe_round(
        self,
        system: SystemModel,
        universe_indices: np.ndarray,
        *,
        frequency_hz: np.ndarray,
        power_w: np.ndarray,
        bandwidth_hz: np.ndarray,
        compute_time_s: np.ndarray,
        upload_time_s: np.ndarray,
    ) -> None:
        """Fold one round's observed timings into the per-device estimates.

        ``system`` is the *universe* system (for ``R_l``, ``D_n``, ``d_n``
        and the noise PSD — all server-known bookkeeping, not oracle
        channel/CPU state); ``universe_indices`` maps each observation row
        to its universe device.  Rows whose timing is non-finite or whose
        allocation is degenerate (zero power/bandwidth) are skipped — a
        dead or unscheduled device contributes nothing.
        """
        local_iterations = float(system.local_iterations)
        for row, device in enumerate(int(i) for i in universe_indices):
            samples = float(system.num_samples[device])
            upload_bits = float(system.upload_bits[device])
            frequency = float(frequency_hz[row])
            compute = float(compute_time_s[row])
            if np.isfinite(compute) and compute > 0.0 and frequency > 0.0:
                self._cycles[device].update(
                    compute * frequency / (local_iterations * samples)
                )
            power = float(power_w[row])
            bandwidth = float(bandwidth_hz[row])
            upload = float(upload_time_s[row])
            if (
                upload_bits > 0.0
                and np.isfinite(upload)
                and upload > 0.0
                and power > 0.0
                and bandwidth > 0.0
            ):
                rate = upload_bits / upload
                snr = np.exp2(rate / bandwidth) - 1.0
                self._gains[device].update(
                    snr * system.noise_psd_w_per_hz * bandwidth / power
                )

    # -- views ---------------------------------------------------------------
    def observed(self, device: int) -> bool:
        """Whether ``device`` has at least one compute *and* one channel fit."""
        return (
            self._cycles[device].observations > 0
            and self._gains[device].observations > 0
        )

    def cycles_estimates(self) -> np.ndarray:
        """Fitted ``c_n`` per universe device (NaN where unobserved)."""
        return np.array(
            [
                rls.theta if rls.observations else float("nan")
                for rls in self._cycles
            ],
            dtype=float,
        )

    def gain_estimates(self) -> np.ndarray:
        """Fitted large-scale gain per universe device (NaN where unobserved)."""
        return np.array(
            [
                rls.theta if rls.observations else float("nan")
                for rls in self._gains
            ],
            dtype=float,
        )

    def estimated_system(
        self, system: SystemModel, universe_indices: np.ndarray
    ) -> SystemModel:
        """``system`` (an active-subset model) re-parameterised with the fits.

        Each row of the subset whose universe device has been observed gets
        its fitted ``c_n`` and gain; unobserved rows keep the oracle values
        (the calibration bootstrap).  Hardware limits (frequency/power
        boxes, ``d_n``, ``D_n``) are spec-sheet data the server already
        knows, so they pass through untouched.
        """
        profiles = list(system.fleet.profiles)
        gains = np.array(system.gains, dtype=float)
        for row, device in enumerate(int(i) for i in universe_indices):
            cycles_rls = self._cycles[device]
            if cycles_rls.observations and cycles_rls.theta > 0.0:
                profiles[row] = replace(
                    profiles[row], cycles_per_sample=cycles_rls.theta
                )
            gain_rls = self._gains[device]
            if gain_rls.observations and gain_rls.theta > 0.0:
                gains[row] = gain_rls.theta
        return system.with_fleet(type(system.fleet)(tuple(profiles))).with_gains(gains)

    def error_report(self, system: SystemModel) -> dict[str, float]:
        """Mean relative error of the fits against the oracle universe system.

        Only observed devices enter each mean (an unobserved device has no
        estimate to be wrong); with nothing observed both errors are NaN.
        The gain error is measured against the system's *current* gains —
        with per-round fading the caller should pass the base (large-scale)
        system, which is what the RLS average converges to.
        """
        cycles_true = system.cycles_per_sample
        gains_true = system.gains
        cycles_errors = [
            abs(self._cycles[i].theta - cycles_true[i]) / abs(cycles_true[i])
            for i in range(self.num_devices)
            if self._cycles[i].observations
        ]
        gain_errors = [
            abs(self._gains[i].theta - gains_true[i]) / abs(gains_true[i])
            for i in range(self.num_devices)
            if self._gains[i].observations
        ]
        return {
            "cycles_rel_err": float(np.mean(cycles_errors)) if cycles_errors else float("nan"),
            "gain_rel_err": float(np.mean(gain_errors)) if gain_errors else float("nan"),
            "observed_devices": float(
                sum(1 for i in range(self.num_devices) if self.observed(i))
            ),
        }
