"""Evaluation metrics for the FedAvg simulator."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "cross_entropy"]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float(np.mean(predictions == labels))


def cross_entropy(probabilities: np.ndarray, labels: np.ndarray, eps: float = 1e-12) -> float:
    """Mean negative log-likelihood of the true labels."""
    probabilities = np.asarray(probabilities, dtype=float)
    labels = np.asarray(labels, dtype=int)
    if probabilities.ndim != 2 or probabilities.shape[0] != labels.shape[0]:
        raise ValueError("probabilities must be (num_samples, num_classes)")
    picked = probabilities[np.arange(labels.shape[0]), labels]
    return float(-np.mean(np.log(picked + eps)))
