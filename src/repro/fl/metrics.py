"""Evaluation metrics and per-round records for the FedAvg simulators.

The scalar helpers (:func:`accuracy`, :func:`cross_entropy`) score a model;
:class:`RoundRecord` and :class:`RoundLoopReport` record what one global
round of the closed-loop simulation *cost*: the wall-clock and energy
implied by that round's re-solved resource allocation, the training
quality it bought, and the allocator's own effort (iterations, per-stage
timings).  The report is what the ``repro fl`` CLI prints and what the
``flcurve`` experiment folds into accuracy-versus-wall-clock tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

__all__ = ["accuracy", "cross_entropy", "RoundRecord", "RoundLoopReport"]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float(np.mean(predictions == labels))


def cross_entropy(probabilities: np.ndarray, labels: np.ndarray, eps: float = 1e-12) -> float:
    """Mean negative log-likelihood of the true labels."""
    probabilities = np.asarray(probabilities, dtype=float)
    labels = np.asarray(labels, dtype=int)
    if probabilities.ndim != 2 or probabilities.shape[0] != labels.shape[0]:
        raise ValueError("probabilities must be (num_samples, num_classes)")
    picked = probabilities[np.arange(labels.shape[0]), labels]
    return float(-np.mean(np.log(picked + eps)))


@dataclass(frozen=True)
class RoundRecord:
    """Everything one closed-loop global round produced and cost."""

    #: 1-based global round index.
    round_index: int
    #: The clients that trained and aggregated this round (sorted indices).
    selected: tuple[int, ...]
    #: Wall-clock of this round: the slowest *selected* client's
    #: computation + upload time under the round's allocation.
    round_time_s: float
    #: Cumulative wall-clock through this round.
    elapsed_time_s: float
    #: Energy spent by the selected clients this round.
    round_energy_j: float
    #: Cumulative energy through this round.
    consumed_energy_j: float
    #: FedAvg-weighted mean of the selected clients' final minibatch losses.
    train_loss: float
    #: Global-model loss on the held-out test split after aggregation.
    test_loss: float
    #: Global-model accuracy on the held-out test split after aggregation.
    test_accuracy: float
    #: Outer Algorithm-2 iterations the round's allocation solve took.
    allocator_iterations: int
    #: The allocation solve's weighted objective value.
    allocator_objective: float
    #: The per-round deadline ``T`` the allocator chose (or was given).
    round_deadline_s: float
    #: Per-stage wall-clock of the round (``fl_channel`` / ``fl_allocate`` /
    #: ``fl_select`` / ``fl_train`` plus the solver's own stages).
    timings: Mapping[str, float] = field(default_factory=dict)

    # -- dynamic-fleet fields (None/empty when the layer is disabled, so a
    # -- frozen-fleet record is byte-identical to the pre-dynamic schema) ----
    #: Number of active (present and alive) devices this round, or None
    #: when churn/drain are off (the fleet is the full universe).
    fleet_size: int | None = None
    #: Devices that (re-)arrived / departed via churn before this round.
    arrived: tuple[int, ...] = ()
    departed: tuple[int, ...] = ()
    #: Devices retired this round because their battery drained.
    retired: tuple[int, ...] = ()
    #: Smallest state-of-charge across alive devices after this round's
    #: draws, or None when battery tracking is off.
    battery_soc_min: float | None = None
    #: Whether the warm-start chain was punctured before this round's solve
    #: (the active fleet changed shape), or None when warm starts are off.
    resolve_punctured: bool | None = None
    #: Mean relative error of the estimated profiles against the oracle
    #: (compute cycles / large-scale gains), or None when estimation is off.
    estimation_cycles_rel_err: float | None = None
    estimation_gain_rel_err: float | None = None


@dataclass
class RoundLoopReport:
    """The per-round trajectory of one closed-loop FL training run."""

    records: list[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # -- aggregate views -----------------------------------------------------
    @property
    def final_accuracy(self) -> float:
        return self.records[-1].test_accuracy if self.records else float("nan")

    @property
    def total_time_s(self) -> float:
        return self.records[-1].elapsed_time_s if self.records else 0.0

    @property
    def total_energy_j(self) -> float:
        return self.records[-1].consumed_energy_j if self.records else 0.0

    @property
    def total_allocator_iterations(self) -> int:
        return sum(r.allocator_iterations for r in self.records)

    def stage_seconds(self, name: str) -> float:
        """Total seconds charged to stage ``name`` across every round."""
        return float(sum(r.timings.get(name, 0.0) for r in self.records))

    def time_to_accuracy(self, target: float) -> float | None:
        """Wall-clock seconds until ``target`` accuracy, or None if never."""
        for record in self.records:
            if record.test_accuracy >= target:
                return record.elapsed_time_s
        return None

    def rounds_to_accuracy(self, target: float) -> int | None:
        """First round reaching ``target`` accuracy, or None if never."""
        for record in self.records:
            if record.test_accuracy >= target:
                return record.round_index
        return None

    # -- serialisation -------------------------------------------------------
    def as_rows(self) -> list[dict[str, Any]]:
        """One plain dict per round (what the CLI table and CSV show).

        Dynamic-fleet columns (fleet size, churn/retirement counts) appear
        only when the run produced them, so frozen-fleet output is
        byte-identical to the pre-dynamic format.
        """
        dynamic = bool(self.records) and self.records[0].fleet_size is not None
        rows = []
        for record in self.records:
            row: dict[str, Any] = {
                "round": record.round_index,
                "selected": len(record.selected),
                "round_time_s": record.round_time_s,
                "elapsed_s": record.elapsed_time_s,
                "energy_j": record.consumed_energy_j,
                "accuracy": record.test_accuracy,
                "test_loss": record.test_loss,
                "train_loss": record.train_loss,
                "allocator_iterations": record.allocator_iterations,
            }
            if dynamic:
                row["fleet"] = record.fleet_size
                row["arrived"] = len(record.arrived)
                row["departed"] = len(record.departed)
                row["retired"] = len(record.retired)
            rows.append(row)
        return rows

    def to_table(self):
        """The per-round trajectory as a :class:`~repro.experiments.results.ResultTable`."""
        # Imported lazily: the experiments package depends on repro.fl via
        # the flcurve experiment, so a module-level import would cycle.
        from ..experiments.results import ResultTable

        return ResultTable.from_rows(
            "fl-roundloop",
            self.as_rows(),
            metadata={"x_axis": "elapsed_s", "rounds": len(self.records)},
        )

    def flat_metrics(self) -> dict[str, float]:
        """The trajectory flattened to scalar metrics (sweep-cache friendly).

        Per-round values are keyed ``r<round:03d>_<metric>`` so the sweep
        engine can average, cache and compare whole trajectories with its
        ordinary scalar-metric machinery.
        """
        metrics: dict[str, float] = {
            "rounds": float(len(self.records)),
            "final_accuracy": self.final_accuracy,
            "final_test_loss": self.records[-1].test_loss if self.records else float("nan"),
            "total_time_s": self.total_time_s,
            "total_energy_j": self.total_energy_j,
            "allocator_iterations": float(self.total_allocator_iterations),
        }
        for record in self.records:
            prefix = f"r{record.round_index:03d}"
            metrics[f"{prefix}_accuracy"] = record.test_accuracy
            metrics[f"{prefix}_test_loss"] = record.test_loss
            metrics[f"{prefix}_elapsed_s"] = record.elapsed_time_s
            metrics[f"{prefix}_energy_j"] = record.consumed_energy_j
            metrics[f"{prefix}_round_time_s"] = record.round_time_s
            metrics[f"{prefix}_selected"] = float(len(record.selected))
            # Dynamic-fleet metrics appear only when the layer produced
            # them, so frozen-fleet trajectories keep the historical key
            # set exactly (the golden regression test relies on this).
            if record.fleet_size is not None:
                metrics[f"{prefix}_fleet_size"] = float(record.fleet_size)
                metrics[f"{prefix}_arrived"] = float(len(record.arrived))
                metrics[f"{prefix}_departed"] = float(len(record.departed))
                metrics[f"{prefix}_retired"] = float(len(record.retired))
            if record.battery_soc_min is not None:
                metrics[f"{prefix}_battery_soc_min"] = record.battery_soc_min
            if record.resolve_punctured is not None:
                metrics[f"{prefix}_resolve_punctured"] = float(
                    record.resolve_punctured
                )
            if record.estimation_cycles_rel_err is not None:
                metrics[f"{prefix}_est_cycles_rel_err"] = (
                    record.estimation_cycles_rel_err
                )
            if record.estimation_gain_rel_err is not None:
                metrics[f"{prefix}_est_gain_rel_err"] = (
                    record.estimation_gain_rel_err
                )
        return metrics
