"""Numpy models for the FedAvg simulator.

Both models expose the same tiny interface the FL stack needs:

* ``get_weights()`` / ``set_weights(flat)`` — the model parameters as one
  flat float64 vector (this is what devices "upload"; its size in bits is
  what the paper's ``d_n`` abstracts);
* ``loss_and_gradient(x, y)`` — mean cross-entropy and its flat gradient;
* ``predict_proba(x)`` / ``predict(x)`` — inference.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["SoftmaxRegression", "MLPClassifier"]


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def _one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    encoded = np.zeros((labels.shape[0], num_classes))
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


class SoftmaxRegression:
    """Multinomial logistic regression with L2 regularisation."""

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        *,
        l2: float = 1e-4,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if num_features <= 0 or num_classes < 2:
            raise ConfigurationError("need positive features and at least two classes")
        if l2 < 0.0:
            raise ConfigurationError("l2 must be non-negative")
        self.num_features = num_features
        self.num_classes = num_classes
        self.l2 = l2
        generator = np.random.default_rng(rng)
        self._weights = 0.01 * generator.normal(size=(num_features + 1, num_classes))

    # -- parameter plumbing -------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return self._weights.size

    def get_weights(self) -> np.ndarray:
        return self._weights.ravel().copy()

    def set_weights(self, flat: np.ndarray) -> None:
        flat = np.asarray(flat, dtype=float)
        if flat.size != self.num_parameters:
            raise ConfigurationError(
                f"expected {self.num_parameters} parameters, got {flat.size}"
            )
        self._weights = flat.reshape(self._weights.shape).copy()

    def upload_bits(self, bits_per_parameter: int = 32) -> float:
        """Size of one model upload, for consistency checks against ``d_n``."""
        return float(self.num_parameters * bits_per_parameter)

    # -- inference / training ------------------------------------------------
    def _with_bias(self, x: np.ndarray) -> np.ndarray:
        return np.concatenate([x, np.ones((x.shape[0], 1))], axis=1)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return _softmax(self._with_bias(np.asarray(x, dtype=float)) @ self._weights)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(x), axis=1)

    def loss_and_gradient(self, x: np.ndarray, y: np.ndarray) -> tuple[float, np.ndarray]:
        x_b = self._with_bias(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=int)
        probs = _softmax(x_b @ self._weights)
        targets = _one_hot(y, self.num_classes)
        eps = 1e-12
        loss = -np.mean(np.sum(targets * np.log(probs + eps), axis=1))
        loss += 0.5 * self.l2 * float(np.sum(self._weights**2))
        grad = x_b.T @ (probs - targets) / x_b.shape[0] + self.l2 * self._weights
        return float(loss), grad.ravel()

    def clone(self) -> "SoftmaxRegression":
        copy = SoftmaxRegression(self.num_features, self.num_classes, l2=self.l2, rng=0)
        copy.set_weights(self.get_weights())
        return copy


class MLPClassifier:
    """One-hidden-layer perceptron with tanh activation."""

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden_units: int = 32,
        *,
        l2: float = 1e-4,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if hidden_units <= 0:
            raise ConfigurationError("hidden_units must be positive")
        if l2 < 0.0:
            raise ConfigurationError("l2 must be non-negative")
        self.num_features = num_features
        self.num_classes = num_classes
        self.hidden_units = hidden_units
        self.l2 = l2
        generator = np.random.default_rng(rng)
        scale1 = 1.0 / np.sqrt(num_features)
        scale2 = 1.0 / np.sqrt(hidden_units)
        self._w1 = generator.normal(scale=scale1, size=(num_features, hidden_units))
        self._b1 = np.zeros(hidden_units)
        self._w2 = generator.normal(scale=scale2, size=(hidden_units, num_classes))
        self._b2 = np.zeros(num_classes)

    # -- parameter plumbing -------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return self._w1.size + self._b1.size + self._w2.size + self._b2.size

    def get_weights(self) -> np.ndarray:
        return np.concatenate(
            [self._w1.ravel(), self._b1, self._w2.ravel(), self._b2]
        ).copy()

    def set_weights(self, flat: np.ndarray) -> None:
        flat = np.asarray(flat, dtype=float)
        if flat.size != self.num_parameters:
            raise ConfigurationError(
                f"expected {self.num_parameters} parameters, got {flat.size}"
            )
        sizes = [self._w1.size, self._b1.size, self._w2.size, self._b2.size]
        parts = np.split(flat, np.cumsum(sizes)[:-1])
        self._w1 = parts[0].reshape(self._w1.shape).copy()
        self._b1 = parts[1].copy()
        self._w2 = parts[2].reshape(self._w2.shape).copy()
        self._b2 = parts[3].copy()

    def upload_bits(self, bits_per_parameter: int = 32) -> float:
        """Size of one model upload, for consistency checks against ``d_n``."""
        return float(self.num_parameters * bits_per_parameter)

    # -- inference / training ------------------------------------------------
    def _forward(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        hidden = np.tanh(x @ self._w1 + self._b1)
        logits = hidden @ self._w2 + self._b2
        return hidden, logits

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        _, logits = self._forward(np.asarray(x, dtype=float))
        return _softmax(logits)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(x), axis=1)

    def loss_and_gradient(self, x: np.ndarray, y: np.ndarray) -> tuple[float, np.ndarray]:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=int)
        hidden, logits = self._forward(x)
        probs = _softmax(logits)
        targets = _one_hot(y, self.num_classes)
        eps = 1e-12
        loss = -np.mean(np.sum(targets * np.log(probs + eps), axis=1))
        loss += 0.5 * self.l2 * float(np.sum(self._w1**2) + np.sum(self._w2**2))

        batch = x.shape[0]
        delta_out = (probs - targets) / batch
        grad_w2 = hidden.T @ delta_out + self.l2 * self._w2
        grad_b2 = delta_out.sum(axis=0)
        delta_hidden = (delta_out @ self._w2.T) * (1.0 - hidden**2)
        grad_w1 = x.T @ delta_hidden + self.l2 * self._w1
        grad_b1 = delta_hidden.sum(axis=0)
        gradient = np.concatenate(
            [grad_w1.ravel(), grad_b1, grad_w2.ravel(), grad_b2]
        )
        return float(loss), gradient

    def clone(self) -> "MLPClassifier":
        copy = MLPClassifier(
            self.num_features, self.num_classes, self.hidden_units, l2=self.l2, rng=0
        )
        copy.set_weights(self.get_weights())
        return copy
