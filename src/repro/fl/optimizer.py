"""Minibatch SGD used for the local training steps."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["SGDConfig", "sgd_steps"]


@dataclass(frozen=True)
class SGDConfig:
    """Hyper-parameters of the local optimiser."""

    learning_rate: float = 0.1
    batch_size: int = 32
    momentum: float = 0.0

    def __post_init__(self) -> None:
        if self.learning_rate <= 0.0:
            raise ConfigurationError("learning_rate must be positive")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise ConfigurationError("momentum must lie in [0, 1)")


def sgd_steps(
    model,
    features: np.ndarray,
    labels: np.ndarray,
    num_iterations: int,
    config: SGDConfig,
    *,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Run ``num_iterations`` SGD steps in place on ``model``.

    Each iteration samples one minibatch (with replacement when the dataset
    is smaller than the batch size).  Returns the last minibatch loss.
    """
    generator = np.random.default_rng(rng)
    num_samples = features.shape[0]
    velocity = np.zeros(model.num_parameters)
    last_loss = float("nan")
    for _ in range(num_iterations):
        if num_samples <= config.batch_size:
            batch_idx = np.arange(num_samples)
        else:
            batch_idx = generator.choice(num_samples, size=config.batch_size, replace=False)
        loss, gradient = model.loss_and_gradient(features[batch_idx], labels[batch_idx])
        velocity = config.momentum * velocity - config.learning_rate * gradient
        model.set_weights(model.get_weights() + velocity)
        last_loss = loss
    return last_loss
