"""Client data partitioning: IID and Dirichlet non-IID splits."""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["iid_partition", "dirichlet_partition"]


def iid_partition(
    num_samples: int,
    num_clients: int,
    *,
    rng: np.random.Generator | int | None = None,
) -> list[np.ndarray]:
    """Shuffle the sample indices and split them evenly across clients."""
    if num_clients <= 0:
        raise ConfigurationError("num_clients must be positive")
    if num_samples < num_clients:
        raise ConfigurationError("need at least one sample per client")
    generator = np.random.default_rng(rng)
    indices = generator.permutation(num_samples)
    return [np.sort(chunk) for chunk in np.array_split(indices, num_clients)]


def dirichlet_partition(
    labels: np.ndarray,
    num_clients: int,
    *,
    concentration: float = 0.5,
    min_samples_per_client: int = 2,
    rng: np.random.Generator | int | None = None,
    max_retries: int = 50,
) -> list[np.ndarray]:
    """Label-skewed partition: class proportions per client follow a Dirichlet.

    Smaller ``concentration`` means more skew (each client sees fewer
    classes); ``concentration -> infinity`` approaches the IID split.
    """
    if num_clients <= 0:
        raise ConfigurationError("num_clients must be positive")
    if concentration <= 0.0:
        raise ConfigurationError("concentration must be positive")
    labels = np.asarray(labels)
    classes = np.unique(labels)
    generator = np.random.default_rng(rng)

    for _ in range(max_retries):
        client_indices: list[list[int]] = [[] for _ in range(num_clients)]
        for cls in classes:
            cls_indices = np.flatnonzero(labels == cls)
            generator.shuffle(cls_indices)
            proportions = generator.dirichlet(np.full(num_clients, concentration))
            cuts = (np.cumsum(proportions)[:-1] * len(cls_indices)).astype(int)
            for client, chunk in enumerate(np.split(cls_indices, cuts)):
                client_indices[client].extend(chunk.tolist())
        sizes = np.array([len(c) for c in client_indices])
        if np.all(sizes >= min_samples_per_client):
            return [np.sort(np.array(c, dtype=int)) for c in client_indices]
    raise ConfigurationError(
        "could not produce a partition with the requested minimum client size; "
        "increase concentration or decrease num_clients"
    )
