"""The closed loop: allocator-driven round-by-round federated training.

This module is where the paper's two halves finally drive each other.  The
static :class:`~repro.fl.simulation.FederatedSimulation` prices every round
with one fixed allocation; :class:`FLRoundLoop` instead re-runs the whole
resource-allocation stack *every global round*:

1. **Redraw the channel** — the large-scale drop (path loss + shadowing)
   stays fixed, but a fresh small-scale fading draw from the
   :mod:`repro.wireless.fading` registry perturbs the gains, so the
   allocator faces an evolving channel exactly as a deployed system would.
2. **Re-solve the allocation** — Algorithm 2 (or any registered baseline
   scheme) solves the new drop; consecutive proposed-scheme rounds chain
   through the PR-3 warm-start hints (the previous round's bandwidth
   multiplier seeds the inner KKT solves) on the PR-4 vector backend.
3. **Price the round** — the re-solved ``(p, B, f)`` gives every device its
   computation + upload time and energy for this round.
4. **Select clients** — a pluggable strategy (:mod:`repro.fl.selection`)
   picks who trains from the allocation-implied timings; the round's
   wall-clock is the slowest *selected* client.
5. **Train and aggregate** — the selected clients run their local SGD and
   the :class:`~repro.fl.server.FedAvgServer` aggregates, producing the
   accuracy/loss the round's seconds and joules actually bought.

On top of the closed loop sits the **dynamic-fleet layer** (all off by
default, in which case the trajectory is bit-identical to the frozen-fleet
loop):

* **churn** (:mod:`repro.fl.churn`) — a declarative or Poisson-generated
  schedule of arrivals/departures grows and shrinks the fleet mid-training;
  each round re-solves the allocation over the present subset
  (:meth:`SystemModel.with_devices`), and the warm-start chain punctures
  deterministically whenever the fleet shape changes;
* **drain** — per-device :class:`~repro.devices.battery.Battery` state is
  charged each round's allocated energy; drained devices are retired (never
  selected again, re-solved around) under the ``graceful`` policy, or the
  run fails loudly under ``loud``;
* **estimation** (:mod:`repro.fl.estimation`) — the allocator can run on
  *estimated* device profiles fitted from observed round timings by
  recursive least squares instead of the oracle parameters, with the
  oracle-vs-estimated error surfaced per round.

Everything is deterministic in ``RoundLoopConfig.seed``: the dataset,
partition, model init, server RNG, each round's fading/selection draws and
the churn event stream derive from per-purpose seed streams, so fixed-seed
runs are bit-identical across solver backends, warm/cold starts and sweep
execution order — churned, drained and estimated or not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..baselines.registry import BASELINES, get_baseline
from ..core.allocator import AllocationResult, AllocatorConfig, ResourceAllocator
from ..core.problem import JointProblem, ProblemWeights
from ..core.subproblem2 import validate_backend
from ..devices.battery import Battery, BatteryDrainedError
from ..exceptions import ConfigurationError
from ..perf.timers import StageTimings, stage
from ..scenarios import ScenarioSpec
from ..system import SystemModel
from ..wireless.fading import make_fading
from .churn import ChurnSchedule, resolve_churn
from .client import Client
from .datasets import make_classification_dataset
from .estimation import ProfileEstimator
from .metrics import RoundLoopReport, RoundRecord
from .models import MLPClassifier, SoftmaxRegression
from .optimizer import SGDConfig
from .partition import dirichlet_partition, iid_partition
from .selection import SelectionContext, get_selection_strategy, select_clients
from .server import FedAvgServer

__all__ = ["RoundLoopConfig", "FLRoundLoop", "run_round_loop"]

#: Battery retirement policies: ``graceful`` drains what is left and
#: retires the device (the loop re-solves around it from the next round);
#: ``loud`` raises :class:`~repro.devices.battery.BatteryDrainedError`.
BATTERY_POLICIES = ("graceful", "loud")

#: A battery at or below this state of charge counts as dead — the device
#: is retired and never selected again.
_DEAD_SOC = 1e-12

#: Seed-stream tags: every RNG in the loop derives from ``(seed, tag)`` (or
#: ``(seed, _ROUND_STREAM + round)`` for per-round draws), so adding a new
#: consumer can never shift an existing stream.
_DATASET_STREAM = 0
_PARTITION_STREAM = 1
_MODEL_STREAM = 2
_SERVER_STREAM = 3
_ROUND_STREAM = 1000


@dataclass(frozen=True)
class RoundLoopConfig:
    """Declarative description of one closed-loop FL training run.

    The config is pure, JSON-able data (plus the nested allocator config),
    so a run can be hashed into the sweep cache, shipped to a worker
    process, or reconstructed from a CLI invocation.
    """

    #: Flat scenario-spec mapping (optional ``"family"`` key + builder
    #: params).  Ignored when a pre-built system is handed to
    #: :class:`FLRoundLoop` directly (the sweep engine does that).
    scenario: Mapping[str, Any] = field(default_factory=dict)
    #: Number of global rounds to run.
    rounds: int = 10
    #: Local SGD iterations per round (default: the system's ``R_l``).
    local_iterations: int | None = None
    #: The objective weight ``w1`` (``w2 = 1 - w1``).
    energy_weight: float = 0.5
    #: Optional hard completion-time budget handed to every round's problem.
    deadline_s: float | None = None
    #: ``"proposed"`` (Algorithm 2) or any registered baseline scheme name.
    scheme: str = "proposed"
    #: SP2 inner-solve backend (``"vector"`` / ``"scalar"``; None = default).
    backend: str | None = None
    #: Chain consecutive rounds through warm-start hints (proposed only).
    warm_start: bool = True
    #: Client-selection strategy name (see :mod:`repro.fl.selection`).
    selection: str = "all"
    #: Strategy-specific parameters (e.g. ``{"k": 5}``).
    selection_params: Mapping[str, Any] = field(default_factory=dict)
    #: Per-round fading model redrawn from the fading registry, or None to
    #: keep the channel static across rounds.
    fading: str | None = "rayleigh"
    #: Fading-model parameters (e.g. ``{"k_db": 6.0}`` for Rician).
    fading_params: Mapping[str, Any] = field(default_factory=dict)
    #: Master seed of every RNG stream in the loop.
    seed: int = 0
    #: Synthetic-dataset shape.
    num_features: int = 16
    num_classes: int = 4
    samples_per_client: int = 40
    #: ``"dirichlet"`` (label-skewed) or ``"iid"`` client partitioning.
    partition: str = "dirichlet"
    concentration: float = 2.0
    #: ``"softmax"`` (multinomial regression) or ``"mlp"``.
    model: str = "softmax"
    hidden_units: int = 16
    learning_rate: float = 0.1
    batch_size: int = 32
    #: Hyper-parameters of the per-round Algorithm-2 solve.
    allocator: AllocatorConfig = field(default_factory=AllocatorConfig)

    # -- the dynamic-fleet layer (all off by default: the frozen-fleet
    # -- trajectory is then bit-identical to the pre-dynamic loop) ----------
    #: Churn spec (see :mod:`repro.fl.churn`), or None for a frozen fleet.
    churn: Mapping[str, Any] | None = None
    #: Battery spec: ``{"capacity_j": J, "initial_soc": 1.0, "policy":
    #: "graceful"|"loud"}``; None disables drain tracking entirely.
    battery: Mapping[str, Any] | None = None
    #: Solve each round's allocation on *estimated* device profiles fitted
    #: from observed round timings instead of the oracle parameters.
    estimate_profiles: bool = False
    #: Estimator parameters (e.g. ``{"forgetting": 0.9}``).
    estimation_params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ConfigurationError("rounds must be positive")
        if self.local_iterations is not None and self.local_iterations <= 0:
            raise ConfigurationError("local_iterations must be positive when given")
        if not 0.0 <= self.energy_weight <= 1.0:
            raise ConfigurationError("energy_weight must lie in [0, 1]")
        if self.scheme != "proposed" and self.scheme not in BASELINES:
            known = ", ".join(["proposed", *sorted(BASELINES)])
            raise ConfigurationError(
                f"unknown scheme {self.scheme!r}; known: {known}"
            )
        if self.backend is not None:
            validate_backend(self.backend)
        if self.partition not in ("dirichlet", "iid"):
            raise ConfigurationError(
                f"partition must be 'dirichlet' or 'iid', got {self.partition!r}"
            )
        if self.model not in ("softmax", "mlp"):
            raise ConfigurationError(
                f"model must be 'softmax' or 'mlp', got {self.model!r}"
            )
        if self.samples_per_client <= 0:
            raise ConfigurationError("samples_per_client must be positive")
        # Fail fast on unknown registry names (instead of at round 1).
        get_selection_strategy(self.selection)
        if self.fading is not None:
            make_fading(self.fading, **dict(self.fading_params))
        if self.churn is not None:
            ChurnSchedule.from_mapping(self.churn)
        if self.battery is not None:
            self.battery_spec()
        if self.estimate_profiles or self.estimation_params:
            ProfileEstimator(1, params=dict(self.estimation_params))

    def battery_spec(self) -> tuple[float, float, str]:
        """The validated ``(capacity_j, initial_soc, policy)`` battery spec."""
        spec = dict(self.battery or {})
        unknown = sorted(set(spec) - {"capacity_j", "initial_soc", "policy"})
        if unknown:
            raise ConfigurationError(
                f"unknown battery spec key(s) {', '.join(map(repr, unknown))}; "
                "known: capacity_j, initial_soc, policy"
            )
        if "capacity_j" not in spec:
            raise ConfigurationError("battery spec needs capacity_j")
        capacity = float(spec["capacity_j"])
        if capacity <= 0.0:
            raise ConfigurationError("battery capacity_j must be positive")
        initial_soc = float(spec.get("initial_soc", 1.0))
        if not 0.0 < initial_soc <= 1.0:
            raise ConfigurationError("battery initial_soc must lie in (0, 1]")
        policy = str(spec.get("policy", "graceful"))
        if policy not in BATTERY_POLICIES:
            raise ConfigurationError(
                f"battery policy must be one of {', '.join(BATTERY_POLICIES)}, "
                f"got {policy!r}"
            )
        return capacity, initial_soc, policy

    def scenario_spec(self) -> ScenarioSpec:
        """The configured scenario as a (family, params) spec."""
        return ScenarioSpec.from_mapping(self.scenario)


class FLRoundLoop:
    """Run closed-loop federated training for a :class:`RoundLoopConfig`.

    ``system`` overrides the config's scenario with a pre-built drop (the
    sweep engine builds scenarios itself so they enter its cache key).
    """

    def __init__(self, config: RoundLoopConfig, system: SystemModel | None = None) -> None:
        self.config = config
        self.system = system if system is not None else config.scenario_spec().build()

    # -- training substrate -------------------------------------------------
    def _build_server(self) -> FedAvgServer:
        """Dataset, partition, model and server — all seeded deterministically."""
        config = self.config
        num_clients = self.system.num_devices
        train_samples = config.samples_per_client * num_clients
        # test_fraction=0.2 of the total leaves exactly ``train_samples``
        # for the clients when the total is train / 0.8.
        total = int(round(train_samples / 0.8))
        dataset = make_classification_dataset(
            num_samples=total,
            num_features=config.num_features,
            num_classes=config.num_classes,
            rng=np.random.default_rng((config.seed, _DATASET_STREAM)),
        )
        partition_rng = np.random.default_rng((config.seed, _PARTITION_STREAM))
        if config.partition == "iid":
            parts = iid_partition(dataset.num_train, num_clients, rng=partition_rng)
        else:
            parts = dirichlet_partition(
                dataset.train_y,
                num_clients,
                concentration=config.concentration,
                rng=partition_rng,
            )
        sgd = SGDConfig(
            learning_rate=config.learning_rate, batch_size=config.batch_size
        )
        clients = [
            Client(
                client_id=i,
                features=dataset.train_x[idx],
                labels=dataset.train_y[idx],
                sgd=sgd,
            )
            for i, idx in enumerate(parts)
        ]
        model_rng = np.random.default_rng((config.seed, _MODEL_STREAM))
        if config.model == "mlp":
            model = MLPClassifier(
                dataset.num_features,
                dataset.num_classes,
                config.hidden_units,
                rng=model_rng,
            )
        else:
            model = SoftmaxRegression(
                dataset.num_features, dataset.num_classes, rng=model_rng
            )
        return FedAvgServer(
            model,
            clients,
            test_x=dataset.test_x,
            test_y=dataset.test_y,
            rng=np.random.default_rng((config.seed, _SERVER_STREAM)),
        )

    # -- per-round allocation ------------------------------------------------
    def _solve_round(
        self,
        system: SystemModel,
        allocator: ResourceAllocator | None,
        mu_hint: float | None,
    ) -> AllocationResult:
        """Re-solve the allocation for this round's channel realisation."""
        problem = JointProblem(
            system,
            ProblemWeights.from_energy_weight(self.config.energy_weight),
            deadline_s=self.config.deadline_s,
        )
        if allocator is None:
            return get_baseline(self.config.scheme)(problem)
        hints = None
        if self.config.warm_start and mu_hint is not None and mu_hint > 0.0:
            hints = {"mu": mu_hint}
        return allocator.solve(problem, warm_hints=hints)

    # -- the loop -------------------------------------------------------------
    def run(self) -> RoundLoopReport:
        """Run every configured round and return the per-round trajectory."""
        config = self.config
        base_system = self.system
        # Pricing and training must agree on R_l: the compute time/energy
        # models charge ``R_l c_n D_n`` cycles per round, so an overridden
        # iteration count is threaded into the system model, not just the
        # SGD loop.
        if (
            config.local_iterations is not None
            and config.local_iterations != base_system.local_iterations
        ):
            base_system = base_system.with_schedule(
                local_iterations=config.local_iterations
            )
        num_clients = base_system.num_devices
        server = self._build_server()
        local_iterations = base_system.local_iterations
        fading_model = (
            make_fading(config.fading, **dict(config.fading_params))
            if config.fading is not None
            else None
        )
        allocator = (
            ResourceAllocator(config.allocator, backend=config.backend)
            if config.scheme == "proposed"
            else None
        )
        base_gains = base_system.gains

        # -- dynamic-fleet state over the device universe -------------------
        churn = (
            resolve_churn(
                config.churn,
                num_devices=num_clients,
                rounds=config.rounds,
                seed=config.seed,
            )
            if config.churn is not None
            else None
        )
        batteries: list[Battery] | None = None
        battery_policy = "graceful"
        if config.battery is not None:
            capacity, initial_soc, battery_policy = config.battery_spec()
            batteries = [
                Battery(capacity_j=capacity, charge_j=capacity * initial_soc)
                for _ in range(num_clients)
            ]
        estimator = (
            ProfileEstimator(num_clients, params=dict(config.estimation_params))
            if config.estimate_profiles
            else None
        )
        fleet_dynamic = churn is not None or batteries is not None
        present = np.ones(num_clients, dtype=bool)
        if churn is not None:
            present[:] = False
            present[list(churn.initial_present)] = True
        alive = np.ones(num_clients, dtype=bool)
        previous_active: tuple[int, ...] | None = None

        report = RoundLoopReport()
        elapsed = 0.0
        consumed = 0.0
        mu_hint: float | None = None
        for round_index in range(1, config.rounds + 1):
            timings = StageTimings()
            round_rng = np.random.default_rng(
                (config.seed, _ROUND_STREAM + round_index)
            )
            arrived: tuple[int, ...] = ()
            departed: tuple[int, ...] = ()
            if churn is not None and round_index >= 2:
                arrived, departed = churn.events_for_round(round_index)
                present[list(arrived)] = True
                present[list(departed)] = False
            active = np.flatnonzero(present & alive)
            if active.size == 0:
                raise BatteryDrainedError(
                    f"no device can train at round {round_index}: every "
                    "present device's battery is drained"
                )
            active_tuple = tuple(int(i) for i in active)
            punctured = False
            if (
                config.warm_start
                and previous_active is not None
                and active_tuple != previous_active
            ):
                # The fleet changed shape: the previous round's bandwidth
                # multiplier belongs to a different problem, so the warm
                # chain punctures deterministically (exactly like a sharded
                # sweep skipping an out-of-shard task).
                mu_hint = None
                punctured = True
            with stage("fl_round", timings):
                with stage("fl_channel", timings):
                    # Fading is always drawn over the full universe so the
                    # per-round stream never shifts with the fleet shape.
                    if fading_model is not None:
                        factors = fading_model.sample_linear(num_clients, round_rng)
                        system = base_system.with_gains(base_gains * factors)
                    else:
                        system = base_system
                    round_system = (
                        system.with_devices(active)
                        if active.size != num_clients
                        else system
                    )
                with stage("fl_allocate", timings):
                    solve_system = (
                        estimator.estimated_system(round_system, active)
                        if estimator is not None
                        else round_system
                    )
                    result = self._solve_round(solve_system, allocator, mu_hint)
                if allocator is not None:
                    mu_hint = result.warm_hints.get("mu", mu_hint)
                allocation = result.allocation
                # Pricing always uses the *true* subsystem: an allocation
                # solved on estimated profiles is charged what it really
                # costs, which is what makes the estimation gap measurable.
                per_time = allocation.per_device_time_s(round_system)
                per_energy = allocation.per_device_energy_j(round_system)
                with stage("fl_select", timings):
                    soc = (
                        np.array(
                            [batteries[i].state_of_charge for i in active_tuple]
                        )
                        if batteries is not None
                        else None
                    )
                    selected_sub = select_clients(
                        config.selection,
                        SelectionContext(
                            round_index=round_index,
                            num_clients=active.size,
                            per_device_time_s=per_time,
                            per_device_energy_j=per_energy,
                            round_deadline_s=result.round_deadline_s,
                            rng=round_rng,
                            params=config.selection_params,
                            state_of_charge=soc,
                        ),
                    )
                selected = active[selected_sub]
                round_time = float(np.max(per_time[selected_sub]))
                round_energy = float(np.sum(per_energy[selected_sub]))
                with stage("fl_train", timings):
                    train_loss, test_loss, test_accuracy = server.run_round(
                        round_index, local_iterations, client_indices=selected.tolist()
                    )
                retired: list[int] = []
                soc_min: float | None = None
                if batteries is not None:
                    retired = self._drain_batteries(
                        batteries,
                        battery_policy,
                        selected_sub,
                        selected,
                        per_energy,
                        alive,
                        round_index,
                    )
                    alive_soc = [
                        batteries[i].state_of_charge
                        for i in range(num_clients)
                        if alive[i]
                    ]
                    soc_min = min(alive_soc) if alive_soc else 0.0
                est_errors: dict[str, float] | None = None
                if estimator is not None:
                    estimator.observe_round(
                        base_system,
                        selected,
                        frequency_hz=allocation.frequency_hz[selected_sub],
                        power_w=allocation.power_w[selected_sub],
                        bandwidth_hz=allocation.bandwidth_hz[selected_sub],
                        compute_time_s=round_system.computation_time_s(
                            allocation.frequency_hz
                        )[selected_sub],
                        upload_time_s=round_system.upload_time_s(
                            allocation.power_w, allocation.bandwidth_hz
                        )[selected_sub],
                    )
                    est_errors = estimator.error_report(base_system)
            elapsed += round_time
            consumed += round_energy
            previous_active = active_tuple
            report.append(
                RoundRecord(
                    round_index=round_index,
                    selected=tuple(int(i) for i in selected),
                    round_time_s=round_time,
                    elapsed_time_s=elapsed,
                    round_energy_j=round_energy,
                    consumed_energy_j=consumed,
                    train_loss=train_loss,
                    test_loss=test_loss,
                    test_accuracy=test_accuracy,
                    allocator_iterations=result.iterations,
                    allocator_objective=result.objective,
                    round_deadline_s=result.round_deadline_s,
                    timings=timings.as_dict(),
                    fleet_size=int(active.size) if fleet_dynamic else None,
                    arrived=arrived,
                    departed=departed,
                    retired=tuple(retired),
                    battery_soc_min=soc_min,
                    resolve_punctured=(
                        punctured
                        if (fleet_dynamic and config.warm_start and allocator is not None)
                        else None
                    ),
                    estimation_cycles_rel_err=(
                        est_errors["cycles_rel_err"] if est_errors else None
                    ),
                    estimation_gain_rel_err=(
                        est_errors["gain_rel_err"] if est_errors else None
                    ),
                )
            )
        return report

    @staticmethod
    def _drain_batteries(
        batteries: list[Battery],
        policy: str,
        selected_sub: np.ndarray,
        selected: np.ndarray,
        per_energy: np.ndarray,
        alive: np.ndarray,
        round_index: int,
    ) -> list[int]:
        """Charge this round's energy to the selected devices' batteries.

        Returns the devices retired this round.  Under the ``graceful``
        policy an over-budget draw empties the battery and retires the
        device (the next round re-solves around it); ``loud`` raises
        instead — the run fails exactly where a real deployment would have
        lost a device mid-round.
        """
        retired: list[int] = []
        for sub, device in zip(selected_sub, selected):
            battery = batteries[int(device)]
            draw = float(per_energy[int(sub)])
            if battery.can_supply(draw):
                battery.draw(draw)
            elif policy == "loud":
                raise BatteryDrainedError(
                    f"device {int(device)} needs {draw:.3f} J for round "
                    f"{round_index} but only {battery.charge_j:.3f} J remain "
                    "(battery policy 'loud')"
                )
            else:
                battery.draw(max(min(draw, battery.charge_j), 0.0))
            if battery.state_of_charge <= _DEAD_SOC:
                alive[int(device)] = False
                retired.append(int(device))
        return retired


def run_round_loop(
    config: RoundLoopConfig, system: SystemModel | None = None
) -> RoundLoopReport:
    """Convenience wrapper: build the loop and run it."""
    return FLRoundLoop(config, system=system).run()
