"""Pluggable client-selection strategies for the closed-loop round loop.

Every global round of :class:`~repro.fl.roundloop.FLRoundLoop` prices the
whole fleet through the freshly re-solved resource allocation and then asks
a *selection strategy* which clients actually train and aggregate that
round.  A strategy is a plain function ``fn(ctx) -> indices`` registered by
name, where :class:`SelectionContext` carries everything the round knows:
the per-device time/energy implied by the allocation, the solver's round
deadline, and a deterministic per-round RNG.

Built-in strategies:

* ``all`` — full participation (the paper's system model);
* ``random-k`` — ``k`` clients drawn uniformly without replacement;
* ``fastest-k`` — the ``k`` clients with the smallest allocated round time;
* ``charge-k`` — the ``k`` clients with the most remaining battery charge
  (requires the round loop's battery tracking);
* ``deadline-k`` — allocation-aware: clients whose round time fits inside
  the solver's per-round deadline (scaled by ``deadline_slack``).  Unlike
  the other k-style strategies the ``k`` cap is *optional* here — the
  deadline is the primary filter; an explicit ``k`` truncates to the
  fastest ``k`` when over-subscribed, and the single fastest client is
  padded in when nobody fits.

All strategies are deterministic given the context: ties break by stable
sort on the client index, and randomness comes only from ``ctx.rng`` (which
the round loop seeds per round), so fixed-seed runs are bit-identical
across solver backends, warm/cold starts, and execution order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "SelectionContext",
    "register_selection_strategy",
    "selection_strategies",
    "get_selection_strategy",
    "select_clients",
]


@dataclass(frozen=True)
class SelectionContext:
    """Everything one round exposes to its client-selection strategy."""

    #: 1-based index of the global round being selected for.
    round_index: int
    #: Size of the full client fleet.
    num_clients: int
    #: Per-device round time (computation + upload) under this round's
    #: allocation, in seconds.
    per_device_time_s: np.ndarray
    #: Per-device round energy under this round's allocation, in joules.
    per_device_energy_j: np.ndarray
    #: The allocator's per-round deadline ``T`` for this round, in seconds.
    round_deadline_s: float
    #: Deterministic per-round generator (seeded from the loop seed and the
    #: round index — never from global state).
    rng: np.random.Generator
    #: Strategy-specific parameters (e.g. ``{"k": 5}``).
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Per-device battery state of charge in [0, 1], or None when the round
    #: loop is not tracking batteries (the frozen-fleet configuration).
    state_of_charge: np.ndarray | None = None


SelectionFn = Callable[[SelectionContext], np.ndarray]

_STRATEGIES: dict[str, SelectionFn] = {}


def register_selection_strategy(name: str) -> Callable[[SelectionFn], SelectionFn]:
    """Register ``fn(ctx) -> client indices`` as selection strategy ``name``."""

    def decorator(fn: SelectionFn) -> SelectionFn:
        _STRATEGIES[name] = fn
        return fn

    return decorator


def selection_strategies() -> tuple[str, ...]:
    """The registered selection-strategy names."""
    return tuple(sorted(_STRATEGIES))


def get_selection_strategy(name: str) -> SelectionFn:
    """Look up a strategy by name; raises on unknown names."""
    try:
        return _STRATEGIES[name]
    except KeyError as exc:
        known = ", ".join(selection_strategies())
        raise ConfigurationError(
            f"unknown selection strategy {name!r}; known: {known}"
        ) from exc


def select_clients(name: str, ctx: SelectionContext) -> np.ndarray:
    """Run strategy ``name`` and validate its output.

    Returns a sorted, duplicate-free, non-empty int array of client indices
    within ``[0, ctx.num_clients)``; anything else raises a
    :class:`ConfigurationError` naming the offending strategy.
    """
    raw = np.asarray(get_selection_strategy(name)(ctx))
    if raw.size == 0:
        raise ConfigurationError(f"selection strategy {name!r} selected no clients")
    indices = np.unique(raw.astype(int))
    if indices.size != raw.size:
        raise ConfigurationError(
            f"selection strategy {name!r} returned duplicate client indices"
        )
    if indices[0] < 0 or indices[-1] >= ctx.num_clients:
        raise ConfigurationError(
            f"selection strategy {name!r} returned indices outside "
            f"[0, {ctx.num_clients})"
        )
    return indices


def _resolve_k(ctx: SelectionContext) -> int:
    """The ``k`` of a k-style strategy: explicit, or half the fleet."""
    k = ctx.params.get("k")
    if k is None:
        k = max(1, ctx.num_clients // 2)
    k = int(k)
    if k <= 0:
        raise ConfigurationError(f"selection parameter k must be positive, got {k}")
    return min(k, ctx.num_clients)


@register_selection_strategy("all")
def select_all(ctx: SelectionContext) -> np.ndarray:
    """Full participation: every client trains every round."""
    return np.arange(ctx.num_clients)


@register_selection_strategy("random-k")
def select_random_k(ctx: SelectionContext) -> np.ndarray:
    """``k`` clients drawn uniformly without replacement from the round RNG."""
    k = _resolve_k(ctx)
    return np.sort(ctx.rng.choice(ctx.num_clients, size=k, replace=False))


@register_selection_strategy("fastest-k")
def select_fastest_k(ctx: SelectionContext) -> np.ndarray:
    """The ``k`` clients with the smallest allocated round time.

    Ties break on the lower client index (stable sort), keeping the
    selection deterministic for degenerate allocations.
    """
    k = _resolve_k(ctx)
    order = np.argsort(ctx.per_device_time_s, kind="stable")
    return np.sort(order[:k])


@register_selection_strategy("charge-k")
def select_charge_k(ctx: SelectionContext) -> np.ndarray:
    """The ``k`` clients with the most remaining battery charge.

    Battery-aware fairness for drained fleets: training rotates towards
    the devices that can best afford it, stretching the whole fleet's
    lifetime.  Requires the round loop's battery tracking (the strategy
    has nothing to rank without it); ties break on the lower client index.
    """
    if ctx.state_of_charge is None:
        raise ConfigurationError(
            "selection strategy 'charge-k' needs battery tracking (enable "
            "the round loop's battery configuration)"
        )
    k = _resolve_k(ctx)
    # argsort ascending on -soc = descending on soc, stable for index ties.
    order = np.argsort(-np.asarray(ctx.state_of_charge, dtype=float), kind="stable")
    return np.sort(order[:k])


@register_selection_strategy("deadline-k")
def select_deadline_k(ctx: SelectionContext) -> np.ndarray:
    """Allocation-aware selection against the solver's round deadline.

    Clients whose per-device round time fits within ``deadline_slack``
    (default 1.0) times the allocator's per-round deadline are eligible;
    when more than ``k`` fit, the fastest ``k`` are kept, and when *nobody*
    fits (a transiently terrible channel draw) the single fastest client
    still trains so the round is never empty.
    """
    slack = float(ctx.params.get("deadline_slack", 1.0))
    if slack <= 0.0:
        raise ConfigurationError(
            f"selection parameter deadline_slack must be positive, got {slack}"
        )
    budget = ctx.round_deadline_s * slack
    order = np.argsort(ctx.per_device_time_s, kind="stable")
    eligible = order[ctx.per_device_time_s[order] <= budget * (1.0 + 1e-9)]
    if eligible.size == 0:
        eligible = order[:1]
    k = ctx.params.get("k")
    if k is not None:
        k = int(k)
        if k <= 0:
            raise ConfigurationError(
                f"selection parameter k must be positive, got {k}"
            )
        eligible = eligible[:k]
    return np.sort(eligible)
