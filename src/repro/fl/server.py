"""The FedAvg aggregation server (the base station of Fig. 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .client import Client
from .metrics import accuracy

__all__ = ["FedAvgServer", "TrainingHistory"]


@dataclass
class TrainingHistory:
    """Per-round training metrics."""

    rounds: list[int] = field(default_factory=list)
    train_loss: list[float] = field(default_factory=list)
    test_loss: list[float] = field(default_factory=list)
    test_accuracy: list[float] = field(default_factory=list)

    def append(self, round_index: int, train_loss: float, test_loss: float, test_accuracy: float) -> None:
        self.rounds.append(round_index)
        self.train_loss.append(train_loss)
        self.test_loss.append(test_loss)
        self.test_accuracy.append(test_accuracy)

    @property
    def final_accuracy(self) -> float:
        return self.test_accuracy[-1] if self.test_accuracy else float("nan")

    def __len__(self) -> int:
        return len(self.rounds)


class FedAvgServer:
    """Coordinates FedAvg global rounds over a set of clients."""

    def __init__(
        self,
        model,
        clients: list[Client],
        *,
        test_x: np.ndarray | None = None,
        test_y: np.ndarray | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not clients:
            raise ConfigurationError("the server needs at least one client")
        self.model = model
        self.clients = list(clients)
        self.test_x = None if test_x is None else np.asarray(test_x, dtype=float)
        self.test_y = None if test_y is None else np.asarray(test_y, dtype=int)
        self._rng = np.random.default_rng(rng)
        self.global_weights = model.get_weights()
        self.history = TrainingHistory()

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    def aggregation_weights(self, clients: list[Client]) -> np.ndarray:
        """FedAvg weights ``D_n / D`` over the participating clients."""
        counts = np.array([c.num_samples for c in clients], dtype=float)
        return counts / counts.sum()

    def run_round(
        self,
        round_index: int,
        local_iterations: int,
        *,
        participation: float = 1.0,
        client_indices: Sequence[int] | None = None,
    ) -> tuple[float, float, float]:
        """Run one global round; returns (train loss, test loss, test accuracy).

        ``client_indices`` pins the participating clients explicitly — this
        is how the closed-loop round loop's selection strategies drive
        aggregation (the server's own RNG is not consumed, so selection
        stays deterministic under any strategy).  Without it,
        ``participation`` selects a random fraction of clients (FedAvg with
        partial participation); the paper's system model uses full
        participation.
        """
        if not 0.0 < participation <= 1.0:
            raise ConfigurationError("participation must lie in (0, 1]")
        if client_indices is not None:
            indices = [int(i) for i in client_indices]
            if not indices:
                raise ConfigurationError("client_indices must select at least one client")
            if len(set(indices)) != len(indices):
                raise ConfigurationError("client_indices must not contain duplicates")
            if min(indices) < 0 or max(indices) >= self.num_clients:
                raise ConfigurationError(
                    f"client_indices must lie in [0, {self.num_clients}), "
                    f"got {sorted(indices)[0]}..{sorted(indices)[-1]}"
                )
            selected = [self.clients[i] for i in indices]
        elif participation >= 1.0:
            selected = self.clients
        else:
            count = max(1, int(round(participation * self.num_clients)))
            chosen = self._rng.choice(self.num_clients, size=count, replace=False)
            selected = [self.clients[i] for i in chosen]

        updates = []
        losses = []
        for client in selected:
            weights, loss = client.local_update(
                self.model,
                self.global_weights,
                local_iterations,
                rng=self._rng,
            )
            updates.append(weights)
            losses.append(loss)

        agg_weights = self.aggregation_weights(selected)
        self.global_weights = np.average(np.stack(updates), axis=0, weights=agg_weights)
        self.model.set_weights(self.global_weights)

        train_loss = float(np.average(losses, weights=agg_weights))
        test_loss, test_acc = self.evaluate()
        self.history.append(round_index, train_loss, test_loss, test_acc)
        return train_loss, test_loss, test_acc

    def evaluate(self) -> tuple[float, float]:
        """Loss and accuracy of the current global model on the test split."""
        if self.test_x is None or self.test_y is None:
            return float("nan"), float("nan")
        self.model.set_weights(self.global_weights)
        probs = self.model.predict_proba(self.test_x)
        eps = 1e-12
        picked = probs[np.arange(self.test_y.shape[0]), self.test_y]
        loss = float(-np.mean(np.log(picked + eps)))
        acc = accuracy(np.argmax(probs, axis=1), self.test_y)
        return loss, acc

    def fit(
        self, global_rounds: int, local_iterations: int, *, participation: float = 1.0
    ) -> TrainingHistory:
        """Run ``global_rounds`` rounds of FedAvg and return the history."""
        if global_rounds <= 0:
            raise ConfigurationError("global_rounds must be positive")
        for round_index in range(1, global_rounds + 1):
            self.run_round(round_index, local_iterations, participation=participation)
        return self.history
