"""System-aware federated training simulation.

This module closes the loop between the paper's two halves: the resource
allocation (which prices every global round in joules and seconds) and the
actual FedAvg training (which decides how many rounds are needed for a given
accuracy).  A :class:`FederatedSimulation` runs FedAvg round by round and, at
each round, charges every device the computation/transmission energy and
time implied by a chosen :class:`~repro.core.allocation.ResourceAllocation`,
producing accuracy-versus-wallclock and accuracy-versus-energy curves.

The allocation here is *static* — one ``(p, B, f)`` prices every round.
For the closed loop where the allocator re-solves round by round as the
channel evolves (fresh fading draws, warm-started solves, client
selection), see :mod:`repro.fl.roundloop`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.allocation import ResourceAllocation
from ..exceptions import ConfigurationError
from ..system import SystemModel
from .server import FedAvgServer

__all__ = ["RoundCost", "SimulationReport", "FederatedSimulation"]


@dataclass(frozen=True)
class RoundCost:
    """Energy and time cost of one global round under a given allocation."""

    round_time_s: float
    round_energy_j: float
    per_device_time_s: np.ndarray
    per_device_energy_j: np.ndarray


@dataclass
class SimulationReport:
    """Training curves annotated with cumulative system cost."""

    rounds: list[int] = field(default_factory=list)
    test_accuracy: list[float] = field(default_factory=list)
    test_loss: list[float] = field(default_factory=list)
    elapsed_time_s: list[float] = field(default_factory=list)
    consumed_energy_j: list[float] = field(default_factory=list)

    def append(
        self,
        round_index: int,
        accuracy: float,
        loss: float,
        elapsed_s: float,
        energy_j: float,
    ) -> None:
        self.rounds.append(round_index)
        self.test_accuracy.append(accuracy)
        self.test_loss.append(loss)
        self.elapsed_time_s.append(elapsed_s)
        self.consumed_energy_j.append(energy_j)

    @property
    def total_time_s(self) -> float:
        return self.elapsed_time_s[-1] if self.elapsed_time_s else 0.0

    @property
    def total_energy_j(self) -> float:
        return self.consumed_energy_j[-1] if self.consumed_energy_j else 0.0

    @property
    def final_accuracy(self) -> float:
        return self.test_accuracy[-1] if self.test_accuracy else float("nan")

    def rounds_to_accuracy(self, target: float) -> int | None:
        """First round reaching ``target`` accuracy, or None if never reached."""
        for round_index, acc in zip(self.rounds, self.test_accuracy):
            if acc >= target:
                return round_index
        return None

    def time_to_accuracy(self, target: float) -> float | None:
        """Wall-clock seconds until ``target`` accuracy, or None if never reached."""
        for elapsed, acc in zip(self.elapsed_time_s, self.test_accuracy):
            if acc >= target:
                return elapsed
        return None

    def energy_to_accuracy(self, target: float) -> float | None:
        """Joules spent until ``target`` accuracy, or None if never reached."""
        for energy, acc in zip(self.consumed_energy_j, self.test_accuracy):
            if acc >= target:
                return energy
        return None


class FederatedSimulation:
    """FedAvg training priced by the wireless/CPU cost models."""

    def __init__(
        self,
        system: SystemModel,
        server: FedAvgServer,
        allocation: ResourceAllocation,
    ) -> None:
        self.system = system
        self.server = server
        self.allocation = allocation
        self._validate()

    def _validate(self) -> None:
        """Check the system / client / allocation sizes agree.

        Re-run by :meth:`run` so a server whose client list was mutated
        after construction (or a swapped-in allocation) still fails loudly
        instead of silently pricing the wrong fleet.
        """
        if self.server.num_clients != self.system.num_devices:
            raise ConfigurationError(
                "the FedAvg server must have exactly one client per device "
                f"({self.server.num_clients} clients vs {self.system.num_devices} devices)"
            )
        if self.allocation.num_devices != self.server.num_clients:
            # Together with the check above this also pins the allocation
            # to the system size, so no third comparison is needed.
            raise ConfigurationError(
                "the resource allocation must cover exactly the partitioned "
                f"clients: the allocation prices {self.allocation.num_devices} "
                f"device(s) but the server aggregates {self.server.num_clients} "
                "client(s) — rebuild the allocation (or the client partition) "
                "so the counts match"
            )

    def round_cost(self) -> RoundCost:
        """Energy and time of one global round under the bound allocation."""
        per_device_time = self.system.per_device_round_time_s(
            self.allocation.power_w,
            self.allocation.bandwidth_hz,
            self.allocation.frequency_hz,
        )
        per_device_energy = self.system.upload_energy_j(
            self.allocation.power_w, self.allocation.bandwidth_hz
        ) + self.system.computation_energy_j(self.allocation.frequency_hz)
        return RoundCost(
            round_time_s=float(np.max(per_device_time)),
            round_energy_j=float(per_device_energy.sum()),
            per_device_time_s=per_device_time,
            per_device_energy_j=per_device_energy,
        )

    def run(
        self,
        global_rounds: int | None = None,
        local_iterations: int | None = None,
        *,
        time_budget_s: float | None = None,
        energy_budget_j: float | None = None,
        target_accuracy: float | None = None,
    ) -> SimulationReport:
        """Run the priced FedAvg simulation.

        Stops at ``global_rounds`` (default: the system's ``R_g``) or earlier
        when a time budget, an energy budget, or a target accuracy is hit.
        """
        self._validate()
        rounds = global_rounds if global_rounds is not None else self.system.global_rounds
        iterations = (
            local_iterations if local_iterations is not None else self.system.local_iterations
        )
        if rounds <= 0 or iterations <= 0:
            raise ConfigurationError("rounds and iterations must be positive")

        cost = self.round_cost()
        report = SimulationReport()
        elapsed = 0.0
        consumed = 0.0
        for round_index in range(1, rounds + 1):
            _, test_loss, test_acc = self.server.run_round(round_index, iterations)
            elapsed += cost.round_time_s
            consumed += cost.round_energy_j
            report.append(round_index, test_acc, test_loss, elapsed, consumed)
            if time_budget_s is not None and elapsed >= time_budget_s:
                break
            if energy_budget_j is not None and consumed >= energy_budget_j:
                break
            if target_accuracy is not None and test_acc >= target_accuracy:
                break
        return report
