"""Performance subsystem: stage timers, the benchmark suite and the
perf-trajectory tracking behind ``repro bench``.

``repro.perf.timers`` is import-light (no dependency on the experiment
stack) so the core solvers can use it freely; ``repro.perf.bench`` pulls in
the sweep engine and is therefore loaded lazily.
"""

from __future__ import annotations

from typing import Any

from .timers import StageTimings, active_collector, collect_timings, stage, wall_clock

__all__ = [
    "StageTimings",
    "active_collector",
    "collect_timings",
    "stage",
    "wall_clock",
    "BenchReport",
    "run_bench",
    "compare_reports",
    "write_report",
    "load_report",
]

_BENCH_EXPORTS = {"BenchReport", "run_bench", "compare_reports", "write_report", "load_report"}


def __getattr__(name: str) -> Any:
    # Lazy: repro.perf.bench imports repro.experiments, which imports
    # repro.core, which imports repro.perf.timers — eager import here would
    # make that a cycle.
    if name in _BENCH_EXPORTS:
        from . import bench

        return getattr(bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
