"""The benchmark suite and perf-trajectory tracking behind ``repro bench``.

One invocation runs the Figure-2 sweep four times through the shared
:class:`~repro.experiments.runner.SweepRunner` — cold (vector backend),
warm-started, cold on the scalar reference backend, and cold through the
batched multi-solve path (``batch_size=8``) — on a fixed, seeded
configuration (serial, cache off, so the timings are honest), and
writes a ``BENCH_PR<k>.json`` report:

* **per-stage wall-clock** summed over every task (``scenario_build``,
  ``solve``, ``algorithm2``, ``sp1``, ``sp2``, ``sp2_inner``) plus the
  runner-level dispatch overhead, for each mode;
* **solver iteration counts** (outer Algorithm-2 and inner Algorithm-1
  totals) — these are deterministic for a fixed suite, which is what makes
  cross-machine regression tracking meaningful;
* the **warm-start speedup** and the **warm/cold parity** (max relative
  metric deviation across the produced tables);
* the **backend SP2-stage speedup** (scalar over vector, on the ``sp2``
  stage wall-clock) and the **scalar/vector parity**.

Since schema 3 the report also carries a **closed-loop FL suite**: one
:class:`~repro.fl.roundloop.FLRoundLoop` run per mode (cold vector /
warm-started / cold scalar) on a fixed seeded configuration, reporting the
round-loop throughput (rounds per second), the per-stage split (allocate
versus train), the deterministic total of allocator iterations across
rounds, and two *exact* parities — fixed-seed round loops must be
bit-identical across backends and warm/cold, so their parity gates are
zero-tolerance (within the sweep parity epsilon).

Since schema 4 the report also carries the **batched multi-solve** run:
``batch_wall_s`` / ``batch_wall_speedup`` (cold wall over batched wall),
``batch_fill`` (how densely the lockstep batches were packed) and
``batch_parity_max_rel_dev`` — the batched path is *bit-identical* to the
per-drop one by construction, so its parity gate is exactly zero.

Since schema 5 the report also carries a **result-store suite**: the cold
sweep's real outcomes are written to and read back from both
:mod:`repro.store` backends (``store_write_{json,columnar}_s``,
``store_read_{json,columnar}_s``), where a read pass is one fresh store
instance serving every digest — the cache-hit pattern of a repeated sweep.
``store_read_speedup`` (JSON wall over columnar wall) carries a floor: the
columnar backend's whole reason to exist is that one segment load beats
O(tasks) file opens.  ``store_parity_max_rel_dev`` is the zero-tolerance
gate that both backends return bit-identical entries (metrics *and* warm
state).

Since schema 6 the report also carries a **dynamic-fleet FL suite**: the
closed-loop run re-done with Poisson churn and battery drain enabled
(cold vector / warm / cold scalar), reporting the allocation cost of
mid-training re-solves (``fl_churn_resolve_s``), the number of warm-chain
punctures the fleet-shape changes forced, and the same exact parity gates
as the frozen-fleet loop (``fl_dynamic_warm_parity_max_rel_dev`` /
``fl_dynamic_backend_parity_max_rel_dev``) — churn and drain are seeded,
so dynamic runs must stay bit-identical too.  A fourth run flips on
online profile estimation (:mod:`repro.fl.estimation`) and reports the
estimated-versus-oracle accuracy gap plus the estimator's final relative
errors (``fl_estimated_vs_oracle_accuracy_gap``,
``fl_estimation_cycles_rel_err``, ``fl_estimation_gain_rel_err``).

:func:`compare_reports` gates a report against a committed baseline: a
tracked metric that regresses beyond the tolerance (default 20%), a floor
that is no longer met (backend SP2 speedup >= 2x, batched multi-solve
wall speedup >= 2x, warm wall no slower than cold, columnar store reads
beating JSON), or a parity breach (warm/cold above 1e-6, scalar/vector
above 1e-8, batched/per-drop above 0.0, store backends above 0.0, FL
round loops above the warm/backend bounds) fails the comparison — that is
the CI perf gate.
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path
from typing import Any, Mapping

from ..experiments.base import SweepConfig
from ..experiments.fig2 import Fig2Config
from ..experiments.runner import SweepRunner, TaskOutcome, task_hash
from ..fl.roundloop import FLRoundLoop, RoundLoopConfig
from ..store import open_store

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_TOLERANCE",
    "DEFAULT_PARITY_TOL",
    "DEFAULT_BACKEND_PARITY_TOL",
    "bench_config",
    "fl_bench_config",
    "fl_dynamic_bench_config",
    "run_bench",
    "write_report",
    "load_report",
    "compare_reports",
]

BENCH_SCHEMA_VERSION = 6
#: Relative regression a tracked metric may show before the compare fails.
DEFAULT_TOLERANCE = 0.20
#: Maximum relative deviation allowed between warm and cold sweep metrics.
DEFAULT_PARITY_TOL = 1e-6
#: Maximum relative deviation allowed between the scalar and vector backend
#: sweeps.  Far tighter than the warm/cold tolerance: both backends polish
#: the bandwidth multiplier onto the exact root, so their trajectories agree
#: to round-off.
DEFAULT_BACKEND_PARITY_TOL = 1e-8

#: Absolute gates every report must keep meeting, whatever the baseline.
#: ``warm_wall_speedup`` is back (floor 1.0) now that warm hints are a
#: strict no-op on the vector backend: a warm sweep runs the exact cold
#: trajectory, so it must never be slower than cold beyond scheduler noise
#: (the hint-threading overhead that used to drag it to ~0.98x is gone).
#: ``batch_wall_speedup`` gates the batched multi-solve path against the
#: per-drop cold sweep.  ``store_read_speedup`` gates the columnar result
#: store against the JSON oracle on cache-hit reads: one segment load must
#: beat O(tasks) file opens even at the quick suite's 8 entries (~2.7x
#: measured there, ~8.8x at standard scale — the floor is deliberately far
#: below both).
_FLOORS: dict[str, float] = {
    "backend_sp2_speedup": 2.0,
    "warm_wall_speedup": 1.0,
    "batch_wall_speedup": 2.0,
    "store_read_speedup": 1.2,
}

#: Wall-clock speedup floors get a per-metric slack factor in the
#: comparison: the ratio of two measured wall-clocks carries scheduler
#: noise that the deterministic iteration-count gates do not, and a hard
#: floor would flap on a busy CI box.  ``warm_wall_speedup`` compares two
#: sweeps doing the *same* work (true ratio ~1.0), so its measurement is
#: all noise (+-7% observed on contended hosts) and its floor only
#: arrests gross breakage — small warm regressions are instead caught by
#: the zero-tolerance parity and iteration-count gates, which are
#: noise-free.  ``batch_wall_speedup`` has real headroom above its floor
#: (~2.2x measured vs the 2.0 floor), so it keeps a tight slack.
#: ``store_read_speedup`` is measured on sub-millisecond walls at quick
#: scale, so it gets the same generous slack as the warm ratio; the
#: measured headroom (2x+ above the floor) does the real guarding.
_WALL_SPEEDUP_FLOOR_SLACK: dict[str, float] = {
    "warm_wall_speedup": 0.85,
    "batch_wall_speedup": 0.95,
    "store_read_speedup": 0.85,
}

#: Metrics compared against the baseline, with their improvement direction.
#: ``warm_wall_speedup`` stays reported but untracked: a ratio of two
#: near-equal wall-clocks is pure scheduler noise on a busy CI box.
_TRACKED: dict[str, str] = {
    "cold_outer_iterations": "lower",
    "cold_inner_iterations": "lower",
    "warm_outer_iterations": "lower",
    "warm_inner_iterations": "lower",
    "backend_sp2_speedup": "higher",
    "fl_outer_iterations": "lower",
    "fl_dynamic_outer_iterations": "lower",
}

_PARITY_COLUMNS = ("energy_j", "time_s", "objective")


def bench_config(quick: bool = False) -> Fig2Config:
    """The benchmarked Figure-2 sweep (reduced paper grid, fixed seeds)."""
    if quick:
        return Fig2Config(
            sweep=SweepConfig(num_devices=12, num_trials=1),
            max_power_dbm_grid=(5.0, 7.0, 9.0, 12.0),
            weight_pairs=((0.9, 0.1), (0.5, 0.5)),
            include_benchmark=False,
        )
    return Fig2Config(
        sweep=SweepConfig(num_devices=20, num_trials=2),
        max_power_dbm_grid=(5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0),
        weight_pairs=((0.9, 0.1), (0.5, 0.5), (0.1, 0.9)),
        include_benchmark=False,
    )


def fl_bench_config(quick: bool = False) -> RoundLoopConfig:
    """The benchmarked closed-loop FL run (fixed seed, Rayleigh redraws)."""
    scenario = {
        "family": "paper",
        "num_devices": 8 if quick else 12,
        "seed": 7,
    }
    return RoundLoopConfig(
        scenario=scenario,
        rounds=4 if quick else 8,
        local_iterations=6,
        selection="deadline-k",
        seed=7,
    )


def fl_dynamic_bench_config(quick: bool = False) -> RoundLoopConfig:
    """The benchmarked *dynamic-fleet* closed-loop run.

    The frozen-fleet bench config plus seeded Poisson churn and battery
    drain: arrivals and departures change the active fleet's shape
    mid-training, forcing full (punctured) re-solves whose cost
    ``fl_churn_resolve_s`` tracks.  The capacity is generous enough that
    no device retires inside the benchmark horizon — retirement coverage
    lives in the test suite; here the batteries exist to price the drain
    bookkeeping, not to shrink the fleet nondeterministically across
    suite scales.
    """
    return replace(
        fl_bench_config(quick),
        churn={
            "mode": "poisson",
            "arrive_rate": 0.4,
            "depart_rate": 0.3,
            "initial_absent_fraction": 0.25,
        },
        battery={"capacity_j": 50.0, "policy": "graceful"},
    )


def _run_fl_mode(config: RoundLoopConfig, *, warm: bool, backend: str):
    """One closed-loop run; returns (flat metrics, report, wall seconds)."""
    mode = replace(config, warm_start=warm, backend=backend)
    started = time.monotonic()
    report = FLRoundLoop(mode).run()
    wall = time.monotonic() - started
    return report.flat_metrics(), report, wall


def _drop_suffix(
    metrics: Mapping[str, float], suffix: str
) -> dict[str, float]:
    """The flat metrics without keys ending in ``suffix``.

    Used to compare dynamic warm and cold trajectories: the
    ``_resolve_punctured`` diagnostics exist only on warm runs (there is
    no chain to puncture cold), so they are structural noise for parity.
    """
    return {k: v for k, v in metrics.items() if not k.endswith(suffix)}


def _flat_parity(left: Mapping[str, float], right: Mapping[str, float]) -> float:
    """Max relative deviation between two flat-metric trajectories.

    ``inf`` on a structural mismatch (different key sets or a NaN on one
    side only), so a broken mode can never pass the gate.
    """
    if set(left) != set(right):
        return float("inf")
    deviation = 0.0
    for key, left_value in left.items():
        right_value = float(right[key])
        left_value = float(left_value)
        left_nan, right_nan = left_value != left_value, right_value != right_value
        if left_nan and right_nan:
            continue
        if left_nan or right_nan:
            return float("inf")
        scale = max(abs(left_value), 1e-30)
        deviation = max(deviation, abs(left_value - right_value) / scale)
    return deviation


#: Timed repetitions per sweep mode.  The quick suite finishes in well
#: under a second, where a single-shot wall ratio is dominated by
#: scheduler noise — the suite therefore runs every mode once per round
#: and gates on ratios of summed walls (see :func:`run_bench`).  Tables
#: and iteration counts are deterministic (cache off, fixed seeds), so
#: repeats change timing only.
_BENCH_REPEATS = 5


def _run_mode(
    config: Fig2Config,
    warm: bool,
    backend: str | None = None,
    batch_size: int | None = None,
):
    from ..experiments.fig2 import run_fig2

    if backend is not None:
        config = replace(config, sweep=config.sweep.with_backend(backend))
    outcomes: list[TaskOutcome] = []
    runner = SweepRunner(
        jobs=1,
        use_cache=False,
        warm_start=warm,
        progress=lambda done, total, outcome: outcomes.append(outcome),
        batch_size=batch_size,
    )
    table = run_fig2(config, runner=runner)
    return table, outcomes, runner.last_stats


def _sum_metric(outcomes: list[TaskOutcome], key: str) -> float:
    return float(sum(o.metrics.get(key, 0.0) for o in outcomes if o.ok))


def _sum_stages(outcomes: list[TaskOutcome]) -> dict[str, float]:
    stages: dict[str, float] = {}
    for outcome in outcomes:
        for name, seconds in (outcome.timings or {}).items():
            stages[name] = stages.get(name, 0.0) + float(seconds)
    return {name: round(seconds, 6) for name, seconds in sorted(stages.items())}


def _parity(cold_table, warm_table) -> float:
    """Max relative warm/cold deviation; ``inf`` when the tables disagree
    structurally (different row counts, or a value present in one mode and
    NaN in the other) so a broken warm run can never pass the gate."""
    if len(cold_table.rows) != len(warm_table.rows):
        return float("inf")
    deviation = 0.0
    for cold_row, warm_row in zip(cold_table.rows, warm_table.rows):
        for column in _PARITY_COLUMNS:
            if column not in cold_row:
                continue
            cold_value, warm_value = float(cold_row[column]), float(warm_row[column])
            cold_nan, warm_nan = cold_value != cold_value, warm_value != warm_value
            if cold_nan and warm_nan:
                continue  # the grid point failed in both modes
            if cold_nan or warm_nan:
                return float("inf")
            scale = max(abs(cold_value), 1e-30)
            deviation = max(deviation, abs(cold_value - warm_value) / scale)
    return deviation


#: Batch size of the benchmark's batched multi-solve mode.  Divides both
#: the quick (8) and standard (48) task counts, so every batch is full and
#: ``batch_fill`` is 1.0 when the grouping works as designed.
_BENCH_BATCH_SIZE = 8

#: Timed read passes per store backend (best-of is reported): one pass is
#: a fresh store instance serving every digest once — the cache-hit
#: pattern of a repeated sweep.
_STORE_READ_REPEATS = 5


def _bench_store(outcomes: list[TaskOutcome]) -> dict[str, float]:
    """Time both result-store backends on the cold sweep's real outcomes.

    Write = put every entry, flush and (for columnar) compact.  Read =
    best-of-``_STORE_READ_REPEATS`` passes, each on a *fresh* store
    instance so the JSON backend pays its per-entry file opens and the
    columnar backend its one segment load — the honest cache-hit model.
    The parity deviation is exact-equality strict: entries that float-match
    but differ structurally (an int came back a float, a warm state
    changed) read as ``inf``.
    """
    entries = [
        (task_hash(o.task), o.task.payload(), o.metrics, o.state)
        for o in outcomes
        if o.ok
    ]
    timings: dict[str, float] = {}
    read_back: dict[str, dict[str, Any]] = {}
    for backend in ("json", "columnar"):
        with tempfile.TemporaryDirectory(prefix=f"repro-bench-store-{backend}-") as root:
            started = time.perf_counter()
            store = open_store(root, backend)
            for digest, task, metrics, state in entries:
                store.put(digest, task, metrics, state)
            store.flush()
            compact = getattr(store, "compact", None)
            if callable(compact):
                compact()
            timings[f"store_write_{backend}_s"] = time.perf_counter() - started
            best_read = float("inf")
            for _ in range(_STORE_READ_REPEATS):
                reader = open_store(root, backend)
                started = time.perf_counter()
                for digest, _task, _metrics, _state in entries:
                    reader.get_entry(digest)
                best_read = min(best_read, time.perf_counter() - started)
            timings[f"store_read_{backend}_s"] = best_read
            reader = open_store(root, backend)
            read_back[backend] = {
                digest: reader.get_entry(digest)
                for digest, _task, _metrics, _state in entries
            }
    deviation = 0.0
    for digest, _task, metrics, state in entries:
        json_entry = read_back["json"].get(digest)
        columnar_entry = read_back["columnar"].get(digest)
        if json_entry is None or columnar_entry is None:
            deviation = float("inf")
            break
        parity = _flat_parity(json_entry[0], columnar_entry[0])
        if parity == 0.0 and json_entry != columnar_entry:
            # Float-identical but structurally different (int/float type
            # drift or a warm-state mismatch): still a parity breach.
            parity = float("inf")
        deviation = max(deviation, parity)
    return {
        "store_entries": float(len(entries)),
        "store_write_json_s": round(timings["store_write_json_s"], 6),
        "store_write_columnar_s": round(timings["store_write_columnar_s"], 6),
        "store_read_json_s": round(timings["store_read_json_s"], 6),
        "store_read_columnar_s": round(timings["store_read_columnar_s"], 6),
        "store_read_speedup": round(
            timings["store_read_json_s"]
            / max(timings["store_read_columnar_s"], 1e-12),
            4,
        ),
        "store_parity_max_rel_dev": deviation,
    }


def run_bench(*, quick: bool = False, label: str = "PR8") -> dict[str, Any]:
    """Run the suite and return the report (see the module docstring)."""
    config = bench_config(quick)
    modes: dict[str, dict[str, Any]] = {
        "cold": {"warm": False},
        "warm": {"warm": True},
        "scalar": {"warm": False, "backend": "scalar"},
        "batch": {"warm": False, "batch_size": _BENCH_BATCH_SIZE},
    }
    # Repeats are interleaved across modes rather than run per mode in a
    # block, so a load shift on the host biases every mode of a round
    # alike, and the mode order rotates each round so no mode always runs
    # in the same slot.  The gated speedups are ratios of *summed* walls
    # across rounds: a single ~tens-of-ms scheduler spike dilutes into
    # the multi-second totals instead of poisoning one short sample.
    # Per-mode wall seconds report the fastest round.
    best: dict[str, Any] = {}
    totals: dict[str, float] = {name: 0.0 for name in modes}
    items = list(modes.items())
    for index in range(_BENCH_REPEATS):
        shift = index % len(items)
        for name, kwargs in items[shift:] + items[:shift]:
            run = _run_mode(config, **kwargs)
            totals[name] += run[2].elapsed_s
            if name not in best or run[2].elapsed_s < best[name][2].elapsed_s:
                best[name] = run

    def _summed_speedup(denominator: str) -> float:
        return totals["cold"] / max(totals[denominator], 1e-12)

    cold_table, cold_outcomes, cold_stats = best["cold"]
    warm_table, warm_outcomes, warm_stats = best["warm"]
    scalar_table, scalar_outcomes, scalar_stats = best["scalar"]
    batch_table, _batch_outcomes, batch_stats = best["batch"]

    fl_config = fl_bench_config(quick)
    fl_cold, fl_cold_report, fl_cold_wall = _run_fl_mode(
        fl_config, warm=False, backend="vector"
    )
    fl_warm, _fl_warm_report, fl_warm_wall = _run_fl_mode(
        fl_config, warm=True, backend="vector"
    )
    fl_scalar, _fl_scalar_report, fl_scalar_wall = _run_fl_mode(
        fl_config, warm=False, backend="scalar"
    )

    dyn_config = fl_dynamic_bench_config(quick)
    fl_dyn_cold, fl_dyn_cold_report, fl_dyn_cold_wall = _run_fl_mode(
        dyn_config, warm=False, backend="vector"
    )
    fl_dyn_warm, fl_dyn_warm_report, _fl_dyn_warm_wall = _run_fl_mode(
        dyn_config, warm=True, backend="vector"
    )
    fl_dyn_scalar, _fl_dyn_scalar_report, _fl_dyn_scalar_wall = _run_fl_mode(
        dyn_config, warm=False, backend="scalar"
    )
    est_config = replace(dyn_config, estimate_profiles=True)
    _fl_est, fl_est_report, _fl_est_wall = _run_fl_mode(
        est_config, warm=True, backend="vector"
    )

    cold_stages = _sum_stages(cold_outcomes)
    warm_stages = _sum_stages(warm_outcomes)
    scalar_stages = _sum_stages(scalar_outcomes)
    cold_task_s = cold_stages.get("scenario_build", 0.0) + cold_stages.get("solve", 0.0)
    warm_wall = warm_stats.elapsed_s
    scalar_sp2 = scalar_stages.get("sp2", 0.0)
    vector_sp2 = cold_stages.get("sp2", 0.0)
    batch_wall = batch_stats.elapsed_s
    batch_capacity = batch_stats.batches * _BENCH_BATCH_SIZE
    metrics: dict[str, float] = {
        "cold_wall_s": round(cold_stats.elapsed_s, 4),
        "warm_wall_s": round(warm_wall, 4),
        "scalar_wall_s": round(scalar_stats.elapsed_s, 4),
        "batch_wall_s": round(batch_wall, 4),
        "warm_wall_speedup": round(_summed_speedup("warm"), 4),
        "batch_wall_speedup": round(_summed_speedup("batch"), 4),
        "batch_fill": round(batch_stats.batched_tasks / batch_capacity, 4)
        if batch_capacity
        else 0.0,
        "batched_tasks": float(batch_stats.batched_tasks),
        "batch_parity_max_rel_dev": _parity(cold_table, batch_table),
        "backend_sp2_speedup": round(scalar_sp2 / max(vector_sp2, 1e-12), 4),
        "cold_outer_iterations": _sum_metric(cold_outcomes, "iterations"),
        "warm_outer_iterations": _sum_metric(warm_outcomes, "iterations"),
        "scalar_outer_iterations": _sum_metric(scalar_outcomes, "iterations"),
        "cold_inner_iterations": _sum_metric(cold_outcomes, "inner_iterations"),
        "warm_inner_iterations": _sum_metric(warm_outcomes, "inner_iterations"),
        "scalar_inner_iterations": _sum_metric(scalar_outcomes, "inner_iterations"),
        "tasks": float(cold_stats.total),
        "warm_started_tasks": float(warm_stats.warm_started),
        "failed_tasks": float(
            cold_stats.failed
            + warm_stats.failed
            + scalar_stats.failed
            + batch_stats.failed
        ),
        "dispatch_overhead_s": round(max(cold_stats.elapsed_s - cold_task_s, 0.0), 4),
        "cache_io_s": round(cold_stats.cache_io_s + warm_stats.cache_io_s, 6),
        "parity_max_rel_dev": _parity(cold_table, warm_table),
        "backend_parity_max_rel_dev": _parity(scalar_table, cold_table),
        "fl_wall_s": round(fl_cold_wall, 4),
        "fl_warm_wall_s": round(fl_warm_wall, 4),
        "fl_scalar_wall_s": round(fl_scalar_wall, 4),
        "fl_rounds_per_s": round(fl_config.rounds / max(fl_cold_wall, 1e-12), 4),
        "fl_allocate_s": round(fl_cold_report.stage_seconds("fl_allocate"), 6),
        "fl_train_s": round(fl_cold_report.stage_seconds("fl_train"), 6),
        "fl_outer_iterations": float(fl_cold_report.total_allocator_iterations),
        "fl_final_accuracy": round(fl_cold_report.final_accuracy, 6),
        "fl_warm_parity_max_rel_dev": _flat_parity(fl_cold, fl_warm),
        "fl_backend_parity_max_rel_dev": _flat_parity(fl_cold, fl_scalar),
        "fl_dynamic_wall_s": round(fl_dyn_cold_wall, 4),
        "fl_churn_resolve_s": round(
            fl_dyn_cold_report.stage_seconds("fl_allocate"), 6
        ),
        "fl_dynamic_outer_iterations": float(
            fl_dyn_cold_report.total_allocator_iterations
        ),
        "fl_dynamic_punctures": float(
            sum(bool(r.resolve_punctured) for r in fl_dyn_warm_report.records)
        ),
        "fl_dynamic_final_accuracy": round(fl_dyn_cold_report.final_accuracy, 6),
        "fl_dynamic_warm_parity_max_rel_dev": _flat_parity(
            _drop_suffix(fl_dyn_cold, "_resolve_punctured"),
            _drop_suffix(fl_dyn_warm, "_resolve_punctured"),
        ),
        "fl_dynamic_backend_parity_max_rel_dev": _flat_parity(
            fl_dyn_cold, fl_dyn_scalar
        ),
        "fl_estimated_vs_oracle_accuracy_gap": round(
            abs(fl_dyn_warm_report.final_accuracy - fl_est_report.final_accuracy),
            6,
        ),
        "fl_estimation_cycles_rel_err": round(
            fl_est_report.records[-1].estimation_cycles_rel_err or 0.0, 6
        ),
        "fl_estimation_gain_rel_err": round(
            fl_est_report.records[-1].estimation_gain_rel_err or 0.0, 6
        ),
    }
    metrics.update(_bench_store(cold_outcomes))
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "label": label,
        "mode": "quick" if quick else "standard",
        "suite": "fig2 sweep: cold (vector) vs warm-started vs scalar backend "
        "vs batched multi-solve (jobs=1, cache off) + closed-loop FL round "
        "loop (cold/warm/scalar, frozen and dynamic fleets, estimated "
        "profiles) + result-store read/write (json vs columnar)",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "metrics": metrics,
        "stages": {"cold": cold_stages, "warm": warm_stages, "scalar": scalar_stages},
        "tracked": dict(_TRACKED),
        "floors": dict(_FLOORS),
        "parity_tol": DEFAULT_PARITY_TOL,
        "backend_parity_tol": DEFAULT_BACKEND_PARITY_TOL,
    }


def write_report(report: Mapping[str, Any], path: str | Path) -> Path:
    """Write ``report`` as indented JSON; returns the path."""
    target = Path(path)
    target.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return target


def load_report(path: str | Path) -> dict[str, Any]:
    """Load a report written by :func:`write_report`."""
    return json.loads(Path(path).read_text())


def compare_reports(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Regression messages of ``current`` against ``baseline`` (empty = pass).

    Three kinds of failure:

    * a **floor** (absolute gate recorded in the baseline) is not met;
    * the **parity** between warm and cold runs exceeds the baseline's
      ``parity_tol``;
    * modes match and a **tracked metric** regressed more than ``tolerance``
      relative to the baseline value (iteration counts are deterministic
      per suite, so cross-machine comparison is sound; wall-clock enters
      only through the dimensionless speedup ratio).
    """
    problems: list[str] = []
    current_metrics = current.get("metrics", {})
    baseline_metrics = baseline.get("metrics", {})

    for name, floor in {**_FLOORS, **baseline.get("floors", {})}.items():
        value = current_metrics.get(name)
        limit = floor * _WALL_SPEEDUP_FLOOR_SLACK.get(name, 1.0)
        if value is None:
            problems.append(f"floor metric {name!r} missing from the current report")
        elif value < limit:
            problems.append(f"{name} = {value:.4g} fell below its floor {floor:.4g}")

    parity_tol = float(baseline.get("parity_tol", DEFAULT_PARITY_TOL))
    parity = current_metrics.get("parity_max_rel_dev")
    if parity is None:
        problems.append("parity_max_rel_dev missing from the current report")
    elif not parity <= parity_tol:  # catches NaN as well as breaches
        problems.append(
            f"warm/cold parity broke: max relative deviation {parity:.3e} "
            f"exceeds {parity_tol:.1e}"
        )

    backend_tol = float(
        baseline.get("backend_parity_tol", DEFAULT_BACKEND_PARITY_TOL)
    )
    backend_parity = current_metrics.get("backend_parity_max_rel_dev")
    if backend_parity is None:
        problems.append(
            "backend_parity_max_rel_dev missing from the current report"
        )
    elif not backend_parity <= backend_tol:  # catches NaN as well as breaches
        problems.append(
            f"scalar/vector backend parity broke: max relative deviation "
            f"{backend_parity:.3e} exceeds {backend_tol:.1e}"
        )

    # Batched multi-solve parity (schema >= 4).  Zero tolerance: the batched
    # path is bit-identical to the per-drop one by construction, so any
    # deviation at all is a lane-isolation bug, not noise.  Guarded on
    # presence so an older report can still be compared against.
    batch_parity = current_metrics.get("batch_parity_max_rel_dev")
    if batch_parity is not None and not batch_parity <= 0.0:  # catches NaN too
        problems.append(
            f"batched/per-drop parity broke: max relative deviation "
            f"{batch_parity:.3e} exceeds the exact-equality gate (0.0)"
        )

    # Result-store parity (schema >= 5).  Zero tolerance: both backends
    # serve the same entries through lossless round-trips, so any deviation
    # (including an int coming back a float, or a warm state drifting) is a
    # packing bug, not noise.  Guarded on presence like the batch gate.
    store_parity = current_metrics.get("store_parity_max_rel_dev")
    if store_parity is not None and not store_parity <= 0.0:  # catches NaN too
        problems.append(
            f"result-store parity broke: max relative deviation "
            f"{store_parity:.3e} exceeds the exact-equality gate (0.0)"
        )

    # Closed-loop FL parities (schema >= 3).  Guarded on presence so a
    # schema-2 report can still be compared against; once the current
    # report carries them they must hold — fixed-seed round loops are
    # bit-identical by construction, so these should in fact be 0.0.
    # The dynamic-fleet parities (schema >= 6) share the frozen-fleet
    # bounds: churn and drain are seeded, so fixed-seed dynamic runs are
    # just as bit-identical as frozen ones.
    for name, tol in (
        ("fl_warm_parity_max_rel_dev", parity_tol),
        ("fl_backend_parity_max_rel_dev", backend_tol),
        ("fl_dynamic_warm_parity_max_rel_dev", parity_tol),
        ("fl_dynamic_backend_parity_max_rel_dev", backend_tol),
    ):
        fl_parity = current_metrics.get(name)
        if fl_parity is not None and not fl_parity <= tol:
            problems.append(
                f"FL round-loop parity broke: {name} = {fl_parity:.3e} "
                f"exceeds {tol:.1e}"
            )

    failed = current_metrics.get("failed_tasks", 0.0)
    if failed:
        problems.append(f"{failed:.0f} benchmark task(s) failed to solve")

    if current.get("mode") != baseline.get("mode"):
        # Iteration counts depend on the suite scale; only the floors and
        # parity are comparable across modes.
        return problems

    for name, direction in baseline.get("tracked", _TRACKED).items():
        base = baseline_metrics.get(name)
        value = current_metrics.get(name)
        if base is None or value is None or base <= 0.0:
            continue
        if direction == "lower" and value > base * (1.0 + tolerance):
            problems.append(
                f"{name} regressed: {value:.4g} vs baseline {base:.4g} "
                f"(> +{tolerance:.0%})"
            )
        elif direction == "higher" and value < base * (1.0 - tolerance):
            problems.append(
                f"{name} regressed: {value:.4g} vs baseline {base:.4g} "
                f"(< -{tolerance:.0%})"
            )
    return problems
