"""Lightweight per-stage wall-clock instrumentation.

The solvers and the sweep engine are the system's hot path; knowing *where*
the time goes (Subproblem 1, Algorithm 1's inner solves, scenario building,
cache I/O) is what lets a PR claim a speedup.  This module provides

* :class:`StageTimings` — a tiny accumulator mapping stage names to total
  seconds and call counts;
* :func:`stage` — a context manager that charges a block's wall-clock time
  to a named stage, recording into an explicit collector and/or the ambient
  one installed by :func:`collect_timings`;
* :func:`collect_timings` — installs an ambient collector for the duration
  of a ``with`` block, so deeply nested solver code can be timed without
  threading a collector through every signature (the sweep worker wraps
  each task execution in one).

When no collector is active :func:`stage` costs a single truthiness check,
so the instrumentation is safe to leave on permanently.  Stages may nest
(``algorithm2`` contains ``sp1`` and ``sp2``); totals are therefore *not*
disjoint — report them as a breakdown, not a partition.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import monotonic, perf_counter
from typing import Iterator, Mapping

__all__ = ["StageTimings", "stage", "collect_timings", "active_collector", "wall_clock"]


def wall_clock() -> float:
    """A monotonic wall-clock reading, for bookkeeping outside this module.

    ``repro.perf`` is the only tree allowed to touch the clock primitives
    (enforced by repro-lint RL004): solver code that observes time can
    branch on it and silently break trajectory parity.  Bookkeeping code —
    the sweep runner's cache-I/O accounting, progress reporting — reads the
    clock through this function instead, so every clock access in the
    library is auditable from one module.
    """
    return monotonic()


class StageTimings:
    """Accumulated wall-clock seconds (and call counts) per named stage."""

    __slots__ = ("seconds", "counts")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Charge ``seconds`` (one call by default) to stage ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + float(seconds)
        self.counts[name] = self.counts.get(name, 0) + int(count)

    def merge(self, other: "StageTimings | Mapping[str, float]") -> None:
        """Fold another collector (or a plain seconds mapping) into this one."""
        if isinstance(other, StageTimings):
            for name, seconds in other.seconds.items():
                self.add(name, seconds, other.counts.get(name, 1))
        else:
            for name, seconds in other.items():
                self.add(name, float(seconds))

    def total(self, name: str) -> float:
        """Total seconds charged to ``name`` (0.0 when never recorded)."""
        return self.seconds.get(name, 0.0)

    def as_dict(self) -> dict[str, float]:
        """Plain ``{stage: seconds}`` mapping (JSON-able, insertion-ordered)."""
        return dict(self.seconds)

    def __bool__(self) -> bool:
        return bool(self.seconds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v:.4f}s" for k, v in self.seconds.items())
        return f"StageTimings({parts})"


#: Stack of ambient collectors; :func:`stage` records into the innermost.
_ACTIVE: list[StageTimings] = []


def active_collector() -> StageTimings | None:
    """The innermost ambient collector, or ``None`` when timing is off."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def collect_timings(collector: StageTimings | None = None) -> Iterator[StageTimings]:
    """Install ``collector`` (a fresh one by default) as the ambient target."""
    target = collector if collector is not None else StageTimings()
    _ACTIVE.append(target)
    try:
        yield target
    finally:
        _ACTIVE.pop()


@contextmanager
def stage(name: str, collector: StageTimings | None = None) -> Iterator[None]:
    """Charge the block's wall-clock time to ``name``.

    Records into ``collector`` (when given) and into the ambient collector
    (when one is installed and distinct from ``collector``).  With neither,
    the block runs untimed at negligible cost.
    """
    ambient = _ACTIVE[-1] if _ACTIVE else None
    if ambient is collector:
        ambient = None
    if collector is None and ambient is None:
        yield
        return
    started = perf_counter()
    try:
        yield
    finally:
        elapsed = perf_counter() - started
        if collector is not None:
            collector.add(name, elapsed)
        if ambient is not None:
            ambient.add(name, elapsed)
