"""Backwards-compatible shim over the :mod:`repro.scenarios` package.

Scenario construction now lives in ``repro/scenarios/``: a declarative
:class:`~repro.scenarios.ScenarioSpec` (family name + JSON-able params), a
scenario-family registry (``register_scenario_family`` /
``build_scenario_spec``), the paper recipe as the registered ``"paper"``
family in :mod:`repro.scenarios.paper`, and the non-paper families
(``cell-edge``, ``hotspot``, ``hetero-fleet``, ``indoor``) in
:mod:`repro.scenarios.families`.  This module re-exports the historical
names so existing imports keep working; new code should import from
:mod:`repro.scenarios` directly.
"""

from __future__ import annotations

from .scenarios import ScenarioConfig, build_paper_scenario, build_scenario

__all__ = ["ScenarioConfig", "build_scenario", "build_paper_scenario"]
