"""Scenario builders: turn Section VII-A's parameter table into a SystemModel.

Every experiment in the paper starts from the same recipe — drop ``N``
devices uniformly in a disc, realise the 3GPP channel, draw per-device CPU
requirements — and then perturbs one knob (maximum power, maximum frequency,
number of devices, cell radius, FL schedule).  :func:`build_scenario`
implements the recipe once so experiments, examples and tests share it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import constants
from .devices.fleet import DeviceFleet, generate_fleet
from .system import SystemModel
from .wireless.channel import ChannelModel
from .wireless.noise import NoiseModel
from .wireless.pathloss import LogDistancePathLoss
from .wireless.shadowing import LogNormalShadowing
from .wireless.topology import uniform_disc_topology

__all__ = ["ScenarioConfig", "build_scenario", "build_paper_scenario"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs of the Section VII-A scenario recipe."""

    num_devices: int = constants.DEFAULT_NUM_DEVICES
    radius_km: float = constants.DEFAULT_CELL_RADIUS_KM
    samples_per_device: int | None = constants.DEFAULT_SAMPLES_PER_DEVICE
    total_samples: int | None = None
    upload_bits: float = constants.DEFAULT_UPLOAD_BITS
    max_power_dbm: float = constants.DEFAULT_MAX_POWER_DBM
    min_power_dbm: float = constants.DEFAULT_MIN_POWER_DBM
    max_frequency_hz: float = constants.DEFAULT_MAX_FREQUENCY_HZ
    min_frequency_hz: float = constants.DEFAULT_MIN_FREQUENCY_HZ
    total_bandwidth_hz: float = constants.DEFAULT_TOTAL_BANDWIDTH_HZ
    local_iterations: int = constants.DEFAULT_LOCAL_ITERATIONS
    global_rounds: int = constants.DEFAULT_GLOBAL_ROUNDS
    shadowing_std_db: float = constants.SHADOWING_STD_DB
    noise_psd_dbm_per_hz: float = constants.NOISE_PSD_DBM_PER_HZ
    seed: int | None = 0


def build_scenario(config: ScenarioConfig) -> SystemModel:
    """Realise one random drop of the scenario described by ``config``."""
    from . import units

    rng = np.random.default_rng(config.seed)
    fleet: DeviceFleet = generate_fleet(
        config.num_devices,
        rng=rng,
        samples_per_device=config.samples_per_device,
        total_samples=config.total_samples,
        upload_bits=config.upload_bits,
        min_frequency_hz=config.min_frequency_hz,
        max_frequency_hz=config.max_frequency_hz,
        min_power_w=units.dbm_to_watt(config.min_power_dbm),
        max_power_w=units.dbm_to_watt(config.max_power_dbm),
    )
    topology = uniform_disc_topology(config.num_devices, config.radius_km, rng=rng)
    noise = NoiseModel.from_dbm_per_hz(config.noise_psd_dbm_per_hz)
    channel_model = ChannelModel(
        path_loss=LogDistancePathLoss(),
        shadowing=LogNormalShadowing(std_db=config.shadowing_std_db),
        noise=noise,
    )
    channel_state = channel_model.realize(topology, rng=rng)
    return SystemModel(
        fleet=fleet,
        gains=channel_state.gains,
        noise_psd_w_per_hz=noise.effective_psd_w_per_hz,
        total_bandwidth_hz=config.total_bandwidth_hz,
        local_iterations=config.local_iterations,
        global_rounds=config.global_rounds,
        channel_state=channel_state,
    )


def build_paper_scenario(
    num_devices: int = constants.DEFAULT_NUM_DEVICES,
    *,
    seed: int | None = 0,
    radius_km: float = constants.DEFAULT_CELL_RADIUS_KM,
    **overrides,
) -> SystemModel:
    """Shorthand for :func:`build_scenario` with the paper's default table.

    Additional keyword arguments override :class:`ScenarioConfig` fields.
    """
    config = ScenarioConfig(
        num_devices=num_devices, radius_km=radius_km, seed=seed, **overrides
    )
    return build_scenario(config)
