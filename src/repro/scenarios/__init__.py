"""Pluggable scenario subsystem: specs, a family registry, built-in families.

A scenario family is a named recipe ``params -> SystemModel``; a
:class:`ScenarioSpec` is one scenario as pure data (family name + JSON-able
parameters), which is what sweep tasks carry and hash.  Importing this
package registers the built-in families:

* ``paper`` — Section VII-A's recipe (bit-identical to the pre-registry
  builder for the same seed);
* ``cell-edge``, ``hotspot``, ``hetero-fleet``, ``indoor`` — the
  non-paper workloads (see :mod:`repro.scenarios.families`).

Register your own with :func:`register_scenario_family`; to use a custom
family inside sweep worker processes, name it by its dotted path
(``"my_pkg.scenarios:my_family"``) so workers can resolve it by import.
"""

from .families import (  # noqa: F401  (import registers the built-in families)
    cell_edge_scenario,
    hetero_fleet_scenario,
    hotspot_scenario,
    indoor_scenario,
)
from .paper import (
    ScenarioConfig,
    build_paper_scenario,
    build_scenario,
    paper_scenario,
)
from .spec import (
    SCENARIO_SCHEMA_VERSION,
    ScenarioFamily,
    ScenarioSpec,
    build_scenario_spec,
    get_scenario_family,
    register_scenario_family,
    scenario_families,
)

__all__ = [
    "SCENARIO_SCHEMA_VERSION",
    "ScenarioConfig",
    "ScenarioFamily",
    "ScenarioSpec",
    "build_paper_scenario",
    "build_scenario",
    "build_scenario_spec",
    "get_scenario_family",
    "register_scenario_family",
    "scenario_families",
    "paper_scenario",
    "cell_edge_scenario",
    "hotspot_scenario",
    "hetero_fleet_scenario",
    "indoor_scenario",
]
