"""Built-in non-paper scenario families.

Each family keeps the Section VII-A knobs (device count, cell radius, power
/ frequency limits, FL schedule — everything :class:`ScenarioConfig`
carries) so the experiment sweeps apply unchanged, and layers a different
stressor on top:

* ``cell-edge`` — every device in an annulus near the cell edge under
  Rayleigh fading: uniformly bad channels, upload-dominated.
* ``hotspot`` — devices in a few Gaussian clusters under Rician fading:
  grouped link budgets, strong inter-cluster imbalance.
* ``hetero-fleet`` — the paper's uniform disc but a phone/laptop/IoT
  device-class mix: CPU/power/dataset heterogeneity drives the allocator.
* ``indoor`` — a jittered grid of tens of metres with free-space path loss
  plus per-wall penetration loss and Nakagami-m fading.

All randomness derives from the ``seed`` parameter (one
:class:`numpy.random.Generator` threaded through fleet, topology and
channel), so every family is reproducible under the sweep engine's
execution-order-free parallelism.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from .. import units
from ..devices.fleet import generate_mixed_fleet
from ..exceptions import ConfigurationError
from ..system import SystemModel
from ..wireless.fading import FadingModel, make_fading
from ..wireless.pathloss import LogDistancePathLoss
from ..wireless.topology import (
    cell_edge_ring_topology,
    clustered_hotspot_topology,
    indoor_grid_topology,
    uniform_disc_topology,
)
from .paper import ScenarioConfig, paper_fleet, realize_system
from .spec import register_scenario_family

__all__ = [
    "cell_edge_scenario",
    "hotspot_scenario",
    "hetero_fleet_scenario",
    "indoor_scenario",
]


def _make_fading(name: str | None, params: Mapping[str, Any] | None) -> FadingModel | None:
    return None if name is None else make_fading(name, **dict(params or {}))


@register_scenario_family(
    "cell-edge",
    description="Annulus near the cell edge under Rayleigh fading: "
    "uniformly weak, upload-dominated channels",
)
def cell_edge_scenario(
    *,
    inner_fraction: float = 0.8,
    fading: str | None = "rayleigh",
    fading_params: Mapping[str, Any] | None = None,
    **base: Any,
) -> SystemModel:
    """Cell-edge ring drop under Rayleigh fading."""
    config = ScenarioConfig(**base)
    rng = np.random.default_rng(config.seed)
    fleet = paper_fleet(config, rng)
    topology = cell_edge_ring_topology(
        config.num_devices, config.radius_km, inner_fraction=inner_fraction, rng=rng
    )
    return realize_system(
        config, fleet, topology, rng=rng, fading=_make_fading(fading, fading_params)
    )


@register_scenario_family(
    "hotspot",
    description="Gaussian device clusters under Rician fading: grouped "
    "link budgets with strong inter-cluster imbalance",
)
def hotspot_scenario(
    *,
    num_clusters: int = 3,
    cluster_std_fraction: float = 0.08,
    fading: str | None = "rician",
    fading_params: Mapping[str, Any] | None = None,
    **base: Any,
) -> SystemModel:
    """Clustered-hotspot drop under Rician fading."""
    config = ScenarioConfig(**base)
    rng = np.random.default_rng(config.seed)
    fleet = paper_fleet(config, rng)
    topology = clustered_hotspot_topology(
        config.num_devices,
        config.radius_km,
        num_clusters=num_clusters,
        cluster_std_fraction=cluster_std_fraction,
        rng=rng,
    )
    return realize_system(
        config, fleet, topology, rng=rng, fading=_make_fading(fading, fading_params)
    )


@register_scenario_family(
    "hetero-fleet",
    description="Uniform disc with a phone/laptop/IoT device-class mix: "
    "CPU, power and dataset heterogeneity",
)
def hetero_fleet_scenario(
    *,
    class_shares: Mapping[str, float] | None = None,
    fading: str | None = None,
    fading_params: Mapping[str, Any] | None = None,
    **base: Any,
) -> SystemModel:
    """Heterogeneous device-class fleet on the paper's uniform disc."""
    config = ScenarioConfig(**base)
    rng = np.random.default_rng(config.seed)
    samples = config.samples_per_device
    if config.total_samples is not None:
        # ``total_samples`` wins over ``samples_per_device``, matching
        # generate_fleet; the mixed generator scales per-class dataset sizes
        # off one base value, so split the total equally to preserve it.
        samples = max(1, config.total_samples // config.num_devices)
    fleet = generate_mixed_fleet(
        config.num_devices,
        class_shares,
        rng=rng,
        samples_per_device=samples,
        upload_bits=config.upload_bits,
        min_frequency_hz=config.min_frequency_hz,
        max_frequency_hz=config.max_frequency_hz,
        min_power_w=units.dbm_to_watt(config.min_power_dbm),
        max_power_w=units.dbm_to_watt(config.max_power_dbm),
    )
    topology = uniform_disc_topology(config.num_devices, config.radius_km, rng=rng)
    return realize_system(
        config, fleet, topology, rng=rng, fading=_make_fading(fading, fading_params)
    )


@register_scenario_family(
    "indoor",
    description="Jittered indoor grid: free-space path loss + per-wall "
    "penetration loss and Nakagami-m fading",
)
def indoor_scenario(
    *,
    extent_km: float | None = None,
    wall_spacing_km: float = 0.01,
    wall_loss_db: float = 5.0,
    carrier_ghz: float = 2.4,
    fading: str | None = "nakagami",
    fading_params: Mapping[str, Any] | None = None,
    **base: Any,
) -> SystemModel:
    """Indoor grid drop with wall-loss and Nakagami-m fading."""
    config = ScenarioConfig(**base)
    if extent_km is None:
        # Tie the building size to the standard radius knob (0.25 km cell ->
        # 50 m building) so radius sweeps (Fig. 5) stay meaningful indoors.
        extent_km = 0.2 * config.radius_km
    if wall_spacing_km <= 0.0:
        raise ConfigurationError(
            f"wall_spacing_km must be positive, got {wall_spacing_km}"
        )
    if wall_loss_db < 0.0:
        raise ConfigurationError(
            f"wall_loss_db must be non-negative, got {wall_loss_db}"
        )
    rng = np.random.default_rng(config.seed)
    fleet = paper_fleet(config, rng)
    topology = indoor_grid_topology(config.num_devices, extent_km, rng=rng)
    walls = np.floor(topology.distances_km() / wall_spacing_km)
    return realize_system(
        config,
        fleet,
        topology,
        rng=rng,
        fading=_make_fading(fading, fading_params),
        path_loss=LogDistancePathLoss.free_space(frequency_ghz=carrier_ghz),
        extra_loss_db=walls * wall_loss_db,
    )
