"""The ``"paper"`` scenario family: Section VII-A's parameter table.

Every experiment in the paper starts from the same recipe — drop ``N``
devices uniformly in a disc, realise the 3GPP channel (log-distance path
loss + 8 dB log-normal shadowing, no small-scale fading), draw per-device
CPU requirements — and then perturbs one knob.  :func:`build_scenario`
implements the recipe once; it is byte-for-byte the pre-registry builder
(same RNG draw order), so realisations are bit-identical to every released
table.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from .. import constants
from ..devices.fleet import DeviceFleet, generate_fleet
from ..system import SystemModel
from ..wireless.channel import ChannelModel
from ..wireless.noise import NoiseModel
from ..wireless.pathloss import LogDistancePathLoss
from ..wireless.shadowing import LogNormalShadowing
from ..wireless.topology import uniform_disc_topology
from .spec import register_scenario_family

__all__ = [
    "ScenarioConfig",
    "build_scenario",
    "build_paper_scenario",
    "paper_scenario",
    "paper_fleet",
    "realize_system",
]


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs of the Section VII-A scenario recipe."""

    num_devices: int = constants.DEFAULT_NUM_DEVICES
    radius_km: float = constants.DEFAULT_CELL_RADIUS_KM
    samples_per_device: int | None = constants.DEFAULT_SAMPLES_PER_DEVICE
    total_samples: int | None = None
    upload_bits: float = constants.DEFAULT_UPLOAD_BITS
    max_power_dbm: float = constants.DEFAULT_MAX_POWER_DBM
    min_power_dbm: float = constants.DEFAULT_MIN_POWER_DBM
    max_frequency_hz: float = constants.DEFAULT_MAX_FREQUENCY_HZ
    min_frequency_hz: float = constants.DEFAULT_MIN_FREQUENCY_HZ
    total_bandwidth_hz: float = constants.DEFAULT_TOTAL_BANDWIDTH_HZ
    local_iterations: int = constants.DEFAULT_LOCAL_ITERATIONS
    global_rounds: int = constants.DEFAULT_GLOBAL_ROUNDS
    shadowing_std_db: float = constants.SHADOWING_STD_DB
    noise_psd_dbm_per_hz: float = constants.NOISE_PSD_DBM_PER_HZ
    seed: int | None = 0


def paper_fleet(config: ScenarioConfig, rng: np.random.Generator) -> DeviceFleet:
    """The paper's homogeneous fleet for a config (shared by the families)."""
    from .. import units

    return generate_fleet(
        config.num_devices,
        rng=rng,
        samples_per_device=config.samples_per_device,
        total_samples=config.total_samples,
        upload_bits=config.upload_bits,
        min_frequency_hz=config.min_frequency_hz,
        max_frequency_hz=config.max_frequency_hz,
        min_power_w=units.dbm_to_watt(config.min_power_dbm),
        max_power_w=units.dbm_to_watt(config.max_power_dbm),
    )


def realize_system(
    config: ScenarioConfig,
    fleet: DeviceFleet,
    topology,
    *,
    rng: np.random.Generator,
    fading=None,
    path_loss: LogDistancePathLoss | None = None,
    extra_loss_db=None,
) -> SystemModel:
    """Assemble fleet + topology + channel chain into a :class:`SystemModel`.

    With ``fading=None`` and ``extra_loss_db=None`` the channel draws
    exactly the paper's random numbers, so :func:`build_scenario` and every
    family share this assembly without perturbing paper realisations.
    """
    noise = NoiseModel.from_dbm_per_hz(config.noise_psd_dbm_per_hz)
    channel_model = ChannelModel(
        path_loss=path_loss if path_loss is not None else LogDistancePathLoss(),
        shadowing=LogNormalShadowing(std_db=config.shadowing_std_db),
        noise=noise,
        fading=fading,
    )
    channel_state = channel_model.realize(topology, rng=rng, extra_loss_db=extra_loss_db)
    return SystemModel(
        fleet=fleet,
        gains=channel_state.gains,
        noise_psd_w_per_hz=noise.effective_psd_w_per_hz,
        total_bandwidth_hz=config.total_bandwidth_hz,
        local_iterations=config.local_iterations,
        global_rounds=config.global_rounds,
        channel_state=channel_state,
    )


def build_scenario(config: ScenarioConfig) -> SystemModel:
    """Realise one random drop of the scenario described by ``config``."""
    rng = np.random.default_rng(config.seed)
    fleet = paper_fleet(config, rng)
    topology = uniform_disc_topology(config.num_devices, config.radius_km, rng=rng)
    return realize_system(config, fleet, topology, rng=rng)


def build_paper_scenario(
    num_devices: int = constants.DEFAULT_NUM_DEVICES,
    *,
    seed: int | None = 0,
    radius_km: float = constants.DEFAULT_CELL_RADIUS_KM,
    **overrides,
) -> SystemModel:
    """Shorthand for :func:`build_scenario` with the paper's default table.

    Additional keyword arguments override :class:`ScenarioConfig` fields.
    """
    config = ScenarioConfig(
        num_devices=num_devices, radius_km=radius_km, seed=seed, **overrides
    )
    return build_scenario(config)


@register_scenario_family(
    "paper",
    description="Section VII-A: uniform disc, log-distance path loss + "
    "log-normal shadowing, homogeneous devices",
    defaults={f.name: f.default for f in dataclasses.fields(ScenarioConfig)},
)
def paper_scenario(**params) -> SystemModel:
    """Section VII-A's recipe as a registered family (spec entry point)."""
    return build_scenario(ScenarioConfig(**params))
