"""Declarative scenario specs and the scenario-family registry.

A *scenario family* is a named recipe that turns JSON-able parameters into
a :class:`~repro.system.SystemModel` — the paper's Section VII-A drop is
one family (``"paper"``); clustered hotspots, cell-edge rings, indoor
grids and heterogeneous fleets are others.  A :class:`ScenarioSpec` pairs a
family name with its parameters, so a scenario can be hashed into a sweep
cache key, shipped to a worker process, or written to a config file.

The registry mirrors the sweep engine's solver-kind registry
(:func:`repro.experiments.runner.register_solver_kind`), including dotted
``"pkg.module:function"`` resolution so custom families registered in the
parent process still resolve inside spawned ``ProcessPoolExecutor``
workers (where a decorator run in the parent never executes).
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..exceptions import ConfigurationError
from ..system import SystemModel

__all__ = [
    "SCENARIO_SCHEMA_VERSION",
    "ScenarioSpec",
    "ScenarioFamily",
    "register_scenario_family",
    "scenario_families",
    "get_scenario_family",
    "build_scenario_spec",
]

#: Version of the (family, params) scenario description.  Part of every
#: sweep-task payload; bump when the meaning of scenario parameters changes
#: so stale cache entries can never be mistaken for current ones.
SCENARIO_SCHEMA_VERSION = 2

#: The family every spec without an explicit family resolves to.
DEFAULT_FAMILY = "paper"

ScenarioBuilder = Callable[..., SystemModel]


@dataclass(frozen=True)
class ScenarioFamily:
    """A registered scenario recipe: builder + metadata for discovery."""

    name: str
    builder: ScenarioBuilder
    description: str
    defaults: Mapping[str, Any] = field(default_factory=dict)

    def build(self, **params: Any) -> SystemModel:
        """Realise one drop of this family."""
        try:
            return self.builder(**params)
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid parameters for scenario family {self.name!r}: {exc}"
            ) from exc


_FAMILIES: dict[str, ScenarioFamily] = {}


def _signature_defaults(builder: ScenarioBuilder) -> dict[str, Any]:
    """The builder's declared keyword defaults (for ``repro list-scenarios``)."""
    defaults: dict[str, Any] = {}
    try:
        parameters = inspect.signature(builder).parameters.values()
    except (TypeError, ValueError):  # builtins / odd callables
        return defaults
    for parameter in parameters:
        if parameter.default is not inspect.Parameter.empty:
            defaults[parameter.name] = parameter.default
    return defaults


def register_scenario_family(
    name: str,
    *,
    description: str | None = None,
    defaults: Mapping[str, Any] | None = None,
) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Register ``builder(**params) -> SystemModel`` as family ``name``.

    ``description`` defaults to the first line of the builder's docstring;
    ``defaults`` (shown by ``repro list-scenarios``) to the builder's
    keyword defaults.  The builder must accept only JSON-able keyword
    arguments (they travel through the sweep cache key), and must derive
    all randomness from its ``seed`` parameter so drops stay reproducible
    under any execution order.
    """

    def decorator(builder: ScenarioBuilder) -> ScenarioBuilder:
        doc = (builder.__doc__ or "").strip().splitlines()
        summary = description if description is not None else (doc[0] if doc else "")
        _FAMILIES[name] = ScenarioFamily(
            name=name,
            builder=builder,
            description=summary,
            defaults=dict(defaults) if defaults is not None else _signature_defaults(builder),
        )
        return builder

    return decorator


def scenario_families() -> tuple[str, ...]:
    """The currently registered scenario-family names."""
    return tuple(sorted(_FAMILIES))


def get_scenario_family(name: str) -> ScenarioFamily:
    """Look up a family, resolving dotted ``module:function`` names on demand."""
    if name not in _FAMILIES and ":" in name:
        module_name, _, attr = name.partition(":")
        try:
            builder = getattr(importlib.import_module(module_name), attr)
        except (ImportError, AttributeError) as exc:
            raise ConfigurationError(
                f"cannot resolve scenario family {name!r}: {exc}"
            ) from exc
        register_scenario_family(name)(builder)
    try:
        return _FAMILIES[name]
    except KeyError as exc:
        known = ", ".join(scenario_families())
        raise ConfigurationError(
            f"unknown scenario family {name!r}; known: {known}"
        ) from exc


@dataclass(frozen=True)
class ScenarioSpec:
    """A scenario as pure data: family name + JSON-able parameters."""

    family: str = DEFAULT_FAMILY
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        if "family" in self.params:
            raise ConfigurationError(
                "spec params must not contain a 'family' key; "
                "set ScenarioSpec.family instead"
            )

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ScenarioSpec":
        """Split a flat ``{"family": ..., **params}`` mapping into a spec.

        Mappings without a ``"family"`` key (every pre-registry sweep task)
        resolve to the paper family, keeping old task descriptions valid.
        """
        params = dict(mapping)
        family = params.pop("family", DEFAULT_FAMILY)
        return cls(family=str(family), params=params)

    def to_mapping(self) -> dict[str, Any]:
        """The inverse of :meth:`from_mapping`."""
        return {"family": self.family, **self.params}

    def build(self) -> SystemModel:
        """Realise one drop of this spec."""
        return get_scenario_family(self.family).build(**self.params)


def build_scenario_spec(spec: ScenarioSpec | Mapping[str, Any]) -> SystemModel:
    """Build a :class:`SystemModel` from a spec (or a flat spec mapping)."""
    if not isinstance(spec, ScenarioSpec):
        spec = ScenarioSpec.from_mapping(spec)
    return spec.build()
