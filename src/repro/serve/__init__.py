"""``repro.serve`` — allocation-as-a-service over the sweep engine.

A stdlib-only long-lived HTTP service (``repro serve``) that answers
allocation requests: repeats come straight from the :mod:`repro.store`
result cache, cold requests funnel through a coalescing queue that groups
compatible concurrent requests into one lockstep
:meth:`~repro.core.allocator.ResourceAllocator.solve_batch` pass.
Responses are bit-identical to a direct per-drop ``solve()`` of the same
task.  See :mod:`repro.serve.server` for the endpoints,
:mod:`repro.serve.schema` for the request format and
:mod:`repro.serve.coalescer` for the batching worker.
"""

from __future__ import annotations

from .coalescer import RequestCoalescer, SolveOutcome
from .schema import parse_request
from .server import AllocationServer, AllocationService, ServeConfig

__all__ = [
    "AllocationServer",
    "AllocationService",
    "RequestCoalescer",
    "ServeConfig",
    "SolveOutcome",
    "parse_request",
]
