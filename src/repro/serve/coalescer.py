"""The request-coalescing queue behind the allocation service.

HTTP request threads :meth:`~RequestCoalescer.submit` cold tasks and block
on a future; a single worker thread drains the queue every few
milliseconds and turns whatever arrived in that window into as few solves
as possible:

* requests for the **same digest** collapse onto one in-flight future
  (submitted while an identical request is already queued or solving,
  a request never recomputes — it joins the existing lane);
* distinct batchable tasks **group by**
  :meth:`~repro.experiments.runner.SweepRunner.batch_group_key` and each
  group runs through one lockstep
  :meth:`~repro.core.allocator.ResourceAllocator.solve_batch` pass via the
  sweep engine's :func:`~repro.experiments.runner.execute_batch` — the
  same code the ``--batch-size`` sweep path uses, so a coalesced response
  is bit-identical to a per-drop ``solve()``;
* everything else (baselines, deadline-constrained problems) runs through
  the exact per-drop execution path, one task at a time.

Failures follow the sweep engine's crash-isolation contract: a broken
lane resolves its futures with an error string, never an exception, and
one bad request cannot take the worker (or a neighbouring lane) down.
:meth:`~RequestCoalescer.close` drains every queued request before the
worker exits, which is what makes the service's SIGINT shutdown graceful.
"""

from __future__ import annotations

import queue
import threading
import warnings
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable

from ..experiments.runner import (
    SweepRunner,
    SweepTask,
    _execute_safely,
    batchable_task,
    execute_batch,
)
from ..perf.timers import StageTimings, stage

__all__ = ["SolveOutcome", "RequestCoalescer"]


@dataclass(frozen=True)
class SolveOutcome:
    """What one coalesced solve produced for one digest.

    ``batch_size`` is the number of *distinct* tasks solved in the same
    lockstep pass (1 for the per-drop path) — the observability hook the
    coalescing tests assert on.
    """

    digest: str
    task: SweepTask
    metrics: dict[str, float] | None
    state: dict[str, Any] | None
    error: str | None
    batch_size: int = 1

    @property
    def ok(self) -> bool:
        return self.metrics is not None


@dataclass
class _Lane:
    """One in-flight digest: the task plus every future waiting on it."""

    task: SweepTask
    futures: list[Future] = field(default_factory=list)


class RequestCoalescer:
    """Single-worker coalescing queue; see the module docstring.

    Parameters
    ----------
    batch_size:
        Maximum lanes per lockstep :func:`execute_batch` pass.
    gather_window_s:
        How long the worker waits after the first queued request before
        draining, so a concurrent burst lands in one drain (and therefore
        one batch).  A few milliseconds suffices for same-moment bursts;
        tests raise it to make coalescing deterministic.
    on_outcome:
        Optional callback invoked in the worker thread with each
        :class:`SolveOutcome` *before* its futures resolve — the service
        uses it to write the result store and bump counters, so a client
        that re-asks immediately after its response hits the cache.
    """

    def __init__(
        self,
        *,
        batch_size: int = 8,
        gather_window_s: float = 0.005,
        on_outcome: Callable[[SolveOutcome], None] | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = int(batch_size)
        self.gather_window_s = float(gather_window_s)
        self.on_outcome = on_outcome
        self.timings = StageTimings()
        self._queue: queue.Queue[str] = queue.Queue()
        self._lanes: dict[str, _Lane] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._stats = {
            "submitted": 0,
            "joined": 0,
            "solved": 0,
            "errors": 0,
            "batches": 0,
            "batched_tasks": 0,
            "solo_tasks": 0,
            "max_batch_size": 0,
            "last_batch_size": 0,
        }
        self._worker = threading.Thread(
            target=self._run, name="repro-serve-coalescer", daemon=True
        )
        self._worker.start()

    # -- the request-thread side ---------------------------------------------
    def submit(self, task: SweepTask, digest: str) -> Future:
        """Enqueue ``task`` and return the future its solve will resolve.

        A digest already queued (or currently solving) is *joined*: the
        caller gets the existing lane's future machinery and no duplicate
        work is enqueued.  The future resolves with a :class:`SolveOutcome`.
        """
        future: Future = Future()
        with self._lock:
            if self._stop.is_set():
                raise RuntimeError("coalescer is shut down")
            lane = self._lanes.get(digest)
            if lane is not None:
                lane.futures.append(future)
                self._stats["joined"] += 1
                return future
            self._lanes[digest] = _Lane(task=task, futures=[future])
            self._stats["submitted"] += 1
        self._queue.put(digest)
        return future

    def snapshot(self) -> dict[str, int]:
        """A consistent copy of the coalescing counters (plus queue depth)."""
        with self._lock:
            counters = dict(self._stats)
        counters["queue_depth"] = self._queue.qsize()
        return counters

    def close(self) -> None:
        """Drain every queued request, then stop the worker (idempotent).

        New submissions are refused immediately; everything already queued
        is still solved — their futures resolve before this returns — so a
        SIGINT shutdown never strands a waiting client.
        """
        with self._lock:
            self._stop.set()
        self._worker.join()

    # -- the worker side -----------------------------------------------------
    def _run(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            # Let a concurrent burst land before draining, so same-moment
            # requests coalesce into one lockstep batch.  The stop event
            # doubles as the sleep: shutdown skips the wait and drains.
            self._stop.wait(self.gather_window_s)
            digests = [first]
            while True:
                try:
                    digests.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            try:
                self._drain(digests)
            except Exception as exc:  # repro-lint: disable=RL005 -- a worker bug must fail the drained lanes loudly, not hang their clients
                error = f"{type(exc).__name__}: {exc}"
                for digest in digests:
                    with self._lock:
                        lane = self._lanes.pop(digest, None)
                        self._stats["solved"] += 1
                        self._stats["errors"] += 1
                    if lane is not None:
                        for future in lane.futures:
                            future.set_result(
                                SolveOutcome(
                                    digest=digest,
                                    task=lane.task,
                                    metrics=None,
                                    state=None,
                                    error=error,
                                )
                            )

    def _drain(self, digests: list[str]) -> None:
        """Solve one drained window: group, batch, resolve."""
        with self._lock:
            lanes = [(digest, self._lanes[digest].task) for digest in digests]

        groups: dict[str, list[tuple[str, SweepTask]]] = {}
        solo: list[tuple[str, SweepTask]] = []
        for digest, task in lanes:
            if batchable_task(task):
                groups.setdefault(SweepRunner.batch_group_key(task), []).append(
                    (digest, task)
                )
            else:
                solo.append((digest, task))

        collector = StageTimings()
        outcomes: list[SolveOutcome] = []
        for members in groups.values():
            for start in range(0, len(members), self.batch_size):
                chunk = members[start : start + self.batch_size]
                with stage("serve_batch", collector):
                    triples = execute_batch([task for _, task in chunk])
                for (digest, task), (metrics, state, error) in zip(chunk, triples):
                    outcomes.append(
                        SolveOutcome(
                            digest=digest,
                            task=task,
                            metrics=metrics,
                            state=state,
                            error=error,
                            batch_size=len(chunk),
                        )
                    )
                self._record_batch(len(chunk))
        for digest, task in solo:
            metrics, state, timings, error = _execute_safely(task)
            if timings:
                collector.merge(timings)
            outcomes.append(
                SolveOutcome(
                    digest=digest,
                    task=task,
                    metrics=metrics,
                    state=state,
                    error=error,
                    batch_size=1,
                )
            )
            self._record_batch(1, solo=True)

        for outcome in outcomes:
            self._resolve(outcome)
        with self._lock:
            self.timings.merge(collector)

    def _record_batch(self, size: int, *, solo: bool = False) -> None:
        with self._lock:
            if solo:
                self._stats["solo_tasks"] += 1
            else:
                self._stats["batches"] += 1
                self._stats["batched_tasks"] += size
            self._stats["last_batch_size"] = size
            self._stats["max_batch_size"] = max(self._stats["max_batch_size"], size)

    def _resolve(self, outcome: SolveOutcome) -> None:
        """Publish one outcome: store callback first, then the futures."""
        if self.on_outcome is not None:
            try:
                self.on_outcome(outcome)
            except Exception as exc:  # repro-lint: disable=RL005 -- a store/metrics callback failure must not strand the waiting clients
                warnings.warn(
                    f"serve: result callback failed for {outcome.digest[:12]}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        with self._lock:
            lane = self._lanes.pop(outcome.digest, None)
            self._stats["solved"] += 1
            if outcome.error is not None:
                self._stats["errors"] += 1
        if lane is not None:
            for future in lane.futures:
                future.set_result(outcome)
