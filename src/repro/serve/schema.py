"""Request schema and validation for the allocation service.

A ``POST /solve`` body carries exactly the data that builds a
:class:`~repro.experiments.runner.SweepTask` — a scenario family with its
parameters plus the solver-side knobs — so a served request hashes with
the same :func:`~repro.experiments.runner.task_hash` as a CLI sweep and
its response is interchangeable (bit-identical, cache-compatible) with a
direct :func:`~repro.experiments.runner.execute_task` run::

    {
      "scenario": {"family": "paper", "num_devices": 12, "seed": 3, ...},
      "energy_weight": 0.5,            # required for the proposed scheme
      "deadline_s": null,              # optional hard completion budget
      "solver_kind": "proposed",       # or "baseline"
      "baseline": "benchmark",         # baseline name (baseline kind only)
      "baseline_kwargs": {},           # extra baseline arguments
      "allocator": {"max_iterations": 20, ...},   # AllocatorConfig overrides
      "backend": "vector"              # SP2 backend override
    }

Validation is strict — unknown keys, wrong types, unregistered families or
baselines all raise :class:`~repro.exceptions.ConfigurationError` with a
message naming the offending field, which the HTTP layer maps to a 400.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

from ..baselines.registry import get_baseline
from ..core.allocator import AllocatorConfig
from ..core.subproblem2 import validate_backend
from ..exceptions import ConfigurationError
from ..experiments.runner import SweepTask
from ..scenarios import get_scenario_family

__all__ = ["parse_request"]

#: Keys a request body may carry; anything else is rejected loudly (a typo
#: like "energy_wieght" silently falling back to a default would serve a
#: *different* allocation than the client asked for).
_REQUEST_KEYS = frozenset(
    {
        "scenario",
        "solver_kind",
        "energy_weight",
        "deadline_s",
        "baseline",
        "baseline_kwargs",
        "allocator",
        "backend",
    }
)

#: AllocatorConfig fields a request may override (the nested sum-of-ratios
#: configuration is reachable only through the "backend" key, keeping the
#: request surface flat and the cache-key impact obvious).
_ALLOCATOR_FIELDS = frozenset(
    field.name for field in dataclasses.fields(AllocatorConfig)
) - {"sum_of_ratios"}


def _require_number(body: Mapping[str, Any], key: str, default: Any = None) -> Any:
    value = body.get(key, default)
    if value is not None and (isinstance(value, bool) or not isinstance(value, (int, float))):
        raise ConfigurationError(f"request field {key!r} must be a number")
    return value


def _parse_scenario(body: Mapping[str, Any]) -> dict[str, Any]:
    scenario = body.get("scenario")
    if not isinstance(scenario, Mapping):
        raise ConfigurationError(
            "request must carry a 'scenario' object (the flat scenario "
            "mapping, e.g. {\"family\": \"paper\", \"num_devices\": 12, "
            "\"seed\": 0})"
        )
    scenario = {str(key): value for key, value in scenario.items()}
    family = scenario.get("family", "paper")
    if not isinstance(family, str):
        raise ConfigurationError("scenario field 'family' must be a string")
    get_scenario_family(family)  # fail fast with the known-family list
    return scenario


def _parse_allocator(
    body: Mapping[str, Any], default_allocator: AllocatorConfig | None
) -> AllocatorConfig:
    allocator = default_allocator if default_allocator is not None else AllocatorConfig()
    overrides = body.get("allocator")
    if overrides is not None:
        if not isinstance(overrides, Mapping):
            raise ConfigurationError("request field 'allocator' must be an object")
        unknown = sorted(set(map(str, overrides)) - _ALLOCATOR_FIELDS)
        if unknown:
            known = ", ".join(sorted(_ALLOCATOR_FIELDS))
            raise ConfigurationError(
                f"unknown allocator field(s) {', '.join(unknown)}; known: {known}"
            )
        try:
            allocator = dataclasses.replace(allocator, **dict(overrides))
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"invalid allocator override: {exc}") from exc
    backend = body.get("backend")
    if backend is not None:
        if not isinstance(backend, str):
            raise ConfigurationError("request field 'backend' must be a string")
        try:
            validate_backend(backend)
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from exc
        allocator = dataclasses.replace(
            allocator,
            sum_of_ratios=dataclasses.replace(allocator.sum_of_ratios, backend=backend),
        )
    return allocator


def parse_request(
    body: Any, *, default_allocator: AllocatorConfig | None = None
) -> SweepTask:
    """Validate one request body and build its :class:`SweepTask`.

    The returned task's ``solver_params`` are constructed exactly as the
    sweep-engine task builders (:func:`repro.experiments.base.proposed_tasks`
    / ``baseline_tasks``) construct them, so the task hashes — and therefore
    caches and solves — identically to the same request made through a CLI
    sweep.  ``default_allocator`` is the service-wide allocator
    configuration a request's ``"allocator"`` / ``"backend"`` overrides are
    applied on top of.
    """
    if not isinstance(body, Mapping):
        raise ConfigurationError("request body must be a JSON object")
    unknown = sorted(set(map(str, body)) - _REQUEST_KEYS)
    if unknown:
        known = ", ".join(sorted(_REQUEST_KEYS))
        raise ConfigurationError(
            f"unknown request field(s) {', '.join(unknown)}; known: {known}"
        )

    solver_kind = body.get("solver_kind", "proposed")
    if solver_kind not in ("proposed", "baseline"):
        raise ConfigurationError(
            f"request field 'solver_kind' must be 'proposed' or 'baseline', "
            f"got {solver_kind!r}"
        )

    scenario = _parse_scenario(body)
    deadline_s = _require_number(body, "deadline_s")
    if deadline_s is not None:
        deadline_s = float(deadline_s)
        if deadline_s <= 0.0:
            raise ConfigurationError("request field 'deadline_s' must be positive")

    if solver_kind == "proposed":
        if "baseline" in body or "baseline_kwargs" in body:
            raise ConfigurationError(
                "request fields 'baseline'/'baseline_kwargs' only apply to "
                "solver_kind 'baseline'"
            )
        if "energy_weight" not in body:
            raise ConfigurationError(
                "request field 'energy_weight' is required for the proposed scheme"
            )
        energy_weight = float(_require_number(body, "energy_weight"))
        if not 0.0 <= energy_weight <= 1.0:
            raise ConfigurationError(
                f"request field 'energy_weight' must lie in [0, 1], got {energy_weight}"
            )
        solver_params: dict[str, Any] = {
            "energy_weight": energy_weight,
            "deadline_s": deadline_s,
            "allocator": _parse_allocator(body, default_allocator),
        }
    else:
        name = body.get("baseline")
        if not isinstance(name, str):
            raise ConfigurationError(
                "request field 'baseline' (the baseline name) is required "
                "for solver_kind 'baseline'"
            )
        get_baseline(name)  # fail fast with the known-baseline list
        kwargs = body.get("baseline_kwargs", {})
        if not isinstance(kwargs, Mapping):
            raise ConfigurationError("request field 'baseline_kwargs' must be an object")
        if body.get("allocator") is not None or body.get("backend") is not None:
            raise ConfigurationError(
                "request fields 'allocator'/'backend' only apply to "
                "solver_kind 'proposed'"
            )
        energy_weight = float(_require_number(body, "energy_weight", 0.5))
        if not 0.0 <= energy_weight <= 1.0:
            raise ConfigurationError(
                f"request field 'energy_weight' must lie in [0, 1], got {energy_weight}"
            )
        solver_params = {
            "name": name,
            "energy_weight": energy_weight,
            "deadline_s": deadline_s,
            "kwargs": {str(key): value for key, value in kwargs.items()},
        }

    return SweepTask(
        key=("serve",),
        scenario=scenario,
        solver_kind=solver_kind,
        solver_params=solver_params,
    )
