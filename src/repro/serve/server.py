"""``repro serve`` — the long-lived allocation service (HTTP layer).

Allocation-as-a-service: instead of one-shot CLI sweeps, a
:class:`AllocationServer` keeps the allocator, the result store and a
:class:`~repro.serve.coalescer.RequestCoalescer` resident and answers
allocation requests over plain HTTP (``http.server`` + threads — no
dependencies beyond the standard library):

* ``POST /solve`` — body per :mod:`repro.serve.schema`.  The request is
  hashed with the sweep engine's ``task_hash``; a digest already in the
  result store answers immediately (a *cache hit*), a cold one goes
  through the coalescing queue, where concurrent compatible requests
  solve as one lockstep batch.  Either way the response metrics are
  bit-identical to a direct ``solve()`` of the same task, and solved
  results are written back to the store so repeats are hits.
* ``GET /metrics`` — live JSON counters (requests, cache hits, coalesced
  batch sizes, queue depth) plus the aggregated ``repro.perf`` stage
  timings of everything solved so far.
* ``GET /healthz`` — liveness (status + uptime).

The HTTP layer is deliberately thin: :class:`AllocationService` owns all
state and is directly unit-testable; the handler only parses bytes and
maps outcomes to status codes (400 malformed request, 404 unknown path,
500 solver failure, 504 solve timeout).  Shutdown is graceful — closing
the service drains the coalescing queue (resolving every waiting client)
and flushes the store, which is what the CLI's SIGINT path relies on.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import warnings
from concurrent.futures import TimeoutError as _FutureTimeoutError
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from ..core.allocator import AllocatorConfig
from ..core.subproblem2 import validate_backend
from ..exceptions import ConfigurationError
from ..experiments.runner import default_cache_dir, task_hash
from ..perf.timers import wall_clock
from ..store import ResultStore, open_store
from .coalescer import RequestCoalescer, SolveOutcome
from .schema import parse_request

__all__ = ["ServeConfig", "AllocationService", "AllocationServer"]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one allocation service instance.

    ``store_root`` / ``store_backend`` name the :mod:`repro.store` result
    store that memoises answers (the same stores ``repro run`` caches
    into, so a sweep's cache pre-warms the service and vice versa).
    ``backend`` is the default SP2 backend applied to requests that do
    not override it; it enters the task payload exactly as a sweep's
    ``--backend`` flag does, so it is part of the cache key.
    """

    host: str = "127.0.0.1"
    port: int = 8100
    store_root: str | Path | None = None
    store_backend: str | None = None
    backend: str | None = None
    batch_size: int = 8
    gather_window_s: float = 0.005
    request_timeout_s: float = 300.0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError(
                f"serve batch_size must be >= 1, got {self.batch_size}"
            )
        if self.gather_window_s < 0:
            raise ConfigurationError(
                f"serve gather window must be >= 0, got {self.gather_window_s}"
            )
        if self.request_timeout_s <= 0:
            raise ConfigurationError(
                f"serve request timeout must be positive, got {self.request_timeout_s}"
            )
        if self.backend is not None:
            validate_backend(self.backend)


class AllocationService:
    """The transport-free core: request in, ``(status, payload)`` out."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self._default_allocator = AllocatorConfig()
        if self.config.backend is not None:
            self._default_allocator = dataclasses.replace(
                self._default_allocator,
                sum_of_ratios=dataclasses.replace(
                    self._default_allocator.sum_of_ratios, backend=self.config.backend
                ),
            )
        root = (
            self.config.store_root
            if self.config.store_root is not None
            else default_cache_dir()
        )
        self.store: ResultStore | None = open_store(root, self.config.store_backend)
        #: One lock serialises every store access: request threads read
        #: concurrently with the worker thread's writes, and the backends
        #: (columnar in particular, with its lazily loaded in-memory index)
        #: make no thread-safety promises of their own.
        self._store_lock = threading.Lock()
        self._lock = threading.Lock()
        self._started = wall_clock()
        self._counters = {
            "total": 0,
            "solve": 0,
            "cache_hits": 0,
            "solved": 0,
            "errors": 0,
            "invalid": 0,
        }
        self.coalescer = RequestCoalescer(
            batch_size=self.config.batch_size,
            gather_window_s=self.config.gather_window_s,
            on_outcome=self._store_outcome,
        )
        self._closed = False

    # -- request handling ----------------------------------------------------
    def solve(self, body: Any) -> tuple[int, dict[str, Any]]:
        """Answer one ``POST /solve`` body; returns ``(status, payload)``."""
        self._count("total", "solve")
        try:
            task = parse_request(body, default_allocator=self._default_allocator)
        except ConfigurationError as exc:
            self._count("invalid")
            return 400, {"error": str(exc)}
        digest = task_hash(task)
        cached = self._lookup(digest)
        if cached is not None:
            metrics, _state = cached
            self._count("cache_hits")
            return 200, {"digest": digest, "cached": True, "metrics": metrics}
        future = self.coalescer.submit(task, digest)
        try:
            outcome: SolveOutcome = future.result(timeout=self.config.request_timeout_s)
        except (TimeoutError, _FutureTimeoutError):
            # concurrent.futures.TimeoutError only became the builtin
            # TimeoutError in Python 3.11; catch both for 3.10.
            self._count("errors")
            return 504, {
                "digest": digest,
                "error": f"solve timed out after {self.config.request_timeout_s:.0f}s",
            }
        if not outcome.ok:
            self._count("errors")
            return 500, {"digest": digest, "error": outcome.error}
        self._count("solved")
        return 200, {
            "digest": digest,
            "cached": False,
            "batch_size": outcome.batch_size,
            "metrics": outcome.metrics,
        }

    def metrics(self) -> dict[str, Any]:
        """The ``GET /metrics`` snapshot: counters, coalescing, timings."""
        with self._lock:
            counters = dict(self._counters)
        payload: dict[str, Any] = {
            "uptime_s": wall_clock() - self._started,
            "requests": counters,
            "coalescing": self.coalescer.snapshot(),
            "timings": dict(self.coalescer.timings.as_dict()),
        }
        if self.store is not None:
            payload["store"] = {
                "backend": self.store.backend,
                "root": str(self.store.root),
            }
        return payload

    def health(self) -> dict[str, Any]:
        """The ``GET /healthz`` payload."""
        return {"status": "ok", "uptime_s": wall_clock() - self._started}

    def close(self) -> None:
        """Drain the coalescing queue and flush the store (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.coalescer.close()
        if self.store is not None:
            with self._store_lock:
                self.store.flush()

    # -- internals -----------------------------------------------------------
    def _count(self, *names: str) -> None:
        with self._lock:
            for name in names:
                self._counters[name] += 1

    def _lookup(self, digest: str) -> tuple[dict[str, float], Any] | None:
        if self.store is None:
            return None
        with self._store_lock:
            return self.store.get_entry(digest)

    def _store_outcome(self, outcome: SolveOutcome) -> None:
        """Coalescer callback: persist one solved result before it resolves."""
        if self.store is None or not outcome.ok:
            return
        assert outcome.metrics is not None
        try:
            with self._store_lock:
                self.store.put(
                    outcome.digest,
                    outcome.task.payload(),
                    outcome.metrics,
                    outcome.state,
                )
        except OSError as exc:
            # Same degradation contract as the sweep runner: a computed
            # result must never be lost to a store problem — serve the
            # response and stop memoising.
            self.store = None
            warnings.warn(
                f"serve: result store disabled (cannot write): {exc}",
                RuntimeWarning,
                stacklevel=2,
            )


class _Handler(BaseHTTPRequestHandler):
    """Thin byte-level adapter between HTTP and :class:`AllocationService`."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> AllocationService:
        return self.server.service  # type: ignore[attr-defined]

    def _respond(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload, default=float).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.path != "/solve":
            self._respond(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length <= 0:
            self.service._count("total", "invalid")
            self._respond(400, {"error": "request needs a JSON body (Content-Length)"})
            return
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except ValueError:
            self.service._count("total", "invalid")
            self._respond(400, {"error": "request body is not valid JSON"})
            return
        status, payload = self.service.solve(body)
        self._respond(status, payload)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/metrics":
            self._respond(200, self.service.metrics())
        elif self.path == "/healthz":
            self._respond(200, self.service.health())
        else:
            self._respond(404, {"error": f"unknown path {self.path!r}"})

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence the default per-request stderr chatter (metrics cover it)."""


class AllocationServer:
    """A :class:`ThreadingHTTPServer` wrapped around one service instance.

    ``port=0`` binds an ephemeral port (the tests use it); the actual
    address is available as :attr:`address` once constructed.  Use
    :meth:`serve_forever` to run in the calling thread (the CLI path —
    ``KeyboardInterrupt`` falls through to a graceful :meth:`close`) or
    :meth:`start` to serve from a background thread (the test path).
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.service = AllocationService(self.config)
        self._http = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._http.daemon_threads = True
        self._http.service = self.service  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` to the real one)."""
        host, port = self._http.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Serve in the calling thread until :meth:`shutdown` (or Ctrl-C)."""
        self._http.serve_forever(poll_interval=0.1)

    def start(self) -> "AllocationServer":
        """Serve from a daemon background thread; returns ``self``."""
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop accepting, drain the coalescer, flush the store (idempotent)."""
        if self._thread is not None:
            self._http.shutdown()
            self._thread.join()
            self._thread = None
        self._http.server_close()
        self.service.close()
