"""From-scratch convex-optimization toolkit.

The paper solves its convex subproblems with CVX (MATLAB).  That package is
not available here, and every subproblem in the paper has either a
closed-form KKT solution or a one-dimensional dual, so this package
implements the required numerical machinery directly:

* :mod:`repro.solvers.bisection` — scalar and vectorised bisection root
  finding (used for the dual variable of the bandwidth constraint).
* :mod:`repro.solvers.scalar` — golden-section / ternary minimisation of
  one-dimensional convex functions, scalar and vectorised.
* :mod:`repro.solvers.projection` — Euclidean projections onto boxes, the
  probability simplex and scaled simplices.
* :mod:`repro.solvers.waterfilling` — water-filling style solvers for
  separable concave maximisation over a simplex (Subproblem 1's dual).
* :mod:`repro.solvers.lambert` — Lambert-W helpers (Theorem 2 / Appendix B).
* :mod:`repro.solvers.boxlp` — linear programs with box constraints and one
  budget constraint (problem (A.6)).
* :mod:`repro.solvers.dual_decomposition` — generic dual decomposition for
  separable convex problems coupled by a single budget constraint (numeric
  fallback / cross-check for the closed-form SP2_v2 solver).
* :mod:`repro.solvers.newton` — damped Newton-like root finding used by the
  sum-of-ratios outer loop (Algorithm 1).
* :mod:`repro.solvers.kkt` — KKT residual diagnostics used by the tests.
"""

from .bisection import bisect_scalar, bisect_vector, expand_bracket, expand_bracket_vector
from .boxlp import solve_box_budget_lp
from .dual_decomposition import minimize_separable_with_budget
from .lambert import lambert_solve_vector, lambert_w_principal, solve_x_log_x
from .newton import DampedNewtonResult, damped_newton_step
from .projection import (
    project_box,
    project_capped_simplex,
    project_simplex,
)
from .scalar import golden_section_scalar, golden_section_vector
from .waterfilling import maximize_concave_on_simplex, power_waterfilling

__all__ = [
    "bisect_scalar",
    "bisect_vector",
    "expand_bracket",
    "expand_bracket_vector",
    "solve_box_budget_lp",
    "minimize_separable_with_budget",
    "lambert_solve_vector",
    "lambert_w_principal",
    "solve_x_log_x",
    "DampedNewtonResult",
    "damped_newton_step",
    "project_box",
    "project_simplex",
    "project_capped_simplex",
    "golden_section_scalar",
    "golden_section_vector",
    "maximize_concave_on_simplex",
    "power_waterfilling",
]
