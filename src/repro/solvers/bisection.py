"""Bisection root finding, scalar and vectorised.

The solvers in :mod:`repro.core` repeatedly need the root of a monotone
scalar function (e.g. the bandwidth dual variable ``mu`` in Appendix B, or
the simplex dual variable ``eta`` in Subproblem 1's water-filling).  The
vectorised variant finds one root per device simultaneously, which keeps
Algorithm 2 fast for the paper's 50-80 device sweeps.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from ..exceptions import ConvergenceError, SolverError

__all__ = ["bisect_scalar", "bisect_vector", "expand_bracket", "expand_bracket_vector"]


def expand_bracket(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    grow: float = 4.0,
    max_expansions: int = 200,
) -> Tuple[float, float]:
    """Grow ``hi`` geometrically until ``func`` changes sign on ``[lo, hi]``.

    ``func`` is assumed monotone.  Raises :class:`SolverError` if no sign
    change is found after ``max_expansions`` expansions.
    """
    f_lo = func(lo)
    f_hi = func(hi)
    if f_lo == 0.0:
        return lo, lo
    if f_hi == 0.0:
        return hi, hi
    if np.sign(f_lo) != np.sign(f_hi):
        return lo, hi
    for _ in range(max_expansions):
        hi = lo + (hi - lo) * grow
        f_hi = func(hi)
        if f_hi == 0.0 or np.sign(f_lo) != np.sign(f_hi):
            return lo, hi
    raise SolverError(
        f"could not bracket a root: f({lo})={f_lo:.3g}, f({hi})={f_hi:.3g}"
    )


def expand_bracket_vector(
    func: Callable[[np.ndarray], np.ndarray],
    lo: np.ndarray,
    hi: np.ndarray,
    *,
    grow: float = 4.0,
    max_expansions: int = 200,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched bracket expansion: one independent monotone equation per lane.

    Grows ``hi[i]`` geometrically away from ``lo[i]`` — only in the lanes
    that have not yet found a sign change — until every lane brackets a root
    (a zero at either endpoint counts).  Already-bracketed lanes are frozen,
    so a slowly diverging lane never perturbs the others.  Raises
    :class:`SolverError` naming the first unbracketed lane if any interval
    fails to produce a sign change after ``max_expansions`` expansions.
    """
    lo = np.array(lo, dtype=float, copy=True)
    hi = np.array(hi, dtype=float, copy=True)
    if lo.shape != hi.shape:
        raise ValueError("lo and hi must have the same shape")
    f_lo = np.asarray(func(lo), dtype=float)
    f_hi = np.asarray(func(hi), dtype=float)
    open_lanes = (np.sign(f_lo) == np.sign(f_hi)) & (f_lo != 0.0) & (f_hi != 0.0)
    for _ in range(max_expansions):
        if not np.any(open_lanes):
            return lo, hi
        hi = np.where(open_lanes, lo + (hi - lo) * grow, hi)
        f_hi = np.where(open_lanes, np.asarray(func(hi), dtype=float), f_hi)
        open_lanes &= (np.sign(f_lo) == np.sign(f_hi)) & (f_hi != 0.0)
    if not np.any(open_lanes):
        return lo, hi
    idx = int(np.flatnonzero(open_lanes)[0])
    raise SolverError(
        f"could not bracket a root in lane {idx}: "
        f"f({lo[idx]:.6g})={f_lo[idx]:.3g}, f({hi[idx]:.6g})={f_hi[idx]:.3g}"
    )


def bisect_scalar(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """Find a root of a monotone scalar function on ``[lo, hi]`` by bisection.

    The function values at the endpoints must have opposite signs (a zero at
    an endpoint is also accepted).  The returned point ``x`` satisfies
    ``hi - lo <= tol * max(1, |x|)`` or ``func(x) == 0``; exhausting
    ``max_iter`` without meeting the tolerance raises
    :class:`~repro.exceptions.ConvergenceError` instead of silently returning
    the midpoint of a still-too-wide interval.
    """
    f_lo = func(lo)
    f_hi = func(hi)
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:
        return hi
    if np.sign(f_lo) == np.sign(f_hi):
        raise SolverError(
            "bisect_scalar requires a sign change: "
            f"f({lo})={f_lo:.3g}, f({hi})={f_hi:.3g}"
        )
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        f_mid = func(mid)
        if f_mid == 0.0:
            return mid
        if np.sign(f_mid) == np.sign(f_lo):
            lo, f_lo = mid, f_mid
        else:
            hi, f_hi = mid, f_mid
        if hi - lo <= tol * max(1.0, abs(mid)):
            return 0.5 * (lo + hi)
    raise ConvergenceError(
        f"bisect_scalar did not converge in {max_iter} iterations: the "
        f"bracket [{lo:.6g}, {hi:.6g}] is still wider than tol={tol:.3g}"
    )


def bisect_vector(
    func: Callable[[np.ndarray], np.ndarray],
    lo: np.ndarray,
    hi: np.ndarray,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> np.ndarray:
    """Element-wise bisection for a vector of independent monotone equations.

    ``func`` maps an array of candidate points (one per equation) to the
    array of residuals.  Each ``[lo[i], hi[i]]`` interval must bracket a sign
    change of residual ``i``.  Lanes converge independently: a lane whose
    bracket meets its tolerance is frozen at its midpoint (active-mask early
    exit), so the iteration count is set by the slowest lane while converged
    lanes stop being refined.  Exhausting ``max_iter`` with any lane still
    wider than its tolerance raises
    :class:`~repro.exceptions.ConvergenceError`.
    """
    lo = np.array(lo, dtype=float, copy=True)
    hi = np.array(hi, dtype=float, copy=True)
    if lo.shape != hi.shape:
        raise ValueError("lo and hi must have the same shape")
    f_lo = np.asarray(func(lo), dtype=float)
    f_hi = np.asarray(func(hi), dtype=float)
    bad = (np.sign(f_lo) == np.sign(f_hi)) & (f_lo != 0.0) & (f_hi != 0.0)
    if np.any(bad):
        idx = int(np.flatnonzero(bad)[0])
        raise SolverError(
            "bisect_vector requires a sign change in every interval; "
            f"index {idx} has f(lo)={f_lo[idx]:.3g}, f(hi)={f_hi[idx]:.3g}"
        )
    mid = 0.5 * (lo + hi)
    active = hi - lo > tol * np.maximum(1.0, np.abs(mid))
    for _ in range(max_iter):
        if not np.any(active):
            return mid
        f_mid = np.asarray(func(mid), dtype=float)
        go_left = active & (np.sign(f_mid) == np.sign(f_lo))
        go_right = active & ~go_left
        lo = np.where(go_left, mid, lo)
        f_lo = np.where(go_left, f_mid, f_lo)
        hi = np.where(go_right, mid, hi)
        new_mid = 0.5 * (lo + hi)
        # Converged lanes keep their last midpoint; only active lanes move.
        mid = np.where(active, new_mid, mid)
        active &= hi - lo > tol * np.maximum(1.0, np.abs(mid))
    if not np.any(active):
        return mid
    idx = int(np.flatnonzero(active)[0])
    raise ConvergenceError(
        f"bisect_vector did not converge in {max_iter} iterations: interval "
        f"{idx} is still [{lo[idx]:.6g}, {hi[idx]:.6g}] against tol={tol:.3g}"
    )
