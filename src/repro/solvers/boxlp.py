"""Linear program with box constraints and a single budget constraint.

Problem (A.6) of the paper — after the Lambert-W step has fixed the SNR of
every device whose rate constraint is inactive — reduces to

    minimize    sum_n  c_n * x_n
    subject to  lo_n <= x_n <= hi_n            (from the power box)
                sum_n x_n <= budget            (remaining bandwidth)

This is solved exactly by a greedy argument: start every variable at its
lower bound, then spend the remaining budget on the variables with the most
negative cost coefficient first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InfeasibleProblemError

__all__ = ["BoxBudgetLPResult", "solve_box_budget_lp"]


@dataclass(frozen=True)
class BoxBudgetLPResult:
    """Solution of a box-constrained budget LP."""

    x: np.ndarray
    objective: float
    budget_used: float
    budget_slack: float


def solve_box_budget_lp(
    costs: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    budget: float,
    *,
    atol: float = 1e-9,
) -> BoxBudgetLPResult:
    """Solve ``min c.x  s.t.  lower <= x <= upper,  sum(x) <= budget``.

    Raises :class:`InfeasibleProblemError` when ``sum(lower) > budget`` (the
    lower bounds alone exceed the budget) or any ``lower > upper``.
    """
    c = np.asarray(costs, dtype=float)
    lo = np.asarray(lower, dtype=float)
    hi = np.asarray(upper, dtype=float)
    if not (c.shape == lo.shape == hi.shape):
        raise ValueError("costs, lower and upper must have identical shapes")
    if np.any(lo > hi + atol):
        raise InfeasibleProblemError("box LP has lower > upper for some variable")
    hi = np.maximum(hi, lo)
    if lo.sum() > budget + atol:
        raise InfeasibleProblemError(
            f"box LP lower bounds sum to {lo.sum():.6g} > budget {budget:.6g}"
        )

    x = lo.copy()
    remaining = budget - lo.sum()
    # Only variables with negative cost want more than their lower bound.
    order = np.argsort(c)
    for idx in order:
        if c[idx] >= 0.0 or remaining <= atol:
            break
        room = hi[idx] - x[idx]
        grant = min(room, remaining)
        x[idx] += grant
        remaining -= grant

    used = float(x.sum())
    return BoxBudgetLPResult(
        x=x,
        objective=float(c @ x),
        budget_used=used,
        budget_slack=float(budget - used),
    )
