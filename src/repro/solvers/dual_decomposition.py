"""Dual decomposition for separable convex problems with one budget constraint.

This is the numeric fallback / cross-check solver for SP2_v2.  The problem

    minimize    sum_n h_n(x_n)
    subject to  lo_n <= x_n <= hi_n,     sum_n x_n <= budget

with each ``h_n`` convex is solved through its partial Lagrangian
``sum_n [h_n(x_n) + mu x_n] - mu * budget``: for a fixed multiplier
``mu >= 0`` the inner problem separates into independent one-dimensional
convex minimisations (solved by the vectorised golden section), and the
outer problem bisects ``mu`` so that the budget holds with complementary
slackness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..exceptions import ConvergenceError, SolverError
from .scalar import golden_section_vector

__all__ = ["DualDecompositionResult", "minimize_separable_with_budget"]


@dataclass(frozen=True)
class DualDecompositionResult:
    """Solution returned by :func:`minimize_separable_with_budget`."""

    x: np.ndarray
    multiplier: float
    objective: float
    budget_used: float
    iterations: int


def minimize_separable_with_budget(
    objective: Callable[[np.ndarray], np.ndarray],
    lower: np.ndarray,
    upper: np.ndarray,
    budget: float,
    *,
    mu_max: float = 1e12,
    tol: float = 1e-10,
    max_iter: int = 200,
    inner_tol: float = 1e-11,
) -> DualDecompositionResult:
    """Minimise ``sum objective(x)`` subject to a box and a sum budget.

    ``objective`` maps an array ``x`` (one entry per component) to the array
    of per-component objective values; each component must be convex in its
    own variable.  ``lower.sum()`` must not exceed ``budget``.

    Raises :class:`~repro.exceptions.SolverError` when even the largest
    multiplier ``mu_max`` cannot push the inner solution under the budget
    (the bisection would otherwise run on an unbracketed interval and return
    a budget-violating allocation).
    """
    lo = np.asarray(lower, dtype=float).copy()
    hi = np.asarray(upper, dtype=float)
    if lo.shape != hi.shape:
        raise ValueError("lower and upper must have identical shapes")
    if np.any(lo > hi):
        raise ValueError("lower must not exceed upper")
    if lo.sum() > budget * (1.0 + 1e-6):
        raise ValueError(
            f"lower bounds sum to {lo.sum():.6g}, exceeding the budget {budget:.6g}"
        )
    if lo.sum() > budget:
        # Round-off: the lower bounds fill the budget exactly; shrink them
        # marginally so the box stays non-empty.
        lo *= budget / lo.sum()

    def solve_inner(mu: float) -> np.ndarray:
        x, _ = golden_section_vector(
            lambda x: np.asarray(objective(x), dtype=float) + mu * x,
            lo,
            hi,
            tol=inner_tol,
        )
        return x

    iterations = 0
    x0 = solve_inner(0.0)
    if x0.sum() <= budget + 1e-9:
        obj0 = float(np.sum(objective(x0)))
        return DualDecompositionResult(
            x=x0, multiplier=0.0, objective=obj0, budget_used=float(x0.sum()), iterations=1
        )

    mu_lo, mu_hi = 0.0, 1.0
    x_hi = solve_inner(mu_hi)
    while x_hi.sum() > budget and mu_hi < mu_max:
        mu_hi *= 4.0
        iterations += 1
        x_hi = solve_inner(mu_hi)
    if x_hi.sum() > budget * (1.0 + 1e-9) + 1e-12:
        # The expansion hit mu_max without bracketing the budget: bisecting
        # on [mu_lo, mu_hi] would converge to a budget-violating point.
        # (An overshoot within the inner solver's round-off is not a
        # violation — the bisection handles that exactly as before.)
        raise SolverError(
            f"budget multiplier could not be bracketed: at mu={mu_hi:.3g} "
            f"(mu_max={mu_max:.3g}) the inner solution still uses "
            f"{x_hi.sum():.6g} of budget {budget:.6g}"
        )
    x = x0
    for _ in range(max_iter):
        iterations += 1
        mu_mid = 0.5 * (mu_lo + mu_hi)
        x = solve_inner(mu_mid)
        if x.sum() > budget:
            mu_lo = mu_mid
        else:
            mu_hi = mu_mid
        if mu_hi - mu_lo <= tol * max(1.0, mu_mid):
            break
    else:
        raise ConvergenceError(
            f"budget-multiplier bisection did not converge in {max_iter} "
            f"steps: bracket [{mu_lo:.6g}, {mu_hi:.6g}] is still wider "
            f"than tol={tol:.3g}"
        )
    mu = mu_hi
    x = solve_inner(mu)
    # If the budget is not exhausted but the multiplier is positive, spread
    # the remaining slack where it reduces the objective (rarely needed, the
    # bisection already lands within tolerance).
    return DualDecompositionResult(
        x=x,
        multiplier=float(mu),
        objective=float(np.sum(objective(x))),
        budget_used=float(x.sum()),
        iterations=iterations,
    )
