"""KKT residual diagnostics.

The closed-form solvers in :mod:`repro.core` are derived from KKT
conditions; these helpers quantify how well a candidate solution satisfies
stationarity, primal feasibility and complementary slackness, so the tests
can assert optimality without an external convex solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KKTReport", "box_constraint_violation", "budget_violation", "complementary_slackness"]


@dataclass(frozen=True)
class KKTReport:
    """Aggregated constraint-violation summary for a candidate solution."""

    max_box_violation: float
    budget_violation: float
    max_inequality_violation: float

    @property
    def is_feasible(self) -> bool:
        """Whether all violations are within a 1e-6 relative tolerance."""
        return (
            self.max_box_violation <= 1e-6
            and self.budget_violation <= 1e-6
            and self.max_inequality_violation <= 1e-6
        )


def box_constraint_violation(
    x: np.ndarray, lower: np.ndarray | float, upper: np.ndarray | float
) -> float:
    """Worst relative violation of ``lower <= x <= upper``."""
    x_arr = np.asarray(x, dtype=float)
    lo = np.broadcast_to(np.asarray(lower, dtype=float), x_arr.shape)
    hi = np.broadcast_to(np.asarray(upper, dtype=float), x_arr.shape)
    scale = np.maximum(1.0, np.maximum(np.abs(lo), np.abs(hi)))
    below = np.maximum(lo - x_arr, 0.0) / scale
    above = np.maximum(x_arr - hi, 0.0) / scale
    return float(np.max(np.maximum(below, above), initial=0.0))


def budget_violation(x: np.ndarray, budget: float) -> float:
    """Relative violation of ``sum(x) <= budget``."""
    total = float(np.sum(np.asarray(x, dtype=float)))
    return max(0.0, (total - budget) / max(1.0, abs(budget)))


def complementary_slackness(multiplier: np.ndarray | float, slack: np.ndarray | float) -> float:
    """Magnitude of ``multiplier * slack`` (should vanish at optimality)."""
    m = np.asarray(multiplier, dtype=float)
    s = np.asarray(slack, dtype=float)
    return float(np.max(np.abs(m * s), initial=0.0))
