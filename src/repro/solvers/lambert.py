"""Lambert-W helpers used by the Appendix-B closed forms.

Theorem 2 / Appendix B of the paper express the KKT solution of SP2_v2 in
terms of the principal branch of the Lambert-W function: the per-device
SNR factor ``x = 1 + p g / (N0 B)`` satisfies

    x * ln(x) - x + 1 = mu / j,        j = nu * d * N0 / g,   mu >= 0,

whose solution is ``x = (mu - j) / (j * W0((mu - j) / (e * j)))`` for
``mu != j`` and ``x = e`` for ``mu = j``.  This module provides a robust
vectorised evaluation of that root: it uses :func:`scipy.special.lambertw`
when the argument is in the principal branch's domain and a guarded Newton
iteration on ``x ln x - x + 1 = rhs`` otherwise (also used as a cross-check
in the tests).
"""

from __future__ import annotations

import numpy as np
from scipy import special

from ..exceptions import ConvergenceError

#: Residual floor of the Newton exhaustion check, in units of machine
#: epsilon: near ``x = 1`` the map ``x ln x - x + 1`` cancels
#: catastrophically, so the *step* tolerance can be unattainable (iterates
#: jitter by ~1e-13 at residuals that already sit at round-off).  A lane
#: counts as converged when its residual is within this many eps of the
#: expression's magnitude — only larger residuals are genuine failures.
_RESIDUAL_FLOOR_EPS = 64.0


def _check_lambert_residual(
    x: np.ndarray, rhs: np.ndarray, max_iter: int, name: str
) -> None:
    """Raise :class:`ConvergenceError` if a finite lane's residual is large.

    Called only when the Newton loop exhausted ``max_iter`` without meeting
    the step tolerance.  Non-finite right-hand sides are ignored (they are
    masked out of the result by the callers' contract), and lanes whose
    residual ``|x ln x - x + 1 - rhs|`` sits at the round-off floor are
    converged in every sense that matters — the step criterion was simply
    unattainable at that conditioning.
    """
    residual = np.abs(x * np.log(x) - x + 1.0 - rhs)
    floor = _RESIDUAL_FLOOR_EPS * np.finfo(float).eps * np.maximum(1.0, np.abs(rhs))
    stalled = np.isfinite(rhs) & (residual > floor)
    if np.any(stalled):
        raise ConvergenceError(
            f"{name} did not converge in {max_iter} Newton iterations for "
            f"{int(np.sum(stalled))} lane(s); max residual "
            f"{float(np.max(residual[stalled])):.3g}"
        )

__all__ = [
    "lambert_w_principal",
    "solve_x_log_x",
    "solve_x_log_x_rows",
    "lambert_solve_vector",
    "lambert_solve_rows",
]


def lambert_w_principal(z: np.ndarray | float) -> np.ndarray:
    """Principal branch ``W0(z)`` for real ``z >= -1/e``, returned as float.

    Values marginally below ``-1/e`` (from round-off) are clamped to the
    branch point, where ``W0 = -1``.
    """
    z_arr = np.asarray(z, dtype=float)
    clamped = np.maximum(z_arr, -1.0 / np.e)
    w = np.real(special.lambertw(clamped, k=0))
    # Exactly at (or within round-off of) the branch point scipy can return
    # NaN; the limit value there is -1.
    return np.where(np.isnan(w), -1.0, w)


def solve_x_log_x(
    rhs: np.ndarray | float,
    *,
    tol: float = 1e-14,
    max_iter: int = 100,
    x0: np.ndarray | None = None,
) -> np.ndarray:
    """Solve ``x * ln(x) - x + 1 = rhs`` for ``x >= 1`` given ``rhs >= 0``.

    The left-hand side is zero at ``x = 1`` and strictly increasing for
    ``x > 1`` (its derivative is ``ln x``), so the root is unique.  A damped
    Newton iteration with a multiplicative update keeps the iterate above 1.

    ``x0`` optionally warm-starts the iteration (e.g. with the root for a
    nearby ``rhs``): the root is unique, so a warm start changes the
    iteration count, not the answer.  An unusable ``x0`` (wrong shape,
    non-finite entries) is ignored.
    """
    rhs_arr = np.asarray(rhs, dtype=float)
    if np.any(rhs_arr < -1e-12):
        raise ValueError("rhs must be non-negative")
    rhs_arr = np.maximum(rhs_arr, 0.0)

    # Initial guess: for small rhs, x ~ 1 + sqrt(2 rhs); for large rhs,
    # x ~ rhs / ln(rhs).  Blend the two.
    small = 1.0 + np.sqrt(2.0 * rhs_arr)
    with np.errstate(divide="ignore", invalid="ignore"):
        large = np.where(rhs_arr > np.e, rhs_arr / np.maximum(np.log(rhs_arr), 1.0), small)
    x = np.where(rhs_arr > np.e, large, small)
    if x0 is not None:
        seed = np.asarray(x0, dtype=float)
        if seed.shape == rhs_arr.shape and np.all(np.isfinite(seed)) and np.all(seed >= 1.0):
            x = seed.copy()
    x = np.maximum(x, 1.0 + 1e-15)

    for _ in range(max_iter):  # repro-lint: disable=RL002 -- exhaustion raises via _check_lambert_residual
        log_x = np.log(x)
        f = x * log_x - x + 1.0 - rhs_arr
        # Guard the derivative away from 0 near x = 1.
        df = np.maximum(log_x, 1e-12)
        step = f / df
        x_new = np.maximum(x - step, 0.5 * (x + 1.0))
        if np.all(np.abs(x_new - x) <= tol * np.maximum(1.0, np.abs(x_new))):
            x = x_new
            break
        x = x_new
    else:
        _check_lambert_residual(x, rhs_arr, max_iter, "lambert_solve")
    return np.where(rhs_arr == 0.0, 1.0, x)


def lambert_solve_vector(
    rhs: np.ndarray | float,
    *,
    tol: float = 1e-14,
    max_iter: int = 60,
    x0: np.ndarray | None = None,
) -> np.ndarray:
    """Batched solve of ``x * ln(x) - x + 1 = rhs`` for arrays of any shape.

    This is the vector backend's workhorse: where :func:`solve_x_log_x` is
    tuned for the scalar solver's one-probe-at-a-time call pattern (and kept
    float-for-float stable as the reference oracle), this variant accepts an
    arbitrarily shaped batch — e.g. a ``(num_probes, num_devices)`` grid of
    right-hand sides from a batched multiplier scan — and runs one guarded
    Newton iteration over the whole array at once.

    The seed is third-order accurate on both asymptotic branches
    (``x = 1 + sqrt(2 c) + c/3`` for small ``c``; ``x ~ c / ln c`` corrected
    by ``ln ln c / ln c`` for large ``c``), so the iteration converges in a
    handful of steps.  ``x0`` optionally replaces the seed (e.g. the root
    for a nearby batch); it must match ``rhs``'s shape, be finite and
    ``>= 1``, or it is ignored.  The root is unique, so a seed changes the
    iteration count, not the answer.
    """
    c = np.asarray(rhs, dtype=float)
    if np.any(c < -1e-12):
        raise ValueError("rhs must be non-negative")
    c = np.maximum(c, 0.0)

    small = 1.0 + np.sqrt(2.0 * c) + c / 3.0
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.log(np.maximum(c, np.e))
        large = c / t * (1.0 + np.log(t) / t)
    x = np.where(c > np.e, np.maximum(large, 1.0 + 1e-12), small)
    if x0 is not None:
        seed = np.asarray(x0, dtype=float)
        if seed.shape == c.shape:
            usable = np.isfinite(seed) & (seed >= 1.0)
            x = np.where(usable, seed, x)
    x = np.maximum(x, 1.0 + 1e-15)

    for _ in range(max_iter):  # repro-lint: disable=RL002 -- exhaustion raises via _check_lambert_residual
        log_x = np.log(x)
        f = x * log_x - x + 1.0 - c
        df = np.maximum(log_x, 1e-12)
        x_new = np.maximum(x - f / df, 0.5 * (x + 1.0))
        if np.all(np.abs(x_new - x) <= tol * np.maximum(1.0, np.abs(x_new))):
            x = x_new
            break
        x = x_new
    else:
        _check_lambert_residual(x, c, max_iter, "lambert_solve_vector")
    return np.where(c == 0.0, 1.0, x)


def _newton_rows(
    x: np.ndarray, rhs: np.ndarray, tol: float, max_iter: int, name: str
) -> np.ndarray:
    """Shared per-row Newton loop of the ``*_rows`` kernels.

    Each row iterates until *its own* step criterion holds over that row's
    elements, then freezes; a frozen row's values are never touched again.
    Because a 1-D call's global ``np.all`` stop *is* the row's stop, every
    row of the result is bitwise equal to a stand-alone 1-D solve of that
    row — which is what makes the batched multiplier search's masked-lane
    isolation exact rather than approximate.
    """
    active = np.ones(x.shape[0], dtype=bool)
    all_active = True  # rows converge at similar depths: skip the gather/
    # scatter indexing while every row is still live (the common phase)
    for _ in range(max_iter):  # repro-lint: disable=RL002 -- exhaustion raises via _check_lambert_residual
        if all_active:
            xa, ra = x, rhs
        else:
            idx = np.flatnonzero(active)
            if idx.size == 0:
                break
            xa, ra = x[idx], rhs[idx]
        log_x = np.log(xa)
        f = xa * log_x - xa + 1.0 - ra
        df = np.maximum(log_x, 1e-12)
        x_new = np.maximum(xa - f / df, 0.5 * (xa + 1.0))
        done = np.all(
            np.abs(x_new - xa) <= tol * np.maximum(1.0, np.abs(x_new)), axis=1
        )
        if all_active:
            x = x_new
            if done.any():
                active = ~done
                all_active = False
        else:
            x[idx] = x_new
            active[idx[done]] = False
        if not active.any():
            break
    if np.any(active):
        _check_lambert_residual(x[active], rhs[active], max_iter, name)
    return np.where(rhs == 0.0, 1.0, x)


def solve_x_log_x_rows(
    rhs: np.ndarray,
    *,
    tol: float = 1e-14,
    max_iter: int = 100,
    x0: np.ndarray | None = None,
) -> np.ndarray:
    """Per-row variant of :func:`solve_x_log_x` for a ``(lanes, n)`` batch.

    Seeds and Newton updates are the same float-for-float expressions as the
    1-D kernel; only the stopping rule changes, from one global ``np.all``
    to an independent per-row test (see :func:`_newton_rows`).  Row ``i`` of
    the result is therefore bitwise equal to ``solve_x_log_x(rhs[i])``, and
    no row's iterates depend on any other row — the property the batched
    root polish relies on for exact per-drop parity.

    ``x0``, when given, must match ``rhs``'s shape; a row's seed is used
    only if that whole row is finite and ``>= 1`` (the 1-D kernel's
    all-or-nothing acceptance, applied per row).
    """
    rhs_arr = np.asarray(rhs, dtype=float)
    if rhs_arr.ndim != 2:
        raise ValueError("solve_x_log_x_rows expects a (lanes, n) array")
    if np.any(rhs_arr < -1e-12):
        raise ValueError("rhs must be non-negative")
    rhs_arr = np.maximum(rhs_arr, 0.0)

    small = 1.0 + np.sqrt(2.0 * rhs_arr)
    with np.errstate(divide="ignore", invalid="ignore"):
        large = np.where(
            rhs_arr > np.e, rhs_arr / np.maximum(np.log(rhs_arr), 1.0), small
        )
    x = np.where(rhs_arr > np.e, large, small)
    if x0 is not None:
        seed = np.asarray(x0, dtype=float)
        if seed.shape == rhs_arr.shape:
            usable = np.all(np.isfinite(seed) & (seed >= 1.0), axis=1)
            x[usable] = seed[usable]
    x = np.maximum(x, 1.0 + 1e-15)
    return _newton_rows(x, rhs_arr, tol, max_iter, "solve_x_log_x_rows")


def lambert_solve_rows(
    rhs: np.ndarray,
    *,
    tol: float = 1e-14,
    max_iter: int = 60,
    x0: np.ndarray | None = None,
) -> np.ndarray:
    """Per-row variant of :func:`lambert_solve_vector` for ``(lanes, n)``.

    Same third-order seeds and guarded Newton update as the any-shape
    kernel, but each row stops on its own criterion (see
    :func:`_newton_rows`): row ``i`` equals ``lambert_solve_vector(rhs[i])``
    bitwise and is unaffected by its neighbours.  This is the evaluation
    kernel of the batched multiplier search, where one lane per row probes
    its own candidate against its own ``(n,)`` problem data.

    ``x0`` is accepted element-wise within rows (matching the any-shape
    kernel's per-element acceptance) — seeds only change iteration counts,
    never the root.
    """
    c = np.asarray(rhs, dtype=float)
    if c.ndim != 2:
        raise ValueError("lambert_solve_rows expects a (lanes, n) array")
    if np.any(c < -1e-12):
        raise ValueError("rhs must be non-negative")
    c = np.maximum(c, 0.0)

    small = 1.0 + np.sqrt(2.0 * c) + c / 3.0
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.log(np.maximum(c, np.e))
        large = c / t * (1.0 + np.log(t) / t)
    x = np.where(c > np.e, np.maximum(large, 1.0 + 1e-12), small)
    if x0 is not None:
        seed = np.asarray(x0, dtype=float)
        if seed.shape == c.shape:
            usable = np.isfinite(seed) & (seed >= 1.0)
            x = np.where(usable, seed, x)
    x = np.maximum(x, 1.0 + 1e-15)
    return _newton_rows(x, c, tol, max_iter, "lambert_solve_rows")
