"""Damped Newton-like updates for the sum-of-ratios outer loop (Algorithm 1).

Jong's modified-Newton method updates the auxiliary variables
``alpha = (beta, nu)`` of the parametric subtractive problem by the damped
step (29)-(31) of the paper:

    sigma   = -J(alpha)^-1 phi(alpha)
    alpha'  = alpha + xi^j sigma,

where ``j`` is the smallest non-negative integer with

    |phi(alpha + xi^j sigma)| <= (1 - eps * xi^j) |phi(alpha)|.

Because the Jacobian of ``phi`` is diagonal (``diag(G_n)`` for both halves),
the full Newton step simply resets ``beta_n`` to ``p_n d_n / G_n`` and
``nu_n`` to ``w1 R_g / G_n``; the damping interpolates between the current
value and that target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["DampedNewtonResult", "damped_newton_step"]


@dataclass(frozen=True)
class DampedNewtonResult:
    """Outcome of one damped Newton-like update."""

    alpha: np.ndarray
    residual_norm: float
    step_exponent: int
    step_size: float
    accepted: bool


def damped_newton_step(
    alpha: np.ndarray,
    residual: Callable[[np.ndarray], np.ndarray],
    newton_direction: np.ndarray,
    *,
    xi: float = 0.5,
    eps: float = 0.01,
    max_backtracks: int = 30,
) -> DampedNewtonResult:
    """Perform one damped Newton update with the Armijo-like rule (29).

    Parameters
    ----------
    alpha:
        Current iterate of the auxiliary variables.
    residual:
        Function returning ``phi(alpha)`` as an array.
    newton_direction:
        The full Newton step ``sigma = -J^-1 phi(alpha)`` (already computed
        by the caller, who knows the diagonal Jacobian).
    xi, eps:
        Damping base and sufficient-decrease constant, both in ``(0, 1)``.
    max_backtracks:
        Maximum exponent ``j`` tried before accepting the smallest step.
    """
    if not 0.0 < xi < 1.0:
        raise ValueError(f"xi must be in (0, 1), got {xi}")
    if not 0.0 < eps < 1.0:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    alpha = np.asarray(alpha, dtype=float)
    direction = np.asarray(newton_direction, dtype=float)
    base_norm = float(np.linalg.norm(residual(alpha)))
    if base_norm == 0.0:
        return DampedNewtonResult(
            alpha=alpha, residual_norm=0.0, step_exponent=0, step_size=1.0, accepted=True
        )
    # A bounded line search *is* the fallback: exhaustion takes the smallest
    # step and reports it via accepted=False, which the caller's damping
    # logic (condition (29)) handles — not a silent convergence miss.
    for j in range(max_backtracks + 1):  # repro-lint: disable=RL002 -- exhaustion is recorded in DampedNewtonResult.accepted
        step = xi**j
        candidate = alpha + step * direction
        norm = float(np.linalg.norm(residual(candidate)))
        if norm <= (1.0 - eps * step) * base_norm:
            return DampedNewtonResult(
                alpha=candidate,
                residual_norm=norm,
                step_exponent=j,
                step_size=step,
                accepted=True,
            )
    # No step satisfied the decrease condition; take the smallest step anyway
    # so the outer loop can still make progress (matches the behaviour of a
    # bounded line search).
    step = xi**max_backtracks
    candidate = alpha + step * direction
    return DampedNewtonResult(
        alpha=candidate,
        residual_norm=float(np.linalg.norm(residual(candidate))),
        step_exponent=max_backtracks,
        step_size=step,
        accepted=False,
    )
