"""Euclidean projections onto simple convex sets.

Used by the projected-gradient fallback solvers and by the tests that check
feasibility of solutions produced by the closed-form KKT solvers.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConvergenceError

__all__ = ["project_box", "project_simplex", "project_capped_simplex"]


def project_box(x: np.ndarray, lo: np.ndarray | float, hi: np.ndarray | float) -> np.ndarray:
    """Project ``x`` onto the box ``[lo, hi]`` element-wise."""
    return np.minimum(np.maximum(np.asarray(x, dtype=float), lo), hi)


def project_simplex(x: np.ndarray, total: float = 1.0) -> np.ndarray:
    """Project ``x`` onto the scaled simplex ``{y >= 0, sum(y) = total}``.

    Uses the sorting algorithm of Held, Wolfe and Crowder (also popularised
    by Duchi et al.), which runs in ``O(n log n)``.
    """
    if total <= 0.0:
        raise ValueError(f"simplex total must be positive, got {total}")
    v = np.asarray(x, dtype=float)
    n = v.size
    u = np.sort(v)[::-1]
    css = np.cumsum(u) - total
    ind = np.arange(1, n + 1)
    cond = u - css / ind > 0
    if not np.any(cond):
        # Degenerate input (e.g. all -inf); spread the mass uniformly.
        return np.full_like(v, total / n)
    rho = int(np.flatnonzero(cond)[-1])
    theta = css[rho] / (rho + 1.0)
    return np.maximum(v - theta, 0.0)


def project_capped_simplex(
    x: np.ndarray,
    lo: np.ndarray | float,
    hi: np.ndarray | float,
    total: float,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> np.ndarray:
    """Project onto ``{lo <= y <= hi, sum(y) = total}`` (a capped simplex).

    Solved by bisecting the shift ``theta`` in ``y = clip(x - theta, lo, hi)``
    so that the sum matches ``total``.  Raises :class:`ValueError` if the box
    cannot hold ``total``.
    """
    v = np.asarray(x, dtype=float)
    lo_arr = np.broadcast_to(np.asarray(lo, dtype=float), v.shape).copy()
    hi_arr = np.broadcast_to(np.asarray(hi, dtype=float), v.shape).copy()
    if np.any(lo_arr > hi_arr):
        raise ValueError("capped simplex requires lo <= hi element-wise")
    if total < lo_arr.sum() - 1e-9 or total > hi_arr.sum() + 1e-9:
        raise ValueError(
            f"total {total} outside achievable range "
            f"[{lo_arr.sum()}, {hi_arr.sum()}]"
        )

    def shifted_sum(theta: float) -> float:
        return float(np.clip(v - theta, lo_arr, hi_arr).sum()) - total

    theta_lo = float(np.min(v - hi_arr)) - 1.0
    theta_hi = float(np.max(v - lo_arr)) + 1.0
    for _ in range(max_iter):
        mid = 0.5 * (theta_lo + theta_hi)
        if shifted_sum(mid) > 0.0:
            theta_lo = mid
        else:
            theta_hi = mid
        if theta_hi - theta_lo <= tol * max(1.0, abs(mid)):
            break
    else:
        raise ConvergenceError(
            f"capped-simplex projection did not converge in {max_iter} "
            f"bisection steps: shift bracket [{theta_lo:.6g}, {theta_hi:.6g}] "
            f"is still wider than tol={tol:.3g}"
        )
    theta = 0.5 * (theta_lo + theta_hi)
    return np.clip(v - theta, lo_arr, hi_arr)
