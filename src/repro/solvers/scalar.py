"""Golden-section minimisation of one-dimensional convex functions.

Two flavours are provided:

* :func:`golden_section_scalar` minimises a scalar convex function on an
  interval (used for the primal solution of Subproblem 1 over the round
  deadline ``T``).
* :func:`golden_section_vector` minimises many independent one-dimensional
  convex functions simultaneously, each on its own interval, by evaluating a
  vectorised objective (used by the dual-decomposition fallback solver for
  SP2_v2, one sub-minimisation per device).
* :func:`golden_section_rows` is the lockstep batch twin of
  :func:`golden_section_scalar`: one independent minimisation per lane,
  replicating the scalar variant's bracket updates float-for-float so each
  lane's result is bitwise equal to a stand-alone scalar call (used by the
  batched Subproblem-1 pass of the multi-solve allocator path).
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from ..exceptions import ConvergenceError

__all__ = [
    "golden_section_scalar",
    "golden_section_vector",
    "golden_section_rows",
]

_INV_PHI = (np.sqrt(5.0) - 1.0) / 2.0  # 1 / golden ratio ~ 0.618
_INV_PHI_SQ = (3.0 - np.sqrt(5.0)) / 2.0  # 1 / golden ratio squared ~ 0.382


def golden_section_scalar(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> Tuple[float, float]:
    """Minimise a unimodal (convex) scalar function on ``[lo, hi]``.

    Returns ``(x_min, f(x_min))``.
    """
    if hi < lo:
        lo, hi = hi, lo
    if hi == lo:
        return lo, func(lo)
    a, b = lo, hi
    h = b - a
    c = a + _INV_PHI_SQ * h
    d = a + _INV_PHI * h
    fc = func(c)
    fd = func(d)
    for _ in range(max_iter):
        if h <= tol * max(1.0, abs(a) + abs(b)):
            break
        if fc < fd:
            b, d, fd = d, c, fc
            h = b - a
            c = a + _INV_PHI_SQ * h
            fc = func(c)
        else:
            a, c, fc = c, d, fd
            h = b - a
            d = a + _INV_PHI * h
            fd = func(d)
    else:
        # The interval check sits at the top of the loop, so re-test the
        # final width before declaring exhaustion a failure.
        if h > tol * max(1.0, abs(a) + abs(b)):
            raise ConvergenceError(
                f"golden_section_scalar did not converge in {max_iter} "
                f"iterations: interval width {h:.6g} > tol={tol:.3g}"
            )
    if fc < fd:
        return c, fc
    return d, fd


def golden_section_vector(
    func: Callable[[np.ndarray], np.ndarray],
    lo: np.ndarray,
    hi: np.ndarray,
    *,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> Tuple[np.ndarray, np.ndarray]:
    """Minimise independent unimodal functions, one per array element.

    ``func`` maps an array of candidate points to the array of objective
    values (element ``i`` only depends on candidate ``i``).  Returns arrays
    ``(x_min, f(x_min))``.
    """
    a = np.array(lo, dtype=float, copy=True)
    b = np.array(hi, dtype=float, copy=True)
    if a.shape != b.shape:
        raise ValueError("lo and hi must have the same shape")
    swap = b < a
    a[swap], b[swap] = b[swap], a[swap]

    h = b - a
    c = a + _INV_PHI_SQ * h
    d = a + _INV_PHI * h
    fc = np.asarray(func(c), dtype=float)
    fd = np.asarray(func(d), dtype=float)
    for _ in range(max_iter):
        if np.all(h <= tol * np.maximum(1.0, np.abs(a) + np.abs(b))):
            break
        left = fc < fd
        # Shrink towards the left on ``left`` entries, to the right elsewhere.
        b = np.where(left, d, b)
        a = np.where(left, a, c)
        h = b - a
        new_c = a + _INV_PHI_SQ * h
        new_d = a + _INV_PHI * h
        # Where we moved left the old c becomes the new d; where we moved
        # right the old d becomes the new c.  Re-evaluating both probe points
        # keeps the vectorised bookkeeping simple and still converges at the
        # golden-section rate.
        c, d = new_c, new_d
        fc = np.asarray(func(c), dtype=float)
        fd = np.asarray(func(d), dtype=float)
    else:
        # Same top-of-loop check as the scalar variant: re-test on exit.
        if not np.all(h <= tol * np.maximum(1.0, np.abs(a) + np.abs(b))):
            raise ConvergenceError(
                f"golden_section_vector did not converge in {max_iter} "
                f"iterations: max interval width {float(np.max(h)):.6g} > "
                f"tol={tol:.3g}"
            )
    x = np.where(fc < fd, c, d)
    fx = np.where(fc < fd, fc, fd)
    return x, fx


def golden_section_rows(
    func: Callable[[np.ndarray, np.ndarray], np.ndarray],
    lo: np.ndarray,
    hi: np.ndarray,
    *,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> Tuple[np.ndarray, np.ndarray]:
    """Lockstep batch of independent :func:`golden_section_scalar` solves.

    ``func(lanes, x)`` evaluates lane ``lanes[k]``'s objective at the scalar
    candidate ``x[k]`` and returns the values in the same order; each lane's
    value may depend only on that lane's candidate.  ``lo``/``hi`` are 1-D
    arrays of per-lane interval endpoints.  Returns per-lane arrays
    ``(x_min, f(x_min))``.

    Unlike :func:`golden_section_vector` (which re-evaluates both probe
    points every iteration), this variant replicates the scalar algorithm's
    bookkeeping exactly: per lane it keeps the reusable probe and evaluates
    exactly one new candidate per iteration, applies the same top-of-loop
    width test, and freezes converged lanes so a neighbour's extra
    iterations cannot perturb them.  Lane ``k``'s result is bitwise equal to
    ``golden_section_scalar(func_k, lo[k], hi[k])`` — the property the
    batched allocator path's per-drop parity guarantee rests on.
    """
    a = np.array(lo, dtype=float, copy=True)
    b = np.array(hi, dtype=float, copy=True)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("lo and hi must be 1-D arrays of the same shape")
    swap = b < a
    a[swap], b[swap] = b[swap], a[swap]

    x_out = np.zeros_like(a)
    f_out = np.zeros_like(a)
    degenerate = b == a
    if np.any(degenerate):
        idx = np.flatnonzero(degenerate)
        x_out[idx] = a[idx]
        f_out[idx] = np.asarray(func(idx, a[idx]), dtype=float)

    active = ~degenerate
    h = b - a
    c = a + _INV_PHI_SQ * h
    d = a + _INV_PHI * h
    fc = np.zeros_like(a)
    fd = np.zeros_like(a)
    idx = np.flatnonzero(active)
    if idx.size:
        fc[idx] = np.asarray(func(idx, c[idx]), dtype=float)
        fd[idx] = np.asarray(func(idx, d[idx]), dtype=float)
    for _ in range(max_iter):
        idx = np.flatnonzero(active)
        if idx.size == 0:
            break
        narrow = h[idx] <= tol * np.maximum(1.0, np.abs(a[idx]) + np.abs(b[idx]))
        active[idx[narrow]] = False
        idx = idx[~narrow]
        if idx.size == 0:
            continue
        left = fc[idx] < fd[idx]
        li = idx[left]
        ri = idx[~left]
        # Shrink left: the old c becomes the new d and keeps its value.
        b[li] = d[li]
        d[li] = c[li]
        fd[li] = fc[li]
        h[li] = b[li] - a[li]
        c[li] = a[li] + _INV_PHI_SQ * h[li]
        # Shrink right: the old d becomes the new c and keeps its value.
        a[ri] = c[ri]
        c[ri] = d[ri]
        fc[ri] = fd[ri]
        h[ri] = b[ri] - a[ri]
        d[ri] = a[ri] + _INV_PHI * h[ri]
        # Exactly one fresh evaluation per active lane, batched in one call.
        candidates = np.zeros(idx.size)
        candidates[left] = c[li]
        candidates[~left] = d[ri]
        values = np.asarray(func(idx, candidates), dtype=float)
        fc[li] = values[left]
        fd[ri] = values[~left]
    idx = np.flatnonzero(active)
    if idx.size:
        # Same top-of-loop semantics as the scalar variant: re-test the
        # final widths before declaring exhaustion a failure.
        wide = h[idx] > tol * np.maximum(1.0, np.abs(a[idx]) + np.abs(b[idx]))
        if np.any(wide):
            raise ConvergenceError(
                f"golden_section_rows did not converge in {max_iter} "
                f"iterations for {int(np.sum(wide))} lane(s): max interval "
                f"width {float(np.max(h[idx][wide])):.6g} > tol={tol:.3g}"
            )
    regular = ~degenerate
    pick_c = fc < fd
    x_out[regular] = np.where(pick_c[regular], c[regular], d[regular])
    f_out[regular] = np.where(pick_c[regular], fc[regular], fd[regular])
    return x_out, f_out
