"""Water-filling style solvers for separable problems on a simplex.

Subproblem 1's Lagrangian dual (problem (17) in the paper) is

    maximize    sum_n  a_n * lambda_n^(2/3) + b_n * lambda_n
    subject to  sum_n lambda_n = S,   lambda_n >= 0,

with ``a_n = (2^(-2/3) + 2^(1/3)) * h * c_n * D_n > 0`` and
``b_n = T^up_n >= 0``.  Because the ``lambda^(2/3)`` term has infinite slope
at zero, every optimal ``lambda_n`` is strictly positive and the KKT
stationarity condition

    (2/3) * a_n * lambda_n^(-1/3) + b_n = eta

gives ``lambda_n(eta) = (2 a_n / (3 (eta - b_n)))^3`` for ``eta > max_n b_n``.
The simplex constraint is then enforced by bisecting ``eta``.

:func:`power_waterfilling` is the generic version used elsewhere (and by the
tests) for objectives of the form ``sum a_n x^q + b_n x`` with ``0 < q < 1``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import ConvergenceError, SolverError

__all__ = ["maximize_concave_on_simplex", "power_waterfilling"]


def power_waterfilling(
    a: np.ndarray,
    b: np.ndarray,
    total: float,
    exponent: float,
    *,
    tol: float = 1e-14,
    max_iter: int = 500,
) -> Tuple[np.ndarray, float]:
    """Maximise ``sum a_n x_n^q + b_n x_n`` over ``{x >= 0, sum x = total}``.

    Requires ``a_n > 0`` and ``0 < q < 1``.  Returns ``(x, eta)`` where
    ``eta`` is the optimal simplex multiplier.
    """
    a_arr = np.asarray(a, dtype=float)
    b_arr = np.asarray(b, dtype=float)
    if a_arr.shape != b_arr.shape:
        raise ValueError("a and b must have identical shapes")
    if np.any(a_arr <= 0.0):
        raise SolverError("power_waterfilling requires strictly positive a_n")
    if not 0.0 < exponent < 1.0:
        raise ValueError(f"exponent must lie in (0, 1), got {exponent}")
    if total <= 0.0:
        raise ValueError(f"total must be positive, got {total}")

    q = exponent

    def x_of_eta(eta: float) -> np.ndarray:
        # q * a * x^(q-1) + b = eta  =>  x = (q a / (eta - b))^(1/(1-q))
        gap = eta - b_arr
        return (q * a_arr / gap) ** (1.0 / (1.0 - q))

    eta_lo = float(np.max(b_arr)) + 1e-300
    # Grow eta until the allocation fits inside the budget.
    eta_hi = float(np.max(b_arr)) + 1.0
    for _ in range(200):
        if x_of_eta(eta_hi).sum() <= total:
            break
        eta_hi = float(np.max(b_arr)) + (eta_hi - float(np.max(b_arr))) * 4.0
    else:
        raise SolverError("power_waterfilling could not bracket the multiplier")

    # Shrink eta_lo until the allocation overshoots the budget (it always
    # does as eta -> max(b) from above because x -> inf).
    eta_lo = float(np.max(b_arr)) + (eta_hi - float(np.max(b_arr))) * 1e-12
    for _ in range(200):
        if x_of_eta(eta_lo).sum() >= total:
            break
        eta_lo = float(np.max(b_arr)) + (eta_lo - float(np.max(b_arr))) * 1e-3
    else:
        raise SolverError("power_waterfilling could not bracket the multiplier from below")

    for _ in range(max_iter):
        eta_mid = 0.5 * (eta_lo + eta_hi)
        if x_of_eta(eta_mid).sum() > total:
            eta_lo = eta_mid
        else:
            eta_hi = eta_mid
        if eta_hi - eta_lo <= tol * max(1.0, abs(eta_mid)):
            break
    else:
        raise ConvergenceError(
            f"power_waterfilling did not converge in {max_iter} bisection "
            f"steps: multiplier bracket [{eta_lo:.6g}, {eta_hi:.6g}] is "
            f"still wider than tol={tol:.3g}"
        )
    eta = 0.5 * (eta_lo + eta_hi)
    x = x_of_eta(eta)
    # Numerical clean-up: rescale onto the simplex exactly.
    scale = total / x.sum() if x.sum() > 0 else 1.0
    return x * scale, eta


def maximize_concave_on_simplex(
    a: np.ndarray,
    b: np.ndarray,
    total: float,
) -> Tuple[np.ndarray, float]:
    """Solve the paper's dual problem (17): ``max sum a x^(2/3) + b x`` on a simplex."""
    return power_waterfilling(a, b, total, exponent=2.0 / 3.0)
