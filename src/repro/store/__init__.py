"""``repro.store`` — pluggable result stores for sweep caching & sharding.

The sweep engine keys every task result by its SHA-256 ``task_hash`` and
hands storage to a :class:`ResultStore` backend:

* ``"json"`` (:class:`JsonResultStore`) — the original one-file-per-task
  layout, kept verbatim as the compatibility oracle;
* ``"columnar"`` (:class:`ColumnarResultStore`) — append log + packed
  numpy segments, one file open per segment instead of per task.

:func:`open_store` is the single construction point (explicit backend or
on-disk auto-detection); :func:`migrate_store` / :func:`merge_stores`
move entries between stores; :func:`shard_for_digest` is the hash
partitioner behind ``repro run --shard I/N``.
"""

from __future__ import annotations

from pathlib import Path

from .base import ResultStore, StoreEntry, StoreStat, shard_for_digest
from .columnar import ColumnarResultStore
from .jsonstore import JsonResultStore
from .ops import merge_stores, migrate_store

__all__ = [
    "BACKENDS",
    "ColumnarResultStore",
    "DEFAULT_BACKEND",
    "JsonResultStore",
    "ResultStore",
    "StoreEntry",
    "StoreStat",
    "detect_backend",
    "merge_stores",
    "migrate_store",
    "open_store",
    "shard_for_digest",
]

#: Backend registry: name -> ResultStore subclass.
BACKENDS: dict[str, type[ResultStore]] = {
    JsonResultStore.backend: JsonResultStore,
    ColumnarResultStore.backend: ColumnarResultStore,
}

DEFAULT_BACKEND = JsonResultStore.backend


def detect_backend(root: str | Path) -> str | None:
    """The backend already present under ``root``, or ``None`` for neither."""
    root = Path(root)
    columnar = root / "columnar"
    if (columnar / "MANIFEST.json").is_file() or (columnar / "log.jsonl").is_file():
        return ColumnarResultStore.backend
    if (root / "sweeps").is_dir():
        return JsonResultStore.backend
    return None


def open_store(root: str | Path, backend: str | None = None) -> ResultStore:
    """Open (or prepare to create) the result store under ``root``.

    With ``backend=None`` the on-disk layout decides (so pre-existing cache
    directories keep working untouched), falling back to
    :data:`DEFAULT_BACKEND` for a fresh directory.
    """
    if backend is None:
        backend = detect_backend(root) or DEFAULT_BACKEND
    try:
        cls = BACKENDS[backend]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(f"unknown store backend {backend!r} (known: {known})") from None
    return cls(root)
