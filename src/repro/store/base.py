"""The :class:`ResultStore` interface every result-store backend implements.

A result store is a keyed archive of per-task sweep results: the key is the
task's SHA-256 digest (:func:`repro.experiments.runner.task_hash`), the
value is the triple ``(task payload, metrics, state)`` the runner produced.
The store is **addressing only** — cache *keys* are computed by the sweep
engine from the task's canonical payload and never change with the backend,
so JSON and columnar stores holding the same sweep are interchangeable (the
parity gates enforce it bit-for-bit).

Two invariants every backend must keep:

* **digest-only addressing** — where an entry lives on disk may depend on
  its digest and nothing else (not the payload, not the metrics); the
  RL007 lint rule cross-checks this statically for the path-building
  functions (:meth:`ResultStore.entry_path`, :func:`shard_for_digest`);
* **crash-safe writes** — a put interrupted at any point must leave the
  store readable, with the half-written entry reading as a miss (never as
  garbage that raises).
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

__all__ = ["StoreEntry", "StoreStat", "ResultStore", "shard_for_digest"]

#: Length of a hex-encoded SHA-256 task digest.
DIGEST_LENGTH = 64


def shard_for_digest(digest: str, count: int) -> int:
    """The shard (``0 .. count-1``) a task digest belongs to.

    Sharding is deterministic in the digest alone, so N independent
    ``repro run --shard I/N`` invocations partition any task list exactly
    (every task lands in precisely one shard, whatever the host or
    execution order).  The leading 64 bits of the digest are uniform, so
    shards are balanced for any realistic ``count``.
    """
    if count <= 0:
        raise ValueError(f"shard count must be positive, got {count}")
    return int(digest[:16], 16) % count


@dataclass(frozen=True)
class StoreEntry:
    """One stored result: the task payload, its metrics and optional state."""

    digest: str
    task: dict[str, Any]
    metrics: dict[str, float]
    state: dict[str, Any] | None = None

    def canonical_blob(self) -> str:
        """A canonical JSON serialisation (used for deterministic merges)."""
        return json.dumps(
            {"task": self.task, "metrics": self.metrics, "state": self.state},
            sort_keys=True,
            separators=(",", ":"),
            default=float,
        )


@dataclass(frozen=True)
class StoreStat:
    """What ``repro store stat`` reports for one store."""

    backend: str
    root: str
    entries: int
    files: int
    bytes: int
    #: Columnar only: packed segments and not-yet-compacted log records.
    segments: int = 0
    log_entries: int = 0


class ResultStore(ABC):
    """Keyed archive of sweep results; see the module docstring.

    Subclasses implement the entry-returning paths (:meth:`get_entry`,
    :meth:`put`, :meth:`entries`); the metrics-only :meth:`get` is a thin
    wrapper defined once here, so there is exactly one read path per
    backend.
    """

    #: Registry name of the backend (``"json"`` / ``"columnar"``).
    backend: str = ""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- the one read path ---------------------------------------------------
    @abstractmethod
    def get_entry(
        self, digest: str
    ) -> tuple[dict[str, float], dict[str, Any] | None] | None:
        """Stored ``(metrics, state)`` for ``digest``, or ``None`` on a miss.

        Unreadable, truncated or otherwise corrupt entries are misses, not
        errors — a crashed writer must never poison later runs.
        """

    def get(self, digest: str) -> dict[str, float] | None:
        """Metrics only — a thin wrapper over :meth:`get_entry`."""
        entry = self.get_entry(digest)
        return entry[0] if entry is not None else None

    # -- writes --------------------------------------------------------------
    @abstractmethod
    def put(
        self,
        digest: str,
        task: Mapping[str, Any],
        metrics: Mapping[str, float],
        state: Mapping[str, Any] | None = None,
    ) -> None:
        """Store one successful result (crash-safe; overwrites silently)."""

    def flush(self) -> None:
        """Make pending writes durable (no-op for write-through backends)."""

    # -- enumeration ---------------------------------------------------------
    @abstractmethod
    def keys(self) -> Iterator[str]:
        """Every stored digest (order unspecified)."""

    @abstractmethod
    def entries(self) -> Iterator[StoreEntry]:
        """Every stored entry including the task payload (for migrate/merge)."""

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, digest: str) -> bool:
        return self.get_entry(digest) is not None

    # -- inspection ----------------------------------------------------------
    @abstractmethod
    def stat(self) -> StoreStat:
        """Size and layout summary for ``repro store stat``."""

    def metric_columns(self) -> list[str]:
        """Sorted union of metric names across every stored entry."""
        names: set[str] = set()
        for entry in self.entries():
            names.update(entry.metrics)
        return sorted(names)

    def query(self, columns: list[str]) -> list[tuple[str, list[float | None]]]:
        """Cross-experiment column extraction: ``(digest, values)`` rows.

        ``values`` follows ``columns``; a metric an entry does not carry is
        ``None``.  Backends with a packed layout override this with a
        vectorised scan; the base implementation walks :meth:`entries`.
        """
        rows = [
            (entry.digest, [entry.metrics.get(name) for name in columns])
            for entry in self.entries()
        ]
        rows.sort(key=lambda pair: pair[0])
        return rows
