"""The columnar result store: append log + packed-numpy segments.

The JSON backend pays one ``open()`` + ``json.loads`` per task — O(files)
I/O that dominates cache-hit reads at paper scale.  This backend keeps the
same logical contract (digest-keyed ``(task, metrics, state)`` entries,
bit-identical round-trips) on a two-tier layout::

    <root>/columnar/
      MANIFEST.json            # {"format": 1, "segments": ["seg-000000.seg"]}
      log.jsonl                # append log: one JSON record per line
      segments/seg-000000.seg  # packed columnar segment (flat numpy container)

* **Writes** append one self-contained JSON line to ``log.jsonl`` — an
  O(1) durable append with no rename dance per entry.  A crash can only
  truncate the *last* line; the reader skips unparsable lines, so the
  half-written record reads as a miss and every earlier entry survives.
* **Compaction** (:meth:`ColumnarResultStore.compact`) folds the log and
  any existing segments into one packed segment: metric values as one
  ``float64`` matrix over the sorted column union (with presence/int
  masks, so ``3`` and ``3.0`` round-trip distinguishably and bit-exactly),
  digests/states/payloads as string arrays, per-record key order preserved
  through an offsets array.  Entries are sorted by digest and the segment
  container is a pure function of its arrays, so stores with equal logical
  content compact to **byte-identical** files — that is what makes the
  N-shard merge-equals-serial gate checkable with ``cmp``.
* **Reads** load each segment once into an in-memory index and serve every
  ``get_entry`` from arrays — one file open per segment instead of one per
  task, which is the whole point.
* **Queries** (:meth:`ColumnarResultStore.query`) slice metric columns
  straight out of the packed matrices, so cross-experiment column scans
  never materialise per-task dicts.

The segment container is deliberately *not* ``.npz``: the zip layer costs
~1 ms per open (directory walk, per-member decompress) — more than an
entire small sweep's JSON reads, which would bury the backend's win at
bench scale.  A segment is instead one flat file: a magic line, a
fixed-width header length, a canonical JSON header describing each
array's dtype/shape/offset, then the arrays' raw C-order bytes
back-to-back.  One ``read()`` plus ``np.frombuffer`` slices loads
everything, and the bytes are trivially deterministic (no timestamps, no
compressor versions).

Entry *addressing* never leaves the digest: rows are keyed by the digest
string alone (RL007 guards the path-building helpers), and cache keys /
``CACHE_VERSION`` semantics are untouched — the store is storage, not
hashing.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy as np

from .base import ResultStore, StoreEntry, StoreStat

__all__ = ["ColumnarResultStore"]

#: On-disk format version of segments + manifest (bump on layout changes).
COLUMNAR_FORMAT = 1

_MANIFEST = "MANIFEST.json"
_LOG = "log.jsonl"
_SEGMENT_DIR = "segments"

#: First bytes of every segment file (versioned with the container layout).
_SEGMENT_MAGIC = b"REPROSEG1\n"


def _write_segment(path: Path, arrays: Mapping[str, np.ndarray]) -> None:
    """Write the flat segment container (byte-deterministic by construction).

    Layout: magic line, 16-digit ASCII header length, canonical JSON header
    (name -> dtype descriptor, shape, byte offset and length, in sorted
    name order), then each array's raw C-order bytes concatenated in that
    same order.
    """
    blobs: list[bytes] = []
    header: dict[str, Any] = {}
    offset = 0
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        blob = array.tobytes()
        header[name] = {
            "dtype": np.lib.format.dtype_to_descr(array.dtype),
            "shape": list(array.shape),
            "offset": offset,
            "nbytes": len(blob),
        }
        blobs.append(blob)
        offset += len(blob)
    header_blob = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
    payload = b"".join(
        [_SEGMENT_MAGIC, b"%016d\n" % len(header_blob), header_blob, *blobs]
    )
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


def _read_segment(path: Path) -> dict[str, np.ndarray]:
    """Load a segment container in one read; raises ValueError on garbage."""
    blob = path.read_bytes()
    if not blob.startswith(_SEGMENT_MAGIC):
        raise ValueError(f"not a segment file: {path}")
    prefix = len(_SEGMENT_MAGIC)
    header_len = int(blob[prefix : prefix + 16])
    body = prefix + 17  # past the 16 digits and their newline
    header = json.loads(blob[body : body + header_len])
    base = body + header_len
    arrays: dict[str, np.ndarray] = {}
    for name, spec in header.items():
        start = base + int(spec["offset"])
        raw = blob[start : start + int(spec["nbytes"])]
        arrays[name] = np.frombuffer(raw, dtype=np.dtype(spec["dtype"])).reshape(
            spec["shape"]
        )
    return arrays


def _string_array(values: list[str]) -> np.ndarray:
    """A unicode array that tolerates the all-empty and empty-list cases."""
    return np.asarray(values, dtype=np.str_) if values else np.zeros(0, dtype="U1")


class _Segment:
    """One loaded packed segment: arrays plus a digest -> row map.

    The hot per-``get_entry`` structures (metric values, key order, packed
    states) are converted to plain Python lists once at load time, so a
    cache-hit read is dict assembly over lists — no per-get numpy scalar
    boxing, no per-get JSON parsing when states are packed.
    """

    def __init__(self, arrays: Mapping[str, np.ndarray]) -> None:
        digests = [str(d) for d in arrays["digests"].tolist()]
        self.columns = [str(c) for c in arrays["columns"].tolist()]
        self.values = arrays["values"]
        self.present = arrays["present"]
        self.int_mask = arrays["int_mask"]
        self._values_list = self.values.tolist()
        self._int_list = self.int_mask.tolist()
        self._order = arrays["order_flat"].tolist()
        self._offsets = arrays["order_offsets"].tolist()
        self.task_json = arrays["task_json"]
        self.state_packed = bool(arrays["state_packed"][0])
        if self.state_packed:
            self._state_keys = [str(k) for k in arrays["state_keys"].tolist()]
            self._state_kinds = arrays["state_kinds"].tolist()
            self._state_present = arrays["state_present"].tolist()
            self._state_values = arrays["state_values"].tolist()
            self.state_json = None
        else:
            self.state_json = arrays["state_json"]
        self.rows = {digest: row for row, digest in enumerate(digests)}
        self._digests = digests

    def __len__(self) -> int:
        return len(self._digests)

    def digest_of(self, row: int) -> str:
        return self._digests[row]

    def metrics_of(self, row: int) -> dict[str, float]:
        """Rebuild row ``row``'s metrics dict in its original key order."""
        row_values = self._values_list[row]
        row_ints = self._int_list[row]
        metrics: dict[str, float] = {}
        for j in self._order[self._offsets[row] : self._offsets[row + 1]]:
            value = row_values[j]
            metrics[self.columns[j]] = int(value) if row_ints[j] else value
        return metrics

    def state_of(self, row: int) -> dict[str, Any] | None:
        if self.state_packed:
            if not self._state_present[row]:
                return None
            row_values = self._state_values[row]
            state: dict[str, Any] = {}
            position = 0
            for key, kind in zip(self._state_keys, self._state_kinds):
                if kind == 0:
                    state[key] = row_values[position]
                    position += 1
                else:
                    state[key] = row_values[position : position + kind]
                    position += kind
            return state
        blob = str(self.state_json[row])
        return json.loads(blob) if blob else None

    def task_of(self, row: int) -> dict[str, Any]:
        blob = str(self.task_json[row])
        return json.loads(blob) if blob else {}

    def entry(self, row: int) -> StoreEntry:
        return StoreEntry(
            digest=self._digests[row],
            task=self.task_of(row),
            metrics=self.metrics_of(row),
            state=self.state_of(row),
        )


def _pack_states(
    states: list[dict[str, Any] | None],
) -> dict[str, np.ndarray] | None:
    """Pack uniform-schema states into float matrices, or ``None`` to fall
    back to per-row JSON.

    Packable means: every non-``None`` state has the same keys in the same
    order, and each key's value is a plain float (or a non-empty list of
    plain floats with one length across all rows).  The runner's warm-state
    snapshots (``power_w`` / ``bandwidth_hz`` / ``frequency_hz`` lists plus
    the ``mu`` scalar) fit exactly; anything irregular — including ints,
    whose JSON round-trip the float matrix could not preserve — keeps the
    lossless JSON path.
    """
    keys: tuple[str, ...] | None = None
    kinds: dict[str, int] = {}
    for state in states:
        if state is None:
            continue
        state_keys = tuple(state.keys())
        if keys is None:
            keys = state_keys
        elif state_keys != keys:
            return None
        for key in state_keys:
            value = state[key]
            if type(value) is float:
                kind = 0
            elif (
                isinstance(value, list)
                and value
                and all(type(item) is float for item in value)
            ):
                kind = len(value)
            else:
                return None
            if kinds.setdefault(key, kind) != kind:
                return None
    keys = keys or ()
    width = sum(1 if kinds[key] == 0 else kinds[key] for key in keys)
    n = len(states)
    present = np.zeros(n, dtype=bool)
    values = np.zeros((n, width), dtype=np.float64)
    for row, state in enumerate(states):
        if state is None:
            continue
        present[row] = True
        position = 0
        for key in keys:
            kind = kinds[key]
            if kind == 0:
                values[row, position] = state[key]
                position += 1
            else:
                values[row, position : position + kind] = state[key]
                position += kind
    return {
        "state_packed": np.asarray([1], dtype=np.int64),
        "state_keys": _string_array(list(keys)),
        "state_kinds": np.asarray([kinds[key] for key in keys], dtype=np.int64),
        "state_present": present,
        "state_values": values,
    }


def _pack(entries: list[StoreEntry]) -> dict[str, np.ndarray]:
    """Pack ``entries`` (already digest-sorted) into segment arrays."""
    columns = sorted({name for entry in entries for name in entry.metrics})
    column_index = {name: i for i, name in enumerate(columns)}
    n, c = len(entries), len(columns)
    values = np.zeros((n, c), dtype=np.float64)
    present = np.zeros((n, c), dtype=bool)
    int_mask = np.zeros((n, c), dtype=bool)
    order_flat: list[int] = []
    order_offsets = np.zeros(n + 1, dtype=np.int64)
    for row, entry in enumerate(entries):
        for name, value in entry.metrics.items():
            j = column_index[name]
            values[row, j] = float(value)
            present[row, j] = True
            int_mask[row, j] = isinstance(value, int)
            order_flat.append(j)
        order_offsets[row + 1] = len(order_flat)
    arrays = {
        "format": np.asarray([COLUMNAR_FORMAT], dtype=np.int64),
        "digests": _string_array([entry.digest for entry in entries]),
        "columns": _string_array(columns),
        "values": values,
        "present": present,
        "int_mask": int_mask,
        "order_flat": np.asarray(order_flat, dtype=np.int64),
        "order_offsets": order_offsets,
        "task_json": _string_array(
            [json.dumps(entry.task, separators=(",", ":")) for entry in entries]
        ),
    }
    packed_states = _pack_states([entry.state for entry in entries])
    if packed_states is not None:
        arrays.update(packed_states)
    else:
        arrays["state_packed"] = np.asarray([0], dtype=np.int64)
        arrays["state_json"] = _string_array(
            [
                json.dumps(entry.state, separators=(",", ":"))
                if entry.state is not None
                else ""
                for entry in entries
            ]
        )
    return arrays


class ColumnarResultStore(ResultStore):
    """Append-log + packed-segment result store; see the module docstring."""

    backend = "columnar"

    def __init__(self, root: str | Path) -> None:
        super().__init__(root)
        self._segments: list[_Segment] | None = None
        #: Entries living in the log (or appended this process), newest wins.
        self._log_index: dict[str, StoreEntry] = {}

    # -- paths (digest-independent: rows are addressed in arrays) ------------
    @property
    def _dir(self) -> Path:
        return self.root / "columnar"

    def _manifest_path(self) -> Path:
        return self._dir / _MANIFEST

    def _log_path(self) -> Path:
        return self._dir / _LOG

    def _segment_path(self, name: str) -> Path:
        return self._dir / _SEGMENT_DIR / name

    # -- loading -------------------------------------------------------------
    def _ensure_loaded(self) -> None:
        if self._segments is not None:
            return
        self._segments = []
        self._log_index = {}
        for name in self._manifest_segments():
            path = self._segment_path(name)
            try:
                segment = _Segment(_read_segment(path))
            except (OSError, ValueError, KeyError, TypeError) as exc:
                warnings.warn(
                    f"columnar store: skipping unreadable segment {path}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            self._segments.append(segment)
        for entry in self._read_log():
            self._log_index[entry.digest] = entry

    def _manifest_segments(self) -> list[str]:
        try:
            manifest = json.loads(self._manifest_path().read_text())
        except (OSError, ValueError):
            return []
        segments = manifest.get("segments") if isinstance(manifest, dict) else None
        return [str(name) for name in segments] if isinstance(segments, list) else []

    def _read_log(self) -> Iterator[StoreEntry]:
        """Replay the append log, skipping truncated or garbage lines."""
        try:
            lines = self._log_path().read_text().splitlines()
        except OSError:
            return
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # a crash-truncated (or corrupt) record is a miss
            if not isinstance(record, dict):
                continue
            digest = record.get("digest")
            metrics = record.get("metrics")
            if not isinstance(digest, str) or not isinstance(metrics, dict):
                continue
            state = record.get("state")
            yield StoreEntry(
                digest=digest,
                task=dict(record.get("task") or {}),
                metrics=dict(metrics),
                state=dict(state) if isinstance(state, dict) else None,
            )

    # -- reads ---------------------------------------------------------------
    def get_entry(
        self, digest: str
    ) -> tuple[dict[str, float], dict[str, Any] | None] | None:
        self._ensure_loaded()
        entry = self._log_index.get(digest)
        if entry is not None:
            return dict(entry.metrics), (
                dict(entry.state) if entry.state is not None else None
            )
        assert self._segments is not None
        for segment in reversed(self._segments):
            row = segment.rows.get(digest)
            if row is not None:
                return segment.metrics_of(row), segment.state_of(row)
        return None

    def keys(self) -> Iterator[str]:
        self._ensure_loaded()
        assert self._segments is not None
        seen = set(self._log_index)
        yield from self._log_index
        for segment in self._segments:
            for digest in segment.rows:
                if digest not in seen:
                    seen.add(digest)
                    yield digest

    def entries(self) -> Iterator[StoreEntry]:
        self._ensure_loaded()
        assert self._segments is not None
        yield from self._log_index.values()
        for segment in self._segments:
            for digest, row in segment.rows.items():
                if digest not in self._log_index:
                    yield segment.entry(row)

    # -- writes --------------------------------------------------------------
    def put(
        self,
        digest: str,
        task: Mapping[str, Any],
        metrics: Mapping[str, float],
        state: Mapping[str, Any] | None = None,
    ) -> None:
        self._ensure_loaded()
        entry = StoreEntry(
            digest=digest,
            task=dict(task),
            metrics=dict(metrics),
            state=dict(state) if state is not None else None,
        )
        record = {
            "digest": entry.digest,
            "task": entry.task,
            "metrics": entry.metrics,
            "state": entry.state,
        }
        self._dir.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, separators=(",", ":"), default=float) + "\n"
        # One whole-line append per entry: a crash mid-write can only leave
        # a truncated *last* line, which the reader skips (see _read_log).
        # If a previous crash left such a torn tail, start on a fresh line so
        # the new record does not concatenate onto the garbage.
        with self._log_path().open("a+b") as handle:
            handle.seek(0, 2)
            if handle.tell() > 0:
                handle.seek(-1, 2)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(line.encode("utf-8"))
        self._log_index[digest] = entry

    # -- compaction ----------------------------------------------------------
    def compact(self) -> int:
        """Fold log + segments into one canonical packed segment.

        Entries are sorted by digest and written with fixed zip timestamps,
        so any two stores holding the same logical content compact to
        byte-identical trees.  Returns the number of entries packed.

        The sequencing is crash-safe: the new segment lands first (atomic
        rename), then the manifest, then the log truncation — a crash
        between any two steps leaves a store whose replay (segments then
        log, digest-deduplicated) still reads every entry exactly once.
        """
        self._ensure_loaded()
        entries = sorted(self.entries(), key=lambda entry: entry.digest)
        segment_dir = self._dir / _SEGMENT_DIR
        segment_dir.mkdir(parents=True, exist_ok=True)
        name = "seg-000000.seg"
        _write_segment(self._segment_path(name), _pack(entries))
        manifest = {"format": COLUMNAR_FORMAT, "segments": [name]}
        manifest_tmp = self._manifest_path().with_suffix(f".{os.getpid()}.tmp")
        manifest_tmp.write_text(json.dumps(manifest, indent=2) + "\n")
        os.replace(manifest_tmp, self._manifest_path())
        log_tmp = self._log_path().with_suffix(f".{os.getpid()}.tmp")
        log_tmp.write_text("")
        os.replace(log_tmp, self._log_path())
        for stale in segment_dir.glob("seg-*.seg"):
            if stale.name != name:
                stale.unlink()
        self._segments = None  # reload from the packed layout on next read
        self._log_index = {}
        return len(entries)

    # -- inspection ----------------------------------------------------------
    def stat(self) -> StoreStat:
        self._ensure_loaded()
        assert self._segments is not None
        files = 0
        size = 0
        for path in (self._manifest_path(), self._log_path()):
            if path.is_file():
                files += 1
                size += path.stat().st_size
        segment_dir = self._dir / _SEGMENT_DIR
        if segment_dir.is_dir():
            for path in segment_dir.glob("seg-*.seg"):
                files += 1
                size += path.stat().st_size
        return StoreStat(
            backend=self.backend,
            root=str(self.root),
            entries=len(self),
            files=files,
            bytes=size,
            segments=len(self._segments),
            log_entries=len(self._log_index),
        )

    def metric_columns(self) -> list[str]:
        self._ensure_loaded()
        assert self._segments is not None
        names: set[str] = set()
        for segment in self._segments:
            names.update(segment.columns)
        for entry in self._log_index.values():
            names.update(entry.metrics)
        return sorted(names)

    def query(self, columns: list[str]) -> list[tuple[str, list[float | None]]]:
        """Vectorised column extraction straight from the packed matrices."""
        self._ensure_loaded()
        assert self._segments is not None
        rows: dict[str, list[float | None]] = {}
        for segment in self._segments:
            indices = [
                segment.columns.index(name) if name in segment.columns else None
                for name in columns
            ]
            for j in range(len(segment)):
                digest = segment.digest_of(j)
                if digest in self._log_index:
                    continue  # the log supersedes packed rows
                values: list[float | None] = []
                for index in indices:
                    if index is None or not segment.present[j, index]:
                        values.append(None)
                    else:
                        value = float(segment.values[j, index])
                        values.append(
                            int(value) if segment.int_mask[j, index] else value
                        )
                rows[digest] = values
        for digest, entry in self._log_index.items():
            rows[digest] = [entry.metrics.get(name) for name in columns]
        return sorted(rows.items())
