"""The JSON-file-per-task result store (the original cache layout).

Layout — unchanged since PR 1, so pre-existing cache directories keep
working and this backend doubles as the compatibility oracle the columnar
backend is parity-gated against::

    <root>/sweeps/<digest[:2]>/<digest>.json
        {"task": <canonical payload>, "metrics": {...}, "state": {...}}

Writes are crash-safe: the entry is written to a uniquely named temp file
in the same directory and atomically renamed into place, so a reader can
never observe a half-written entry; a truncated or garbage file (e.g. from
a pre-rename crash of an older writer, or disk corruption) reads as a miss
and is silently overwritten by the next put.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator, Mapping

from .base import DIGEST_LENGTH, ResultStore, StoreEntry, StoreStat

__all__ = ["JsonResultStore"]


class JsonResultStore(ResultStore):
    """One JSON file per task digest; see the module docstring."""

    backend = "json"

    def entry_path(self, digest: str) -> Path:
        """Where ``digest``'s entry lives — a function of the digest alone."""
        return self.root / "sweeps" / digest[:2] / f"{digest}.json"

    def get_entry(
        self, digest: str
    ) -> tuple[dict[str, float], dict[str, Any] | None] | None:
        payload = self._load(self.entry_path(digest))
        if payload is None:
            return None
        metrics = payload.get("metrics")
        if not isinstance(metrics, dict):
            return None
        state = payload.get("state")
        return dict(metrics), (dict(state) if isinstance(state, dict) else None)

    @staticmethod
    def _load(path: Path) -> dict[str, Any] | None:
        """Parse one entry file; any unreadable/garbage content is a miss."""
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def put(
        self,
        digest: str,
        task: Mapping[str, Any],
        metrics: Mapping[str, float],
        state: Mapping[str, Any] | None = None,
    ) -> None:
        path = self.entry_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload: dict[str, Any] = {"task": dict(task), "metrics": dict(metrics)}
        if state is not None:
            payload["state"] = dict(state)
        # Unique temp name (digest + pid) so concurrent writers of the same
        # entry never clobber each other's half-written temp file; the
        # rename is atomic, so readers see the old entry or the new one,
        # never a truncation.
        tmp = path.with_name(f".{digest}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, indent=2, default=float))
        os.replace(tmp, path)

    def keys(self) -> Iterator[str]:
        sweeps = self.root / "sweeps"
        if not sweeps.is_dir():
            return
        for path in sorted(sweeps.glob("??/*.json")):
            if len(path.stem) == DIGEST_LENGTH:
                yield path.stem

    def entries(self) -> Iterator[StoreEntry]:
        for digest in self.keys():
            payload = self._load(self.entry_path(digest))
            if payload is None or not isinstance(payload.get("metrics"), dict):
                continue
            state = payload.get("state")
            yield StoreEntry(
                digest=digest,
                task=dict(payload.get("task") or {}),
                metrics=dict(payload["metrics"]),
                state=dict(state) if isinstance(state, dict) else None,
            )

    def stat(self) -> StoreStat:
        entries = 0
        files = 0
        size = 0
        sweeps = self.root / "sweeps"
        if sweeps.is_dir():
            for path in sweeps.glob("??/*.json"):
                files += 1
                entries += len(path.stem) == DIGEST_LENGTH
                size += path.stat().st_size
        return StoreStat(
            backend=self.backend,
            root=str(self.root),
            entries=entries,
            files=files,
            bytes=size,
        )
