"""Whole-store operations: migrate between backends, merge shard stores.

Both operations are **entry-preserving**: they move :class:`StoreEntry`
triples between stores without recomputing digests or touching payloads,
so a migrated or merged store is bit-identical (entry-wise) to its
sources — the round-trip and merge-determinism tests gate exactly that.

Both also refuse to write **in place**: a destination that is (or
contains, or lives inside) one of the sources would interleave ``put`` /
``compact`` with reads of lazily-materialised source entries — a columnar
source yields entries straight out of its on-disk segments while the
destination rewrites them — and can corrupt the store.  The overlap is a
:class:`~repro.exceptions.ConfigurationError`, raised before anything is
written.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Sequence

from ..exceptions import ConfigurationError
from .base import ResultStore, StoreEntry

__all__ = ["migrate_store", "merge_stores"]


def _stores_overlap(a: ResultStore, b: ResultStore) -> bool:
    """Whether two stores' roots coincide or nest (an in-place hazard)."""
    root_a = Path(os.path.abspath(a.root))
    root_b = Path(os.path.abspath(b.root))
    return (
        root_a == root_b
        or root_a.is_relative_to(root_b)
        or root_b.is_relative_to(root_a)
    )


def _reject_in_place(sources: Sequence[ResultStore], dest: ResultStore, op: str) -> None:
    """Raise when ``dest`` overlaps any source (see the module docstring)."""
    for source in sources:
        if _stores_overlap(source, dest):
            raise ConfigurationError(
                f"cannot {op} a store onto itself: destination "
                f"{os.path.abspath(dest.root)} overlaps source "
                f"{os.path.abspath(source.root)}; {op} into a fresh "
                "directory instead"
            )


def migrate_store(source: ResultStore, dest: ResultStore) -> int:
    """Copy every entry from ``source`` into ``dest``; returns the count.

    Entries are copied in sorted-digest order and the destination is
    compacted (when the backend supports it), so migrating the same source
    twice produces byte-identical output trees.  ``dest`` must not overlap
    ``source`` on disk (in-place migration corrupts the store).
    """
    _reject_in_place([source], dest, "migrate")
    count = 0
    for entry in sorted(source.entries(), key=lambda item: item.digest):
        dest.put(entry.digest, entry.task, entry.metrics, entry.state)
        count += 1
    dest.flush()
    compact = getattr(dest, "compact", None)
    if callable(compact):
        compact()
    return count


def merge_stores(sources: Sequence[ResultStore], dest: ResultStore) -> int:
    """Union ``sources`` into ``dest``; returns the number of merged entries.

    The result is independent of shard arrival order: entries are keyed by
    digest, a duplicate digest keeps the entry with the smallest canonical
    serialisation (they are identical in practice — shards executing the
    same task produce the same result — but ties must break
    deterministically, not by argument order), and the union is written in
    sorted-digest order then compacted.  Merging the same shard set in any
    order therefore produces byte-identical stores, which is what lets CI
    ``cmp`` a merged store's CSV against the serial run's.  ``dest`` must
    not overlap any source on disk (in-place merging corrupts the store).
    """
    _reject_in_place(sources, dest, "merge")
    merged: dict[str, StoreEntry] = {}
    for source in sources:
        for entry in source.entries():
            incumbent = merged.get(entry.digest)
            if incumbent is None or entry.canonical_blob() < incumbent.canonical_blob():
                merged[entry.digest] = entry
    for digest in sorted(merged):
        entry = merged[digest]
        dest.put(entry.digest, entry.task, entry.metrics, entry.state)
    dest.flush()
    compact = getattr(dest, "compact", None)
    if callable(compact):
        compact()
    return len(merged)
