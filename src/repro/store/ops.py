"""Whole-store operations: migrate between backends, merge shard stores.

Both operations are **entry-preserving**: they move :class:`StoreEntry`
triples between stores without recomputing digests or touching payloads,
so a migrated or merged store is bit-identical (entry-wise) to its
sources — the round-trip and merge-determinism tests gate exactly that.
"""

from __future__ import annotations

from typing import Sequence

from .base import ResultStore, StoreEntry

__all__ = ["migrate_store", "merge_stores"]


def migrate_store(source: ResultStore, dest: ResultStore) -> int:
    """Copy every entry from ``source`` into ``dest``; returns the count.

    Entries are copied in sorted-digest order and the destination is
    compacted (when the backend supports it), so migrating the same source
    twice produces byte-identical output trees.
    """
    count = 0
    for entry in sorted(source.entries(), key=lambda item: item.digest):
        dest.put(entry.digest, entry.task, entry.metrics, entry.state)
        count += 1
    dest.flush()
    compact = getattr(dest, "compact", None)
    if callable(compact):
        compact()
    return count


def merge_stores(sources: Sequence[ResultStore], dest: ResultStore) -> int:
    """Union ``sources`` into ``dest``; returns the number of merged entries.

    The result is independent of shard arrival order: entries are keyed by
    digest, a duplicate digest keeps the entry with the smallest canonical
    serialisation (they are identical in practice — shards executing the
    same task produce the same result — but ties must break
    deterministically, not by argument order), and the union is written in
    sorted-digest order then compacted.  Merging the same shard set in any
    order therefore produces byte-identical stores, which is what lets CI
    ``cmp`` a merged store's CSV against the serial run's.
    """
    merged: dict[str, StoreEntry] = {}
    for source in sources:
        for entry in source.entries():
            incumbent = merged.get(entry.digest)
            if incumbent is None or entry.canonical_blob() < incumbent.canonical_blob():
                merged[entry.digest] = entry
    for digest in sorted(merged):
        entry = merged[digest]
        dest.put(entry.digest, entry.task, entry.metrics, entry.state)
    dest.flush()
    compact = getattr(dest, "compact", None)
    if callable(compact):
        compact()
    return len(merged)
