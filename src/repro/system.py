"""The wireless federated-learning system model (Section III).

:class:`SystemModel` bundles everything the resource allocator treats as
given: the device fleet (CPU / dataset / radio limits), the realised channel
gains, the shared bandwidth budget, the noise PSD, and the FL schedule
(``R_l`` local iterations per round, ``R_g`` global rounds).  It also
exposes the physical cost models of equations (1)-(7) as vectorised methods
so that the optimizer, the baselines and the FL simulator all price a
candidate allocation identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from . import constants
from .devices.cpu import CpuModel
from .devices.fleet import DeviceFleet
from .devices.radio import RadioModel
from .exceptions import ConfigurationError
from .wireless.channel import ChannelState
from .wireless.noise import NoiseModel
from .wireless.rate import shannon_rate

__all__ = ["SystemModel"]


@dataclass(frozen=True)
class SystemModel:
    """All fixed parameters of the FL-over-FDMA system."""

    fleet: DeviceFleet
    gains: np.ndarray
    noise_psd_w_per_hz: float = constants.NOISE_PSD_W_PER_HZ
    total_bandwidth_hz: float = constants.DEFAULT_TOTAL_BANDWIDTH_HZ
    local_iterations: int = constants.DEFAULT_LOCAL_ITERATIONS
    global_rounds: int = constants.DEFAULT_GLOBAL_ROUNDS
    channel_state: ChannelState | None = None

    def __post_init__(self) -> None:
        gains = np.asarray(self.gains, dtype=float)
        if gains.shape != (self.fleet.num_devices,):
            raise ConfigurationError(
                f"gains must have shape ({self.fleet.num_devices},), got {gains.shape}"
            )
        if np.any(gains <= 0.0):
            raise ConfigurationError("channel gains must be strictly positive")
        if self.noise_psd_w_per_hz <= 0.0:
            raise ConfigurationError("noise PSD must be positive")
        if self.total_bandwidth_hz <= 0.0:
            raise ConfigurationError("total bandwidth must be positive")
        if self.local_iterations <= 0:
            raise ConfigurationError("local_iterations must be positive")
        if self.global_rounds <= 0:
            raise ConfigurationError("global_rounds must be positive")
        object.__setattr__(self, "gains", gains)

    # -- convenience array views -----------------------------------------
    @property
    def num_devices(self) -> int:
        return self.fleet.num_devices

    @property
    def cycles_per_sample(self) -> np.ndarray:
        return self.fleet.cycles_per_sample

    @property
    def num_samples(self) -> np.ndarray:
        return self.fleet.num_samples

    @property
    def upload_bits(self) -> np.ndarray:
        return self.fleet.upload_bits

    @property
    def min_frequency_hz(self) -> np.ndarray:
        return self.fleet.min_frequency_hz

    @property
    def max_frequency_hz(self) -> np.ndarray:
        return self.fleet.max_frequency_hz

    @property
    def min_power_w(self) -> np.ndarray:
        return self.fleet.min_power_w

    @property
    def max_power_w(self) -> np.ndarray:
        return self.fleet.max_power_w

    @property
    def effective_capacitance(self) -> np.ndarray:
        return self.fleet.effective_capacitance

    @property
    def cycles_per_round(self) -> np.ndarray:
        """CPU cycles of one global round per device: ``R_l * c_n * D_n``."""
        return self.local_iterations * self.cycles_per_sample * self.num_samples

    # -- component models --------------------------------------------------
    @property
    def noise_model(self) -> NoiseModel:
        return NoiseModel(psd_w_per_hz=self.noise_psd_w_per_hz)

    @property
    def cpu_model(self) -> CpuModel:
        # Per-device kappa may differ; the vectorised methods below use the
        # per-device values directly.  The CpuModel here is the default used
        # by callers who want a standalone model object.
        return CpuModel(effective_capacitance=float(self.effective_capacitance[0]))

    @property
    def radio_model(self) -> RadioModel:
        return RadioModel(noise=self.noise_model)

    # -- physical cost models (eqs. (1)-(7)) --------------------------------
    def rates_bps(self, power_w: np.ndarray, bandwidth_hz: np.ndarray) -> np.ndarray:
        """Uplink Shannon rates ``r_n`` (eq. (1))."""
        return shannon_rate(power_w, bandwidth_hz, self.gains, self.noise_psd_w_per_hz)

    def upload_time_s(self, power_w: np.ndarray, bandwidth_hz: np.ndarray) -> np.ndarray:
        """Upload times ``T^up_n = d_n / r_n`` (eq. (2))."""
        rates = self.rates_bps(power_w, bandwidth_hz)
        time = np.full(rates.shape, np.inf)
        ok = rates > 0.0
        time[ok] = self.upload_bits[ok] / rates[ok]
        return time

    def upload_energy_j(self, power_w: np.ndarray, bandwidth_hz: np.ndarray) -> np.ndarray:
        """Per-round transmission energies ``E^trans_n = p_n T^up_n`` (eq. (3))."""
        power = np.asarray(power_w, dtype=float)
        time = self.upload_time_s(power_w, bandwidth_hz)
        with np.errstate(invalid="ignore"):
            return np.where(power == 0.0, 0.0, power * time)

    def computation_time_s(self, frequency_hz: np.ndarray) -> np.ndarray:
        """Per-round computation times ``T^cmp_n = R_l c_n D_n / f_n`` (eq. (7))."""
        freq = np.asarray(frequency_hz, dtype=float)
        if np.any(freq <= 0.0):
            raise ValueError("CPU frequencies must be strictly positive")
        return self.cycles_per_round / freq

    def computation_energy_j(self, frequency_hz: np.ndarray) -> np.ndarray:
        """Per-round computation energies ``kappa R_l c_n D_n f_n^2`` (eq. (5))."""
        freq = np.asarray(frequency_hz, dtype=float)
        return self.effective_capacitance * self.cycles_per_round * freq**2

    def round_time_s(
        self,
        power_w: np.ndarray,
        bandwidth_hz: np.ndarray,
        frequency_hz: np.ndarray,
    ) -> float:
        """Duration of one global round: ``max_n (T^cmp_n + T^up_n)``."""
        per_device = self.computation_time_s(frequency_hz) + self.upload_time_s(
            power_w, bandwidth_hz
        )
        return float(np.max(per_device))

    def per_device_round_time_s(
        self,
        power_w: np.ndarray,
        bandwidth_hz: np.ndarray,
        frequency_hz: np.ndarray,
    ) -> np.ndarray:
        """Per-device round duration ``T^cmp_n + T^up_n``."""
        return self.computation_time_s(frequency_hz) + self.upload_time_s(
            power_w, bandwidth_hz
        )

    def total_completion_time_s(
        self,
        power_w: np.ndarray,
        bandwidth_hz: np.ndarray,
        frequency_hz: np.ndarray,
    ) -> float:
        """Total completion time ``T = R_g max_n(T^cmp_n + T^up_n)``."""
        return self.global_rounds * self.round_time_s(power_w, bandwidth_hz, frequency_hz)

    def total_energy_j(
        self,
        power_w: np.ndarray,
        bandwidth_hz: np.ndarray,
        frequency_hz: np.ndarray,
    ) -> float:
        """Total energy ``E = R_g sum_n (E^trans_n + E^cmp_n)`` (eq. (6))."""
        per_round = self.upload_energy_j(power_w, bandwidth_hz) + self.computation_energy_j(
            frequency_hz
        )
        return self.global_rounds * float(per_round.sum())

    def energy_breakdown_j(
        self,
        power_w: np.ndarray,
        bandwidth_hz: np.ndarray,
        frequency_hz: np.ndarray,
    ) -> tuple[float, float]:
        """Total (transmission, computation) energy over all rounds."""
        trans = self.global_rounds * float(self.upload_energy_j(power_w, bandwidth_hz).sum())
        comp = self.global_rounds * float(self.computation_energy_j(frequency_hz).sum())
        return trans, comp

    # -- transformations -----------------------------------------------------
    def with_gains(
        self,
        gains: np.ndarray,
        *,
        channel_state: ChannelState | None = None,
    ) -> "SystemModel":
        """Copy with replaced channel gains (same fleet, bandwidth and schedule).

        This is how the closed-loop FL round loop re-realises the channel
        between global rounds: the large-scale drop stays fixed while a
        fresh small-scale fading draw perturbs the gains.  The stored
        ``channel_state`` is dropped unless a replacement is given — the old
        state's gains would no longer match.
        """
        return replace(
            self,
            gains=np.asarray(gains, dtype=float),
            channel_state=channel_state,
        )

    def with_schedule(self, *, local_iterations: int | None = None, global_rounds: int | None = None) -> "SystemModel":
        """Copy with a different FL schedule (Fig. 6 sweeps)."""
        return replace(
            self,
            local_iterations=self.local_iterations if local_iterations is None else local_iterations,
            global_rounds=self.global_rounds if global_rounds is None else global_rounds,
        )

    def with_devices(self, indices: "np.ndarray | list[int]") -> "SystemModel":
        """Copy restricted to the given device indices (fleet *and* gains).

        This is how the dynamic-fleet round loop re-solves around churned
        or battery-dead devices: the allocation problem shrinks to the
        active subset while the underlying drop (and its seed streams)
        stays defined over the full universe.  The stored ``channel_state``
        is dropped — its arrays would no longer line up with the subset.
        """
        index_array = np.asarray(indices, dtype=int)
        if index_array.ndim != 1 or index_array.size == 0:
            raise ConfigurationError("with_devices needs a non-empty 1-D index list")
        return replace(
            self,
            fleet=self.fleet.subset([int(i) for i in index_array]),
            gains=self.gains[index_array],
            channel_state=None,
        )

    def with_fleet(self, fleet: DeviceFleet) -> "SystemModel":
        """Copy with a different device fleet (same channel)."""
        if fleet.num_devices != self.num_devices:
            raise ConfigurationError("replacement fleet must have the same size")
        return replace(self, fleet=fleet)

    def with_max_power_w(self, max_power_w: float) -> "SystemModel":
        """Copy with every device's maximum transmit power replaced (Fig. 2/8)."""
        return replace(self, fleet=self.fleet.with_max_power_w(max_power_w))

    def with_max_frequency_hz(self, max_frequency_hz: float) -> "SystemModel":
        """Copy with every device's maximum CPU frequency replaced (Fig. 3)."""
        return replace(self, fleet=self.fleet.with_max_frequency_hz(max_frequency_hz))
