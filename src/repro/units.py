"""Unit conversions used throughout the wireless federated-learning models.

All internal computations use SI units (watts, hertz, seconds, joules,
bits).  The paper — like most of the wireless literature — states its
parameters in dBm (power), dB (gains / losses), MHz and kbits, so this
module provides the conversions between the "paper" units and the SI units
the solvers work with.
"""

from __future__ import annotations

import math

__all__ = [
    "dbm_to_watt",
    "watt_to_dbm",
    "db_to_linear",
    "linear_to_db",
    "dbm_per_hz_to_watt_per_hz",
    "mhz_to_hz",
    "hz_to_mhz",
    "ghz_to_hz",
    "hz_to_ghz",
    "kbit_to_bit",
    "bit_to_kbit",
    "mbit_to_bit",
    "km_to_m",
    "m_to_km",
]


def dbm_to_watt(dbm: float) -> float:
    """Convert a power level in dBm to watts."""
    return 10.0 ** (dbm / 10.0) * 1e-3


def watt_to_dbm(watt: float) -> float:
    """Convert a power level in watts to dBm."""
    if watt <= 0.0:
        raise ValueError(f"power must be positive to express in dBm, got {watt}")
    return 10.0 * math.log10(watt * 1e3)


def db_to_linear(db: float) -> float:
    """Convert a gain/attenuation in dB to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB."""
    if ratio <= 0.0:
        raise ValueError(f"ratio must be positive to express in dB, got {ratio}")
    return 10.0 * math.log10(ratio)


def dbm_per_hz_to_watt_per_hz(dbm_per_hz: float) -> float:
    """Convert a power spectral density in dBm/Hz to W/Hz."""
    return dbm_to_watt(dbm_per_hz)


def mhz_to_hz(mhz: float) -> float:
    """Convert megahertz to hertz."""
    return mhz * 1e6


def hz_to_mhz(hz: float) -> float:
    """Convert hertz to megahertz."""
    return hz / 1e6


def ghz_to_hz(ghz: float) -> float:
    """Convert gigahertz to hertz."""
    return ghz * 1e9


def hz_to_ghz(hz: float) -> float:
    """Convert hertz to gigahertz."""
    return hz / 1e9


def kbit_to_bit(kbit: float) -> float:
    """Convert kilobits to bits (1 kbit = 1000 bits)."""
    return kbit * 1e3


def bit_to_kbit(bit: float) -> float:
    """Convert bits to kilobits."""
    return bit / 1e3


def mbit_to_bit(mbit: float) -> float:
    """Convert megabits to bits."""
    return mbit * 1e6


def km_to_m(km: float) -> float:
    """Convert kilometres to metres."""
    return km * 1e3


def m_to_km(m: float) -> float:
    """Convert metres to kilometres."""
    return m / 1e3
