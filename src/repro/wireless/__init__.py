"""Wireless-network substrate: topology, channel model, rates and spectrum.

The paper evaluates its resource-allocation algorithm on a single-cell FDMA
uplink: ``N`` devices are dropped uniformly in a disc around one base
station, the channel gain of each device follows a 3GPP-style distance
path loss plus log-normal shadowing, and the achievable uplink rate is the
Shannon capacity of the allocated sub-band.  This package implements that
substrate from scratch.
"""

from .channel import ChannelModel, ChannelState
from .fading import (
    FadingModel,
    NakagamiFading,
    RayleighFading,
    RicianFading,
    fading_models,
    make_fading,
    register_fading_model,
)
from .noise import NoiseModel
from .pathloss import LogDistancePathLoss
from .rate import (
    min_bandwidth_for_rate,
    required_power_for_rate,
    shannon_rate,
    spectral_efficiency,
)
from .shadowing import LogNormalShadowing
from .spectrum import BandwidthAllocation, SpectrumManager
from .topology import (
    Topology,
    cell_edge_ring_topology,
    clustered_hotspot_topology,
    indoor_grid_topology,
    uniform_disc_topology,
)

__all__ = [
    "ChannelModel",
    "ChannelState",
    "FadingModel",
    "RayleighFading",
    "RicianFading",
    "NakagamiFading",
    "fading_models",
    "make_fading",
    "register_fading_model",
    "NoiseModel",
    "LogDistancePathLoss",
    "LogNormalShadowing",
    "shannon_rate",
    "spectral_efficiency",
    "required_power_for_rate",
    "min_bandwidth_for_rate",
    "BandwidthAllocation",
    "SpectrumManager",
    "Topology",
    "uniform_disc_topology",
    "cell_edge_ring_topology",
    "clustered_hotspot_topology",
    "indoor_grid_topology",
]
