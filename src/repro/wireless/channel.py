"""Static channel state: path loss + shadowing (+ optional fading) -> gains.

The resource-allocation problem of the paper treats the channel gain
``g_n`` of each device as a known constant (large-scale fading only).  The
:class:`ChannelModel` combines a topology, a path-loss law and a shadowing
law into a :class:`ChannelState` that exposes the gains the optimizer needs.
Scenario families can additionally layer a small-scale
:class:`~repro.wireless.fading.FadingModel` and a per-device extra loss
(e.g. indoor wall penetration) on the same chain; the paper recipe leaves
both off, which keeps its realisations bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from .fading import FadingModel
from .noise import NoiseModel
from .pathloss import LogDistancePathLoss
from .shadowing import LogNormalShadowing
from .topology import Topology

__all__ = ["ChannelModel", "ChannelState"]


@dataclass(frozen=True)
class ChannelState:
    """Realised large-scale channel for one user drop.

    Attributes
    ----------
    gains:
        Linear power gains ``g_n`` between each device and the base station.
    distances_km:
        Device-to-base-station distances, in kilometres.
    path_loss_db / shadowing_db:
        The two components of the loss, in dB, for inspection and tests.
    fading_db:
        Additional small-scale / penetration loss in dB (zeros for the
        paper's large-scale-only recipe).
    """

    gains: np.ndarray
    distances_km: np.ndarray
    path_loss_db: np.ndarray
    shadowing_db: np.ndarray
    fading_db: np.ndarray | None = None

    def __post_init__(self) -> None:
        gains = np.asarray(self.gains, dtype=float)
        if np.any(gains <= 0.0):
            raise ConfigurationError("channel gains must be strictly positive")
        object.__setattr__(self, "gains", gains)
        object.__setattr__(self, "distances_km", np.asarray(self.distances_km, dtype=float))
        object.__setattr__(self, "path_loss_db", np.asarray(self.path_loss_db, dtype=float))
        object.__setattr__(self, "shadowing_db", np.asarray(self.shadowing_db, dtype=float))
        fading = self.fading_db
        fading = np.zeros_like(gains) if fading is None else np.asarray(fading, dtype=float)
        object.__setattr__(self, "fading_db", fading)

    @property
    def num_devices(self) -> int:
        """Number of devices this state describes."""
        return int(self.gains.shape[0])

    def total_loss_db(self) -> np.ndarray:
        """Total loss (path loss + shadowing + fading) in dB."""
        return self.path_loss_db + self.shadowing_db + self.fading_db

    def subset(self, indices: np.ndarray) -> "ChannelState":
        """Channel state restricted to the given device indices."""
        idx = np.asarray(indices)
        return ChannelState(
            gains=self.gains[idx],
            distances_km=self.distances_km[idx],
            path_loss_db=self.path_loss_db[idx],
            shadowing_db=self.shadowing_db[idx],
            fading_db=self.fading_db[idx],
        )


@dataclass(frozen=True)
class ChannelModel:
    """Generator of :class:`ChannelState` realisations for a topology."""

    path_loss: LogDistancePathLoss = field(default_factory=LogDistancePathLoss)
    shadowing: LogNormalShadowing = field(default_factory=LogNormalShadowing)
    noise: NoiseModel = field(default_factory=NoiseModel)
    fading: FadingModel | None = None

    def realize(
        self,
        topology: Topology,
        rng: np.random.Generator | int | None = None,
        *,
        extra_loss_db: np.ndarray | float | None = None,
    ) -> ChannelState:
        """Sample the channel for every device in ``topology``.

        ``extra_loss_db`` adds a deterministic per-device loss (e.g. wall
        penetration) on top of the stochastic chain.  When ``self.fading``
        is ``None`` no extra random numbers are drawn, so the paper recipe
        realises exactly as before.
        """
        # One generator for both stochastic stages: re-seeding per stage from
        # an int ``rng`` would correlate the shadowing and fading draws.
        generator = np.random.default_rng(rng)
        distances = topology.distances_km()
        loss_db = self.path_loss.loss_db(distances)
        shadow_db = self.shadowing.sample_db(topology.num_devices, generator)
        fading_db = np.zeros(topology.num_devices, dtype=float)
        if self.fading is not None:
            # Fading dB gain -> loss (positive weakens the link).
            fading_db -= self.fading.sample_db(topology.num_devices, generator)
        if extra_loss_db is not None:
            fading_db += np.broadcast_to(
                np.asarray(extra_loss_db, dtype=float), (topology.num_devices,)
            )
        gains = 10.0 ** (-(loss_db + shadow_db + fading_db) / 10.0)
        return ChannelState(
            gains=gains,
            distances_km=distances,
            path_loss_db=loss_db,
            shadowing_db=shadow_db,
            fading_db=fading_db,
        )

    def mean_gain_at(self, distance_km: float) -> float:
        """Expected linear gain at a distance, averaging over shadowing.

        For log-normal shadowing with standard deviation ``s`` dB the mean
        linear factor is ``exp((s * ln10 / 10)^2 / 2)``.
        """
        base = float(self.path_loss.gain_linear(distance_km))
        sigma_ln = self.shadowing.std_db * np.log(10.0) / 10.0
        return base * float(np.exp(0.5 * sigma_ln**2))
