"""Small-scale fading models layered on the large-scale channel.

The paper's allocator treats the channel gain as a large-scale constant
(path loss + shadowing only).  The non-paper scenario families add a
small-scale multipath component on top: each model draws one *power* gain
factor per device with unit mean, so enabling fading perturbs individual
devices without biasing the average link budget.

Models are registered by name (:data:`FADING_MODELS`) so scenario families
can construct them from JSON-able parameters (``fading="rician"``,
``fading_params={"k_db": 6.0}``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "FadingModel",
    "RayleighFading",
    "RicianFading",
    "NakagamiFading",
    "register_fading_model",
    "fading_models",
    "make_fading",
]


class FadingModel:
    """Interface: draw one linear power gain factor per device (unit mean)."""

    def sample_linear(
        self, num_devices: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        raise NotImplementedError

    def sample_db(
        self, num_devices: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Draw fading as a dB *gain* (negative values weaken the link)."""
        return 10.0 * np.log10(self.sample_linear(num_devices, rng))


def _check_num_devices(num_devices: int) -> None:
    if num_devices <= 0:
        raise ConfigurationError(f"num_devices must be positive, got {num_devices}")


@dataclass(frozen=True)
class RayleighFading(FadingModel):
    """Rayleigh fading: no line of sight, power gain ~ Exp(1)."""

    #: Floor on the linear power factor so one deep fade cannot produce a
    #: numerically degenerate (zero) channel gain.
    floor: float = 1e-6

    def __post_init__(self) -> None:
        if not 0.0 < self.floor < 1.0:
            raise ConfigurationError("floor must lie in (0, 1)")

    def sample_linear(
        self, num_devices: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        _check_num_devices(num_devices)
        generator = np.random.default_rng(rng)
        return np.maximum(generator.exponential(1.0, size=num_devices), self.floor)


@dataclass(frozen=True)
class RicianFading(FadingModel):
    """Rician fading with K-factor ``k_db`` (line-of-sight + scatter).

    The power gain is ``|sqrt(K/(K+1)) + sqrt(1/(K+1)) h|^2`` with
    ``h ~ CN(0, 1)``, which has unit mean for every K.  Large K approaches a
    pure line-of-sight channel; ``K -> 0`` recovers Rayleigh.
    """

    k_db: float = 6.0
    floor: float = 1e-6

    def __post_init__(self) -> None:
        if not 0.0 < self.floor < 1.0:
            raise ConfigurationError("floor must lie in (0, 1)")

    def sample_linear(
        self, num_devices: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        _check_num_devices(num_devices)
        generator = np.random.default_rng(rng)
        k = 10.0 ** (self.k_db / 10.0)
        los = np.sqrt(k / (k + 1.0))
        scatter_std = np.sqrt(1.0 / (2.0 * (k + 1.0)))
        real = los + generator.normal(0.0, scatter_std, size=num_devices)
        imag = generator.normal(0.0, scatter_std, size=num_devices)
        return np.maximum(real**2 + imag**2, self.floor)


@dataclass(frozen=True)
class NakagamiFading(FadingModel):
    """Nakagami-m fading: power gain ~ Gamma(m, 1/m) (unit mean).

    ``m = 1`` is Rayleigh; larger ``m`` concentrates the distribution
    (milder fading); ``m = 0.5`` is the one-sided Gaussian worst case.
    """

    m: float = 2.0
    floor: float = 1e-6

    def __post_init__(self) -> None:
        if self.m < 0.5:
            raise ConfigurationError(f"Nakagami m must be >= 0.5, got {self.m}")
        if not 0.0 < self.floor < 1.0:
            raise ConfigurationError("floor must lie in (0, 1)")

    def sample_linear(
        self, num_devices: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        _check_num_devices(num_devices)
        generator = np.random.default_rng(rng)
        return np.maximum(
            generator.gamma(self.m, 1.0 / self.m, size=num_devices), self.floor
        )


#: Registered fading-model constructors, keyed by name.
FADING_MODELS: dict[str, Callable[..., FadingModel]] = {}


def register_fading_model(
    name: str,
) -> Callable[[Callable[..., FadingModel]], Callable[..., FadingModel]]:
    """Register a fading-model constructor under ``name``."""

    def decorator(factory: Callable[..., FadingModel]) -> Callable[..., FadingModel]:
        FADING_MODELS[name] = factory
        return factory

    return decorator


def fading_models() -> tuple[str, ...]:
    """The registered fading-model names."""
    return tuple(sorted(FADING_MODELS))


def make_fading(name: str, **params) -> FadingModel:
    """Construct a registered fading model from JSON-able parameters."""
    try:
        factory = FADING_MODELS[name]
    except KeyError as exc:
        known = ", ".join(fading_models())
        raise ConfigurationError(
            f"unknown fading model {name!r}; known: {known}"
        ) from exc
    return factory(**params)


register_fading_model("rayleigh")(RayleighFading)
register_fading_model("rician")(RicianFading)
register_fading_model("nakagami")(NakagamiFading)
