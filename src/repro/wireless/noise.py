"""Receiver noise model.

The paper uses additive white Gaussian noise with power spectral density
``N0 = -174 dBm/Hz``; the noise power inside an allocated sub-band of width
``B_n`` is ``N0 * B_n`` (this exact scaling with bandwidth is what makes the
joint bandwidth/power optimization non-trivial — see the discussion of [3]
in Section II-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants, units
from ..exceptions import ConfigurationError

__all__ = ["NoiseModel"]


@dataclass(frozen=True)
class NoiseModel:
    """White Gaussian noise with a flat power spectral density."""

    psd_w_per_hz: float = constants.NOISE_PSD_W_PER_HZ
    #: Additional receiver noise figure in dB (0 dB in the paper).
    noise_figure_db: float = 0.0

    def __post_init__(self) -> None:
        if self.psd_w_per_hz <= 0.0:
            raise ConfigurationError("noise PSD must be positive")
        if self.noise_figure_db < 0.0:
            raise ConfigurationError("noise figure must be non-negative")

    @classmethod
    def from_dbm_per_hz(cls, psd_dbm_per_hz: float, noise_figure_db: float = 0.0) -> "NoiseModel":
        """Build a noise model from a PSD expressed in dBm/Hz."""
        return cls(
            psd_w_per_hz=units.dbm_per_hz_to_watt_per_hz(psd_dbm_per_hz),
            noise_figure_db=noise_figure_db,
        )

    @property
    def effective_psd_w_per_hz(self) -> float:
        """PSD including the receiver noise figure."""
        return self.psd_w_per_hz * units.db_to_linear(self.noise_figure_db)

    def power_w(self, bandwidth_hz: np.ndarray | float) -> np.ndarray:
        """Noise power (W) in a band of the given width."""
        bw = np.asarray(bandwidth_hz, dtype=float)
        if np.any(bw < 0.0):
            raise ValueError("bandwidth must be non-negative")
        return self.effective_psd_w_per_hz * bw

    def psd_dbm_per_hz(self) -> float:
        """PSD expressed in dBm/Hz (inverse of :meth:`from_dbm_per_hz`)."""
        return units.watt_to_dbm(self.psd_w_per_hz)
