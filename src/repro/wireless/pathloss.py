"""Distance-dependent path loss.

The paper models the channel's path loss as ``128.1 + 37.6 log10(d)`` dB
with ``d`` in kilometres — the common 3GPP macro-cell model.  The class here
is parameterised so other deployments (micro cell, free space) can be
expressed with the same code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants, units
from ..exceptions import ConfigurationError

__all__ = ["LogDistancePathLoss"]


@dataclass(frozen=True)
class LogDistancePathLoss:
    """Log-distance path loss ``PL(d) = intercept + slope * log10(d_km)`` in dB."""

    intercept_db: float = constants.PATH_LOSS_CONSTANT_DB
    slope_db_per_decade: float = constants.PATH_LOSS_EXPONENT_DB_PER_DECADE
    min_distance_km: float = 1e-3

    def __post_init__(self) -> None:
        if self.slope_db_per_decade <= 0.0:
            raise ConfigurationError("path-loss slope must be positive")
        if self.min_distance_km <= 0.0:
            raise ConfigurationError("min_distance_km must be positive")

    def loss_db(self, distances_km: np.ndarray | float) -> np.ndarray:
        """Path loss in dB at the given distances (km)."""
        d = np.maximum(np.asarray(distances_km, dtype=float), self.min_distance_km)
        return self.intercept_db + self.slope_db_per_decade * np.log10(d)

    def gain_linear(self, distances_km: np.ndarray | float) -> np.ndarray:
        """Linear channel power gain (no shadowing) at the given distances."""
        return 10.0 ** (-self.loss_db(distances_km) / 10.0)

    @classmethod
    def free_space(cls, frequency_ghz: float = 2.0) -> "LogDistancePathLoss":
        """Free-space path loss at ``frequency_ghz`` expressed in the same form."""
        # FSPL(dB) = 20 log10(d_km) + 20 log10(f_GHz) + 92.45
        intercept = 92.45 + 20.0 * np.log10(frequency_ghz)
        return cls(intercept_db=float(intercept), slope_db_per_decade=20.0)

    def coherence_distance_km(self, loss_budget_db: float) -> float:
        """Distance at which the loss reaches ``loss_budget_db`` (inverse model)."""
        exponent = (loss_budget_db - self.intercept_db) / self.slope_db_per_decade
        return float(max(10.0**exponent, self.min_distance_km))

    def __call__(self, distances_km: np.ndarray | float) -> np.ndarray:
        return self.loss_db(distances_km)


def _unused_unit_helper() -> float:
    """Keep a reference to :mod:`repro.units` for doc cross-linking."""
    return units.db_to_linear(0.0)
