"""Shannon-rate helpers (equation (1) of the paper) and their inverses.

The achievable uplink rate of device ``n`` is

    r_n = B_n log2(1 + g_n p_n / (N0 B_n)),

which is jointly concave in ``(p_n, B_n)`` (Lemma 1).  Besides the forward
formula, the optimizers need two inverse maps:

* the power required to reach a target rate in a given band
  (:func:`required_power_for_rate`), and
* the minimum bandwidth that reaches a target rate at a given power
  (:func:`min_bandwidth_for_rate`), which has no closed form and is solved
  by a vectorised bisection.
"""

from __future__ import annotations

import numpy as np

from ..solvers.bisection import bisect_vector

__all__ = [
    "shannon_rate",
    "spectral_efficiency",
    "required_power_for_rate",
    "min_bandwidth_for_rate",
    "rate_jacobian",
]


def shannon_rate(
    power_w: np.ndarray | float,
    bandwidth_hz: np.ndarray | float,
    gain: np.ndarray | float,
    noise_psd: float,
) -> np.ndarray:
    """Achievable rate ``B log2(1 + g p / (N0 B))`` in bit/s.

    Zero bandwidth yields zero rate (the limit of the formula).
    """
    p = np.asarray(power_w, dtype=float)
    b = np.asarray(bandwidth_hz, dtype=float)
    g = np.asarray(gain, dtype=float)
    p, b, g = np.broadcast_arrays(p, b, g)
    rate = np.zeros(p.shape, dtype=float)
    positive = b > 0.0
    snr = np.zeros_like(rate)
    snr[positive] = g[positive] * p[positive] / (noise_psd * b[positive])
    rate[positive] = b[positive] * np.log2(1.0 + snr[positive])
    if rate.ndim == 0:
        return rate[()]
    return rate


def spectral_efficiency(
    power_w: np.ndarray | float,
    bandwidth_hz: np.ndarray | float,
    gain: np.ndarray | float,
    noise_psd: float,
) -> np.ndarray:
    """Rate per hertz, ``log2(1 + g p / (N0 B))``."""
    b = np.asarray(bandwidth_hz, dtype=float)
    rate = shannon_rate(power_w, bandwidth_hz, gain, noise_psd)
    with np.errstate(divide="ignore", invalid="ignore"):
        eff = np.where(b > 0.0, rate / np.maximum(b, 1e-300), 0.0)
    return eff


def required_power_for_rate(
    rate_bps: np.ndarray | float,
    bandwidth_hz: np.ndarray | float,
    gain: np.ndarray | float,
    noise_psd: float,
) -> np.ndarray:
    """Power needed so that ``shannon_rate`` meets ``rate_bps`` exactly.

    ``p = (2^(r/B) - 1) N0 B / g``.  A zero target rate needs zero power;
    a positive target in a zero band needs infinite power.
    """
    r = np.asarray(rate_bps, dtype=float)
    b = np.asarray(bandwidth_hz, dtype=float)
    g = np.asarray(gain, dtype=float)
    r, b, g = np.broadcast_arrays(r, b, g)
    power = np.zeros(r.shape, dtype=float)
    zero_rate = r <= 0.0
    zero_band = (b <= 0.0) & ~zero_rate
    ok = ~zero_rate & ~zero_band
    power[zero_band] = np.inf
    power[ok] = (2.0 ** (r[ok] / b[ok]) - 1.0) * noise_psd * b[ok] / g[ok]
    if power.ndim == 0:
        return power[()]
    return power


def min_bandwidth_for_rate(
    rate_bps: np.ndarray,
    power_w: np.ndarray | float,
    gain: np.ndarray | float,
    noise_psd: float,
    *,
    bandwidth_cap_hz: float,
    tol: float = 1e-9,
) -> np.ndarray:
    """Smallest bandwidth achieving ``rate_bps`` at the given power.

    The rate is strictly increasing in bandwidth (for fixed power), so the
    answer is found by bisection on ``[0, bandwidth_cap_hz]``.  Entries whose
    target is unreachable even at the cap are returned as ``np.inf``.
    """
    r = np.asarray(rate_bps, dtype=float)
    p = np.broadcast_to(np.asarray(power_w, dtype=float), r.shape).copy()
    g = np.broadcast_to(np.asarray(gain, dtype=float), r.shape).copy()

    result = np.full(r.shape, np.inf)
    zero = r <= 0.0
    result[zero] = 0.0
    achievable = (
        shannon_rate(p, np.full(r.shape, bandwidth_cap_hz), g, noise_psd) >= r
    ) & ~zero
    if not np.any(achievable):
        return result

    r_a, p_a, g_a = r[achievable], p[achievable], g[achievable]

    def residual(bw: np.ndarray) -> np.ndarray:
        return shannon_rate(p_a, bw, g_a, noise_psd) - r_a

    lo = np.full(r_a.shape, 1e-6)
    hi = np.full(r_a.shape, float(bandwidth_cap_hz))
    # Ensure the lower end is below the root (rate at tiny bandwidth is ~0).
    result[achievable] = bisect_vector(residual, lo, hi, tol=tol)
    return result


def rate_jacobian(
    power_w: np.ndarray,
    bandwidth_hz: np.ndarray,
    gain: np.ndarray,
    noise_psd: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Partial derivatives ``(d r / d p, d r / d B)`` of the Shannon rate.

    Used by tests to verify concavity claims (Lemma 1) numerically and by
    the gradient-based fallback solver.
    """
    p = np.asarray(power_w, dtype=float)
    b = np.asarray(bandwidth_hz, dtype=float)
    g = np.asarray(gain, dtype=float)
    p, b, g = np.broadcast_arrays(p, b, g)
    snr = np.where(b > 0, g * p / (noise_psd * np.maximum(b, 1e-300)), 0.0)
    ln2 = np.log(2.0)
    dr_dp = np.where(b > 0, g / (noise_psd * (1.0 + snr) * ln2), 0.0)
    dr_db = np.where(
        b > 0,
        np.log2(1.0 + snr) - snr / ((1.0 + snr) * ln2),
        0.0,
    )
    return dr_dp, dr_db
