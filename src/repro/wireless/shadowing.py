"""Log-normal shadow fading.

Section VII-A adds shadow fading with an 8 dB standard deviation on top of
the distance path loss.  Shadowing is drawn once per device (it models
large-scale obstructions, not fast fading) and is therefore part of the
static channel state used by the resource allocator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants
from ..exceptions import ConfigurationError

__all__ = ["LogNormalShadowing"]


@dataclass(frozen=True)
class LogNormalShadowing:
    """Zero-mean Gaussian shadowing in dB with the given standard deviation."""

    std_db: float = constants.SHADOWING_STD_DB
    #: Clip extreme draws to +/- ``clip_sigmas`` standard deviations so a
    #: single unlucky device cannot make the whole problem numerically
    #: degenerate (the paper averages over 100 drops instead).
    clip_sigmas: float = 3.0

    def __post_init__(self) -> None:
        if self.std_db < 0.0:
            raise ConfigurationError("shadowing std must be non-negative")
        if self.clip_sigmas <= 0.0:
            raise ConfigurationError("clip_sigmas must be positive")

    def sample_db(
        self, num_devices: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Draw one shadowing value (dB) per device."""
        if num_devices <= 0:
            raise ConfigurationError(f"num_devices must be positive, got {num_devices}")
        generator = np.random.default_rng(rng)
        draws = generator.normal(0.0, self.std_db, size=num_devices)
        limit = self.clip_sigmas * self.std_db
        if limit > 0.0:
            draws = np.clip(draws, -limit, limit)
        return draws

    def sample_linear(
        self, num_devices: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Draw shadowing as a linear multiplicative gain factor."""
        return 10.0 ** (self.sample_db(num_devices, rng) / 10.0)
