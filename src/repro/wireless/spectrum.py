"""FDMA spectrum management.

In FDMA every device gets its own sub-band, so there is no interference
between devices; the only coupling is the total-bandwidth budget
``sum_n B_n <= B`` (constraint (8c)).  :class:`SpectrumManager` owns that
budget and validates / normalises candidate allocations;
:class:`BandwidthAllocation` is the immutable result handed to the rest of
the system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants
from ..exceptions import ConfigurationError

__all__ = ["BandwidthAllocation", "SpectrumManager"]


@dataclass(frozen=True)
class BandwidthAllocation:
    """A feasible FDMA bandwidth assignment."""

    bandwidth_hz: np.ndarray
    total_budget_hz: float

    def __post_init__(self) -> None:
        bw = np.asarray(self.bandwidth_hz, dtype=float)
        if np.any(bw < 0.0):
            raise ConfigurationError("bandwidth allocations must be non-negative")
        object.__setattr__(self, "bandwidth_hz", bw)

    @property
    def num_devices(self) -> int:
        return int(self.bandwidth_hz.shape[0])

    @property
    def used_hz(self) -> float:
        """Total allocated bandwidth."""
        return float(self.bandwidth_hz.sum())

    @property
    def slack_hz(self) -> float:
        """Unallocated bandwidth."""
        return float(self.total_budget_hz - self.used_hz)

    @property
    def utilization(self) -> float:
        """Fraction of the budget in use."""
        if self.total_budget_hz <= 0.0:
            return 0.0
        return self.used_hz / self.total_budget_hz

    def is_feasible(self, rtol: float = 1e-6) -> bool:
        """Whether the allocation respects the budget (within tolerance)."""
        return self.used_hz <= self.total_budget_hz * (1.0 + rtol)


class SpectrumManager:
    """Owner of the shared uplink band."""

    def __init__(self, total_bandwidth_hz: float = constants.DEFAULT_TOTAL_BANDWIDTH_HZ):
        if total_bandwidth_hz <= 0.0:
            raise ConfigurationError("total bandwidth must be positive")
        self._total_bandwidth_hz = float(total_bandwidth_hz)

    @property
    def total_bandwidth_hz(self) -> float:
        """The shared uplink budget ``B``."""
        return self._total_bandwidth_hz

    def equal_split(self, num_devices: int, fraction: float = 1.0) -> BandwidthAllocation:
        """Split ``fraction`` of the budget equally among ``num_devices``.

        The paper's baselines use ``fraction = 1`` (``B/N``) and
        ``fraction = 0.5`` (``B/2N``, used to initialise Algorithm 2 in the
        Scheme-1 comparison).
        """
        if num_devices <= 0:
            raise ConfigurationError("num_devices must be positive")
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("fraction must lie in (0, 1]")
        per_device = self._total_bandwidth_hz * fraction / num_devices
        return BandwidthAllocation(
            bandwidth_hz=np.full(num_devices, per_device),
            total_budget_hz=self._total_bandwidth_hz,
        )

    def proportional_split(self, weights: np.ndarray) -> BandwidthAllocation:
        """Split the whole budget proportionally to non-negative ``weights``."""
        w = np.asarray(weights, dtype=float)
        if np.any(w < 0.0):
            raise ConfigurationError("weights must be non-negative")
        total = w.sum()
        if total <= 0.0:
            raise ConfigurationError("weights must not all be zero")
        return BandwidthAllocation(
            bandwidth_hz=self._total_bandwidth_hz * w / total,
            total_budget_hz=self._total_bandwidth_hz,
        )

    def allocate(self, bandwidth_hz: np.ndarray, *, normalize: bool = False) -> BandwidthAllocation:
        """Wrap an explicit allocation, optionally rescaling it to fit the budget."""
        bw = np.asarray(bandwidth_hz, dtype=float)
        if np.any(bw < 0.0):
            raise ConfigurationError("bandwidth allocations must be non-negative")
        used = bw.sum()
        if used > self._total_bandwidth_hz * (1.0 + 1e-9):
            if not normalize:
                raise ConfigurationError(
                    f"allocation uses {used:.4g} Hz, exceeding the budget "
                    f"{self._total_bandwidth_hz:.4g} Hz"
                )
            bw = bw * (self._total_bandwidth_hz / used)
        return BandwidthAllocation(bandwidth_hz=bw, total_budget_hz=self._total_bandwidth_hz)
