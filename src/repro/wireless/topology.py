"""Device placement around a single base station.

Section VII-A drops devices uniformly at random in a circular area centred
on the base station (default radius 0.25 km, swept up to 1.5 km in Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import constants
from ..exceptions import ConfigurationError

__all__ = ["Topology", "uniform_disc_topology"]


@dataclass(frozen=True)
class Topology:
    """Positions of the devices relative to the base station at the origin.

    Attributes
    ----------
    positions_km:
        Array of shape ``(N, 2)`` with Cartesian coordinates in kilometres.
    radius_km:
        Radius of the deployment disc the devices were drawn from.
    """

    positions_km: np.ndarray
    radius_km: float = constants.DEFAULT_CELL_RADIUS_KM
    base_station_km: np.ndarray = field(
        default_factory=lambda: np.zeros(2, dtype=float)
    )

    def __post_init__(self) -> None:
        positions = np.asarray(self.positions_km, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ConfigurationError(
                f"positions_km must have shape (N, 2), got {positions.shape}"
            )
        object.__setattr__(self, "positions_km", positions)
        object.__setattr__(
            self, "base_station_km", np.asarray(self.base_station_km, dtype=float)
        )

    @property
    def num_devices(self) -> int:
        """Number of devices in the topology."""
        return int(self.positions_km.shape[0])

    def distances_km(self) -> np.ndarray:
        """Euclidean distance of every device from the base station, in km."""
        deltas = self.positions_km - self.base_station_km[None, :]
        return np.linalg.norm(deltas, axis=1)

    def subset(self, indices: np.ndarray) -> "Topology":
        """Return a topology restricted to ``indices`` (preserving order)."""
        return Topology(
            positions_km=self.positions_km[np.asarray(indices)],
            radius_km=self.radius_km,
            base_station_km=self.base_station_km,
        )


def uniform_disc_topology(
    num_devices: int,
    radius_km: float = constants.DEFAULT_CELL_RADIUS_KM,
    *,
    rng: np.random.Generator | int | None = None,
    min_distance_km: float = 0.005,
) -> Topology:
    """Drop ``num_devices`` devices uniformly in a disc of ``radius_km``.

    ``min_distance_km`` keeps devices from landing on top of the base
    station, where the log-distance path-loss model is not defined.
    """
    if num_devices <= 0:
        raise ConfigurationError(f"num_devices must be positive, got {num_devices}")
    if radius_km <= 0.0:
        raise ConfigurationError(f"radius_km must be positive, got {radius_km}")
    if min_distance_km < 0.0 or min_distance_km >= radius_km:
        raise ConfigurationError(
            f"min_distance_km must lie in [0, radius_km), got {min_distance_km}"
        )
    generator = np.random.default_rng(rng)
    # Uniform density on a disc: radius ~ sqrt(U) * R.
    low = (min_distance_km / radius_km) ** 2
    radii = radius_km * np.sqrt(generator.uniform(low, 1.0, size=num_devices))
    angles = generator.uniform(0.0, 2.0 * np.pi, size=num_devices)
    positions = np.stack([radii * np.cos(angles), radii * np.sin(angles)], axis=1)
    return Topology(positions_km=positions, radius_km=radius_km)
