"""Device placement around a single base station.

Section VII-A drops devices uniformly at random in a circular area centred
on the base station (default radius 0.25 km, swept up to 1.5 km in Fig. 5);
:func:`uniform_disc_topology` implements that recipe.  The non-paper
scenario families add further layouts on the same :class:`Topology` type:
a cell-edge annulus (:func:`cell_edge_ring_topology`), clustered hotspots
(:func:`clustered_hotspot_topology`) and an indoor grid
(:func:`indoor_grid_topology`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import constants
from ..exceptions import ConfigurationError

__all__ = [
    "Topology",
    "uniform_disc_topology",
    "cell_edge_ring_topology",
    "clustered_hotspot_topology",
    "indoor_grid_topology",
]


@dataclass(frozen=True)
class Topology:
    """Positions of the devices relative to the base station at the origin.

    Attributes
    ----------
    positions_km:
        Array of shape ``(N, 2)`` with Cartesian coordinates in kilometres.
    radius_km:
        Radius of the deployment disc the devices were drawn from.
    """

    positions_km: np.ndarray
    radius_km: float = constants.DEFAULT_CELL_RADIUS_KM
    base_station_km: np.ndarray = field(
        default_factory=lambda: np.zeros(2, dtype=float)
    )

    def __post_init__(self) -> None:
        positions = np.asarray(self.positions_km, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ConfigurationError(
                f"positions_km must have shape (N, 2), got {positions.shape}"
            )
        object.__setattr__(self, "positions_km", positions)
        object.__setattr__(
            self, "base_station_km", np.asarray(self.base_station_km, dtype=float)
        )

    @property
    def num_devices(self) -> int:
        """Number of devices in the topology."""
        return int(self.positions_km.shape[0])

    def distances_km(self) -> np.ndarray:
        """Euclidean distance of every device from the base station, in km."""
        deltas = self.positions_km - self.base_station_km[None, :]
        return np.linalg.norm(deltas, axis=1)

    def subset(self, indices: np.ndarray) -> "Topology":
        """Return a topology restricted to ``indices`` (preserving order)."""
        return Topology(
            positions_km=self.positions_km[np.asarray(indices)],
            radius_km=self.radius_km,
            base_station_km=self.base_station_km,
        )


def uniform_disc_topology(
    num_devices: int,
    radius_km: float = constants.DEFAULT_CELL_RADIUS_KM,
    *,
    rng: np.random.Generator | int | None = None,
    min_distance_km: float = 0.005,
) -> Topology:
    """Drop ``num_devices`` devices uniformly in a disc of ``radius_km``.

    ``min_distance_km`` keeps devices from landing on top of the base
    station, where the log-distance path-loss model is not defined.
    """
    if num_devices <= 0:
        raise ConfigurationError(f"num_devices must be positive, got {num_devices}")
    if radius_km <= 0.0:
        raise ConfigurationError(f"radius_km must be positive, got {radius_km}")
    if min_distance_km < 0.0 or min_distance_km >= radius_km:
        raise ConfigurationError(
            f"min_distance_km must lie in [0, radius_km), got {min_distance_km}"
        )
    generator = np.random.default_rng(rng)
    # Uniform density on a disc: radius ~ sqrt(U) * R.
    low = (min_distance_km / radius_km) ** 2
    radii = radius_km * np.sqrt(generator.uniform(low, 1.0, size=num_devices))
    angles = generator.uniform(0.0, 2.0 * np.pi, size=num_devices)
    positions = np.stack([radii * np.cos(angles), radii * np.sin(angles)], axis=1)
    return Topology(positions_km=positions, radius_km=radius_km)


def cell_edge_ring_topology(
    num_devices: int,
    radius_km: float = constants.DEFAULT_CELL_RADIUS_KM,
    *,
    inner_fraction: float = 0.8,
    rng: np.random.Generator | int | None = None,
) -> Topology:
    """Drop devices uniformly in the annulus ``[inner_fraction * R, R]``.

    Every device sits near the cell edge, so path loss is uniformly bad —
    the upload (communication) side dominates the optimisation.
    """
    if radius_km <= 0.0:
        raise ConfigurationError(f"radius_km must be positive, got {radius_km}")
    if not 0.0 < inner_fraction < 1.0:
        raise ConfigurationError(
            f"inner_fraction must lie in (0, 1), got {inner_fraction}"
        )
    # An annulus is a disc whose keep-out radius is the inner edge.
    return uniform_disc_topology(
        num_devices, radius_km, rng=rng, min_distance_km=inner_fraction * radius_km
    )


def clustered_hotspot_topology(
    num_devices: int,
    radius_km: float = constants.DEFAULT_CELL_RADIUS_KM,
    *,
    num_clusters: int = 3,
    cluster_std_fraction: float = 0.08,
    rng: np.random.Generator | int | None = None,
    min_distance_km: float = 0.005,
) -> Topology:
    """Gaussian hotspots: cluster centres in the disc, devices around them.

    Cluster centres are dropped uniformly in the inner 70% of the disc and
    each device attaches to a uniformly chosen centre with an isotropic
    Gaussian offset of standard deviation ``cluster_std_fraction * R``.
    Positions are radially clipped into the disc, so the devices of one
    cluster share a similar link budget — grouped contention instead of the
    paper's smooth spread.
    """
    if num_devices <= 0:
        raise ConfigurationError(f"num_devices must be positive, got {num_devices}")
    if radius_km <= 0.0:
        raise ConfigurationError(f"radius_km must be positive, got {radius_km}")
    if num_clusters <= 0:
        raise ConfigurationError(f"num_clusters must be positive, got {num_clusters}")
    if cluster_std_fraction <= 0.0:
        raise ConfigurationError("cluster_std_fraction must be positive")
    generator = np.random.default_rng(rng)
    centre_radii = 0.7 * radius_km * np.sqrt(generator.uniform(0.0, 1.0, size=num_clusters))
    centre_angles = generator.uniform(0.0, 2.0 * np.pi, size=num_clusters)
    centres = np.stack(
        [centre_radii * np.cos(centre_angles), centre_radii * np.sin(centre_angles)],
        axis=1,
    )
    membership = generator.integers(0, num_clusters, size=num_devices)
    offsets = generator.normal(
        0.0, cluster_std_fraction * radius_km, size=(num_devices, 2)
    )
    positions = centres[membership] + offsets
    # Clip radially into [min_distance_km, radius_km].
    distances = np.linalg.norm(positions, axis=1)
    scale = np.clip(distances, min_distance_km, radius_km) / np.maximum(distances, 1e-12)
    positions = positions * scale[:, None]
    return Topology(positions_km=positions, radius_km=radius_km)


def indoor_grid_topology(
    num_devices: int,
    extent_km: float = 0.05,
    *,
    rng: np.random.Generator | int | None = None,
    jitter_fraction: float = 0.25,
) -> Topology:
    """A jittered square grid inside ``[-extent/2, extent/2]^2`` (indoor).

    The base station (access point) sits at the origin; devices occupy the
    cells of the smallest square grid that fits them, each jittered by
    ``jitter_fraction`` of a cell so repeated drops differ.  Distances are
    tens of metres, so path loss is dominated by wall penetration rather
    than distance (see the ``indoor`` scenario family).
    """
    if num_devices <= 0:
        raise ConfigurationError(f"num_devices must be positive, got {num_devices}")
    if extent_km <= 0.0:
        raise ConfigurationError(f"extent_km must be positive, got {extent_km}")
    if not 0.0 <= jitter_fraction < 0.5:
        raise ConfigurationError("jitter_fraction must lie in [0, 0.5)")
    generator = np.random.default_rng(rng)
    side = int(np.ceil(np.sqrt(num_devices)))
    cell = extent_km / side
    cells = np.arange(side * side)
    generator.shuffle(cells)
    cells = cells[:num_devices]
    rows, cols = np.divmod(cells, side)
    centres = np.stack(
        [(cols + 0.5) * cell - extent_km / 2.0, (rows + 0.5) * cell - extent_km / 2.0],
        axis=1,
    )
    jitter = generator.uniform(-jitter_fraction, jitter_fraction, size=(num_devices, 2))
    positions = centres + jitter * cell
    # The radius reported for an indoor layout is the enclosing circle's.
    return Topology(positions_km=positions, radius_km=extent_km * np.sqrt(2.0) / 2.0)
