"""Shared fixtures: small systems/problems every test module can reuse."""

from __future__ import annotations

import numpy as np
import pytest

from repro import JointProblem, ProblemWeights, build_paper_scenario
from repro.core.allocator import AllocatorConfig, ResourceAllocator


@pytest.fixture(scope="session")
def tiny_system():
    """A 6-device drop: enough structure to exercise every code path, fast."""
    return build_paper_scenario(num_devices=6, seed=123)


@pytest.fixture(scope="session")
def small_system():
    """A 15-device drop used by the heavier integration tests."""
    return build_paper_scenario(num_devices=15, seed=42)


@pytest.fixture()
def balanced_problem(tiny_system):
    """w1 = w2 = 0.5 on the tiny system."""
    return JointProblem(tiny_system, ProblemWeights(energy=0.5, time=0.5))


@pytest.fixture()
def energy_problem(tiny_system):
    """Energy-only objective (w1 = 1) with a generous completion-time budget."""
    return JointProblem(
        tiny_system, ProblemWeights(energy=1.0, time=0.0), deadline_s=200.0
    )


@pytest.fixture(scope="session")
def solved_balanced(small_system):
    """One full Algorithm-2 run shared by the result-inspection tests."""
    problem = JointProblem(small_system, ProblemWeights(energy=0.5, time=0.5))
    return problem, ResourceAllocator(AllocatorConfig()).solve(problem)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture()
def assert_kkt():
    """Assert a :class:`repro.core.verify.KKTCertificate` is clean.

    Usage: ``assert_kkt(check_kkt(...))`` — optionally loosening individual
    residuals by name, e.g. ``assert_kkt(cert, stationarity=1e-4)``.
    Replaces the ad-hoc per-test tolerance soup with one named-residual
    report that says *which* KKT condition broke.
    """

    def _assert(certificate, tol: float = 1e-6, **overrides: float) -> None:
        problems = certificate.problems(tol, **overrides)
        assert not problems, "; ".join(problems)

    return _assert
