"""Differential tests: the vector SP2 backend against the scalar oracle.

The vector backend is only shippable because it is continuously fuzzed
against the probe-sequential scalar implementation it replaced, on two
levels:

* **end-to-end** — Algorithm 2 on every registered scenario family, with
  the tracked sweep metrics held to the 1e-8 backend-parity gate (both
  backends polish the bandwidth multiplier onto the exact KKT root, so in
  practice they agree to round-off);
* **SP2-level (Hypothesis)** — randomized ``(system, nu, beta, r_min)``
  instances solved by both backends, compared directly *and* certified
  against the KKT residuals of Theorem 2, so agreement can never be
  mutual-bug agreement.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import JointProblem, ProblemWeights
from repro.core.allocator import AllocatorConfig, ResourceAllocator
from repro.core.subproblem2 import BACKENDS, solve_sp2_v2, validate_backend
from repro.core.sum_of_ratios import SumOfRatiosConfig, SumOfRatiosSolver
from repro.core.verify import check_kkt
from repro.exceptions import ConvergenceError, InfeasibleProblemError
from repro.scenarios import ScenarioSpec, scenario_families

#: The tracked metrics the bench parity gate compares (continuous values;
#: iteration counters are compared exactly instead).
_TRACKED_METRICS = (
    "objective",
    "energy_j",
    "completion_time_s",
    "transmission_energy_j",
    "computation_energy_j",
)

#: The acceptance gate: scalar and vector sweeps must agree to 1e-8.
BACKEND_PARITY_TOL = 1e-8


def _build(family: str, *, num_devices: int = 8, seed: int = 0):
    return ScenarioSpec.from_mapping(
        {"family": family, "num_devices": num_devices, "seed": seed}
    ).build()


def _sp2_inputs(system, rate_scale: np.ndarray, energy_weight: float = 0.5):
    """A Theorem-1 style ``(nu, beta, r_min)`` triple for one drop."""
    power = 0.5 * system.max_power_w
    bandwidth = np.full(
        system.num_devices, system.total_bandwidth_hz / (2 * system.num_devices)
    )
    rates = system.rates_bps(power, bandwidth)
    beta = power * system.upload_bits / rates
    nu = energy_weight * system.global_rounds / rates
    return nu, beta, rates * rate_scale


# -- configuration plumbing ---------------------------------------------------

def test_backend_registry_and_validation():
    assert set(BACKENDS) == {"scalar", "vector"}
    assert validate_backend("vector") == "vector"
    with pytest.raises(ValueError, match="unknown SP2 backend"):
        validate_backend("simd")
    with pytest.raises(ValueError, match="unknown SP2 backend"):
        ResourceAllocator(backend="simd")


def test_vector_is_the_default_backend(tiny_system):
    assert SumOfRatiosConfig().backend == "vector"
    assert ResourceAllocator().backend == "vector"
    assert SumOfRatiosSolver(tiny_system, 0.5).backend == "vector"
    # An explicit argument overrides the configuration.
    config = AllocatorConfig(sum_of_ratios=SumOfRatiosConfig(backend="vector"))
    assert ResourceAllocator(config, backend="scalar").backend == "scalar"


# -- end-to-end parity over every scenario family -----------------------------

@pytest.mark.parametrize("family", sorted(scenario_families()))
@pytest.mark.parametrize("energy_weight", [0.9, 0.3])
def test_algorithm2_backend_parity_per_family(family, energy_weight):
    system = _build(family, num_devices=8, seed=11)
    problem = JointProblem(system, ProblemWeights.from_energy_weight(energy_weight))
    scalar = ResourceAllocator(backend="scalar").solve(problem)
    vector = ResourceAllocator(backend="vector").solve(problem)

    assert vector.converged == scalar.converged
    assert vector.feasible == scalar.feasible
    assert vector.iterations == scalar.iterations
    assert vector.inner_iterations == scalar.inner_iterations
    scalar_summary, vector_summary = scalar.summary(), vector.summary()
    for metric in _TRACKED_METRICS:
        assert vector_summary[metric] == pytest.approx(
            scalar_summary[metric], rel=BACKEND_PARITY_TOL
        ), f"{family}: {metric} diverged between backends"


def test_backend_parity_with_deadline_constrained_problem():
    system = _build("paper", num_devices=8, seed=5)
    reference = ResourceAllocator().solve(
        JointProblem(system, ProblemWeights.from_energy_weight(0.5))
    )
    deadline = reference.completion_time_s * 1.2
    problem = JointProblem(
        system, ProblemWeights.from_energy_weight(1.0), deadline_s=deadline
    )
    scalar = ResourceAllocator(backend="scalar").solve(problem)
    vector = ResourceAllocator(backend="vector").solve(problem)
    for metric in _TRACKED_METRICS:
        assert vector.summary()[metric] == pytest.approx(
            scalar.summary()[metric], rel=BACKEND_PARITY_TOL
        )


def test_backend_parity_under_warm_hints(tiny_system):
    problem = JointProblem(tiny_system, ProblemWeights(energy=0.5, time=0.5))
    cold = ResourceAllocator(backend="vector").solve(problem)
    hints = cold.warm_hints
    assert hints.get("mu", 0.0) > 0.0
    warm_scalar = ResourceAllocator(backend="scalar").solve(problem, warm_hints=hints)
    warm_vector = ResourceAllocator(backend="vector").solve(problem, warm_hints=hints)
    for metric in _TRACKED_METRICS:
        assert warm_vector.summary()[metric] == pytest.approx(
            warm_scalar.summary()[metric], rel=BACKEND_PARITY_TOL
        )
        assert warm_vector.summary()[metric] == pytest.approx(
            cold.summary()[metric], rel=BACKEND_PARITY_TOL
        )


# -- SP2-level differential fuzz (Hypothesis) ---------------------------------

@pytest.mark.hypothesis
@settings(max_examples=40, deadline=None)
@given(
    family=st.sampled_from(sorted(scenario_families())),
    seed=st.integers(min_value=0, max_value=500),
    num_devices=st.integers(min_value=2, max_value=12),
    energy_weight=st.sampled_from([0.1, 0.5, 0.9]),
    scale_lo=st.floats(min_value=0.0, max_value=0.9),
    scale_width=st.floats(min_value=0.0, max_value=0.6),
)
def test_sp2_differential_fuzz_with_kkt_certificates(
    family, seed, num_devices, energy_weight, scale_lo, scale_width
):
    """Both backends agree on SP2_v2 *and* both satisfy the KKT system."""
    system = _build(family, num_devices=num_devices, seed=seed)
    rng = np.random.default_rng(seed)
    rate_scale = scale_lo + scale_width * rng.random(num_devices)
    nu, beta, rmin = _sp2_inputs(system, rate_scale, energy_weight)

    results, errors = {}, {}
    for backend in BACKENDS:
        try:
            results[backend] = solve_sp2_v2(system, nu, beta, rmin, backend=backend)
        except (InfeasibleProblemError, ConvergenceError) as exc:
            errors[backend] = type(exc).__name__

    # Either both backends solve the instance or both reject it.
    assert set(results) | set(errors) == set(BACKENDS)
    assert not (results and errors), (
        f"backends disagree on solvability: solved={sorted(results)}, "
        f"raised={errors}"
    )
    if errors:
        assert errors["scalar"] == errors["vector"]
        return

    scalar, vector = results["scalar"], results["vector"]
    assert vector.feasible == scalar.feasible
    # Near-vanishing rate requirements push x -> 1, where evaluating
    # x ln x - x + 1 in doubles cancels catastrophically: the multiplier's
    # root is then only conditioned to ~1e-6 relative (and loses all
    # relative meaning once mu falls below round-off of the per-device
    # scale j = nu d N0 / g), although the bandwidths it controls are
    # negligible there.  The decision variables below are held tight; mu
    # itself gets the conditioning allowance, with the absolute term a
    # decade above the 1e-12*j round-off boundary — right at it, the two
    # backends can land a factor apart while every decision variable
    # still agrees bitwise.
    j_scale = float(
        np.median(nu * system.upload_bits * system.noise_psd_w_per_hz / system.gains)
    )
    assert vector.bandwidth_multiplier == pytest.approx(
        scalar.bandwidth_multiplier, rel=1e-4, abs=1e-11 * j_scale
    )
    assert vector.objective == pytest.approx(scalar.objective, rel=1e-9, abs=1e-12)
    np.testing.assert_allclose(
        vector.power_w, scalar.power_w, rtol=1e-7, atol=1e-12
    )
    np.testing.assert_allclose(
        vector.bandwidth_hz, scalar.bandwidth_hz, rtol=1e-7, atol=1e-6
    )

    # Agreement alone could be a shared bug: certify both against the KKT
    # residuals of Theorem 2 (loosened only for the numeric fallback, whose
    # golden-section bandwidth split is coarser than the closed form).
    for backend, result in results.items():
        certificate = check_kkt(system, nu, beta, rmin, result)
        if result.feasible:
            problems = certificate.problems(
                1e-6 if result.method == "kkt" else 1e-4
            )
            assert not problems, f"{backend}: {'; '.join(problems)}"
