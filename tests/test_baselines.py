"""Tests for the baseline schemes of Section VII."""

import numpy as np
import pytest

from repro import JointProblem, ProblemWeights, ResourceAllocator
from repro.baselines import (
    BASELINES,
    communication_only,
    computation_only,
    delay_minimization,
    evaluate_allocation,
    get_baseline,
    random_benchmark,
    scheme1,
    static_equal_allocation,
)
from repro.baselines.scheme1 import Scheme1Config
from repro.exceptions import ConfigurationError, InfeasibleProblemError


@pytest.fixture(scope="module")
def deadline_problem(small_system):
    fast = ResourceAllocator().solve(
        JointProblem(small_system, ProblemWeights(energy=0.0, time=1.0))
    )
    return JointProblem(
        small_system,
        ProblemWeights(energy=1.0, time=0.0),
        deadline_s=fast.completion_time_s * 2.5,
    )


def test_registry_contains_all_schemes():
    for name in ("benchmark", "static", "communication_only", "computation_only", "delay_min", "scheme1"):
        assert name in BASELINES
        assert callable(get_baseline(name))
    with pytest.raises(ConfigurationError):
        get_baseline("nope")


def test_evaluate_allocation_wraps_metrics(balanced_problem):
    allocation = balanced_problem.initial_allocation()
    result = evaluate_allocation(balanced_problem, allocation, note="test")
    assert result.energy_j == pytest.approx(allocation.total_energy_j(balanced_problem.system))
    assert result.completion_time_s == pytest.approx(
        allocation.total_time_s(balanced_problem.system)
    )
    assert result.feasible


def test_random_benchmark_frequency_mode(balanced_problem, rng):
    result = random_benchmark(balanced_problem, randomize="frequency", rng=rng)
    system = balanced_problem.system
    assert np.allclose(result.allocation.power_w, system.max_power_w)
    assert np.allclose(
        result.allocation.bandwidth_hz, system.total_bandwidth_hz / system.num_devices
    )
    assert np.all(result.allocation.frequency_hz <= system.max_frequency_hz)
    assert result.feasible


def test_random_benchmark_power_mode(balanced_problem, rng):
    result = random_benchmark(balanced_problem, randomize="power", rng=rng)
    system = balanced_problem.system
    assert np.allclose(result.allocation.frequency_hz, system.max_frequency_hz)
    assert np.all(result.allocation.power_w <= system.max_power_w * (1 + 1e-9))
    assert np.all(result.allocation.power_w >= system.min_power_w * (1 - 1e-9))


def test_random_benchmark_rejects_unknown_mode(balanced_problem):
    with pytest.raises(ConfigurationError):
        random_benchmark(balanced_problem, randomize="bandwidth")


def test_proposed_beats_benchmark_on_objective(balanced_problem):
    proposed = ResourceAllocator().solve(balanced_problem)
    benchmark = random_benchmark(balanced_problem, rng=0)
    assert proposed.objective < benchmark.objective


def test_static_equal_allocation_is_feasible(balanced_problem):
    result = static_equal_allocation(balanced_problem)
    assert result.feasible
    system = balanced_problem.system
    assert np.allclose(result.allocation.frequency_hz, system.max_frequency_hz)


def test_delay_minimization_is_fastest(balanced_problem):
    system = balanced_problem.system
    fastest = delay_minimization(balanced_problem)
    # It beats the random benchmark outright (the benchmark computes slower).
    benchmark = random_benchmark(balanced_problem, rng=1)
    assert fastest.completion_time_s <= benchmark.completion_time_s * (1 + 1e-9)
    # Against the static equal split it wins on what it optimises: the
    # slowest upload (the compute side is identical, both run at f_max).
    static = static_equal_allocation(balanced_problem)

    def max_upload(result):
        return float(
            np.max(
                system.upload_time_s(
                    result.allocation.power_w, result.allocation.bandwidth_hz
                )
            )
        )

    assert max_upload(fastest) <= max_upload(static) * (1 + 1e-9)


def test_deadline_baselines_respect_the_budget(deadline_problem):
    for scheme in (scheme1, communication_only, computation_only):
        result = scheme(deadline_problem)
        assert result.feasible, scheme.__name__
        assert result.completion_time_s <= deadline_problem.deadline_s * (1 + 1e-6)


def test_proposed_beats_single_resource_baselines(deadline_problem):
    proposed = ResourceAllocator().solve(deadline_problem)
    comm = communication_only(deadline_problem)
    comp = computation_only(deadline_problem)
    assert proposed.energy_j <= comm.energy_j * (1 + 1e-6)
    assert proposed.energy_j <= comp.energy_j * (1 + 1e-6)


def test_proposed_beats_scheme1(deadline_problem):
    proposed = ResourceAllocator().solve(deadline_problem)
    baseline = scheme1(deadline_problem)
    assert proposed.energy_j <= baseline.energy_j * (1 + 1e-6)


def test_scheme1_optimized_split_variant_is_not_worse(deadline_problem):
    fixed = scheme1(deadline_problem)
    optimized = scheme1(deadline_problem, config=Scheme1Config(optimize_split=True))
    assert optimized.energy_j <= fixed.energy_j * (1 + 1e-6)


def test_deadline_schemes_require_a_deadline(balanced_problem):
    for scheme in (scheme1, communication_only, computation_only):
        with pytest.raises(ConfigurationError):
            scheme(balanced_problem)


def test_scheme1_detects_impossible_deadline(small_system):
    problem = JointProblem(
        small_system, ProblemWeights(energy=1.0, time=0.0), deadline_s=1.0
    )
    with pytest.raises(InfeasibleProblemError):
        scheme1(problem)


# -- backend knob coverage ----------------------------------------------------
#
# Baselines must be backend-transparent: the schemes that never touch the
# SP2 solver stack are bit-identical whichever backend is configured, and
# the one scheme that does (communication_only runs Algorithm 1) must stay
# within the 1e-8 backend-parity gate on the paper scenario.

def _solve_with_backend(name, problem, backend, rng_seed=7):
    from repro.core.sum_of_ratios import SumOfRatiosConfig

    kwargs = {}
    if name == "benchmark":
        kwargs["rng"] = rng_seed
    if name == "communication_only":
        kwargs["sum_of_ratios_config"] = SumOfRatiosConfig(backend=backend)
    return get_baseline(name)(problem, **kwargs)


@pytest.mark.parametrize("name", sorted(BASELINES))
def test_every_baseline_is_backend_transparent(name, balanced_problem, deadline_problem):
    problem = (
        deadline_problem
        if name in ("scheme1", "communication_only", "computation_only")
        else balanced_problem
    )
    scalar = _solve_with_backend(name, problem, "scalar")
    vector = _solve_with_backend(name, problem, "vector")
    if name == "communication_only":
        # Algorithm 1 runs inside: backends agree within the parity gate.
        np.testing.assert_allclose(
            vector.allocation.power_w, scalar.allocation.power_w, rtol=1e-8
        )
        np.testing.assert_allclose(
            vector.allocation.bandwidth_hz, scalar.allocation.bandwidth_hz, rtol=1e-8
        )
        assert vector.energy_j == pytest.approx(scalar.energy_j, rel=1e-8)
        assert vector.completion_time_s == pytest.approx(
            scalar.completion_time_s, rel=1e-8
        )
    else:
        # No SP2 involvement: the backend knob must not leak in at all.
        np.testing.assert_array_equal(
            vector.allocation.power_w, scalar.allocation.power_w
        )
        np.testing.assert_array_equal(
            vector.allocation.bandwidth_hz, scalar.allocation.bandwidth_hz
        )
        np.testing.assert_array_equal(
            vector.allocation.frequency_hz, scalar.allocation.frequency_hz
        )
        assert vector.energy_j == scalar.energy_j
        assert vector.completion_time_s == scalar.completion_time_s
