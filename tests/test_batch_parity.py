"""Differential tests: the batched multi-solve path against per-drop solves.

The batched allocator core is only shippable because its contract is
*exact*: a lane solved inside a ``(batch, num_devices)`` lockstep pass must
be bit-identical to the stand-alone per-drop solve — no tolerance at all.
Three levels enforce it:

* **end-to-end** — ``ResourceAllocator.solve_batch`` on every registered
  scenario family, every field (allocations, objective, iteration counts,
  convergence history, warm hints) compared with ``==``, never ``approx``;
* **runner-level** — ``SweepRunner(batch_size=...)`` outcomes, solution
  states and cache entries against the serial runner, plus the scheduling
  semantics (grouping, error-lane isolation, warm-chain exclusion);
* **kernel-level (Hypothesis)** — masked-lane isolation of the row-stopping
  Newton/golden-section kernels: lane ``k``'s iterates may never depend on
  what its neighbour lanes are doing, which is the property the end-to-end
  bit-parity rests on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import JointProblem, ProblemWeights
from repro.core.allocator import ResourceAllocator
from repro.core.subproblem1 import solve_subproblem1, solve_subproblem1_rows
from repro.core.subproblem2 import solve_sp2_v2, solve_sp2_v2_rows
from repro.exceptions import ConfigurationError
from repro.experiments.base import SweepConfig
from repro.experiments.fig2 import Fig2Config
from repro.experiments.runner import SweepRunner, SweepTask, task_hash
from repro.scenarios import ScenarioSpec, scenario_families
from repro.solvers.lambert import (
    lambert_solve_rows,
    lambert_solve_vector,
    solve_x_log_x,
    solve_x_log_x_rows,
)
from repro.solvers.scalar import golden_section_rows, golden_section_scalar


def _build(family: str, *, num_devices: int = 8, seed: int = 0):
    return ScenarioSpec.from_mapping(
        {"family": family, "num_devices": num_devices, "seed": seed}
    ).build()


def _assert_results_identical(batched, reference):
    """Every field of an AllocationResult, compared exactly."""
    assert not isinstance(batched, Exception), batched
    assert np.array_equal(batched.allocation.power_w, reference.allocation.power_w)
    assert np.array_equal(
        batched.allocation.bandwidth_hz, reference.allocation.bandwidth_hz
    )
    assert np.array_equal(
        batched.allocation.frequency_hz, reference.allocation.frequency_hz
    )
    assert batched.objective == reference.objective
    assert batched.round_deadline_s == reference.round_deadline_s
    assert batched.energy_j == reference.energy_j
    assert batched.completion_time_s == reference.completion_time_s
    assert batched.transmission_energy_j == reference.transmission_energy_j
    assert batched.computation_energy_j == reference.computation_energy_j
    assert batched.iterations == reference.iterations
    assert batched.inner_iterations == reference.inner_iterations
    assert batched.converged == reference.converged
    assert batched.feasible == reference.feasible
    assert batched.warm_hints == reference.warm_hints
    assert len(batched.history) == len(reference.history)
    for left, right in zip(batched.history, reference.history):
        assert left.objective == right.objective
        # NaN-safe exact equality (delay-only records carry no step change).
        np.testing.assert_array_equal(left.step_change, right.step_change)


# -- end-to-end: Algorithm 2 ---------------------------------------------------


@pytest.mark.parametrize("family", scenario_families())
def test_solve_batch_bit_identical_per_family(family):
    system = _build(family, num_devices=8, seed=3)
    problems = [
        JointProblem(system, ProblemWeights(w1, 1.0 - w1))
        for w1 in (0.9, 0.5, 0.1)
    ]
    allocator = ResourceAllocator()
    batched = allocator.solve_batch(problems)
    for problem, result in zip(problems, batched):
        _assert_results_identical(result, allocator.solve(problem))


def test_solve_batch_mixes_families_and_fleet_sizes():
    problems = []
    for i, family in enumerate(scenario_families()):
        system = _build(family, num_devices=6 + 2 * (i % 2), seed=i)
        problems.append(JointProblem(system, ProblemWeights(0.7, 0.3)))
    allocator = ResourceAllocator()
    batched = allocator.solve_batch(problems)
    for problem, result in zip(problems, batched):
        _assert_results_identical(result, allocator.solve(problem))


def test_solve_batch_routes_escape_lanes_through_per_drop_solver():
    system = _build("paper", num_devices=6, seed=0)
    problems = [
        JointProblem(system, ProblemWeights(0.5, 0.5)),
        # w1 = 0: the closed-form delay-only regime.
        JointProblem(system, ProblemWeights(0.0, 1.0)),
        # Hard completion-time budget: the deadline regime.
        JointProblem(system, ProblemWeights(0.5, 0.5), deadline_s=1e4),
    ]
    allocator = ResourceAllocator()
    batched = allocator.solve_batch(problems)
    for problem, result in zip(problems, batched):
        _assert_results_identical(result, allocator.solve(problem))


def test_solve_batch_exception_lanes_isolate():
    good = JointProblem(_build("paper", num_devices=6, seed=1), ProblemWeights(0.5, 0.5))
    # An impossible completion-time budget makes the initial point infeasible.
    bad = JointProblem(
        _build("paper", num_devices=6, seed=1),
        ProblemWeights(0.5, 0.5),
        deadline_s=1e-6,
    )
    allocator = ResourceAllocator()
    results = allocator.solve_batch([good, bad, good], return_exceptions=True)
    assert isinstance(results[1], Exception)
    _assert_results_identical(results[0], allocator.solve(good))
    _assert_results_identical(results[2], allocator.solve(good))
    # Without the gather idiom the failure propagates.
    with pytest.raises(Exception):
        allocator.solve_batch([good, bad, good])


# -- batched subproblem entry points ------------------------------------------


@pytest.mark.parametrize("family", scenario_families())
def test_solve_subproblem1_rows_bit_identical(family):
    system = _build(family, num_devices=10, seed=2)
    rng = np.random.default_rng(42)
    lanes = [
        (0.8, 0.2, rng.uniform(0.05, 0.4, size=10)),
        (0.5, 0.5, rng.uniform(0.05, 0.4, size=10)),
        (0.2, 0.8, rng.uniform(0.05, 0.4, size=10)),
    ]
    results = solve_subproblem1_rows(
        [system] * len(lanes),
        [w1 for w1, _, _ in lanes],
        [w2 for _, w2, _ in lanes],
        [upload for _, _, upload in lanes],
    )
    for (w1, w2, upload), result in zip(lanes, results):
        reference = solve_subproblem1(system, w1, w2, upload)
        assert not isinstance(result, Exception)
        assert np.array_equal(result.frequency_hz, reference.frequency_hz)
        assert result.round_deadline_s == reference.round_deadline_s
        assert result.objective == reference.objective
        assert result.method == reference.method


@pytest.mark.parametrize("family", scenario_families())
def test_solve_sp2_v2_rows_bit_identical(family):
    system = _build(family, num_devices=10, seed=5)
    rng = np.random.default_rng(7)
    power = 0.5 * system.max_power_w
    bandwidth = np.full(10, system.total_bandwidth_hz / 20.0)
    rates = system.rates_bps(power, bandwidth)
    lanes = []
    for scale in (0.5, 0.7, 0.9):
        nu = 0.5 * system.global_rounds / rates
        beta = power * system.upload_bits / rates
        min_rate = scale * rates * rng.uniform(0.9, 1.0, size=10)
        lanes.append((nu, beta, min_rate))
    results = solve_sp2_v2_rows(
        [system] * len(lanes),
        [nu for nu, _, _ in lanes],
        [beta for _, beta, _ in lanes],
        [r for _, _, r in lanes],
    )
    for (nu, beta, min_rate), result in zip(lanes, results):
        reference = solve_sp2_v2(system, nu, beta, min_rate)
        assert not isinstance(result, Exception)
        assert np.array_equal(result.power_w, reference.power_w)
        assert np.array_equal(result.bandwidth_hz, reference.bandwidth_hz)
        assert result.objective == reference.objective
        assert result.bandwidth_multiplier == reference.bandwidth_multiplier
        assert np.array_equal(result.rate_multipliers, reference.rate_multipliers)


# -- runner-level --------------------------------------------------------------


def _fig2_tasks(**sweep_kwargs):
    config = Fig2Config(
        sweep=SweepConfig(num_devices=8, num_trials=1, **sweep_kwargs),
        max_power_dbm_grid=(5.0, 9.0),
        weight_pairs=((0.9, 0.1), (0.5, 0.5)),
        include_benchmark=True,
    )
    return config.tasks()


def test_runner_batch_outcomes_match_serial_exactly():
    tasks = _fig2_tasks()
    serial = SweepRunner().run(tasks)
    runner = SweepRunner(batch_size=3)
    batched = runner.run(tasks)
    assert runner.last_stats.batches >= 1
    assert runner.last_stats.batched_tasks > 0
    assert len(serial) == len(batched)
    for left, right in zip(serial, batched):
        assert task_hash(left.task) == task_hash(right.task)
        assert left.error == right.error
        assert left.metrics == right.metrics
        assert left.state == right.state


def test_runner_batch_cache_keys_interoperate(tmp_path):
    tasks = _fig2_tasks()
    batched_runner = SweepRunner(batch_size=4, cache_dir=tmp_path, use_cache=True)
    batched_runner.run(tasks)
    serial_runner = SweepRunner(cache_dir=tmp_path, use_cache=True)
    outcomes = serial_runner.run(tasks)
    # Every batched entry is a hit for the serial run: identical cache keys
    # *and* identical stored results.
    assert serial_runner.last_stats.cache_hits == len(tasks)
    reference = SweepRunner().run(tasks)
    for cached, fresh in zip(outcomes, reference):
        assert cached.metrics == fresh.metrics
        assert cached.state == fresh.state


def test_runner_batch_error_lane_isolation():
    tasks = _fig2_tasks()
    proposed = [t for t in tasks if t.solver_kind == "proposed"]
    broken = SweepTask(
        key=("broken",),
        scenario=dict(proposed[0].scenario),
        solver_kind="proposed",
        solver_params={},  # no energy_weight -> KeyError inside the batch
    )
    mixed = [proposed[0], broken, proposed[1]]
    outcomes = SweepRunner(batch_size=4).run(mixed)
    reference = SweepRunner().run(mixed)
    assert outcomes[1].error == reference[1].error  # same "Type: message" string
    assert outcomes[1].metrics is None
    for index in (0, 2):
        assert outcomes[index].error is None
        assert outcomes[index].metrics == reference[index].metrics


def test_runner_batch_excludes_warm_chains_and_non_proposed():
    tasks = _fig2_tasks()
    runner = SweepRunner(batch_size=4, warm_start=True)
    outcomes = runner.run(tasks)
    # Warm-chained proposed tasks and baseline tasks both stay off the
    # batched path; with fig2's warm keys set, nothing batches.
    chained = [
        t for t in tasks if t.solver_kind == "proposed" and t.warm_key is not None
    ]
    if chained:
        assert runner.last_stats.batched_tasks <= len(tasks) - len(chained)
    assert all(outcome.ok for outcome in outcomes)


def test_runner_batch_rejects_process_pool():
    with pytest.raises(ConfigurationError):
        SweepRunner(jobs=4, batch_size=8)


def test_runner_batch_size_one_disables_batching():
    runner = SweepRunner(batch_size=1)
    assert runner.batch is None
    runner = SweepRunner(batch_size=None)
    assert runner.batch is None


def test_runner_batch_group_key_separates_shapes():
    tasks = _fig2_tasks()
    proposed = [t for t in tasks if t.solver_kind == "proposed"]
    other = SweepTask(
        key=proposed[0].key,
        scenario={**dict(proposed[0].scenario), "num_devices": 4},
        solver_kind="proposed",
        solver_params=dict(proposed[0].solver_params),
    )
    assert SweepRunner.batch_group_key(proposed[0]) == SweepRunner.batch_group_key(
        proposed[1]
    )
    assert SweepRunner.batch_group_key(proposed[0]) != SweepRunner.batch_group_key(
        other
    )


# -- kernel-level masked-lane isolation (Hypothesis) ---------------------------


@pytest.mark.hypothesis
class TestMaskedLaneIsolation:
    """A lane's iterates may never depend on its neighbour lanes.

    The row kernels freeze converged rows and keep iterating the rest; the
    property tested here is the strong form the bit-parity contract needs:
    row ``k`` of a rows solve equals the stand-alone 1-D solve of row ``k``
    *whatever* the other rows are — including rows that converge much
    faster, much slower, or not at all in the same round count.
    """

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_solve_x_log_x_rows_matches_per_row(self, data):
        num_rows = data.draw(st.integers(min_value=1, max_value=5))
        width = data.draw(st.integers(min_value=1, max_value=6))
        rhs = np.array(
            [
                [
                    data.draw(
                        st.floats(
                            min_value=0.0,
                            max_value=1e6,
                            allow_nan=False,
                            allow_infinity=False,
                        )
                    )
                    for _ in range(width)
                ]
                for _ in range(num_rows)
            ]
        )
        rows = solve_x_log_x_rows(rhs)
        for k in range(num_rows):
            alone = solve_x_log_x(rhs[k])
            np.testing.assert_array_equal(rows[k], alone)

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_lambert_solve_rows_matches_per_row(self, data):
        num_rows = data.draw(st.integers(min_value=1, max_value=5))
        width = data.draw(st.integers(min_value=1, max_value=6))
        rhs = np.array(
            [
                [
                    data.draw(
                        st.floats(
                            min_value=0.0,
                            max_value=1e8,
                            allow_nan=False,
                            allow_infinity=False,
                        )
                    )
                    for _ in range(width)
                ]
                for _ in range(num_rows)
            ]
        )
        rows = lambert_solve_rows(rhs)
        for k in range(num_rows):
            alone = lambert_solve_vector(rhs[k])
            np.testing.assert_array_equal(rows[k], alone)

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_neighbour_lane_cannot_perturb_a_row(self, data):
        """Replacing every *other* lane leaves lane k's bits untouched."""
        width = data.draw(st.integers(min_value=1, max_value=5))
        row = np.array(
            [
                data.draw(
                    st.floats(
                        min_value=0.0,
                        max_value=1e6,
                        allow_nan=False,
                        allow_infinity=False,
                    )
                )
                for _ in range(width)
            ]
        )
        neighbour_a = np.full(width, 1e-9)  # converges immediately
        neighbour_b = np.full(width, 9.9e5)  # needs many more rounds
        with_a = solve_x_log_x_rows(np.stack([neighbour_a, row]))
        with_b = solve_x_log_x_rows(np.stack([neighbour_b, row, neighbour_b]))
        np.testing.assert_array_equal(with_a[1], with_b[1])

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_golden_section_rows_matches_scalar_per_lane(self, data):
        num_lanes = data.draw(st.integers(min_value=1, max_value=5))
        centers = [
            data.draw(
                st.floats(
                    min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False
                )
            )
            for _ in range(num_lanes)
        ]
        widths = [
            data.draw(
                st.floats(
                    min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False
                )
            )
            for _ in range(num_lanes)
        ]
        lo = np.array([c - w for c, w in zip(centers, widths)])
        hi = np.array([c + w for c, w in zip(centers, widths)])

        def func(lanes, x):
            return (x - np.asarray(centers)[lanes]) ** 2

        xs, fs = golden_section_rows(func, lo, hi)
        for k in range(num_lanes):
            x_ref, f_ref = golden_section_scalar(
                lambda x, c=centers[k]: (x - c) ** 2, float(lo[k]), float(hi[k])
            )
            assert xs[k] == x_ref
            assert fs[k] == f_ref
