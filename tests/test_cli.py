"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.registry import EXPERIMENTS


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    printed = capsys.readouterr().out.split()
    assert set(printed) == set(EXPERIMENTS)


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "fig99"])


def test_parser_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_samples_and_save_outputs(tmp_path, capsys, monkeypatch):
    # Swap in a fast stub experiment so the CLI test stays quick.
    from repro.experiments.results import ResultTable

    def fake_runner(config=None):
        table = ResultTable(name="stub", columns=["x", "y"])
        table.add_row(x=1, y=2.0)
        return table

    monkeypatch.setitem(EXPERIMENTS, "samples", fake_runner)
    json_path = tmp_path / "out.json"
    csv_path = tmp_path / "out.csv"
    assert main(["run", "samples", "--output", str(json_path), "--csv", str(csv_path)]) == 0
    out = capsys.readouterr().out
    assert "| x | y |" in out
    payload = json.loads(json_path.read_text())
    assert payload["rows"] == [{"x": 1, "y": 2.0}]
    assert csv_path.read_text().startswith("x,y")


def test_paper_flag_uses_paper_config(monkeypatch, capsys):
    import repro.experiments.fig2 as fig2_module

    captured = {}

    def fake_run(config=None):
        captured["config"] = config
        from repro.experiments.results import ResultTable

        table = ResultTable(name="stub", columns=["a"])
        table.add_row(a=1)
        return table

    monkeypatch.setitem(EXPERIMENTS, "fig2", fake_run)
    assert main(["run", "fig2", "--paper"]) == 0
    assert captured["config"] == fig2_module.Fig2Config.paper()
    capsys.readouterr()


def test_list_scenarios_prints_every_family(capsys):
    from repro import scenario_families

    assert main(["list-scenarios"]) == 0
    out = capsys.readouterr().out
    for name in scenario_families():
        assert f"{name}:" in out
    assert "defaults:" in out


def test_scenario_flag_points_the_sweep_at_the_family(monkeypatch, capsys):
    captured = {}

    def fake_run(config=None):
        captured["config"] = config
        from repro.experiments.results import ResultTable

        table = ResultTable(name="stub", columns=["a"])
        table.add_row(a=1)
        return table

    monkeypatch.setitem(EXPERIMENTS, "samples", fake_run)
    assert main([
        "run", "samples",
        "--scenario", "hotspot",
        "--scenario-param", "num_clusters=5",
        "--scenario-param", "label=edge",
    ]) == 0
    capsys.readouterr()
    sweep = captured["config"].sweep
    assert sweep.scenario_family == "hotspot"
    # JSON value parsed as int, non-JSON falls back to the raw string.
    assert sweep.scenario_extra == {"num_clusters": 5, "label": "edge"}


def test_scenario_flag_rejects_unknown_family(monkeypatch, capsys):
    assert main(["run", "samples", "--scenario", "nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown scenario family" in err and "paper" in err


def test_scenario_param_requires_key_value(capsys):
    assert main(["run", "samples", "--scenario", "hotspot",
                 "--scenario-param", "oops"]) == 2
    assert "KEY=VALUE" in capsys.readouterr().err


def test_warm_start_flag_configures_the_runner(monkeypatch):
    from repro import cli as cli_module

    captured = {}

    class FakeRunner:
        def __init__(self, jobs=1, **kwargs):
            captured.update(kwargs, jobs=jobs)
            self.jobs = jobs
            from repro.experiments.runner import SweepStats

            self.last_stats = SweepStats()

    monkeypatch.setattr(cli_module, "SweepRunner", FakeRunner)
    args = build_parser().parse_args(["run", "samples", "--warm-start", "--no-cache"])
    cli_module._make_runner("samples", args)
    assert captured["warm_start"] is True
    assert captured["use_cache"] is False


def test_bench_command_writes_report_and_compares(tmp_path, capsys, monkeypatch):
    from repro.perf import bench as bench_module

    fake = {
        "schema": 6,
        "label": "PRX",
        "mode": "quick",
        "metrics": {
            "store_read_speedup": 2.5,
            "store_parity_max_rel_dev": 0.0,
            "fl_churn_resolve_s": 0.1,
            "fl_dynamic_punctures": 2.0,
            "fl_dynamic_outer_iterations": 14.0,
            "fl_dynamic_warm_parity_max_rel_dev": 0.0,
            "fl_dynamic_backend_parity_max_rel_dev": 0.0,
            "fl_estimated_vs_oracle_accuracy_gap": 0.01,
            "fl_estimation_cycles_rel_err": 0.0,
            "fl_estimation_gain_rel_err": 0.2,
            "cold_wall_s": 1.0,
            "warm_wall_s": 0.5,
            "scalar_wall_s": 2.5,
            "batch_wall_s": 0.4,
            "warm_wall_speedup": 2.0,
            "batch_wall_speedup": 2.5,
            "batch_fill": 1.0,
            "batch_parity_max_rel_dev": 0.0,
            "backend_sp2_speedup": 3.0,
            "cold_outer_iterations": 10.0,
            "warm_outer_iterations": 10.0,
            "cold_inner_iterations": 70.0,
            "warm_inner_iterations": 70.0,
            "parity_max_rel_dev": 1e-9,
            "backend_parity_max_rel_dev": 1e-12,
            "fl_rounds_per_s": 30.0,
            "fl_outer_iterations": 12.0,
            "fl_warm_parity_max_rel_dev": 0.0,
            "fl_backend_parity_max_rel_dev": 0.0,
        },
        "tracked": {"cold_inner_iterations": "lower"},
        "floors": {"warm_wall_speedup": 1.3},
        "parity_tol": 1e-6,
        "backend_parity_tol": 1e-8,
    }
    monkeypatch.setattr(bench_module, "run_bench", lambda quick, label: dict(fake, label=label))

    out_path = tmp_path / "BENCH_PRX.json"
    base_path = tmp_path / "baseline.json"
    base_path.write_text(json.dumps(fake))
    assert main(["bench", "--quick", "--label", "PRX",
                 "--output", str(out_path), "--compare", str(base_path)]) == 0
    captured = capsys.readouterr()
    assert "no regression" in captured.err
    assert json.loads(out_path.read_text())["label"] == "PRX"

    # A broken parity or missed floor makes the command fail.
    bad = dict(fake, metrics=dict(fake["metrics"], warm_wall_speedup=1.0))
    monkeypatch.setattr(bench_module, "run_bench", lambda quick, label: bad)
    assert main(["bench", "--quick", "--output", str(out_path),
                 "--compare", str(base_path)]) == 1
    assert "PERF REGRESSION" in capsys.readouterr().err


def test_fl_command_runs_the_closed_loop(tmp_path, capsys):
    json_path = tmp_path / "fl.json"
    csv_path = tmp_path / "fl.csv"
    assert (
        main(
            [
                "fl",
                "--rounds", "2",
                "--devices", "5",
                "--local-iterations", "2",
                "--output", str(json_path),
                "--csv", str(csv_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr()
    assert "| round |" in out.out
    payload = json.loads(json_path.read_text())
    assert len(payload["rows"]) == 2
    assert payload["rows"][0]["selected"] == 5
    assert "accuracy" in out.err
    assert csv_path.read_text().startswith("round,")


def test_fl_command_quick_flag_overrides_scale(capsys):
    assert main(["fl", "--quick", "--rounds", "50"]) == 0
    out = capsys.readouterr().out
    table_lines = [line for line in out.splitlines() if line.startswith("|")]
    # --quick pins 2 rounds whatever --rounds says: header + divider + 2 rows.
    assert len(table_lines) == 4


def test_fl_command_rejects_unknown_scenario_and_scheme(capsys):
    assert main(["fl", "--quick", "--scenario", "nope"]) == 2
    assert "unknown scenario family" in capsys.readouterr().err
    assert main(["fl", "--quick", "--scheme", "nope"]) == 2
    assert "unknown scheme" in capsys.readouterr().err


def test_fl_command_dynamic_fleet_flags(capsys):
    assert (
        main(
            [
                "fl",
                "--quick",
                "--churn", "poisson:arrive=0.4,depart=0.3,absent=0.25",
                "--battery", "50",
                "--battery-policy", "graceful",
                "--estimate-profiles",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    # The dynamic columns only appear when the layer is on.
    assert "| fleet |" in out or "fleet" in out.splitlines()[0]


def test_fl_command_churn_json_spec(capsys):
    spec = json.dumps(
        {"mode": "events", "initial_absent": [5], "events": {"2": {"arrive": [5]}}}
    )
    assert main(["fl", "--quick", "--churn", spec]) == 0
    assert "fleet" in capsys.readouterr().out


def test_fl_command_frozen_fleet_output_has_no_dynamic_columns(capsys):
    assert main(["fl", "--quick"]) == 0
    assert "fleet" not in capsys.readouterr().out


def test_parse_churn_spec_shorthand_and_errors():
    from repro.cli import _parse_churn_spec
    from repro.exceptions import ConfigurationError

    spec = _parse_churn_spec("poisson:arrive=0.4,depart=0.3,absent=0.25")
    assert spec == {
        "mode": "poisson",
        "arrive_rate": 0.4,
        "depart_rate": 0.3,
        "initial_absent_fraction": 0.25,
    }
    assert _parse_churn_spec("poisson") == {"mode": "poisson"}
    assert _parse_churn_spec('{"mode": "events"}') == {"mode": "events"}
    with pytest.raises(ConfigurationError, match="poisson"):
        _parse_churn_spec("weibull:rate=1")
    with pytest.raises(ConfigurationError, match="KEY=VALUE"):
        _parse_churn_spec("poisson:arrive=0.4,typo=1")
    with pytest.raises(ConfigurationError, match="object"):
        _parse_churn_spec("[1, 2]")


def test_fl_command_selection_and_backend_flags(capsys):
    assert (
        main(
            [
                "fl",
                "--quick",
                "--selection", "fastest-k",
                "--select-k", "2",
                "--backend", "scalar",
                "--no-warm-start",
                "--fading", "none",
                "--scheme", "static",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "| 2 |" in out


# -- repro store / --shard ---------------------------------------------------


def _seed_store(root, backend, indices=range(3)):
    from repro.store import open_store

    store = open_store(root, backend)
    for i in indices:
        store.put(
            f"{i:02x}" * 32,
            {"scenario": {"seed": i}},
            {"objective": 1.5 * i, "iterations": 3 + i},
            {"mu": 0.5 * i},
        )
    store.flush()
    return store


def test_run_parser_accepts_store_and_shard_flags():
    args = build_parser().parse_args(
        ["run", "fig2", "--store", "columnar", "--shard", "1/4"]
    )
    assert args.store == "columnar"
    assert args.shard == "1/4"
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "fig2", "--store", "parquet"])


def test_shard_and_store_flags_configure_the_runner(monkeypatch):
    from repro import cli as cli_module

    captured = {}

    class FakeRunner:
        def __init__(self, jobs=1, **kwargs):
            captured.update(kwargs, jobs=jobs)
            self.jobs = jobs
            from repro.experiments.runner import SweepStats

            self.last_stats = SweepStats()

    monkeypatch.setattr(cli_module, "SweepRunner", FakeRunner)
    args = build_parser().parse_args(
        ["run", "samples", "--store", "columnar", "--shard", "1/4"]
    )
    cli_module._make_runner("samples", args)
    assert captured["store_backend"] == "columnar"
    assert captured["shard"] == "1/4"


def test_run_rejects_malformed_shard_spec(capsys):
    assert main(["run", "samples", "--no-cache", "--shard", "4/4"]) == 2
    assert "shard" in capsys.readouterr().err


def test_store_stat_reports_backend_and_entries(tmp_path, capsys):
    _seed_store(tmp_path, "columnar")
    assert main(["store", "stat", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "backend: columnar" in out
    assert "entries: 3" in out
    assert "log entries: 3" in out


def test_store_query_writes_csv(tmp_path, capsys):
    _seed_store(tmp_path / "cache", "json")
    target = tmp_path / "cols.csv"
    assert main(
        [
            "store", "query", str(tmp_path / "cache"),
            "--columns", "objective,missing",
            "--output", str(target),
        ]
    ) == 0
    lines = target.read_text().splitlines()
    assert lines[0] == "digest,objective,missing"
    assert len(lines) == 4
    assert lines[1].startswith("00" * 32)
    assert lines[1].endswith(",0.0,")  # absent column reads as empty


def test_store_compact_folds_the_log(tmp_path, capsys):
    from repro.store import open_store

    _seed_store(tmp_path, "columnar")
    assert main(["store", "compact", str(tmp_path)]) == 0
    assert "compacted 3 entries" in capsys.readouterr().out
    assert open_store(tmp_path).stat().log_entries == 0

    # The JSON backend has nothing to compact and says so.
    _seed_store(tmp_path / "json", "json")
    assert main(["store", "compact", str(tmp_path / "json")]) == 0
    assert "nothing to do" in capsys.readouterr().out


def test_store_migrate_and_merge_round_trip(tmp_path, capsys):
    from repro.store import open_store

    _seed_store(tmp_path / "a", "json", indices=[0, 1])
    _seed_store(tmp_path / "b", "json", indices=[2])

    assert main(
        ["store", "migrate", str(tmp_path / "a"), str(tmp_path / "a-col")]
    ) == 0
    assert "migrated 2 entries" in capsys.readouterr().out
    assert open_store(tmp_path / "a-col").backend == "columnar"

    assert main(
        [
            "store", "merge", str(tmp_path / "merged"),
            str(tmp_path / "a"), str(tmp_path / "b"),
        ]
    ) == 0
    assert "merged 3 entries" in capsys.readouterr().out
    merged = open_store(tmp_path / "merged")
    assert len(merged) == 3
    assert merged.get_entry("00" * 32) == open_store(tmp_path / "a").get_entry("00" * 32)


def test_store_stat_on_missing_root_fails_cleanly(tmp_path, capsys):
    assert main(["store", "stat", str(tmp_path / "nowhere")]) == 0  # empty store
    assert "entries: 0" in capsys.readouterr().out


def test_store_merge_refuses_destination_among_sources(tmp_path, capsys):
    # An in-place merge would read and rewrite the same files; the CLI must
    # refuse it before touching anything, with a clear error and exit 2.
    _seed_store(tmp_path / "a", "json", indices=[0])
    _seed_store(tmp_path / "b", "json", indices=[1])
    code = main(
        ["store", "merge", str(tmp_path / "a"), str(tmp_path / "a"), str(tmp_path / "b")]
    )
    assert code == 2
    assert "onto itself" in capsys.readouterr().err
    from repro.store import open_store

    assert sorted(open_store(tmp_path / "a", "json").keys()) == ["00" * 32]


def test_store_migrate_refuses_in_place(tmp_path, capsys):
    _seed_store(tmp_path / "a", "json", indices=[0])
    assert main(["store", "migrate", str(tmp_path / "a"), str(tmp_path / "a")]) == 2
    assert "onto itself" in capsys.readouterr().err
    assert main(
        ["store", "migrate", str(tmp_path / "a"), str(tmp_path / "a" / "sub")]
    ) == 2
    assert "overlaps" in capsys.readouterr().err


# -- repro serve --------------------------------------------------------------


def test_serve_parser_defaults():
    args = build_parser().parse_args(["serve"])
    assert args.host == "127.0.0.1"
    assert args.port == 8100
    assert args.store is None
    assert args.backend is None
    assert args.batch_size == 8
    assert args.gather_window_ms == 5.0
    assert args.request_timeout == 300.0


def test_serve_parser_accepts_overrides():
    args = build_parser().parse_args(
        [
            "serve", "--host", "0.0.0.0", "--port", "0",
            "--store", "columnar", "--backend", "scalar",
            "--batch-size", "4", "--gather-window-ms", "20",
            "--request-timeout", "10",
        ]
    )
    assert (args.host, args.port) == ("0.0.0.0", 0)
    assert (args.store, args.backend) == ("columnar", "scalar")
    with pytest.raises(SystemExit):
        build_parser().parse_args(["serve", "--store", "parquet"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["serve", "--backend", "quantum"])


def test_serve_rejects_invalid_config(tmp_path, capsys):
    code = main(
        ["serve", "--port", "0", "--cache-dir", str(tmp_path), "--batch-size", "0"]
    )
    assert code == 2
    assert "batch_size" in capsys.readouterr().err


def test_serve_runs_until_interrupt_then_stops_cleanly(tmp_path, capsys, monkeypatch):
    # Drive the CLI path without a real socket loop: the first poll of
    # serve_forever raises KeyboardInterrupt, which must fall through the
    # graceful-shutdown path (drain message, close, exit 0).
    from repro.serve import AllocationServer

    monkeypatch.setattr(
        AllocationServer,
        "serve_forever",
        lambda self: (_ for _ in ()).throw(KeyboardInterrupt()),
    )
    code = main(["serve", "--port", "0", "--cache-dir", str(tmp_path / "store")])
    assert code == 0
    err = capsys.readouterr().err
    assert "[serve] listening on http://127.0.0.1:" in err
    assert "draining the coalescing queue" in err
    assert "[serve] stopped" in err
