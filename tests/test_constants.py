"""Sanity checks of the Section VII-A constants."""

import pytest

from repro import constants, units


def test_power_limits_match_dbm_values():
    assert constants.DEFAULT_MAX_POWER_W == pytest.approx(units.dbm_to_watt(12.0))
    assert constants.DEFAULT_MIN_POWER_W == pytest.approx(units.dbm_to_watt(0.0))
    assert constants.DEFAULT_MIN_POWER_W < constants.DEFAULT_MAX_POWER_W


def test_noise_psd_is_negative_174_dbm_per_hz():
    assert constants.NOISE_PSD_DBM_PER_HZ == -174.0
    assert constants.NOISE_PSD_W_PER_HZ == pytest.approx(
        units.dbm_to_watt(-174.0)
    )


def test_bandwidth_and_frequency_defaults():
    assert constants.DEFAULT_TOTAL_BANDWIDTH_HZ == pytest.approx(20e6)
    assert constants.DEFAULT_MAX_FREQUENCY_HZ == pytest.approx(2e9)
    assert constants.DEFAULT_MIN_FREQUENCY_HZ < constants.DEFAULT_MAX_FREQUENCY_HZ


def test_fl_schedule_defaults():
    assert constants.DEFAULT_LOCAL_ITERATIONS == 10
    assert constants.DEFAULT_GLOBAL_ROUNDS == 400
    assert constants.DEFAULT_SAMPLES_PER_DEVICE == 500
    assert constants.DEFAULT_UPLOAD_BITS == pytest.approx(28100.0)


def test_cpu_constants():
    low, high = constants.CPU_CYCLES_PER_SAMPLE_RANGE
    assert low == pytest.approx(1e4)
    assert high == pytest.approx(3e4)
    assert constants.EFFECTIVE_CAPACITANCE == pytest.approx(1e-28)


def test_deployment_constants():
    assert constants.DEFAULT_NUM_DEVICES == 50
    assert constants.DEFAULT_CELL_RADIUS_KM == pytest.approx(0.25)
    assert constants.PATH_LOSS_CONSTANT_DB == pytest.approx(128.1)
    assert constants.PATH_LOSS_EXPONENT_DB_PER_DECADE == pytest.approx(37.6)
    assert constants.SHADOWING_STD_DB == pytest.approx(8.0)
