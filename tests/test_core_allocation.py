"""Tests for the ResourceAllocation container."""

import numpy as np
import pytest

from repro.core.allocation import ResourceAllocation
from repro.exceptions import ConfigurationError


def _allocation(n=4, power=0.01, bandwidth=1e6, frequency=1e9):
    return ResourceAllocation(
        power_w=np.full(n, power),
        bandwidth_hz=np.full(n, bandwidth),
        frequency_hz=np.full(n, frequency),
    )


def test_shapes_must_match():
    with pytest.raises(ConfigurationError):
        ResourceAllocation(
            power_w=np.ones(3), bandwidth_hz=np.ones(4), frequency_hz=np.ones(3)
        )


def test_negative_and_zero_values_rejected():
    with pytest.raises(ConfigurationError):
        _allocation(power=-0.1)
    with pytest.raises(ConfigurationError):
        _allocation(bandwidth=-1.0)
    with pytest.raises(ConfigurationError):
        _allocation(frequency=0.0)


def test_as_vector_concatenates_blocks():
    allocation = _allocation(n=2)
    vector = allocation.as_vector()
    assert vector.shape == (6,)
    assert np.allclose(vector[:2], 0.01)
    assert np.allclose(vector[2:4], 1e6)
    assert np.allclose(vector[4:], 1e9)


def test_distance_to_is_zero_for_identical_allocations():
    a = _allocation()
    b = _allocation()
    assert a.distance_to(b) == pytest.approx(0.0)


def test_distance_to_is_scale_free():
    a = _allocation()
    b = ResourceAllocation(
        power_w=a.power_w * 1.01,
        bandwidth_hz=a.bandwidth_hz * 1.01,
        frequency_hz=a.frequency_hz * 1.01,
    )
    # The change is normalised by the other allocation's magnitude.
    assert a.distance_to(b) == pytest.approx(0.01 / 1.01, rel=1e-6)
    # The measure does not depend on the absolute unit scale of the blocks.
    small = _allocation(power=1e-6, bandwidth=1e2, frequency=1e5)
    small_shift = ResourceAllocation(
        power_w=small.power_w * 1.01,
        bandwidth_hz=small.bandwidth_hz * 1.01,
        frequency_hz=small.frequency_hz * 1.01,
    )
    assert small.distance_to(small_shift) == pytest.approx(a.distance_to(b), rel=1e-9)


def test_distance_requires_same_size():
    with pytest.raises(ConfigurationError):
        _allocation(n=3).distance_to(_allocation(n=4))


def test_with_frequency_and_with_communication_return_copies():
    allocation = _allocation(n=3)
    updated = allocation.with_frequency(np.full(3, 5e8))
    assert np.all(updated.frequency_hz == 5e8)
    assert np.all(allocation.frequency_hz == 1e9)
    updated2 = allocation.with_communication(np.full(3, 0.002), np.full(3, 2e6))
    assert np.all(updated2.power_w == 0.002)
    assert np.all(updated2.bandwidth_hz == 2e6)
    assert np.all(updated2.frequency_hz == 1e9)


def test_derived_metrics_against_system(tiny_system):
    n = tiny_system.num_devices
    allocation = ResourceAllocation(
        power_w=tiny_system.max_power_w.copy(),
        bandwidth_hz=np.full(n, tiny_system.total_bandwidth_hz / n),
        frequency_hz=tiny_system.max_frequency_hz.copy(),
    )
    assert allocation.total_energy_j(tiny_system) == pytest.approx(
        tiny_system.total_energy_j(
            allocation.power_w, allocation.bandwidth_hz, allocation.frequency_hz
        )
    )
    trans, comp = allocation.energy_breakdown_j(tiny_system)
    assert trans + comp == pytest.approx(allocation.total_energy_j(tiny_system))
    assert allocation.total_time_s(tiny_system) == pytest.approx(
        tiny_system.global_rounds * allocation.round_time_s(tiny_system)
    )
    assert allocation.rates_bps(tiny_system).shape == (n,)


def test_per_device_time_and_energy_match_the_system_accounting(tiny_system):
    import numpy as np

    from repro.core.allocation import ResourceAllocation

    n = tiny_system.num_devices
    allocation = ResourceAllocation(
        power_w=tiny_system.max_power_w.copy(),
        bandwidth_hz=np.full(n, tiny_system.total_bandwidth_hz / n),
        frequency_hz=tiny_system.max_frequency_hz.copy(),
    )
    times = allocation.per_device_time_s(tiny_system)
    energies = allocation.per_device_energy_j(tiny_system)
    assert times.shape == (n,)
    assert float(np.max(times)) == allocation.round_time_s(tiny_system)
    assert float(energies.sum()) * tiny_system.global_rounds == (
        allocation.total_energy_j(tiny_system)
    )
