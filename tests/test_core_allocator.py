"""Tests for Algorithm 2 (the alternating resource allocator)."""

import numpy as np
import pytest

from repro import JointProblem, ProblemWeights
from repro.core.allocator import AllocatorConfig, ResourceAllocator
from repro.core.convergence import ConvergenceHistory
from repro.core.verify import check_primal
from repro.exceptions import InfeasibleProblemError


def test_result_is_feasible_and_converges(balanced_problem, assert_kkt):
    result = ResourceAllocator().solve(balanced_problem)
    assert result.feasible
    assert result.converged
    # Every constraint of problem (9), as one named-residual certificate.
    assert_kkt(check_primal(balanced_problem, result.allocation))
    assert result.energy_j > 0
    assert result.completion_time_s > 0
    assert result.objective == pytest.approx(
        0.5 * result.energy_j + 0.5 * result.completion_time_s
    )
    assert result.transmission_energy_j + result.computation_energy_j == pytest.approx(
        result.energy_j
    )


def test_beats_the_initial_allocation(balanced_problem):
    allocator = ResourceAllocator()
    initial = balanced_problem.initial_allocation(bandwidth_fraction=0.5)
    result = allocator.solve(balanced_problem, initial_allocation=initial)
    assert result.objective <= balanced_problem.objective(initial) * (1 + 1e-9)


def test_objective_history_is_monotone_nonincreasing(balanced_problem):
    result = ResourceAllocator().solve(balanced_problem)
    assert isinstance(result.history, ConvergenceHistory)
    assert len(result.history) >= 1
    assert result.history.is_monotone_nonincreasing(rtol=1e-6)


def test_weight_sweep_trades_energy_for_time(tiny_system):
    allocator = ResourceAllocator()
    energies, times = [], []
    for w1 in (0.9, 0.5, 0.1):
        problem = JointProblem(tiny_system, ProblemWeights.from_energy_weight(w1))
        result = allocator.solve(problem)
        energies.append(result.energy_j)
        times.append(result.completion_time_s)
    # Larger energy weight -> lower energy, higher completion time.
    assert energies[0] < energies[1] < energies[2]
    assert times[0] > times[1] > times[2]


def test_pure_delay_minimisation_runs_everything_at_max(tiny_system):
    problem = JointProblem(tiny_system, ProblemWeights(energy=0.0, time=1.0))
    result = ResourceAllocator().solve(problem)
    assert np.allclose(result.allocation.frequency_hz, tiny_system.max_frequency_hz)
    assert np.allclose(result.allocation.power_w, tiny_system.max_power_w)
    assert result.converged


def test_deadline_mode_respects_the_budget(tiny_system, assert_kkt):
    fast = ResourceAllocator().solve(
        JointProblem(tiny_system, ProblemWeights(energy=0.0, time=1.0))
    )
    deadline = fast.completion_time_s * 2.0
    problem = JointProblem(
        tiny_system, ProblemWeights(energy=1.0, time=0.0), deadline_s=deadline
    )
    result = ResourceAllocator().solve(problem)
    assert result.feasible
    # The deadline residual is part of the certificate for deadline problems.
    assert_kkt(check_primal(problem, result.allocation))
    # The energy under a finite deadline exceeds the unconstrained minimum.
    unconstrained = ResourceAllocator().solve(
        JointProblem(tiny_system, ProblemWeights(energy=1.0, time=0.0))
    )
    assert result.energy_j >= unconstrained.energy_j - 1e-9


def test_tighter_deadline_costs_more_energy(tiny_system):
    fast = ResourceAllocator().solve(
        JointProblem(tiny_system, ProblemWeights(energy=0.0, time=1.0))
    )
    allocator = ResourceAllocator()
    loose = allocator.solve(
        JointProblem(tiny_system, ProblemWeights(1.0, 0.0), deadline_s=fast.completion_time_s * 4)
    )
    tight = allocator.solve(
        JointProblem(tiny_system, ProblemWeights(1.0, 0.0), deadline_s=fast.completion_time_s * 1.5)
    )
    assert tight.energy_j > loose.energy_j


def test_impossible_deadline_raises(tiny_system):
    fast = ResourceAllocator().solve(
        JointProblem(tiny_system, ProblemWeights(energy=0.0, time=1.0))
    )
    problem = JointProblem(
        tiny_system, ProblemWeights(1.0, 0.0), deadline_s=fast.completion_time_s * 0.5
    )
    with pytest.raises(InfeasibleProblemError):
        ResourceAllocator().solve(problem)


def test_initial_strategy_options(balanced_problem):
    equal = ResourceAllocator(AllocatorConfig(initial_strategy="equal")).solve(balanced_problem)
    delay = ResourceAllocator(AllocatorConfig(initial_strategy="delay_min")).solve(balanced_problem)
    assert equal.feasible and delay.feasible
    with pytest.raises(ValueError):
        ResourceAllocator(AllocatorConfig(initial_strategy="bogus")).solve(balanced_problem)


def test_subproblem1_dual_variant_produces_similar_objective(balanced_problem):
    primal = ResourceAllocator(AllocatorConfig(subproblem1_method="primal")).solve(
        balanced_problem
    )
    dual = ResourceAllocator(AllocatorConfig(subproblem1_method="dual")).solve(
        balanced_problem
    )
    assert dual.objective == pytest.approx(primal.objective, rel=0.1)


def test_iteration_budget_respected(balanced_problem):
    config = AllocatorConfig(max_iterations=1, tolerance=0.0)
    result = ResourceAllocator(config).solve(balanced_problem)
    assert result.iterations == 1


def test_summary_dictionary(balanced_problem):
    result = ResourceAllocator().solve(balanced_problem)
    summary = result.summary()
    for key in (
        "objective",
        "energy_j",
        "completion_time_s",
        "transmission_energy_j",
        "computation_energy_j",
        "iterations",
        "converged",
        "feasible",
    ):
        assert key in summary
    assert summary["feasible"] == 1.0
