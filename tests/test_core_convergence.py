"""Tests for the convergence-history container."""

import math

from repro.core.convergence import ConvergenceHistory, IterationRecord


def test_append_assigns_consecutive_indices():
    history = ConvergenceHistory()
    first = history.append(10.0)
    second = history.append(5.0, residual=0.1, note="step")
    assert first.iteration == 0
    assert second.iteration == 1
    assert len(history) == 2
    assert history[1].note == "step"


def test_objectives_and_residuals_lists():
    history = ConvergenceHistory()
    history.append(3.0, residual=1.0)
    history.append(2.0, residual=0.5)
    assert history.objectives == [3.0, 2.0]
    assert history.residuals == [1.0, 0.5]
    assert history.final_objective == 2.0
    assert history.improvement() == 1.0


def test_empty_history_defaults():
    history = ConvergenceHistory()
    assert math.isnan(history.final_objective)
    assert history.improvement() == 0.0
    assert history.is_monotone_nonincreasing()


def test_monotonicity_check():
    decreasing = ConvergenceHistory()
    for value in (5.0, 4.0, 4.0, 3.9):
        decreasing.append(value)
    assert decreasing.is_monotone_nonincreasing()

    bumpy = ConvergenceHistory()
    for value in (5.0, 4.0, 4.5):
        bumpy.append(value)
    assert not bumpy.is_monotone_nonincreasing()


def test_iteration_records_are_immutable_dataclasses():
    record = IterationRecord(iteration=0, objective=1.0)
    assert record.objective == 1.0
    assert math.isnan(record.residual)
    assert record.note == ""


def test_iterating_over_history():
    history = ConvergenceHistory()
    history.append(1.0)
    history.append(0.5)
    assert [r.objective for r in history] == [1.0, 0.5]
