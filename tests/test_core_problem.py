"""Tests for the JointProblem formulation (problem (8)/(9))."""

import numpy as np
import pytest

from repro import JointProblem, ProblemWeights
from repro.core.allocation import ResourceAllocation
from repro.exceptions import ConfigurationError, InfeasibleProblemError


def test_weights_must_sum_to_one():
    ProblemWeights(energy=0.3, time=0.7)
    with pytest.raises(ConfigurationError):
        ProblemWeights(energy=0.3, time=0.3)
    with pytest.raises(ConfigurationError):
        ProblemWeights(energy=-0.1, time=1.1)


def test_from_energy_weight():
    weights = ProblemWeights.from_energy_weight(0.25)
    assert weights.energy == pytest.approx(0.25)
    assert weights.time == pytest.approx(0.75)
    assert weights.as_tuple() == (0.25, 0.75)


def test_objective_is_weighted_sum(balanced_problem):
    allocation = balanced_problem.initial_allocation()
    energy = allocation.total_energy_j(balanced_problem.system)
    time = allocation.total_time_s(balanced_problem.system)
    assert balanced_problem.objective(allocation) == pytest.approx(
        0.5 * energy + 0.5 * time
    )
    terms = balanced_problem.objective_terms(allocation)
    assert terms["energy_j"] == pytest.approx(energy)
    assert terms["completion_time_s"] == pytest.approx(time)
    assert terms["transmission_energy_j"] + terms["computation_energy_j"] == pytest.approx(energy)


def test_initial_allocation_is_feasible(balanced_problem):
    allocation = balanced_problem.initial_allocation()
    assert balanced_problem.is_feasible(allocation)
    half = balanced_problem.initial_allocation(bandwidth_fraction=0.5)
    assert half.bandwidth_hz.sum() == pytest.approx(
        0.5 * balanced_problem.system.total_bandwidth_hz
    )


def test_feasibility_detects_violations(balanced_problem):
    system = balanced_problem.system
    n = system.num_devices
    allocation = ResourceAllocation(
        power_w=system.max_power_w * 2.0,
        bandwidth_hz=np.full(n, 2.0 * system.total_bandwidth_hz / n),
        frequency_hz=system.max_frequency_hz * 2.0,
    )
    report = balanced_problem.feasibility(allocation)
    assert report.power_violation > 0
    assert report.bandwidth_violation > 0
    assert report.frequency_violation > 0
    assert not report.is_feasible
    assert not balanced_problem.is_feasible(allocation)


def test_deadline_violation_reported(tiny_system):
    problem = JointProblem(
        tiny_system, ProblemWeights(energy=1.0, time=0.0), deadline_s=1e-3
    )
    # With such an absurd deadline even the max-resource allocation fails.
    with pytest.raises(InfeasibleProblemError):
        problem.initial_allocation()


def test_round_deadline_derived_from_total(tiny_system):
    problem = JointProblem(
        tiny_system, ProblemWeights(energy=1.0, time=0.0), deadline_s=200.0
    )
    assert problem.round_deadline_s == pytest.approx(200.0 / tiny_system.global_rounds)
    free = JointProblem(tiny_system, ProblemWeights(energy=0.5, time=0.5))
    assert free.round_deadline_s is None


def test_min_rate_requirements(balanced_problem):
    system = balanced_problem.system
    frequency = system.max_frequency_hz.copy()
    compute = system.computation_time_s(frequency)
    deadline = float(np.max(compute)) * 3.0
    rates = balanced_problem.min_rate_requirements(frequency, deadline)
    assert np.all(np.isfinite(rates))
    assert np.allclose(rates, system.upload_bits / (deadline - compute))
    # A deadline below the compute time makes the requirement infinite.
    tight = balanced_problem.min_rate_requirements(frequency, float(np.min(compute)) / 2)
    assert np.all(np.isinf(tight))


def test_check_rate_requirements_supportable(balanced_problem):
    system = balanced_problem.system
    modest = np.full(system.num_devices, 1e4)
    balanced_problem.check_rate_requirements_supportable(modest)
    with pytest.raises(InfeasibleProblemError):
        balanced_problem.check_rate_requirements_supportable(
            np.full(system.num_devices, np.inf)
        )
    with pytest.raises(InfeasibleProblemError):
        balanced_problem.check_rate_requirements_supportable(
            np.full(system.num_devices, 1e9)
        )


def test_invalid_problem_configurations(tiny_system):
    with pytest.raises(ConfigurationError):
        JointProblem(tiny_system, ProblemWeights(0.5, 0.5), deadline_s=0.0)
