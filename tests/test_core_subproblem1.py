"""Tests for Subproblem 1 (CPU frequency and round deadline)."""

import numpy as np
import pytest

from repro.core.subproblem1 import solve_subproblem1
from repro.core.verify import check_sp1
from repro.exceptions import ConfigurationError, InfeasibleProblemError


def _upload_times(system, fraction=0.5):
    n = system.num_devices
    bandwidth = np.full(n, system.total_bandwidth_hz * fraction / n)
    return system.upload_time_s(system.max_power_w, bandwidth)


def test_primal_solution_satisfies_its_certificate(tiny_system, assert_kkt):
    upload = _upload_times(tiny_system)
    result = solve_subproblem1(tiny_system, 0.5, 0.5, upload)
    # Frequency box, deadline cover and slowest-feasible stationarity in
    # one named-residual certificate (replaces the former ad-hoc bounds).
    assert_kkt(check_sp1(tiny_system, upload, result))


def test_primal_objective_decreases_with_smaller_time_weight(tiny_system):
    upload = _upload_times(tiny_system)
    energy_focused = solve_subproblem1(tiny_system, 0.9, 0.1, upload)
    time_focused = solve_subproblem1(tiny_system, 0.1, 0.9, upload)
    # Energy-focused solutions run slower CPUs and accept a longer round.
    assert energy_focused.round_deadline_s > time_focused.round_deadline_s
    assert np.mean(energy_focused.frequency_hz) < np.mean(time_focused.frequency_hz)


def test_primal_w2_zero_runs_at_min_frequency(tiny_system):
    upload = _upload_times(tiny_system)
    result = solve_subproblem1(tiny_system, 1.0, 0.0, upload)
    assert np.allclose(result.frequency_hz, tiny_system.min_frequency_hz)


def test_primal_w1_zero_runs_at_max_frequency(tiny_system):
    upload = _upload_times(tiny_system)
    result = solve_subproblem1(tiny_system, 0.0, 1.0, upload)
    # The smallest feasible deadline requires every bottleneck device at its
    # maximum frequency; the deadline equals the fastest achievable round.
    expected = float(np.max(upload + tiny_system.cycles_per_round / tiny_system.max_frequency_hz))
    assert result.round_deadline_s == pytest.approx(expected, rel=1e-9)


def test_primal_is_optimal_against_grid_search(tiny_system):
    upload = _upload_times(tiny_system)
    w1, w2 = 0.6, 0.4
    result = solve_subproblem1(tiny_system, w1, w2, upload)

    def objective(deadline):
        slack = np.maximum(deadline - upload, 1e-12)
        f = np.clip(
            tiny_system.cycles_per_round / slack,
            tiny_system.min_frequency_hz,
            tiny_system.max_frequency_hz,
        )
        energy = float(tiny_system.computation_energy_j(f).sum())
        return tiny_system.global_rounds * (w1 * energy + w2 * deadline)

    lower = float(np.max(upload + tiny_system.cycles_per_round / tiny_system.max_frequency_hz))
    upper = float(np.max(upload + tiny_system.cycles_per_round / tiny_system.min_frequency_hz))
    grid = np.linspace(lower, upper, 4000)
    best = min(objective(t) for t in grid)
    assert result.objective <= best * (1.0 + 1e-6)


def test_dual_solution_close_to_primal(tiny_system):
    upload = _upload_times(tiny_system)
    primal = solve_subproblem1(tiny_system, 0.5, 0.5, upload, method="primal")
    dual = solve_subproblem1(tiny_system, 0.5, 0.5, upload, method="dual")
    assert dual.dual_variables is not None
    assert np.all(dual.dual_variables >= 0.0)
    # The dual multipliers must sum to w2 * R_g (constraint (17a)).
    assert dual.dual_variables.sum() == pytest.approx(
        0.5 * tiny_system.global_rounds, rel=1e-6
    )
    # Without active frequency boxes the two solutions agree closely.
    assert dual.objective == pytest.approx(primal.objective, rel=0.05)


def test_deadline_mode_picks_slowest_feasible_frequency(tiny_system):
    upload = _upload_times(tiny_system)
    compute_at_max = tiny_system.cycles_per_round / tiny_system.max_frequency_hz
    deadline = float(np.max(upload + compute_at_max)) * 1.5
    result = solve_subproblem1(tiny_system, 1.0, 0.0, upload, round_deadline_s=deadline)
    assert result.method == "deadline"
    per_device = upload + tiny_system.cycles_per_round / result.frequency_hz
    assert np.all(per_device <= deadline * (1 + 1e-9))
    # Devices not pinned at a box bound sit exactly on the deadline.
    interior = (
        (result.frequency_hz > tiny_system.min_frequency_hz * (1 + 1e-9))
        & (result.frequency_hz < tiny_system.max_frequency_hz * (1 - 1e-9))
    )
    assert np.allclose(per_device[interior], deadline, rtol=1e-9)


def test_deadline_mode_detects_infeasibility(tiny_system):
    upload = _upload_times(tiny_system)
    with pytest.raises(InfeasibleProblemError):
        solve_subproblem1(tiny_system, 1.0, 0.0, upload, round_deadline_s=1e-6)


def test_invalid_inputs_rejected(tiny_system):
    upload = _upload_times(tiny_system)
    with pytest.raises(ConfigurationError):
        solve_subproblem1(tiny_system, 0.5, 0.5, upload[:-1])
    with pytest.raises(ConfigurationError):
        solve_subproblem1(tiny_system, -0.5, 0.5, upload)
    with pytest.raises(ConfigurationError):
        solve_subproblem1(tiny_system, 0.5, 0.5, upload, method="magic")
    bad = upload.copy()
    bad[0] = np.inf
    with pytest.raises(ConfigurationError):
        solve_subproblem1(tiny_system, 0.5, 0.5, bad)
