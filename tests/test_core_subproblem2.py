"""Tests for the SP2_v2 solvers (Theorem 2 / Appendix B and the fallback)."""

import numpy as np
import pytest

from repro.core import subproblem2
from repro.core.subproblem2 import solve_sp2_v2, solve_sp2_v2_numeric, sp2_objective
from repro.core.verify import check_kkt
from repro.exceptions import ConvergenceError, InfeasibleProblemError


def _setup(system, *, energy_weight=0.5, bandwidth_fraction=0.5, deadline_factor=1.0):
    """Build (nu, beta, min_rate) from a feasible starting allocation."""
    n = system.num_devices
    power = system.max_power_w.copy()
    bandwidth = np.full(n, system.total_bandwidth_hz * bandwidth_fraction / n)
    rates = system.rates_bps(power, bandwidth)
    upload = system.upload_bits / rates
    compute = system.cycles_per_round / system.max_frequency_hz
    deadline = float(np.max(upload + compute)) * deadline_factor
    min_rate = system.upload_bits / np.maximum(deadline - compute, 1e-9)
    beta = power * system.upload_bits / rates
    nu = energy_weight * system.global_rounds / rates
    return power, bandwidth, nu, beta, min_rate


def test_kkt_solution_satisfies_its_certificate(tiny_system, assert_kkt):
    _, _, nu, beta, min_rate = _setup(tiny_system, deadline_factor=1.5)
    result = solve_sp2_v2(tiny_system, nu, beta, min_rate)
    assert result.feasible
    # Primal feasibility, stationarity and complementary slackness in one
    # named-residual certificate (replaces the former ad-hoc tolerances).
    assert_kkt(check_kkt(tiny_system, nu, beta, min_rate, result))


def test_kkt_improves_over_the_starting_point(tiny_system):
    power, bandwidth, nu, beta, min_rate = _setup(tiny_system, deadline_factor=1.5)
    start = sp2_objective(tiny_system, nu, beta, power, bandwidth)
    result = solve_sp2_v2(tiny_system, nu, beta, min_rate)
    assert result.objective <= start + 1e-9


def test_kkt_and_numeric_agree(tiny_system):
    _, _, nu, beta, min_rate = _setup(tiny_system, deadline_factor=1.3)
    kkt = solve_sp2_v2(tiny_system, nu, beta, min_rate)
    numeric = solve_sp2_v2_numeric(tiny_system, nu, beta, min_rate)
    scale = max(abs(numeric.objective), 1e-9)
    # The closed-form KKT path must never be meaningfully worse than the
    # numeric fallback, and the two must land in the same ballpark.
    assert kkt.objective <= numeric.objective + 0.05 * scale
    assert abs(kkt.objective - numeric.objective) / scale < 0.5


def test_numeric_solution_satisfies_its_certificate(tiny_system, assert_kkt):
    _, _, nu, beta, min_rate = _setup(tiny_system, deadline_factor=1.3)
    result = solve_sp2_v2_numeric(tiny_system, nu, beta, min_rate)
    assert result.feasible
    # The golden-section bandwidth split is coarser than the closed form,
    # so its stationarity residual gets a looser (but still tight) bound.
    assert_kkt(
        check_kkt(tiny_system, nu, beta, min_rate, result), stationarity=1e-4
    )


def test_zero_rate_requirements_are_handled(tiny_system):
    _, _, nu, beta, _ = _setup(tiny_system)
    min_rate = np.zeros(tiny_system.num_devices)
    result = solve_sp2_v2(tiny_system, nu, beta, min_rate)
    assert result.feasible
    # No rate constraints: all multipliers vanish.
    assert np.allclose(result.rate_multipliers, 0.0)


def test_tight_rate_requirements_still_feasible(tiny_system):
    # Deadline exactly at the initial round time: the requirements equal the
    # initial rates and the feasible set is razor thin.
    _, _, nu, beta, min_rate = _setup(tiny_system, deadline_factor=1.0)
    result = solve_sp2_v2(tiny_system, nu, beta, min_rate)
    rates = tiny_system.rates_bps(result.power_w, result.bandwidth_hz)
    assert np.all(rates >= min_rate * (1 - 1e-6))


def test_impossible_requirements_raise(tiny_system):
    _, _, nu, beta, _ = _setup(tiny_system)
    min_rate = np.full(tiny_system.num_devices, 1e9)  # far beyond the budget
    with pytest.raises(InfeasibleProblemError):
        solve_sp2_v2_numeric(tiny_system, nu, beta, min_rate)


def test_kkt_multipliers_are_nonnegative(tiny_system):
    _, _, nu, beta, min_rate = _setup(tiny_system, deadline_factor=1.2)
    result = solve_sp2_v2(tiny_system, nu, beta, min_rate)
    assert result.bandwidth_multiplier >= 0.0
    assert np.all(result.rate_multipliers >= 0.0)


def test_objective_helper_matches_definition(tiny_system):
    power, bandwidth, nu, beta, _ = _setup(tiny_system)
    rates = tiny_system.rates_bps(power, bandwidth)
    expected = float(np.sum(nu * (power * tiny_system.upload_bits - beta * rates)))
    assert sp2_objective(tiny_system, nu, beta, power, bandwidth) == pytest.approx(expected)


# -- iteration-cap exhaustion ------------------------------------------------
#
# The multiplier search's three loops are capped by named module constants;
# exhausting any of them must raise ConvergenceError instead of silently
# returning a half-converged multiplier.  Each cap is monkeypatched to zero
# (or one) to force its exhaustion path deterministically.

def _binding_setup(system):
    """Inputs whose rate constraints bind (demand exceeds the start bracket)."""
    _, _, nu, beta, min_rate = _setup(system, deadline_factor=1.05)
    return nu, beta, min_rate


def _loose_setup(system):
    """Inputs whose demand is slack at the starting multiplier (contraction)."""
    _, _, nu, beta, min_rate = _setup(system, deadline_factor=50.0)
    return nu, beta, min_rate


@pytest.mark.parametrize("backend", ["scalar", "vector"])
def test_expansion_exhaustion_raises_convergence_error(
    tiny_system, monkeypatch, backend
):
    # Seed the search far below the root: the excess is positive there, so
    # the bracket must expand upward — which the zeroed cap forbids.
    nu, beta, min_rate = _binding_setup(tiny_system)
    reference = solve_sp2_v2(tiny_system, nu, beta, min_rate, backend=backend)
    assert reference.bandwidth_multiplier > 0.0
    monkeypatch.setattr(subproblem2, "MU_BRACKET_MAX_EXPANSIONS", 0)
    low_seed = reference.bandwidth_multiplier * 1e-8
    if backend == "scalar":
        with pytest.raises(ConvergenceError, match="bracketed from above"):
            solve_sp2_v2(
                tiny_system, nu, beta, min_rate, backend=backend, mu_hint=low_seed
            )
    else:
        # solve_sp2_v2 deliberately drops hints on the vector backend, so
        # seed the internal search directly to start it below the root.
        _, _, rmin, j, constrained = subproblem2._sp2_prepare(
            tiny_system, nu, beta, min_rate
        )
        with pytest.raises(ConvergenceError, match="bracketed from above"):
            subproblem2._mu_search_vector(
                j[constrained],
                rmin[constrained],
                tiny_system.total_bandwidth_hz,
                mu_tol=1e-13,
                mu_hint=low_seed,
            )


@pytest.mark.parametrize("backend", ["scalar", "vector"])
def test_contraction_exhaustion_raises_convergence_error(
    tiny_system, monkeypatch, backend
):
    nu, beta, min_rate = _loose_setup(tiny_system)
    monkeypatch.setattr(subproblem2, "MU_BRACKET_MAX_CONTRACTIONS", 0)
    with pytest.raises(ConvergenceError, match="bracketed from below"):
        solve_sp2_v2(tiny_system, nu, beta, min_rate, backend=backend)


@pytest.mark.parametrize("backend", ["scalar", "vector"])
def test_refinement_exhaustion_raises_convergence_error(
    tiny_system, monkeypatch, backend
):
    nu, beta, min_rate = _binding_setup(tiny_system)
    monkeypatch.setattr(subproblem2, "MU_SEARCH_MAX_ITERATIONS", 0)
    with pytest.raises(ConvergenceError, match="did not converge"):
        solve_sp2_v2(tiny_system, nu, beta, min_rate, backend=backend)


def test_warm_illinois_exhaustion_raises_convergence_error(
    tiny_system, monkeypatch
):
    """The scalar warm path (Illinois refinement) shares the same cap."""
    nu, beta, min_rate = _binding_setup(tiny_system)
    reference = solve_sp2_v2(tiny_system, nu, beta, min_rate, backend="scalar")
    assert reference.bandwidth_multiplier > 0.0
    monkeypatch.setattr(subproblem2, "MU_SEARCH_MAX_ITERATIONS", 0)
    with pytest.raises(ConvergenceError, match="did not converge"):
        solve_sp2_v2(
            tiny_system,
            nu,
            beta,
            min_rate,
            backend="scalar",
            mu_hint=reference.bandwidth_multiplier * 1.1,
        )


@pytest.mark.parametrize("backend", ["scalar", "vector"])
def test_exhaustion_falls_back_to_the_numeric_solver(
    tiny_system, monkeypatch, backend
):
    """Algorithm 1 treats a cap exhaustion like closed-form infeasibility."""
    from repro.core.sum_of_ratios import SumOfRatiosSolver

    nu, beta, min_rate = _binding_setup(tiny_system)
    monkeypatch.setattr(subproblem2, "MU_SEARCH_MAX_ITERATIONS", 0)
    solver = SumOfRatiosSolver(tiny_system, 0.5, backend=backend)
    power = tiny_system.max_power_w.copy()
    bandwidth = np.full(
        tiny_system.num_devices,
        tiny_system.total_bandwidth_hz / (2 * tiny_system.num_devices),
    )
    inner = solver._solve_inner(nu, beta, min_rate, power, bandwidth)
    assert inner.method in ("numeric", "incumbent")
