"""Tests for Algorithm 1 (the Newton-like sum-of-ratios solver)."""

import numpy as np
import pytest

from repro.core.sum_of_ratios import SumOfRatiosConfig, SumOfRatiosSolver


def _setup(system, *, bandwidth_fraction=0.5, deadline_factor=1.5):
    n = system.num_devices
    power = system.max_power_w.copy()
    bandwidth = np.full(n, system.total_bandwidth_hz * bandwidth_fraction / n)
    rates = system.rates_bps(power, bandwidth)
    upload = system.upload_bits / rates
    compute = system.cycles_per_round / system.max_frequency_hz
    deadline = float(np.max(upload + compute)) * deadline_factor
    min_rate = system.upload_bits / np.maximum(deadline - compute, 1e-9)
    return power, bandwidth, min_rate


def test_requires_positive_energy_weight(tiny_system):
    with pytest.raises(ValueError):
        SumOfRatiosSolver(tiny_system, 0.0)


def test_solution_is_feasible_and_not_worse(tiny_system):
    power, bandwidth, min_rate = _setup(tiny_system)
    solver = SumOfRatiosSolver(tiny_system, 0.5)
    start_energy = solver.communication_energy(power, bandwidth)
    result = solver.solve(min_rate, power, bandwidth)
    rates = tiny_system.rates_bps(result.power_w, result.bandwidth_hz)
    assert np.all(rates >= min_rate * (1 - 1e-6))
    assert result.bandwidth_hz.sum() <= tiny_system.total_bandwidth_hz * (1 + 1e-6)
    assert np.all(result.power_w <= tiny_system.max_power_w * (1 + 1e-9))
    assert result.communication_energy_j <= start_energy * (1 + 1e-9)
    assert result.feasible


def test_reduces_communication_energy_substantially(tiny_system):
    # A loose deadline leaves plenty of room: the solver should cut the
    # transmission energy well below the max-power starting point.
    power, bandwidth, min_rate = _setup(tiny_system, deadline_factor=4.0)
    solver = SumOfRatiosSolver(tiny_system, 0.9)
    start_energy = solver.communication_energy(power, bandwidth)
    result = solver.solve(min_rate, power, bandwidth)
    assert result.communication_energy_j < 0.9 * start_energy


def test_auxiliary_variables_satisfy_ratio_conditions(tiny_system):
    power, bandwidth, min_rate = _setup(tiny_system)
    solver = SumOfRatiosSolver(tiny_system, 0.7)
    result = solver.solve(min_rate, power, bandwidth)
    rates = tiny_system.rates_bps(result.power_w, result.bandwidth_hz)
    # At convergence beta_n ~ p_n d_n / G_n and nu_n ~ w1 R_g / G_n (eqs. (22)-(23)).
    target_beta = result.power_w * tiny_system.upload_bits / rates
    target_nu = 0.7 * tiny_system.global_rounds / rates
    assert np.allclose(result.beta, target_beta, rtol=1e-2)
    assert np.allclose(result.nu, target_nu, rtol=1e-2)


def test_history_is_recorded(tiny_system):
    power, bandwidth, min_rate = _setup(tiny_system)
    solver = SumOfRatiosSolver(tiny_system, 0.5, SumOfRatiosConfig(max_iterations=10))
    result = solver.solve(min_rate, power, bandwidth)
    assert len(result.history) >= 1
    assert result.iterations == len(result.history)
    assert np.isfinite(result.history.final_objective)


def test_respects_iteration_budget(tiny_system):
    power, bandwidth, min_rate = _setup(tiny_system)
    solver = SumOfRatiosSolver(
        tiny_system, 0.5, SumOfRatiosConfig(max_iterations=2, residual_tol=0.0, step_tol=0.0)
    )
    result = solver.solve(min_rate, power, bandwidth)
    assert result.iterations <= 2


def test_incumbent_fallback_when_requirements_are_tight(tiny_system):
    # Rate requirements equal to the current rates with a full-bandwidth
    # start: the feasible set is essentially the starting point, and the
    # solver must return something at least as good and still feasible.
    n = tiny_system.num_devices
    power = tiny_system.max_power_w.copy()
    bandwidth = np.full(n, tiny_system.total_bandwidth_hz / n)
    min_rate = tiny_system.rates_bps(power, bandwidth)
    solver = SumOfRatiosSolver(tiny_system, 0.5)
    result = solver.solve(min_rate, power, bandwidth)
    rates = tiny_system.rates_bps(result.power_w, result.bandwidth_hz)
    assert np.all(rates >= min_rate * (1 - 1e-6))
    assert result.communication_energy_j <= solver.communication_energy(power, bandwidth) * (
        1 + 1e-9
    )
