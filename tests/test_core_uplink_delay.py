"""Tests for the min-max upload-time bandwidth allocation."""

import numpy as np
import pytest

from repro.core.uplink_delay import minimize_max_upload_time
from repro.exceptions import InfeasibleProblemError


def test_allocation_respects_budget(tiny_system):
    result = minimize_max_upload_time(tiny_system)
    assert result.bandwidth_hz.sum() == pytest.approx(
        tiny_system.total_bandwidth_hz, rel=1e-6
    )
    assert np.all(result.bandwidth_hz > 0)
    assert np.all(result.power_w == tiny_system.max_power_w)


def test_beats_equal_split(tiny_system):
    result = minimize_max_upload_time(tiny_system)
    n = tiny_system.num_devices
    equal = np.full(n, tiny_system.total_bandwidth_hz / n)
    equal_time = float(
        np.max(tiny_system.upload_bits / tiny_system.rates_bps(tiny_system.max_power_w, equal))
    )
    assert result.max_upload_time_s <= equal_time * (1 + 1e-9)


def test_upload_times_are_nearly_equalised(tiny_system):
    # At the min-max optimum every device's upload takes (almost) the same
    # time — otherwise bandwidth could be shifted from a fast device to the
    # slowest one.
    result = minimize_max_upload_time(tiny_system)
    times = tiny_system.upload_bits / tiny_system.rates_bps(
        result.power_w, result.bandwidth_hz
    )
    assert float(np.std(times) / np.mean(times)) < 0.05


def test_weak_channels_receive_more_bandwidth(tiny_system):
    result = minimize_max_upload_time(tiny_system)
    order = np.argsort(tiny_system.gains)
    # The weakest-channel device gets at least as much bandwidth as the
    # strongest-channel device.
    assert result.bandwidth_hz[order[0]] >= result.bandwidth_hz[order[-1]]


def test_custom_power_vector(tiny_system):
    lower_power = tiny_system.max_power_w * 0.5
    result = minimize_max_upload_time(tiny_system, power_w=lower_power)
    assert result.max_upload_time_s >= minimize_max_upload_time(tiny_system).max_upload_time_s


def test_zero_power_rejected(tiny_system):
    with pytest.raises(InfeasibleProblemError):
        minimize_max_upload_time(
            tiny_system, power_w=np.zeros(tiny_system.num_devices)
        )


def _zero_upload_system(num_uploading: int = 0):
    """A 4-device paper drop where only the first ``num_uploading`` upload."""
    from dataclasses import replace

    from repro import build_paper_scenario
    from repro.devices.fleet import DeviceFleet

    system = build_paper_scenario(num_devices=4, seed=7)
    profiles = tuple(
        profile if index < num_uploading else replace(profile, upload_bits=0.0)
        for index, profile in enumerate(system.fleet.profiles)
    )
    return system.with_fleet(DeviceFleet(profiles))


def test_all_zero_upload_bits_fleet_is_degenerate_but_valid():
    system = _zero_upload_system(num_uploading=0)
    result = minimize_max_upload_time(system)
    assert result.max_upload_time_s == 0.0
    assert np.all(np.isfinite(result.bandwidth_hz))
    assert result.bandwidth_hz.sum() == pytest.approx(system.total_bandwidth_hz)


def test_partially_zero_upload_bits_fleet_keeps_finite_times():
    system = _zero_upload_system(num_uploading=2)
    result = minimize_max_upload_time(system)
    assert np.isfinite(result.max_upload_time_s)
    assert result.max_upload_time_s > 0.0
    assert np.all(np.isfinite(result.bandwidth_hz))
    assert result.bandwidth_hz.sum() <= system.total_bandwidth_hz * (1 + 1e-9)
