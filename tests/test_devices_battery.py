"""Tests for the battery bookkeeping used by the low-battery scenarios."""

import pytest

from repro.devices import Battery, BatteryDrainedError


def test_new_battery_is_full():
    battery = Battery(capacity_j=10.0)
    assert battery.charge_j == 10.0
    assert battery.state_of_charge == 1.0
    assert battery.drawn_j == 0.0


def test_draw_reduces_charge_and_tracks_total():
    battery = Battery(capacity_j=10.0)
    remaining = battery.draw(3.0)
    assert remaining == pytest.approx(7.0)
    battery.draw(2.0)
    assert battery.drawn_j == pytest.approx(5.0)
    assert battery.state_of_charge == pytest.approx(0.5)


def test_overdraw_raises():
    battery = Battery(capacity_j=1.0)
    with pytest.raises(BatteryDrainedError):
        battery.draw(2.0)
    # The failed draw must not change the state.
    assert battery.charge_j == pytest.approx(1.0)


def test_can_supply_checks_without_mutating():
    battery = Battery(capacity_j=5.0)
    assert battery.can_supply(5.0)
    assert not battery.can_supply(5.1)
    assert battery.charge_j == 5.0


def test_recharge_partial_and_full():
    battery = Battery(capacity_j=10.0)
    battery.draw(6.0)
    battery.recharge(2.0)
    assert battery.charge_j == pytest.approx(6.0)
    battery.recharge()
    assert battery.charge_j == pytest.approx(10.0)
    battery.recharge(100.0)
    assert battery.charge_j == pytest.approx(10.0)  # capped at capacity


def test_rounds_supported():
    battery = Battery(capacity_j=10.0)
    assert battery.rounds_supported(3.0) == 3
    with pytest.raises(ValueError):
        battery.rounds_supported(0.0)


def test_invalid_construction_and_draws():
    with pytest.raises(ValueError):
        Battery(capacity_j=0.0)
    with pytest.raises(ValueError):
        Battery(capacity_j=1.0, charge_j=2.0)
    with pytest.raises(ValueError):
        Battery(capacity_j=1.0).draw(-1.0)
    with pytest.raises(ValueError):
        Battery(capacity_j=1.0).recharge(-1.0)
