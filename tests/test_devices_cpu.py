"""Tests for the CPU time/energy model (eqs. (4), (5), (7))."""

import numpy as np
import pytest

from repro.devices import CpuModel
from repro.exceptions import ConfigurationError


def test_iteration_time_formula():
    cpu = CpuModel()
    assert cpu.iteration_time_s(2e4, 500, 1e9) == pytest.approx(2e4 * 500 / 1e9)


def test_iteration_energy_formula():
    cpu = CpuModel(effective_capacitance=1e-28)
    energy = cpu.iteration_energy_j(2e4, 500, 1e9)
    assert energy == pytest.approx(1e-28 * 2e4 * 500 * 1e18)


def test_round_quantities_scale_with_local_iterations():
    cpu = CpuModel()
    single = cpu.iteration_energy_j(2e4, 500, 1e9)
    assert cpu.round_energy_j(2e4, 500, 1e9, local_iterations=10) == pytest.approx(10 * single)
    single_t = cpu.iteration_time_s(2e4, 500, 1e9)
    assert cpu.round_time_s(2e4, 500, 1e9, local_iterations=10) == pytest.approx(10 * single_t)


def test_energy_is_quadratic_in_frequency():
    cpu = CpuModel()
    e1 = cpu.iteration_energy_j(2e4, 500, 1e9)
    e2 = cpu.iteration_energy_j(2e4, 500, 2e9)
    assert e2 == pytest.approx(4.0 * e1)


def test_time_is_inverse_in_frequency():
    cpu = CpuModel()
    t1 = cpu.iteration_time_s(2e4, 500, 1e9)
    t2 = cpu.iteration_time_s(2e4, 500, 2e9)
    assert t2 == pytest.approx(t1 / 2.0)


def test_frequency_for_deadline_inverts_time():
    cpu = CpuModel()
    freq = cpu.frequency_for_deadline(2e4, 500, 10, deadline_s=0.5)
    assert cpu.round_time_s(2e4, 500, freq, 10) == pytest.approx(0.5)


def test_frequency_for_nonpositive_deadline_is_infinite():
    cpu = CpuModel()
    assert np.isinf(cpu.frequency_for_deadline(2e4, 500, 10, deadline_s=0.0))


def test_vectorised_inputs():
    cpu = CpuModel()
    cycles = np.array([1e4, 2e4, 3e4])
    freq = np.array([1e9, 1e9, 2e9])
    times = cpu.iteration_time_s(cycles, 500, freq)
    assert times.shape == (3,)
    assert times[1] == pytest.approx(2.0 * times[0])


def test_invalid_inputs_rejected():
    with pytest.raises(ConfigurationError):
        CpuModel(effective_capacitance=0.0)
    with pytest.raises(ValueError):
        CpuModel().iteration_time_s(2e4, 500, 0.0)
