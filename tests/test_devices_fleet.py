"""Tests for fleet generation."""

import numpy as np
import pytest

from repro.devices import DeviceFleet, generate_fleet
from repro.exceptions import ConfigurationError


def test_default_fleet_matches_paper_setting():
    fleet = generate_fleet(50, rng=0)
    assert fleet.num_devices == 50
    assert np.all(fleet.num_samples == 500)
    assert np.all(fleet.cycles_per_sample >= 1e4)
    assert np.all(fleet.cycles_per_sample <= 3e4)
    assert np.all(fleet.upload_bits == pytest.approx(28100.0))
    assert fleet.total_samples == 25_000


def test_total_samples_split_equally():
    fleet = generate_fleet(7, rng=1, samples_per_device=None, total_samples=25_000)
    assert fleet.total_samples == 25_000
    sizes = fleet.num_samples
    assert sizes.max() - sizes.min() <= 1


def test_imbalanced_split_varies_sizes():
    fleet = generate_fleet(
        10, rng=2, samples_per_device=None, total_samples=10_000, sample_imbalance=1.0
    )
    sizes = fleet.num_samples
    assert sizes.min() >= 1
    assert sizes.std() > 0.0


def test_sample_fractions_sum_to_one():
    fleet = generate_fleet(20, rng=3)
    assert fleet.sample_fractions().sum() == pytest.approx(1.0)


def test_with_max_power_and_frequency():
    fleet = generate_fleet(5, rng=4)
    capped = fleet.with_max_power_w(0.005).with_max_frequency_hz(1e9)
    assert np.all(capped.max_power_w == 0.005)
    assert np.all(capped.max_frequency_hz == 1e9)
    # The original fleet is unchanged (immutability).
    assert np.all(fleet.max_frequency_hz == 2e9)


def test_with_samples_per_device():
    fleet = generate_fleet(5, rng=5).with_samples_per_device(100)
    assert np.all(fleet.num_samples == 100)


def test_subset_and_iteration():
    fleet = generate_fleet(6, rng=6)
    subset = fleet.subset([0, 2, 4])
    assert subset.num_devices == 3
    assert subset[1].name == fleet[2].name
    assert len(list(iter(fleet))) == 6


def test_reproducible_with_seed():
    a = generate_fleet(10, rng=9)
    b = generate_fleet(10, rng=9)
    assert np.allclose(a.cycles_per_sample, b.cycles_per_sample)


def test_invalid_configurations_rejected():
    with pytest.raises(ConfigurationError):
        generate_fleet(0)
    with pytest.raises(ConfigurationError):
        generate_fleet(5, samples_per_device=None, total_samples=3)
    with pytest.raises(ConfigurationError):
        generate_fleet(5, samples_per_device=0)
    with pytest.raises(ConfigurationError):
        generate_fleet(5, cycles_range=(3e4, 1e4))
    with pytest.raises(ConfigurationError):
        DeviceFleet(())
    with pytest.raises(ConfigurationError):
        generate_fleet(5, sample_imbalance=-1.0)


def test_fleet_array_views_have_consistent_shapes():
    fleet = generate_fleet(8, rng=11)
    for array in (
        fleet.cycles_per_sample,
        fleet.num_samples,
        fleet.upload_bits,
        fleet.min_frequency_hz,
        fleet.max_frequency_hz,
        fleet.min_power_w,
        fleet.max_power_w,
        fleet.effective_capacitance,
    ):
        assert array.shape == (8,)


# -- device-class mixes ------------------------------------------------------

def test_mixed_fleet_draws_from_the_requested_classes():
    from repro.devices import generate_mixed_fleet

    fleet = generate_mixed_fleet(
        80, {"phone": 0.4, "laptop": 0.3, "iot": 0.3}, rng=0
    )
    assert fleet.num_devices == 80
    prefixes = {p.name.split("-")[0] for p in fleet}
    assert prefixes <= {"phone", "laptop", "iot"}
    assert len(prefixes) == 3  # at this size every class appears


def test_mixed_fleet_class_scalings_apply():
    from repro.devices import DEVICE_CLASSES, generate_mixed_fleet

    fleet = generate_mixed_fleet(60, {"laptop": 0.5, "iot": 0.5}, rng=1)
    base_fleet = generate_fleet(1, rng=0)
    base_max_hz = base_fleet[0].max_frequency_hz
    for profile in fleet:
        cls = DEVICE_CLASSES[profile.name.split("-")[0]]
        assert profile.max_frequency_hz == pytest.approx(
            base_max_hz * cls.frequency_scale
        )
        assert profile.num_samples == max(1, round(500 * cls.samples_scale))


def test_mixed_fleet_is_seed_deterministic():
    from repro.devices import generate_mixed_fleet

    a = generate_mixed_fleet(30, rng=5)
    b = generate_mixed_fleet(30, rng=5)
    assert [p.name for p in a] == [p.name for p in b]
    assert np.allclose(a.cycles_per_sample, b.cycles_per_sample)


def test_mixed_fleet_rejects_bad_shares():
    from repro.devices import generate_mixed_fleet

    with pytest.raises(ConfigurationError, match="known"):
        generate_mixed_fleet(10, {"mainframe": 1.0}, rng=0)
    with pytest.raises(ConfigurationError):
        generate_mixed_fleet(10, {}, rng=0)
    with pytest.raises(ConfigurationError):
        generate_mixed_fleet(10, {"phone": 0.0}, rng=0)
    with pytest.raises(ConfigurationError):
        generate_mixed_fleet(10, samples_per_device=None, rng=0)


def test_device_class_validates_scales():
    from repro.devices import DeviceClass

    with pytest.raises(ConfigurationError):
        DeviceClass(name="bad", power_scale=0.0)
