"""Tests for device profiles."""

import pytest

from repro import constants
from repro.devices import DeviceProfile
from repro.exceptions import ConfigurationError


def _profile(**overrides):
    defaults = dict(cycles_per_sample=2e4)
    defaults.update(overrides)
    return DeviceProfile(**defaults)


def test_defaults_follow_the_paper_table():
    profile = _profile()
    assert profile.num_samples == constants.DEFAULT_SAMPLES_PER_DEVICE
    assert profile.upload_bits == pytest.approx(28100.0)
    assert profile.max_frequency_hz == pytest.approx(2e9)
    assert profile.effective_capacitance == pytest.approx(1e-28)


def test_cycles_per_local_iteration():
    profile = _profile(cycles_per_sample=1.5e4, num_samples=400)
    assert profile.cycles_per_local_iteration == pytest.approx(6e6)


def test_with_samples_returns_modified_copy():
    profile = _profile()
    other = profile.with_samples(100)
    assert other.num_samples == 100
    assert profile.num_samples == constants.DEFAULT_SAMPLES_PER_DEVICE


def test_with_power_range_and_frequency_range():
    profile = _profile()
    other = profile.with_power_range(0.001, 0.002).with_frequency_range(1e8, 1e9)
    assert other.min_power_w == 0.001
    assert other.max_power_w == 0.002
    assert other.max_frequency_hz == 1e9


def test_invalid_profiles_rejected():
    with pytest.raises(ConfigurationError):
        _profile(cycles_per_sample=0.0)
    with pytest.raises(ConfigurationError):
        _profile(num_samples=0)
    with pytest.raises(ConfigurationError):
        _profile(upload_bits=-1.0)
    with pytest.raises(ConfigurationError):
        _profile(min_frequency_hz=3e9)  # above the default max
    with pytest.raises(ConfigurationError):
        _profile(min_power_w=1.0)  # above the default max power
    with pytest.raises(ConfigurationError):
        _profile(effective_capacitance=0.0)


def test_zero_upload_bits_allowed_for_degenerate_fleets():
    # A device with nothing to upload is a valid degenerate configuration
    # (custom scenario families use it); only negative sizes are rejected.
    assert _profile(upload_bits=0.0).upload_bits == 0.0
