"""Tests for the uplink radio time/energy model (eqs. (2)-(3))."""

import numpy as np
import pytest

from repro import constants
from repro.devices import RadioModel
from repro.wireless.rate import shannon_rate


@pytest.fixture()
def radio():
    return RadioModel()


def test_rate_matches_shannon_formula(radio):
    p, b, g = 0.01, 4e5, 1e-10
    assert radio.rate_bps(p, b, g) == pytest.approx(
        shannon_rate(p, b, g, constants.NOISE_PSD_W_PER_HZ)
    )


def test_upload_time_is_bits_over_rate(radio):
    p, b, g = 0.01, 4e5, 1e-10
    rate = radio.rate_bps(p, b, g)
    assert radio.upload_time_s(28100.0, p, b, g) == pytest.approx(28100.0 / rate)


def test_upload_time_infinite_without_bandwidth(radio):
    assert np.isinf(radio.upload_time_s(28100.0, 0.01, 0.0, 1e-10))


def test_upload_energy_is_power_times_time(radio):
    p, b, g = 0.005, 4e5, 1e-10
    time = radio.upload_time_s(28100.0, p, b, g)
    assert radio.upload_energy_j(28100.0, p, b, g) == pytest.approx(p * time)


def test_zero_power_zero_energy(radio):
    assert radio.upload_energy_j(28100.0, 0.0, 4e5, 1e-10) == 0.0


def test_energy_per_bit_increases_with_power(radio):
    # p / log2(1 + c p) is increasing: transmitting faster costs more joules
    # per bit, which is the core trade-off Subproblem 2 exploits.
    g, b, bits = 1e-10, 4e5, 28100.0
    powers = np.linspace(0.001, 0.0158, 30)
    energies = radio.upload_energy_j(bits, powers, b, g)
    assert np.all(np.diff(energies) > 0)


def test_more_bandwidth_reduces_energy(radio):
    g, p, bits = 1e-10, 0.01, 28100.0
    bandwidths = np.linspace(1e5, 2e6, 20)
    energies = radio.upload_energy_j(bits, p, bandwidths, g)
    assert np.all(np.diff(energies) < 0)


def test_vectorised_over_devices(radio):
    p = np.array([0.01, 0.005])
    b = np.array([4e5, 8e5])
    g = np.array([1e-10, 5e-11])
    times = radio.upload_time_s(28100.0, p, b, g)
    assert times.shape == (2,)
    assert np.all(times > 0)
