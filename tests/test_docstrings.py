"""The docs gate as a tier-1 test: every module under src/repro documented."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_docstrings import main, module_docstring_report  # noqa: E402


def test_every_repro_module_has_a_docstring():
    documented, undocumented = module_docstring_report(REPO_ROOT / "src" / "repro")
    assert not undocumented, (
        "modules missing a module docstring: "
        + ", ".join(str(p) for p in undocumented)
    )
    assert documented  # the scan actually found the package


def test_checker_flags_an_undocumented_module(tmp_path):
    (tmp_path / "documented.py").write_text('"""Has a docstring."""\n')
    (tmp_path / "bare.py").write_text("x = 1\n")
    documented, undocumented = module_docstring_report(tmp_path)
    assert [p.name for p in documented] == ["documented.py"]
    assert [p.name for p in undocumented] == ["bare.py"]
    assert main(["--root", str(tmp_path), "--fail-under", "100"]) == 1
    assert main(["--root", str(tmp_path), "--fail-under", "50"]) == 0


def test_checker_rejects_missing_root(tmp_path):
    assert main(["--root", str(tmp_path / "nope")]) == 2


def test_cli_invocation_passes_on_the_repo():
    result = subprocess.run(
        [sys.executable, "tools/check_docstrings.py", "--fail-under", "100"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
