"""Tests for the ablation experiment."""

import pytest

from repro.experiments import AblationConfig, run_ablation
from repro.experiments.base import SweepConfig


@pytest.fixture(scope="module")
def table():
    config = AblationConfig(
        sweep=SweepConfig(num_devices=8, num_trials=1), damping_values=(0.25, 0.75)
    )
    return run_ablation(config)


def test_all_variants_present(table):
    variants = set(table.column("variant"))
    assert variants == {"subproblem1", "damping_xi", "initialisation", "sp2_solver"}


def test_subproblem1_variants_agree_roughly(table):
    rows = table.filter(variant="subproblem1").rows
    objectives = [row["objective"] for row in rows]
    assert max(objectives) <= min(objectives) * 1.25


def test_damping_has_limited_effect_on_final_objective(table):
    rows = table.filter(variant="damping_xi").rows
    objectives = [row["objective"] for row in rows]
    assert max(objectives) <= min(objectives) * 1.25


def test_sp2_solver_agreement_is_recorded(table):
    row = table.filter(variant="sp2_solver").rows[0]
    # The recorded value is the |relative gap| between the two solvers.
    assert row["objective"] < 0.5


def test_every_row_has_finite_metrics(table):
    for row in table.rows:
        assert row["objective"] == row["objective"]  # not NaN
        assert row["energy_j"] == row["energy_j"]
