"""Tests for the per-figure experiment runners (tiny configurations).

Each test runs the figure's sweep at a deliberately small scale and asserts
the qualitative claim the paper makes for that figure — this is the
regression harness for the reproduction itself.
"""

import numpy as np
import pytest

from repro.core.allocator import AllocatorConfig
from repro.exceptions import ConfigurationError
from repro.experiments import (
    EXPERIMENTS,
    Fig2Config,
    Fig3Config,
    Fig4Config,
    Fig5Config,
    Fig6Config,
    Fig7Config,
    Fig8Config,
    SamplesConfig,
    get_experiment,
    run_experiment,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_samples_sweep,
)
from repro.experiments.base import PAPER_WEIGHT_PAIRS, SweepConfig, average_metrics


TINY = SweepConfig(num_devices=8, num_trials=1)


def test_registry_lists_every_figure():
    for name in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "samples", "ablation"):
        assert name in EXPERIMENTS
        assert callable(get_experiment(name))
    with pytest.raises(ConfigurationError):
        get_experiment("fig99")


def test_average_metrics_helper():
    merged = average_metrics([{"a": 1.0, "b": 2.0}, {"a": 3.0, "b": 4.0}])
    assert merged == {"a": 2.0, "b": 3.0}
    with pytest.raises(ValueError):
        average_metrics([])


def test_paper_weight_pairs_are_valid():
    for w1, w2 in PAPER_WEIGHT_PAIRS:
        assert w1 + w2 == pytest.approx(1.0)


def test_fig2_weight_ordering_and_benchmark_gap():
    config = Fig2Config(sweep=TINY, max_power_dbm_grid=(8.0,), weight_pairs=((0.9, 0.1), (0.1, 0.9)))
    table = run_fig2(config)
    energy_focused = table.filter(scheme="proposed", w1=0.9).rows[0]
    time_focused = table.filter(scheme="proposed", w1=0.1).rows[0]
    benchmark = table.filter(scheme="benchmark").rows[0]
    # Larger w1 -> less energy, more time.
    assert energy_focused["energy_j"] < time_focused["energy_j"]
    assert energy_focused["time_s"] > time_focused["time_s"]
    # The energy-focused setting beats the benchmark on energy, and both
    # settings beat it on the weighted objective.  (The paper's stronger
    # claim — every weight pair below the benchmark's energy — emerges at the
    # full 50-device / 100-drop scale, see EXPERIMENTS.md.)
    assert energy_focused["energy_j"] < benchmark["energy_j"]
    assert energy_focused["objective"] < benchmark["objective"]
    assert time_focused["objective"] < benchmark["objective"]


def test_fig3_benchmark_energy_grows_with_fmax():
    config = Fig3Config(
        sweep=TINY, max_frequency_ghz_grid=(0.5, 2.0), weight_pairs=((0.5, 0.5),)
    )
    table = run_fig3(config)
    bench = table.filter(scheme="benchmark")
    assert bench.rows[0]["energy_j"] < bench.rows[1]["energy_j"]
    # The proposed algorithm's delay does not increase when more CPU headroom
    # is available.
    proposed = table.filter(scheme="proposed")
    assert proposed.rows[1]["time_s"] <= proposed.rows[0]["time_s"] * (1 + 1e-6)


def test_fig4_energy_falls_with_more_devices():
    config = Fig4Config(
        sweep=SweepConfig(num_devices=8, num_trials=1),
        num_devices_grid=(10, 40),
        total_samples=8000,
        weight_pairs=((0.5, 0.5),),
    )
    table = run_fig4(config)
    small, large = table.rows[0], table.rows[1]
    assert large["energy_j"] < small["energy_j"]


def test_fig5_delay_grows_with_radius():
    config = Fig5Config(
        sweep=SweepConfig(num_devices=8, num_trials=1),
        radius_km_grid=(0.1, 1.4),
        num_devices_grid=(8,),
    )
    table = run_fig5(config)
    near, far = table.rows[0], table.rows[1]
    assert far["time_s"] > near["time_s"]


def test_fig6_cost_grows_with_schedule():
    config = Fig6Config(
        sweep=TINY,
        local_iterations_grid=(10, 60),
        global_rounds_grid=(50, 400),
    )
    table = run_fig6(config)
    # More local iterations at fixed global rounds costs more of both.
    base = table.filter(global_rounds=50, local_iterations=10).rows[0]
    more_local = table.filter(global_rounds=50, local_iterations=60).rows[0]
    more_global = table.filter(global_rounds=400, local_iterations=10).rows[0]
    assert more_local["energy_j"] > base["energy_j"]
    assert more_local["time_s"] > base["time_s"]
    assert more_global["energy_j"] > base["energy_j"]
    assert more_global["time_s"] > base["time_s"]


def test_fig7_joint_beats_single_resource():
    config = Fig7Config(
        sweep=SweepConfig(num_devices=8, num_trials=1, max_power_dbm=10.0),
        deadline_s_grid=(120.0, 160.0),
    )
    table = run_fig7(config)
    for deadline in config.deadline_s_grid:
        proposed = table.filter(deadline_s=deadline, scheme="proposed").rows[0]
        comm = table.filter(deadline_s=deadline, scheme="communication_only").rows[0]
        comp = table.filter(deadline_s=deadline, scheme="computation_only").rows[0]
        # At this miniature scale the joint optimiser and the
        # communication-only scheme can land within a fraction of a percent
        # of each other; the dominance becomes strict at the paper's scale.
        assert proposed["energy_j"] <= comm["energy_j"] * 1.02
        assert proposed["energy_j"] <= comp["energy_j"] * 1.02
    # Energy falls as the deadline loosens.
    tight = table.filter(deadline_s=120.0, scheme="proposed").rows[0]
    loose = table.filter(deadline_s=160.0, scheme="proposed").rows[0]
    assert loose["energy_j"] < tight["energy_j"]


def test_fig8_proposed_beats_scheme1_with_widening_gap():
    config = Fig8Config(
        sweep=SweepConfig(num_devices=8, num_trials=1),
        max_power_dbm_grid=(10.0,),
        deadline_s_grid=(90.0, 150.0),
    )
    table = run_fig8(config)
    gaps = {}
    for deadline in config.deadline_s_grid:
        proposed = table.filter(deadline_s=deadline, scheme="proposed").rows[0]
        scheme1 = table.filter(deadline_s=deadline, scheme="scheme1").rows[0]
        assert proposed["energy_j"] <= scheme1["energy_j"] * (1 + 1e-6)
        gaps[deadline] = scheme1["energy_j"] - proposed["energy_j"]
    # The gap widens as the deadline tightens (Fig. 8's headline claim).
    assert gaps[90.0] > gaps[150.0]


def test_samples_sweep_is_monotone():
    config = SamplesConfig(
        sweep=SweepConfig(num_devices=8, num_trials=1), samples_grid=(200, 800)
    )
    table = run_samples_sweep(config)
    small, large = table.rows[0], table.rows[1]
    assert large["energy_j"] > small["energy_j"]
    assert large["time_s"] > small["time_s"]


def test_run_experiment_accepts_config_objects():
    config = Fig2Config(
        sweep=SweepConfig(num_devices=6, num_trials=1, allocator=AllocatorConfig(max_iterations=5)),
        max_power_dbm_grid=(10.0,),
        weight_pairs=((0.5, 0.5),),
        include_benchmark=False,
    )
    table = run_experiment("fig2", config)
    assert len(table) == 1
    assert table.metadata["figure"] == "2"


def test_paper_configs_expose_full_grids():
    assert len(Fig2Config.paper().max_power_dbm_grid) == 8
    assert len(Fig8Config.paper().max_power_dbm_grid) == 8
    assert Fig4Config.paper().sweep.num_trials == 100
    assert np.isclose(Fig7Config.paper().sweep.max_power_dbm, 10.0)
