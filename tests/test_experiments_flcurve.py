"""Tests for the closed-loop FL accuracy-versus-wall-clock experiment."""

import pytest

from repro.experiments.flcurve import FLCurveConfig, run_flcurve
from repro.experiments.runner import SweepRunner, task_hash


@pytest.fixture(scope="module")
def config():
    return FLCurveConfig(rounds=2, families=("paper",), schemes=("proposed", "static"))


@pytest.fixture(scope="module")
def table(config):
    return run_flcurve(config, runner=SweepRunner(jobs=1, use_cache=False))


def test_one_row_per_family_scheme_round(config, table):
    assert len(table) == len(config.families) * len(config.schemes) * config.rounds
    assert table.column("scheme") == ["proposed"] * 2 + ["static"] * 2
    assert table.column("round") == [1, 2, 1, 2]


def test_elapsed_and_energy_are_cumulative(table):
    for scheme in ("proposed", "static"):
        rows = table.filter(scheme=scheme).rows
        assert rows[1]["elapsed_s"] > rows[0]["elapsed_s"]
        assert rows[1]["energy_j"] > rows[0]["energy_j"]


def test_proposed_beats_static_on_energy_for_the_same_curve(table):
    proposed = table.filter(scheme="proposed").rows
    static = table.filter(scheme="static").rows
    # Same seed + full participation: the FedAvg trajectory is identical,
    # only its price differs — which is exactly the paper's comparison.
    assert [r["accuracy"] for r in proposed] == [r["accuracy"] for r in static]
    assert proposed[-1]["energy_j"] < static[-1]["energy_j"]


def test_parallel_run_matches_serial_bit_for_bit(config, table):
    parallel = run_flcurve(config, runner=SweepRunner(jobs=2, use_cache=False))
    assert parallel.rows == table.rows


def test_cache_round_trip_is_bit_identical(config, table, tmp_path):
    runner = SweepRunner(jobs=1, use_cache=True, cache_dir=tmp_path)
    first = run_flcurve(config, runner=runner)
    assert runner.last_stats.cache_hits == 0
    second = run_flcurve(config, runner=runner)
    assert runner.last_stats.cache_hits == runner.last_stats.total
    assert first.rows == table.rows
    assert second.rows == table.rows


def test_task_payloads_hash_roundloop_configuration(config):
    tasks = config.tasks()
    assert len(tasks) == len(config.families) * len(config.schemes)
    digests = {task_hash(task) for task in tasks}
    assert len(digests) == len(tasks)
    # Changing the round count must invalidate every cache key.
    import dataclasses

    changed = dataclasses.replace(config, rounds=3)
    assert digests.isdisjoint({task_hash(t) for t in changed.tasks()})


def test_failed_point_becomes_nan_rows_not_a_crash(config, monkeypatch):
    import repro.experiments.flcurve as flcurve_module

    def boom(system, params):
        raise RuntimeError("synthetic failure")

    monkeypatch.setitem(
        flcurve_module.__dict__, "_run_fl_roundloop", boom
    )
    monkeypatch.setitem(
        __import__("repro.experiments.runner", fromlist=["_SOLVER_KINDS"])._SOLVER_KINDS,
        "fl_roundloop",
        boom,
    )
    table = run_flcurve(config, runner=SweepRunner(jobs=1, use_cache=False))
    assert len(table.errors) == 2
    assert all(row["accuracy"] != row["accuracy"] for row in table.rows)  # NaN


def test_paper_config_scales_up():
    paper = FLCurveConfig.paper()
    assert paper.rounds > FLCurveConfig().rounds
    assert len(paper.families) >= 4
    assert paper.profile_modes == ("oracle", "estimated")


def test_profiles_column_defaults_to_oracle(table):
    assert set(table.column("profiles")) == {"oracle"}


def test_estimated_profile_mode_adds_a_curve_per_scheme():
    config = FLCurveConfig(
        rounds=2,
        families=("paper",),
        schemes=("proposed",),
        profile_modes=("oracle", "estimated"),
    )
    tasks = config.tasks()
    assert len(tasks) == 2
    assert {task.key[-1] for task in tasks} == {"oracle", "estimated"}
    estimated = next(
        t for t in tasks if t.key[-1] == "estimated"
    ).solver_params["roundloop"]
    assert estimated.estimate_profiles
    table = run_flcurve(config, runner=SweepRunner(jobs=1, use_cache=False))
    assert len(table) == 2 * config.rounds
    assert set(table.column("profiles")) == {"oracle", "estimated"}


def test_unknown_profile_mode_is_rejected():
    with pytest.raises(ValueError, match="profile mode"):
        FLCurveConfig(profile_modes=("oracle", "psychic"))
