"""Tests for the ASCII plotting helper."""

import pytest

from repro.experiments import ascii_line_plot


def test_plot_contains_markers_and_legend():
    plot = ascii_line_plot(
        [1, 2, 3],
        {"first": [1.0, 2.0, 3.0], "second": [3.0, 2.0, 1.0]},
        title="demo plot",
        x_label="x",
        y_label="y",
    )
    assert "demo plot" in plot
    assert "o = first" in plot
    assert "x = second" in plot
    assert "x: x" in plot
    assert "y: y" in plot
    # Both marker characters appear in the canvas.
    assert "o" in plot and "x" in plot


def test_plot_dimensions():
    plot = ascii_line_plot([0, 1], {"s": [0.0, 1.0]}, width=40, height=10)
    canvas_lines = [line for line in plot.splitlines() if line.rstrip().endswith(tuple("o x".split())) or "|" in line]
    assert len([l for l in plot.splitlines() if "|" in l]) == 10


def test_constant_series_does_not_crash():
    plot = ascii_line_plot([1, 2, 3], {"flat": [5.0, 5.0, 5.0]})
    assert "flat" in plot


def test_nan_values_are_skipped():
    plot = ascii_line_plot([1, 2, 3], {"partial": [1.0, float("nan"), 3.0]})
    assert "partial" in plot


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        ascii_line_plot([], {"s": []})
    with pytest.raises(ValueError):
        ascii_line_plot([1, 2], {})
    with pytest.raises(ValueError):
        ascii_line_plot([1, 2], {"s": [1.0]})
    with pytest.raises(ValueError):
        ascii_line_plot([1], {"s": [float("nan")]})
    with pytest.raises(ValueError):
        ascii_line_plot([1, 2], {"s": [1.0, 2.0]}, width=2, height=2)
