"""Tests for the ResultTable container."""

import pytest

from repro.experiments import ResultTable


def _table():
    table = ResultTable(name="demo", columns=["x", "scheme", "y"])
    table.add_row(x=1, scheme="a", y=10.0)
    table.add_row(x=2, scheme="a", y=8.0)
    table.add_row(x=1, scheme="b", y=12.0)
    return table


def test_add_row_validates_columns():
    table = ResultTable(name="t", columns=["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(a=1)
    with pytest.raises(ValueError):
        table.add_row(a=1, b=2, c=3)
    table.add_row(a=1, b=2)
    assert len(table) == 1


def test_column_and_filter_and_series():
    table = _table()
    assert table.column("y") == [10.0, 8.0, 12.0]
    filtered = table.filter(scheme="a")
    assert len(filtered) == 2
    xs, ys = table.series("x", "y", scheme="a")
    assert xs == [1, 2]
    assert ys == [10.0, 8.0]
    with pytest.raises(KeyError):
        table.column("nope")


def test_markdown_rendering():
    markdown = _table().to_markdown()
    lines = markdown.splitlines()
    assert lines[0].startswith("| x | scheme | y |")
    assert lines[1].startswith("| --- |")
    assert len(lines) == 2 + 3


def test_json_roundtrip(tmp_path):
    table = _table()
    table.metadata["figure"] = "demo"
    path = table.to_json(tmp_path / "table.json")
    loaded = ResultTable.from_json(path)
    assert loaded.name == table.name
    assert loaded.columns == table.columns
    assert loaded.rows == table.rows
    assert loaded.metadata == table.metadata


def test_csv_export(tmp_path):
    path = _table().to_csv(tmp_path / "table.csv")
    content = path.read_text().strip().splitlines()
    assert content[0] == "x,scheme,y"
    assert len(content) == 4


def test_from_rows_infers_columns():
    table = ResultTable.from_rows("auto", [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
    assert table.columns == ["a", "b"]
    assert len(table) == 2
    with pytest.raises(ValueError):
        ResultTable.from_rows("empty", [])


def test_iteration_over_rows():
    assert [row["x"] for row in _table()] == [1, 2, 1]


# -- skipped vs crashed rendering (satellite: sharded-run rows) ---------------


def _mixed_table():
    """One good row, one crashed (NaN) row, one skipped (None) row."""
    table = ResultTable(name="mix", columns=["x", "y"])
    table.add_row(x=1, y=10.0)
    table.add_row(x=2, y=float("nan"))
    table.add_row(x=3, y=None)
    return table


def test_skipped_and_crashed_rows_render_distinctly():
    # A crashed grid point renders "nan" (something ran and broke); a
    # skipped one renders an empty cell (nothing was attempted).  Readers
    # of a sharded export must be able to tell the two apart.
    lines = _mixed_table().to_markdown().splitlines()
    assert lines[3] == "| 2 | nan |"
    assert lines[4] == "| 3 |  |"


def test_skipped_and_crashed_csv_cells_differ(tmp_path):
    path = _mixed_table().to_csv(tmp_path / "mix.csv")
    rows = path.read_text().strip().splitlines()
    assert rows[2] == "2,nan"
    assert rows[3] == "3,"


def test_add_skip_records_keys_and_survives_json(tmp_path):
    table = _mixed_table()
    table.add_skip(("p", 3))
    assert table.skips == [["p", 3]]  # tuple keys are listified for JSON
    loaded = ResultTable.from_json(table.to_json(tmp_path / "mix.json"))
    assert loaded.skips == [["p", 3]]
    assert loaded.rows[2]["y"] is None  # skipped cell stays null, not NaN


def test_tables_without_skips_serialise_as_before(tmp_path):
    # The unsharded path must be byte-stable: no "skipped" metadata key, no
    # rendering change.
    table = _table()
    assert table.skips == []
    assert "skipped" not in table.metadata
    content = (table.to_csv(tmp_path / "t.csv")).read_text()
    assert content.strip().splitlines()[1] == "1,a,10.0"


def test_add_grid_row_distinguishes_skip_crash_and_success():
    from repro.experiments.base import GridPoint, add_grid_row

    table = ResultTable(name="grid", columns=["x", "y"])
    add_grid_row(
        table,
        GridPoint(key=("k", 1), metrics={"m": 5.0}, trials=2, failures=0, errors=()),
        {"y": "m"},
        x=1,
    )
    add_grid_row(
        table,
        GridPoint(
            key=("k", 2), metrics=None, trials=2, failures=2, errors=("boom", "boom")
        ),
        {"y": "m"},
        x=2,
    )
    add_grid_row(
        table,
        GridPoint(key=("k", 3), metrics=None, trials=2, failures=0, errors=(), skipped=2),
        {"y": "m"},
        x=3,
    )
    rows = table.rows
    assert rows[0]["y"] == 5.0
    assert rows[1]["y"] != rows[1]["y"]  # NaN: crashed
    assert rows[2]["y"] is None  # skipped: not attempted
    assert table.skips == [["k", 3]]
    assert ("k", 2) in dict(table.errors) or table.metadata.get("errors")


def test_sharded_sweep_export_marks_other_shard_points_as_skipped(tmp_path):
    # End to end: a sharded run's table has empty cells (not NaN) for the
    # grid points whose trials all live in another shard.
    from repro.core.allocator import AllocatorConfig
    from repro.experiments import SweepConfig, SweepRunner
    from repro.experiments.base import add_grid_row, proposed_tasks, run_sweep

    sweep = SweepConfig(
        num_devices=4, num_trials=2, allocator=AllocatorConfig(max_iterations=4)
    )
    tasks = proposed_tasks(("p",), sweep, 0.5)
    count = 8  # small task set + many shards: some shard skips everything
    for index in range(count):
        runner = SweepRunner(jobs=1, use_cache=False, shard=(index, count))
        points = run_sweep(tasks, runner=runner)
        if all(p.skipped == p.trials for p in points.values()):
            break
    else:
        pytest.fail("no shard skipped every trial")
    table = ResultTable(name="shard", columns=["x", "objective"])
    add_grid_row(table, points[("p",)], {"objective": "objective"}, x=1)
    assert table.rows[0]["objective"] is None
    assert table.skips == [["p"]]
    assert table.to_csv(tmp_path / "s.csv").read_text().strip().splitlines()[1] == "1,"
