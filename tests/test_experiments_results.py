"""Tests for the ResultTable container."""

import pytest

from repro.experiments import ResultTable


def _table():
    table = ResultTable(name="demo", columns=["x", "scheme", "y"])
    table.add_row(x=1, scheme="a", y=10.0)
    table.add_row(x=2, scheme="a", y=8.0)
    table.add_row(x=1, scheme="b", y=12.0)
    return table


def test_add_row_validates_columns():
    table = ResultTable(name="t", columns=["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(a=1)
    with pytest.raises(ValueError):
        table.add_row(a=1, b=2, c=3)
    table.add_row(a=1, b=2)
    assert len(table) == 1


def test_column_and_filter_and_series():
    table = _table()
    assert table.column("y") == [10.0, 8.0, 12.0]
    filtered = table.filter(scheme="a")
    assert len(filtered) == 2
    xs, ys = table.series("x", "y", scheme="a")
    assert xs == [1, 2]
    assert ys == [10.0, 8.0]
    with pytest.raises(KeyError):
        table.column("nope")


def test_markdown_rendering():
    markdown = _table().to_markdown()
    lines = markdown.splitlines()
    assert lines[0].startswith("| x | scheme | y |")
    assert lines[1].startswith("| --- |")
    assert len(lines) == 2 + 3


def test_json_roundtrip(tmp_path):
    table = _table()
    table.metadata["figure"] = "demo"
    path = table.to_json(tmp_path / "table.json")
    loaded = ResultTable.from_json(path)
    assert loaded.name == table.name
    assert loaded.columns == table.columns
    assert loaded.rows == table.rows
    assert loaded.metadata == table.metadata


def test_csv_export(tmp_path):
    path = _table().to_csv(tmp_path / "table.csv")
    content = path.read_text().strip().splitlines()
    assert content[0] == "x,scheme,y"
    assert len(content) == 4


def test_from_rows_infers_columns():
    table = ResultTable.from_rows("auto", [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
    assert table.columns == ["a", "b"]
    assert len(table) == 2
    with pytest.raises(ValueError):
        ResultTable.from_rows("empty", [])


def test_iteration_over_rows():
    assert [row["x"] for row in _table()] == [1, 2, 1]
