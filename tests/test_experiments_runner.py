"""Tests for the parallel sweep engine (SweepRunner, cache, error rows)."""

from __future__ import annotations

import math

import pytest

from repro.core.allocator import AllocatorConfig
from repro.experiments import (
    Fig8Config,
    SweepConfig,
    SweepRunner,
    SweepTask,
    run_experiment,
    run_fig8,
    task_hash,
    use_runner,
)
from repro.experiments.base import add_grid_row, proposed_tasks, run_sweep
from repro.experiments.results import ResultTable
from repro.experiments.runner import (
    get_active_runner,
    register_solver_kind,
    set_default_runner,
)

TINY_SWEEP = SweepConfig(num_devices=6, num_trials=2, allocator=AllocatorConfig(max_iterations=5))

TINY_FIG8 = Fig8Config(
    sweep=TINY_SWEEP,
    max_power_dbm_grid=(10.0,),
    deadline_s_grid=(90.0, 150.0),
)


@register_solver_kind("explode_if_seed_one")
def _explode_if_seed_one(system, params):
    """Test-only solver kind: fails on the drop whose RNG seed was 1."""
    if params["seed"] == 1:
        raise RuntimeError("boom on seed 1")
    return {"value": float(params["seed"]) * 2.0}


def _explode_tasks(num_trials: int = 3) -> list[SweepTask]:
    sweep = SweepConfig(num_devices=4, num_trials=num_trials)
    return [
        SweepTask(
            key=("point",),
            scenario=sweep.scenario_params(seed=seed),
            solver_kind="explode_if_seed_one",
            solver_params={"seed": seed},
        )
        for seed in sweep.trial_seeds()
    ]


# -- determinism: serial vs parallel ----------------------------------------

def test_fig8_identical_tables_for_jobs_1_and_4():
    serial = run_fig8(TINY_FIG8, runner=SweepRunner(jobs=1))
    parallel = run_fig8(TINY_FIG8, runner=SweepRunner(jobs=4))
    assert serial.rows == parallel.rows
    assert serial.columns == parallel.columns


def test_runner_preserves_task_order_under_parallelism():
    sweep = SweepConfig(num_devices=4, num_trials=4)
    tasks = [
        SweepTask(
            key=(seed,),
            scenario=sweep.scenario_params(seed=seed),
            solver_kind="proposed",
            solver_params={"energy_weight": 0.5, "allocator": AllocatorConfig(max_iterations=3)},
        )
        for seed in sweep.trial_seeds()
    ]
    outcomes = SweepRunner(jobs=4).run(tasks)
    assert [o.task.key for o in outcomes] == [t.key for t in tasks]
    assert all(o.ok for o in outcomes)


# -- caching -----------------------------------------------------------------

def test_cache_hit_on_repeat_and_invalidation_on_config_change(tmp_path):
    tasks = proposed_tasks(("p",), TINY_SWEEP, 0.5)
    runner = SweepRunner(jobs=1, cache_dir=tmp_path, use_cache=True)

    first = runner.run(tasks)
    assert runner.last_stats.executed == len(tasks)
    assert runner.last_stats.cache_hits == 0

    second = runner.run(tasks)
    assert runner.last_stats.cache_hits == len(tasks)
    assert runner.last_stats.executed == 0
    assert all(o.cached for o in second)
    assert [o.metrics for o in first] == [o.metrics for o in second]

    # Changing any knob (here the energy weight) misses the cache.
    changed = proposed_tasks(("p",), TINY_SWEEP, 0.7)
    runner.run(changed)
    assert runner.last_stats.cache_hits == 0
    assert runner.last_stats.executed == len(changed)


def test_cache_disabled_runner_never_touches_disk(tmp_path):
    tasks = proposed_tasks(("p",), TINY_SWEEP, 0.5)
    runner = SweepRunner(jobs=1, cache_dir=tmp_path, use_cache=False)
    runner.run(tasks)
    runner.run(tasks)
    assert runner.last_stats.cache_hits == 0
    assert not any(tmp_path.iterdir())


def test_unwritable_cache_degrades_instead_of_crashing(tmp_path):
    target = tmp_path / "notadir"
    target.write_text("occupied")
    tasks = proposed_tasks(("p",), TINY_SWEEP, 0.5)
    runner = SweepRunner(jobs=1, cache_dir=target, use_cache=True)
    with pytest.warns(RuntimeWarning, match="result cache disabled"):
        outcomes = runner.run(tasks)
    assert all(o.ok for o in outcomes)
    assert runner.use_cache is False


def test_task_hash_is_stable_and_sensitive():
    [task] = proposed_tasks(("p",), SweepConfig(num_devices=6, num_trials=1), 0.5)
    [same] = proposed_tasks(("renamed",), SweepConfig(num_devices=6, num_trials=1), 0.5)
    [other] = proposed_tasks(("p",), SweepConfig(num_devices=7, num_trials=1), 0.5)
    assert task_hash(task) == task_hash(same)  # the key is a label, not an input
    assert task_hash(task) != task_hash(other)


# -- crash isolation ---------------------------------------------------------

def test_failed_trial_is_isolated_and_excluded_from_average():
    points = run_sweep(_explode_tasks(3), runner=SweepRunner(jobs=1))
    point = points[("point",)]
    assert point.trials == 3
    assert point.failures == 1
    assert "boom on seed 1" in point.errors[0]
    # Seeds 0 and 2 survive: mean(0*2, 2*2) == 2.0.
    assert point.metrics == {"value": 2.0}


def test_all_trials_failing_yields_nan_error_row():
    sweep = SweepConfig(num_devices=4, num_trials=1, base_seed=1)
    tasks = [
        SweepTask(
            key=("dead",),
            scenario=sweep.scenario_params(seed=1),
            solver_kind="explode_if_seed_one",
            solver_params={"seed": 1},
        )
    ]
    points = run_sweep(tasks, runner=SweepRunner(jobs=1))
    table = ResultTable(name="t", columns=["label", "value"])
    add_grid_row(table, points[("dead",)], {"value": "value"}, label="dead")
    assert len(table) == 1
    assert math.isnan(table.rows[0]["value"])
    assert table.errors and table.errors[0]["key"] == ["dead"]


def test_dotted_path_solver_kind_resolves_by_import():
    # "module:function" kinds import on demand, so they work in spawned
    # workers that never saw the parent's register_solver_kind calls.
    task = SweepTask(
        key=("x",),
        scenario=SweepConfig(num_devices=4).scenario_params(seed=0),
        solver_kind="repro.experiments.ablation:_sp2_solver_agreement",
        solver_params={"energy_weight": 0.5},
    )
    [outcome] = SweepRunner(jobs=1).run([task])
    assert outcome.ok
    assert "relative_gap" in outcome.metrics


def test_unknown_solver_kind_becomes_error_outcome():
    task = SweepTask(
        key=("x",),
        scenario=SweepConfig(num_devices=4).scenario_params(seed=0),
        solver_kind="no_such_kind",
    )
    [outcome] = SweepRunner(jobs=1).run([task])
    assert not outcome.ok
    assert "no_such_kind" in outcome.error


# -- progress and ambient runner --------------------------------------------

def test_progress_callback_sees_every_task():
    seen = []
    runner = SweepRunner(jobs=1, progress=lambda done, total, outcome: seen.append((done, total)))
    runner.run(_explode_tasks(2))
    assert seen == [(1, 2), (2, 2)]


def test_keyboard_interrupt_flushes_store_and_reraises(tmp_path):
    # satellite: graceful interrupt.  Ctrl-C mid-sweep (injected through the
    # progress callback after the first executed task) must re-raise, but
    # only after flushing the store — the finished work has to survive for
    # the next run — and after recording the partial stats.
    tasks = proposed_tasks(("p",), TINY_SWEEP, 0.5)
    assert len(tasks) >= 2

    def interrupt_after_first(done, total, outcome):
        if done == 1:
            raise KeyboardInterrupt

    runner = SweepRunner(
        jobs=1,
        cache_dir=tmp_path,
        use_cache=True,
        store_backend="columnar",
        progress=interrupt_after_first,
    )
    with pytest.raises(KeyboardInterrupt):
        runner.run(tasks)

    assert runner.last_stats is not None
    assert runner.last_stats.executed == 1
    assert runner.last_stats.elapsed_s > 0

    # The flushed entry is durable: a *fresh* store handle serves it, and a
    # rerun gets it as a cache hit instead of recomputing.
    from repro.store import open_store

    assert len(open_store(tmp_path, "columnar")) == 1
    rerun = SweepRunner(
        jobs=1, cache_dir=tmp_path, use_cache=True, store_backend="columnar"
    )
    outcomes = rerun.run(tasks)
    assert rerun.last_stats.cache_hits == 1
    assert rerun.last_stats.executed == len(tasks) - 1
    assert len(outcomes) == len(tasks)


def test_keyboard_interrupt_in_parallel_run_cancels_pending(tmp_path):
    # The same injection with a process pool: the executor shutdown cancels
    # the queued futures and the exception still propagates promptly.
    tasks = proposed_tasks(
        ("p",),
        SweepConfig(
            num_devices=4, num_trials=4, allocator=AllocatorConfig(max_iterations=4)
        ),
        0.5,
    )

    def interrupt_after_first(done, total, outcome):
        if done == 1:
            raise KeyboardInterrupt

    runner = SweepRunner(
        jobs=2,
        cache_dir=tmp_path,
        use_cache=True,
        progress=interrupt_after_first,
    )
    with pytest.raises(KeyboardInterrupt):
        runner.run(tasks)
    assert runner.last_stats.executed >= 1
    # What did finish before the interrupt is durable.
    from repro.store import open_store

    assert len(open_store(tmp_path)) == runner.last_stats.executed - runner.last_stats.failed


def test_use_runner_installs_and_restores_default():
    configured = SweepRunner(jobs=2)
    assert get_active_runner() is not configured
    with use_runner(configured):
        assert get_active_runner() is configured
    assert get_active_runner() is not configured


def test_set_default_runner_roundtrip():
    configured = SweepRunner(jobs=3)
    set_default_runner(configured)
    try:
        assert get_active_runner() is configured
    finally:
        set_default_runner(None)


def test_run_experiment_forwards_runner():
    runner = SweepRunner(jobs=1)
    table = run_experiment("fig8", TINY_FIG8, runner=runner)
    assert runner.last_stats.total == len(TINY_FIG8.tasks())
    assert len(table) == 4
