"""Tests for the synthetic datasets."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fl import make_classification_dataset


def test_shapes_and_split():
    dataset = make_classification_dataset(1000, num_features=8, num_classes=3, rng=0)
    assert dataset.num_train + dataset.num_test == 1000
    assert dataset.num_test == 200
    assert dataset.train_x.shape == (800, 8)
    assert dataset.num_features == 8
    assert dataset.num_classes == 3


def test_labels_cover_all_classes():
    dataset = make_classification_dataset(2000, num_classes=4, rng=1)
    assert set(np.unique(dataset.train_y)) == {0, 1, 2, 3}
    assert np.all(dataset.test_y >= 0)
    assert np.all(dataset.test_y < 4)


def test_reproducible_with_seed():
    a = make_classification_dataset(500, rng=3)
    b = make_classification_dataset(500, rng=3)
    assert np.allclose(a.train_x, b.train_x)
    assert np.array_equal(a.train_y, b.train_y)


def test_larger_separation_is_easier():
    # A nearest-class-mean classifier should do better when classes are far apart.
    def centroid_accuracy(dataset):
        means = np.stack(
            [dataset.train_x[dataset.train_y == c].mean(axis=0) for c in range(dataset.num_classes)]
        )
        distances = np.linalg.norm(dataset.test_x[:, None, :] - means[None, :, :], axis=2)
        predictions = np.argmin(distances, axis=1)
        return float(np.mean(predictions == dataset.test_y))

    easy = make_classification_dataset(3000, class_separation=4.0, noise_std=1.0, rng=5)
    hard = make_classification_dataset(3000, class_separation=0.2, noise_std=1.0, rng=5)
    assert centroid_accuracy(easy) > centroid_accuracy(hard) + 0.2


def test_invalid_configurations_rejected():
    with pytest.raises(ConfigurationError):
        make_classification_dataset(3, num_classes=5)
    with pytest.raises(ConfigurationError):
        make_classification_dataset(100, test_fraction=1.5)
    with pytest.raises(ConfigurationError):
        make_classification_dataset(100, num_classes=1)
