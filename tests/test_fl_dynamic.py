"""Determinism blitz for the dynamic-fleet round loop.

The acceptance gates of the dynamic layer, all at **zero tolerance**:

* the frozen-fleet loop (churn/battery/estimation all off) is bit-identical
  to the committed PR-9 golden record — adding the layer changed nothing
  for existing users;
* fixed-seed churn + drain runs are bit-identical across solver backends,
  warm and cold starts, repeated invocations, and serial versus parallel
  sweep execution;
* the warm-start chain punctures exactly when the fleet changes shape;
* drained devices retire and are never selected again (``graceful``) or
  fail the run loudly (``loud``);
* the online profile estimator converges toward the oracle parameters and
  its runs stay deterministic too.
"""

import json
from pathlib import Path

import pytest

from repro.devices.battery import BatteryDrainedError
from repro.exceptions import ConfigurationError
from repro.fl.churn import resolve_churn
from repro.fl.estimation import ProfileEstimator
from repro.fl.roundloop import FLRoundLoop, RoundLoopConfig, run_round_loop

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_fl_pr9.json"

SCENARIO = {"family": "paper", "num_devices": 6, "seed": 11}

CHURN_EVENTS = {
    "mode": "events",
    "initial_absent": [5],
    "events": {2: {"arrive": [5], "depart": [0]}, 3: {"depart": [2]}},
}

CHURN_POISSON = {
    "mode": "poisson",
    "arrive_rate": 0.4,
    "depart_rate": 0.3,
    "initial_absent_fraction": 0.25,
}


def tiny_config(**overrides) -> RoundLoopConfig:
    defaults = dict(
        scenario=SCENARIO,
        rounds=3,
        local_iterations=4,
        samples_per_client=24,
        seed=11,
    )
    defaults.update(overrides)
    return RoundLoopConfig(**defaults)


# -- golden frozen-fleet regression -----------------------------------------
class TestGoldenFrozenFleet:
    """The disabled path must match the committed pre-dynamic record."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    def test_default_trajectory_matches_golden_exactly(self, golden):
        metrics = run_round_loop(tiny_config()).flat_metrics()
        assert metrics == golden["all"]

    def test_deadline_selection_trajectory_matches_golden_exactly(self, golden):
        metrics = run_round_loop(tiny_config(selection="deadline-k")).flat_metrics()
        assert metrics == golden["deadline-k"]

    def test_static_scheme_trajectory_matches_golden_exactly(self, golden):
        metrics = run_round_loop(
            tiny_config(scheme="static", fading=None)
        ).flat_metrics()
        assert metrics == golden["static-scheme"]

    def test_frozen_fleet_emits_no_dynamic_keys(self, golden):
        metrics = run_round_loop(tiny_config()).flat_metrics()
        dynamic_fragments = (
            "fleet_size", "arrived", "departed", "retired",
            "battery", "punctured", "_est_",
        )
        assert not [
            key
            for key in metrics
            if any(fragment in key for fragment in dynamic_fragments)
        ]


# -- the churn x warm-start x backend determinism matrix ---------------------
class TestDynamicDeterminismMatrix:
    @pytest.fixture(scope="class", params=["events", "poisson"])
    def churn_spec(self, request):
        return CHURN_EVENTS if request.param == "events" else CHURN_POISSON

    @pytest.fixture(scope="class")
    def reference(self, churn_spec):
        return run_round_loop(
            tiny_config(
                churn=churn_spec,
                battery={"capacity_j": 50.0},
                warm_start=False,
                backend="vector",
            )
        ).flat_metrics()

    def test_repeat_run_is_bit_identical(self, churn_spec, reference):
        again = run_round_loop(
            tiny_config(
                churn=churn_spec,
                battery={"capacity_j": 50.0},
                warm_start=False,
                backend="vector",
            )
        ).flat_metrics()
        assert again == reference

    def test_scalar_backend_is_bit_identical(self, churn_spec, reference):
        scalar = run_round_loop(
            tiny_config(
                churn=churn_spec,
                battery={"capacity_j": 50.0},
                warm_start=False,
                backend="scalar",
            )
        ).flat_metrics()
        assert scalar == reference

    def test_warm_start_is_bit_identical_modulo_puncture_diagnostics(
        self, churn_spec, reference
    ):
        warm = run_round_loop(
            tiny_config(
                churn=churn_spec,
                battery={"capacity_j": 50.0},
                warm_start=True,
                backend="vector",
            )
        ).flat_metrics()
        # Warm runs additionally report the puncture diagnostic; every
        # shared key must agree exactly.
        punctures = {k for k in warm if k.endswith("_resolve_punctured")}
        assert punctures
        assert {k: v for k, v in warm.items() if k not in punctures} == reference

    def test_warm_scalar_matches_warm_vector_exactly(self, churn_spec):
        kwargs = dict(
            churn=churn_spec, battery={"capacity_j": 50.0}, warm_start=True
        )
        vector = run_round_loop(tiny_config(backend="vector", **kwargs))
        scalar = run_round_loop(tiny_config(backend="scalar", **kwargs))
        assert vector.flat_metrics() == scalar.flat_metrics()


def test_warm_chain_punctures_exactly_when_the_fleet_changes_shape():
    report = run_round_loop(
        tiny_config(rounds=4, churn=CHURN_EVENTS, warm_start=True)
    )
    # Round 1 has no chain yet; rounds 2 and 3 both carry events that
    # change the active set; round 4 has no events, so the chain holds.
    assert [r.resolve_punctured for r in report.records] == [
        False,
        True,
        True,
        False,
    ]
    fleet_sizes = [r.fleet_size for r in report.records]
    expected = [
        len(p)
        for p in resolve_churn(
            CHURN_EVENTS, num_devices=6, rounds=4, seed=11
        ).present_through()
    ]
    assert fleet_sizes == expected


def test_dynamic_run_is_deterministic_across_sweep_execution_order():
    from repro.experiments.base import run_sweep
    from repro.experiments.runner import SweepRunner, SweepTask

    tasks = [
        SweepTask(
            key=("dyn", seed),
            scenario={**SCENARIO, "seed": seed},
            solver_kind="fl_roundloop",
            solver_params={
                "roundloop": tiny_config(
                    churn=CHURN_POISSON, battery={"capacity_j": 50.0}, seed=seed
                )
            },
        )
        for seed in (11, 12, 13)
    ]
    serial = run_sweep(tasks, runner=SweepRunner(jobs=1, use_cache=False))
    parallel = run_sweep(tasks, runner=SweepRunner(jobs=2, use_cache=False))
    assert set(serial) == set(parallel)
    for key, point in serial.items():
        assert point.metrics is not None and parallel[key].metrics is not None
        assert point.metrics == parallel[key].metrics


# -- battery retirement ------------------------------------------------------
def test_graceful_policy_retires_dead_devices_and_never_selects_them_again():
    # A capacity small enough that devices die within the horizon.
    report = run_round_loop(
        tiny_config(rounds=4, battery={"capacity_j": 0.02, "policy": "graceful"})
    )
    retired: set[int] = set()
    for record in report.records:
        assert not retired & set(record.selected), (
            "a retired device trained again"
        )
        retired |= set(record.retired)
    assert retired, "the tiny capacity must retire at least one device"
    sizes = [r.fleet_size for r in report.records]
    assert sizes == sorted(sizes, reverse=True)


def test_loud_policy_raises_on_the_first_over_budget_draw():
    with pytest.raises(BatteryDrainedError, match="loud"):
        run_round_loop(
            tiny_config(rounds=4, battery={"capacity_j": 0.02, "policy": "loud"})
        )


def test_everyone_dead_is_a_loud_error_even_under_graceful_policy():
    with pytest.raises(BatteryDrainedError, match="no device can train"):
        run_round_loop(
            tiny_config(
                rounds=6, battery={"capacity_j": 0.005, "policy": "graceful"}
            )
        )


def test_charge_k_selection_prefers_the_fullest_batteries():
    report = run_round_loop(
        tiny_config(
            rounds=3,
            selection="charge-k",
            selection_params={"k": 3},
            battery={"capacity_j": 50.0},
        )
    )
    assert all(len(r.selected) == 3 for r in report.records)


def test_charge_k_without_batteries_is_a_configuration_error():
    with pytest.raises(ConfigurationError, match="battery"):
        run_round_loop(tiny_config(selection="charge-k"))


# -- estimation ---------------------------------------------------------------
def test_estimator_errors_shrink_as_observations_accumulate():
    report = run_round_loop(
        tiny_config(rounds=5, estimate_profiles=True, fading=None)
    )
    cycles = [r.estimation_cycles_rel_err for r in report.records]
    gains = [r.estimation_gain_rel_err for r in report.records]
    # Compute cycles invert exactly from one noiseless observation.
    assert cycles[-1] == pytest.approx(0.0, abs=1e-9)
    # With no fading the gains invert exactly too once observed.
    assert gains[-1] == pytest.approx(0.0, abs=1e-9)


def test_estimator_converges_toward_oracle_gains_under_fading():
    report = run_round_loop(tiny_config(rounds=6, estimate_profiles=True))
    gains = [r.estimation_gain_rel_err for r in report.records]
    # Fading draws have unit mean power, so averaging over rounds walks
    # the estimate toward the large-scale gain: the tail error must be
    # well below the first observation's.
    assert gains[-1] < gains[0]


def test_estimated_runs_are_deterministic():
    config = tiny_config(
        rounds=3, estimate_profiles=True, churn=CHURN_POISSON
    )
    first = run_round_loop(config).flat_metrics()
    second = run_round_loop(config).flat_metrics()
    assert first == second


def test_estimator_observe_then_estimated_system_round_trips():
    import numpy as np

    from repro.scenarios import ScenarioSpec

    system = ScenarioSpec.from_mapping(SCENARIO).build()
    estimator = ProfileEstimator(system.num_devices)
    frequency = system.max_frequency_hz * 0.5
    power = system.max_power_w * 0.5
    bandwidth = np.full(
        system.num_devices, system.total_bandwidth_hz / system.num_devices
    )
    estimator.observe_round(
        system,
        np.arange(system.num_devices),
        frequency_hz=frequency,
        power_w=power,
        bandwidth_hz=bandwidth,
        compute_time_s=system.computation_time_s(frequency),
        upload_time_s=system.upload_time_s(power, bandwidth),
    )
    errors = estimator.error_report(system)
    assert errors["observed_devices"] == system.num_devices
    assert errors["cycles_rel_err"] == pytest.approx(0.0, abs=1e-9)
    assert errors["gain_rel_err"] == pytest.approx(0.0, abs=1e-9)
    estimated = estimator.estimated_system(system, np.arange(system.num_devices))
    assert np.allclose(estimated.gains, system.gains)


def test_estimation_params_validate():
    with pytest.raises(ConfigurationError):
        tiny_config(estimation_params={"forgetting": 0.0})
    with pytest.raises(ConfigurationError):
        tiny_config(estimation_params={"unknown_knob": 1.0})


# -- config validation --------------------------------------------------------
def test_churn_spec_validation_is_strict():
    with pytest.raises(ConfigurationError, match="unknown churn"):
        tiny_config(churn={"mode": "poisson", "typo_rate": 0.5})
    with pytest.raises(ConfigurationError, match="round 2"):
        tiny_config(churn={"mode": "events", "events": {1: {"depart": [0]}}})
    with pytest.raises(ConfigurationError, match="empty"):
        run_round_loop(
            tiny_config(
                churn={"mode": "events", "initial_absent": [0, 1, 2, 3, 4, 5]}
            )
        )
    with pytest.raises(ConfigurationError, match="universe"):
        run_round_loop(
            tiny_config(churn={"mode": "events", "initial_absent": [99]})
        )


def test_battery_spec_validation_is_strict():
    with pytest.raises(ConfigurationError, match="capacity_j"):
        tiny_config(battery={})
    with pytest.raises(ConfigurationError, match="positive"):
        tiny_config(battery={"capacity_j": -1.0})
    with pytest.raises(ConfigurationError, match="initial_soc"):
        tiny_config(battery={"capacity_j": 1.0, "initial_soc": 0.0})
    with pytest.raises(ConfigurationError, match="policy"):
        tiny_config(battery={"capacity_j": 1.0, "policy": "quiet"})
    with pytest.raises(ConfigurationError, match="unknown battery"):
        tiny_config(battery={"capacity_j": 1.0, "volts": 12})


def test_dynamic_fields_change_the_sweep_cache_key():
    from repro.experiments.runner import SweepTask, task_hash

    def digest(**overrides):
        return task_hash(
            SweepTask(
                key=("t",),
                scenario=SCENARIO,
                solver_kind="fl_roundloop",
                solver_params={"roundloop": tiny_config(**overrides)},
            )
        )

    base = digest()
    assert digest(churn=CHURN_POISSON) != base
    assert digest(battery={"capacity_j": 50.0}) != base
    assert digest(estimate_profiles=True) != base
