"""Tests for the numpy models."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fl import MLPClassifier, SoftmaxRegression, make_classification_dataset


@pytest.fixture(scope="module")
def dataset():
    return make_classification_dataset(1500, num_features=10, num_classes=3, rng=0)


@pytest.mark.parametrize("model_cls", [SoftmaxRegression, MLPClassifier])
def test_weights_roundtrip(model_cls):
    model = model_cls(10, 3, rng=0)
    weights = model.get_weights()
    assert weights.shape == (model.num_parameters,)
    model.set_weights(weights * 2.0)
    assert np.allclose(model.get_weights(), weights * 2.0)
    with pytest.raises(ConfigurationError):
        model.set_weights(weights[:-1])


@pytest.mark.parametrize("model_cls", [SoftmaxRegression, MLPClassifier])
def test_predict_proba_is_a_distribution(model_cls, dataset):
    model = model_cls(dataset.num_features, dataset.num_classes, rng=1)
    probs = model.predict_proba(dataset.test_x)
    assert probs.shape == (dataset.num_test, dataset.num_classes)
    assert np.all(probs >= 0)
    assert np.allclose(probs.sum(axis=1), 1.0)


@pytest.mark.parametrize("model_cls", [SoftmaxRegression, MLPClassifier])
def test_gradient_matches_finite_differences(model_cls, dataset):
    model = model_cls(dataset.num_features, dataset.num_classes, rng=2)
    x = dataset.train_x[:40]
    y = dataset.train_y[:40]
    _, gradient = model.loss_and_gradient(x, y)
    weights = model.get_weights()
    rng = np.random.default_rng(0)
    for index in rng.choice(model.num_parameters, size=10, replace=False):
        eps = 1e-6
        perturbed = weights.copy()
        perturbed[index] += eps
        model.set_weights(perturbed)
        loss_plus, _ = model.loss_and_gradient(x, y)
        perturbed[index] -= 2 * eps
        model.set_weights(perturbed)
        loss_minus, _ = model.loss_and_gradient(x, y)
        model.set_weights(weights)
        fd = (loss_plus - loss_minus) / (2 * eps)
        assert gradient[index] == pytest.approx(fd, rel=1e-3, abs=1e-6)


@pytest.mark.parametrize("model_cls", [SoftmaxRegression, MLPClassifier])
def test_gradient_descent_reduces_loss(model_cls, dataset):
    model = model_cls(dataset.num_features, dataset.num_classes, rng=3)
    x, y = dataset.train_x, dataset.train_y
    initial_loss, _ = model.loss_and_gradient(x, y)
    for _ in range(60):
        loss, gradient = model.loss_and_gradient(x, y)
        model.set_weights(model.get_weights() - 0.5 * gradient)
    final_loss, _ = model.loss_and_gradient(x, y)
    assert final_loss < initial_loss * 0.8
    accuracy = float(np.mean(model.predict(dataset.test_x) == dataset.test_y))
    assert accuracy > 0.6


@pytest.mark.parametrize("model_cls", [SoftmaxRegression, MLPClassifier])
def test_clone_is_independent(model_cls):
    model = model_cls(6, 2, rng=4)
    clone = model.clone()
    assert np.allclose(clone.get_weights(), model.get_weights())
    clone.set_weights(clone.get_weights() + 1.0)
    assert not np.allclose(clone.get_weights(), model.get_weights())


def test_upload_bits_scales_with_parameters():
    small = SoftmaxRegression(5, 2)
    large = SoftmaxRegression(50, 10)
    assert large.upload_bits() > small.upload_bits()
    assert small.upload_bits(bits_per_parameter=64) == 2 * small.upload_bits(32)


def test_invalid_model_configurations():
    with pytest.raises(ConfigurationError):
        SoftmaxRegression(0, 3)
    with pytest.raises(ConfigurationError):
        SoftmaxRegression(5, 1)
    with pytest.raises(ConfigurationError):
        MLPClassifier(5, 2, hidden_units=0)
    with pytest.raises(ConfigurationError):
        MLPClassifier(5, 2, l2=-1.0)
