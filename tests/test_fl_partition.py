"""Tests for the client data partitioners."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fl import dirichlet_partition, iid_partition


def test_iid_partition_covers_all_samples_once():
    parts = iid_partition(1000, 7, rng=0)
    assert len(parts) == 7
    combined = np.concatenate(parts)
    assert len(combined) == 1000
    assert len(np.unique(combined)) == 1000


def test_iid_partition_sizes_are_balanced():
    parts = iid_partition(1003, 10, rng=1)
    sizes = [len(p) for p in parts]
    assert max(sizes) - min(sizes) <= 1


def test_iid_partition_invalid_arguments():
    with pytest.raises(ConfigurationError):
        iid_partition(10, 0)
    with pytest.raises(ConfigurationError):
        iid_partition(3, 10)


def test_dirichlet_partition_covers_all_samples():
    labels = np.random.default_rng(0).integers(0, 5, size=2000)
    parts = dirichlet_partition(labels, 8, concentration=0.5, rng=0)
    combined = np.concatenate(parts)
    assert len(combined) == 2000
    assert len(np.unique(combined)) == 2000
    assert all(len(p) >= 2 for p in parts)


def test_dirichlet_small_concentration_is_more_skewed():
    labels = np.random.default_rng(1).integers(0, 10, size=5000)

    def label_entropy(parts):
        entropies = []
        for part in parts:
            counts = np.bincount(labels[part], minlength=10).astype(float)
            probs = counts / counts.sum()
            probs = probs[probs > 0]
            entropies.append(float(-(probs * np.log(probs)).sum()))
        return float(np.mean(entropies))

    skewed = dirichlet_partition(labels, 10, concentration=0.1, rng=2)
    uniform = dirichlet_partition(labels, 10, concentration=100.0, rng=2)
    assert label_entropy(skewed) < label_entropy(uniform)


def test_dirichlet_invalid_arguments():
    labels = np.zeros(100, dtype=int)
    with pytest.raises(ConfigurationError):
        dirichlet_partition(labels, 0)
    with pytest.raises(ConfigurationError):
        dirichlet_partition(labels, 4, concentration=0.0)
