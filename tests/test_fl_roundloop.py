"""Tests for the closed-loop round-by-round FL training subsystem.

The determinism tests here are the PR's acceptance gate: a fixed seed must
give bit-identical per-round metrics across solver backends, warm and cold
starts, and sweep execution order.
"""

import pytest

from repro.exceptions import ConfigurationError
from repro.fl.roundloop import FLRoundLoop, RoundLoopConfig, run_round_loop

SCENARIO = {"family": "paper", "num_devices": 6, "seed": 11}


def tiny_config(**overrides) -> RoundLoopConfig:
    defaults = dict(
        scenario=SCENARIO,
        rounds=3,
        local_iterations=4,
        samples_per_client=24,
        seed=11,
    )
    defaults.update(overrides)
    return RoundLoopConfig(**defaults)


@pytest.fixture(scope="module")
def baseline_report():
    return run_round_loop(tiny_config())


# -- configuration validation -------------------------------------------------

def test_config_rejects_bad_values():
    with pytest.raises(ConfigurationError, match="rounds"):
        tiny_config(rounds=0)
    with pytest.raises(ConfigurationError, match="scheme"):
        tiny_config(scheme="nope")
    with pytest.raises(ConfigurationError, match="selection"):
        tiny_config(selection="nope")
    with pytest.raises(ConfigurationError, match="fading"):
        tiny_config(fading="nope")
    with pytest.raises(ConfigurationError, match="partition"):
        tiny_config(partition="nope")
    with pytest.raises(ConfigurationError, match="model"):
        tiny_config(model="nope")
    with pytest.raises(ConfigurationError, match="energy_weight"):
        tiny_config(energy_weight=1.5)


def test_config_accepts_every_baseline_scheme():
    from repro.baselines.registry import BASELINES

    for name in BASELINES:
        tiny_config(scheme=name)


# -- the loop itself ----------------------------------------------------------

def test_loop_produces_one_record_per_round(baseline_report):
    assert len(baseline_report) == 3
    rounds = [r.round_index for r in baseline_report.records]
    assert rounds == [1, 2, 3]
    for record in baseline_report.records:
        assert record.selected == tuple(range(6))
        assert record.round_time_s > 0.0
        assert record.round_energy_j > 0.0
        assert 0.0 <= record.test_accuracy <= 1.0
        assert record.allocator_iterations >= 1
        assert record.timings.get("fl_allocate", 0.0) > 0.0
        assert record.timings.get("fl_train", 0.0) > 0.0


def test_cumulative_time_and_energy_are_monotone(baseline_report):
    elapsed = [r.elapsed_time_s for r in baseline_report.records]
    energy = [r.consumed_energy_j for r in baseline_report.records]
    assert all(b > a for a, b in zip(elapsed, elapsed[1:]))
    assert all(b > a for a, b in zip(energy, energy[1:]))
    assert baseline_report.total_time_s == pytest.approx(
        sum(r.round_time_s for r in baseline_report.records)
    )


def test_fading_redraw_changes_the_allocation_between_rounds(baseline_report):
    # With per-round Rayleigh fading the channel (and hence the re-solved
    # allocation's round prices) differs round to round.
    times = [r.round_time_s for r in baseline_report.records]
    assert len(set(times)) == len(times)


def test_static_channel_reprices_rounds_identically():
    report = run_round_loop(tiny_config(fading=None, warm_start=False))
    times = {round(r.round_time_s, 12) for r in report.records}
    assert len(times) == 1


def test_baseline_scheme_runs_the_same_training_schedule(baseline_report):
    static = run_round_loop(tiny_config(scheme="static"))
    # Same seed + full participation => identical FedAvg trajectory ...
    assert [r.test_accuracy for r in static.records] == [
        r.test_accuracy for r in baseline_report.records
    ]
    # ... but a different (more expensive) energy bill.
    assert static.total_energy_j > baseline_report.total_energy_j


def test_selection_strategy_feeds_aggregation():
    report = run_round_loop(
        tiny_config(selection="fastest-k", selection_params={"k": 2})
    )
    for record in report.records:
        assert len(record.selected) == 2
    full = run_round_loop(tiny_config())
    assert [r.test_accuracy for r in report.records] != [
        r.test_accuracy for r in full.records
    ]


def test_report_rows_and_table_round_trip(baseline_report):
    rows = baseline_report.as_rows()
    assert [row["round"] for row in rows] == [1, 2, 3]
    table = baseline_report.to_table()
    assert len(table) == 3
    assert table.column("accuracy") == [r.test_accuracy for r in baseline_report.records]


def test_flat_metrics_cover_every_round(baseline_report):
    metrics = baseline_report.flat_metrics()
    assert metrics["rounds"] == 3.0
    assert metrics["final_accuracy"] == baseline_report.final_accuracy
    for round_index in (1, 2, 3):
        assert f"r{round_index:03d}_accuracy" in metrics
        assert f"r{round_index:03d}_elapsed_s" in metrics


def test_time_to_accuracy_helpers(baseline_report):
    first = baseline_report.records[0]
    assert baseline_report.time_to_accuracy(first.test_accuracy) == pytest.approx(
        first.elapsed_time_s
    )
    assert baseline_report.time_to_accuracy(2.0) is None
    assert baseline_report.rounds_to_accuracy(2.0) is None


def test_prebuilt_system_overrides_the_scenario():
    from repro import build_paper_scenario

    system = build_paper_scenario(num_devices=5, seed=3)
    config = tiny_config(scenario={})  # no scenario needed with a system
    report = FLRoundLoop(config, system=system).run()
    assert report.records[0].selected == tuple(range(5))


# -- determinism: the acceptance gate ----------------------------------------

def _flat(config: RoundLoopConfig) -> dict[str, float]:
    return run_round_loop(config).flat_metrics()


def test_fixed_seed_runs_are_bit_identical_across_backends(baseline_report):
    scalar = _flat(tiny_config(backend="scalar"))
    vector = _flat(tiny_config(backend="vector"))
    assert scalar == vector
    assert vector == baseline_report.flat_metrics()


def test_fixed_seed_runs_are_bit_identical_warm_and_cold(baseline_report):
    cold = _flat(tiny_config(warm_start=False))
    assert cold == baseline_report.flat_metrics()


def test_repeated_runs_are_bit_identical(baseline_report):
    assert _flat(tiny_config()) == baseline_report.flat_metrics()


def test_different_seeds_differ():
    assert _flat(tiny_config(seed=12)) != _flat(tiny_config())


def test_local_iterations_override_reprices_compute():
    """Regression: an overridden R_l must enter the pricing models, not just
    the SGD loop — halving the local iterations must (roughly) halve the
    compute side of the round price."""
    few = run_round_loop(tiny_config(local_iterations=2, fading=None, rounds=1))
    many = run_round_loop(tiny_config(local_iterations=8, fading=None, rounds=1))
    # More local work => strictly more energy per round for the same drop.
    assert many.records[0].round_energy_j > few.records[0].round_energy_j
