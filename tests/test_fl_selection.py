"""Tests for the pluggable client-selection strategies."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fl.selection import (
    SelectionContext,
    get_selection_strategy,
    register_selection_strategy,
    select_clients,
    selection_strategies,
)


def make_ctx(
    times,
    *,
    round_index=1,
    deadline=None,
    params=None,
    seed=0,
):
    times = np.asarray(times, dtype=float)
    return SelectionContext(
        round_index=round_index,
        num_clients=times.shape[0],
        per_device_time_s=times,
        per_device_energy_j=np.ones_like(times),
        round_deadline_s=float(np.max(times)) if deadline is None else deadline,
        rng=np.random.default_rng(seed),
        params=params or {},
    )


def test_builtin_strategies_are_registered():
    assert {"all", "random-k", "fastest-k", "deadline-k"} <= set(selection_strategies())


def test_unknown_strategy_raises_with_known_list():
    with pytest.raises(ConfigurationError, match="deadline-k"):
        get_selection_strategy("nope")


def test_select_all_returns_every_client():
    selected = select_clients("all", make_ctx([3.0, 1.0, 2.0]))
    assert selected.tolist() == [0, 1, 2]


def test_random_k_is_deterministic_in_the_rng_and_sorted():
    ctx_a = make_ctx(np.ones(10), params={"k": 4}, seed=7)
    ctx_b = make_ctx(np.ones(10), params={"k": 4}, seed=7)
    a = select_clients("random-k", ctx_a)
    b = select_clients("random-k", ctx_b)
    assert a.tolist() == b.tolist()
    assert a.size == 4
    assert np.all(np.diff(a) > 0)


def test_random_k_defaults_to_half_the_fleet():
    assert select_clients("random-k", make_ctx(np.ones(10))).size == 5
    # A one-client fleet still selects someone.
    assert select_clients("random-k", make_ctx([1.0])).tolist() == [0]


def test_fastest_k_picks_smallest_times_with_stable_ties():
    selected = select_clients(
        "fastest-k", make_ctx([5.0, 1.0, 1.0, 0.5, 9.0], params={"k": 3})
    )
    assert selected.tolist() == [1, 2, 3]


def test_fastest_k_caps_k_at_the_fleet_size():
    selected = select_clients("fastest-k", make_ctx([2.0, 1.0], params={"k": 99}))
    assert selected.tolist() == [0, 1]


def test_nonpositive_k_is_rejected():
    with pytest.raises(ConfigurationError, match="k must be positive"):
        select_clients("fastest-k", make_ctx([1.0, 2.0], params={"k": 0}))


def test_deadline_k_keeps_only_clients_inside_the_deadline():
    selected = select_clients(
        "deadline-k", make_ctx([1.0, 4.0, 2.0, 8.0], deadline=2.5)
    )
    assert selected.tolist() == [0, 2]


def test_deadline_k_truncates_to_fastest_k_when_oversubscribed():
    selected = select_clients(
        "deadline-k",
        make_ctx([1.0, 0.5, 2.0, 1.5], deadline=10.0, params={"k": 2}),
    )
    assert selected.tolist() == [0, 1]


def test_deadline_k_never_selects_nobody():
    selected = select_clients("deadline-k", make_ctx([5.0, 4.0, 6.0], deadline=1.0))
    assert selected.tolist() == [1]


def test_deadline_k_rejects_nonpositive_slack():
    with pytest.raises(ConfigurationError, match="deadline_slack"):
        select_clients(
            "deadline-k", make_ctx([1.0], params={"deadline_slack": 0.0})
        )


def test_select_clients_validates_strategy_output():
    @register_selection_strategy("_test_bad_empty")
    def _bad_empty(ctx):
        return np.array([], dtype=int)

    @register_selection_strategy("_test_bad_range")
    def _bad_range(ctx):
        return np.array([0, ctx.num_clients])

    @register_selection_strategy("_test_bad_dupes")
    def _bad_dupes(ctx):
        return np.array([0, 0])

    ctx = make_ctx([1.0, 2.0])
    with pytest.raises(ConfigurationError, match="selected no clients"):
        select_clients("_test_bad_empty", ctx)
    with pytest.raises(ConfigurationError, match="outside"):
        select_clients("_test_bad_range", ctx)
    with pytest.raises(ConfigurationError, match="duplicate"):
        select_clients("_test_bad_dupes", ctx)
