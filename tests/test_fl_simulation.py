"""Tests for the system-aware FedAvg simulation."""

import numpy as np
import pytest

from repro import JointProblem, ProblemWeights, ResourceAllocator, build_paper_scenario
from repro.baselines import static_equal_allocation
from repro.exceptions import ConfigurationError
from repro.fl import (
    Client,
    FedAvgServer,
    FederatedSimulation,
    SoftmaxRegression,
    iid_partition,
    make_classification_dataset,
)


@pytest.fixture(scope="module")
def setup():
    system = build_paper_scenario(num_devices=8, seed=9)
    dataset = make_classification_dataset(800, num_features=6, num_classes=3, rng=9)
    parts = iid_partition(dataset.num_train, system.num_devices, rng=9)
    clients = [
        Client(client_id=i, features=dataset.train_x[idx], labels=dataset.train_y[idx])
        for i, idx in enumerate(parts)
    ]
    problem = JointProblem(system, ProblemWeights(energy=0.5, time=0.5))
    proposed = ResourceAllocator().solve(problem)
    static = static_equal_allocation(problem)
    return system, dataset, clients, proposed, static


def _make_server(dataset, clients, seed=0):
    model = SoftmaxRegression(dataset.num_features, dataset.num_classes, rng=seed)
    return FedAvgServer(model, clients, test_x=dataset.test_x, test_y=dataset.test_y, rng=seed)


def test_round_cost_matches_system_accounting(setup):
    system, dataset, clients, proposed, _ = setup
    simulation = FederatedSimulation(system, _make_server(dataset, clients), proposed.allocation)
    cost = simulation.round_cost()
    allocation = proposed.allocation
    assert cost.round_time_s == pytest.approx(allocation.round_time_s(system))
    assert cost.round_energy_j * system.global_rounds == pytest.approx(
        allocation.total_energy_j(system)
    )
    assert cost.per_device_time_s.shape == (system.num_devices,)


def test_simulation_accumulates_cost_linearly(setup):
    system, dataset, clients, proposed, _ = setup
    simulation = FederatedSimulation(system, _make_server(dataset, clients), proposed.allocation)
    report = simulation.run(global_rounds=5, local_iterations=3)
    cost = simulation.round_cost()
    assert len(report.rounds) == 5
    assert report.total_time_s == pytest.approx(5 * cost.round_time_s)
    assert report.total_energy_j == pytest.approx(5 * cost.round_energy_j)
    assert np.all(np.diff(report.consumed_energy_j) > 0)


def test_simulation_training_improves_accuracy(setup):
    system, dataset, clients, proposed, _ = setup
    simulation = FederatedSimulation(system, _make_server(dataset, clients), proposed.allocation)
    report = simulation.run(global_rounds=20, local_iterations=8)
    assert report.final_accuracy > report.test_accuracy[0]
    assert report.final_accuracy > 0.55


def test_optimised_allocation_is_cheaper_for_same_curve(setup):
    system, dataset, clients, proposed, static = setup
    run_a = FederatedSimulation(system, _make_server(dataset, clients, 1), proposed.allocation).run(
        global_rounds=5, local_iterations=3
    )
    run_b = FederatedSimulation(system, _make_server(dataset, clients, 1), static.allocation).run(
        global_rounds=5, local_iterations=3
    )
    # Identical FedAvg schedule and seeds: the accuracy curves coincide...
    assert np.allclose(run_a.test_accuracy, run_b.test_accuracy, atol=1e-12)
    # ...but the optimised allocation pays less energy per round.
    assert run_a.total_energy_j < run_b.total_energy_j


def test_budget_and_target_stopping(setup):
    system, dataset, clients, proposed, _ = setup
    simulation = FederatedSimulation(system, _make_server(dataset, clients), proposed.allocation)
    cost = simulation.round_cost()
    report = simulation.run(global_rounds=50, local_iterations=3, time_budget_s=cost.round_time_s * 3.5)
    assert len(report.rounds) <= 4

    simulation2 = FederatedSimulation(system, _make_server(dataset, clients), proposed.allocation)
    report2 = simulation2.run(global_rounds=50, local_iterations=3, energy_budget_j=cost.round_energy_j * 2.5)
    assert len(report2.rounds) <= 3

    simulation3 = FederatedSimulation(system, _make_server(dataset, clients), proposed.allocation)
    report3 = simulation3.run(global_rounds=30, local_iterations=8, target_accuracy=0.5)
    if report3.final_accuracy >= 0.5:
        assert report3.rounds_to_accuracy(0.5) == report3.rounds[-1]
        assert report3.time_to_accuracy(0.5) == pytest.approx(report3.total_time_s)
        assert report3.energy_to_accuracy(0.5) == pytest.approx(report3.total_energy_j)


def test_report_helpers_when_target_unreachable(setup):
    system, dataset, clients, proposed, _ = setup
    simulation = FederatedSimulation(system, _make_server(dataset, clients), proposed.allocation)
    report = simulation.run(global_rounds=2, local_iterations=1)
    assert report.rounds_to_accuracy(1.01) is None
    assert report.time_to_accuracy(1.01) is None
    assert report.energy_to_accuracy(1.01) is None


def test_mismatched_sizes_rejected(setup):
    system, dataset, clients, proposed, _ = setup
    small_server = _make_server(dataset, clients[:-1])
    with pytest.raises(ConfigurationError):
        FederatedSimulation(system, small_server, proposed.allocation)
    with pytest.raises(ConfigurationError):
        FederatedSimulation(system, _make_server(dataset, clients), proposed.allocation).run(
            global_rounds=0
        )


def test_allocation_client_count_mismatch_raises_clear_error(setup):
    """Regression: an allocation sized unlike the partitioned client fleet
    must fail loudly, naming both counts, instead of pricing the wrong
    devices."""
    system, dataset, clients, proposed, _ = setup
    shrunk = type(proposed.allocation)(
        power_w=proposed.allocation.power_w[:-1],
        bandwidth_hz=proposed.allocation.bandwidth_hz[:-1],
        frequency_hz=proposed.allocation.frequency_hz[:-1],
    )
    with pytest.raises(ConfigurationError, match=r"prices 7 device\(s\).*8 client\(s\)"):
        FederatedSimulation(system, _make_server(dataset, clients), shrunk)


def test_mutated_server_fails_at_run_not_silently(setup):
    """Regression: client lists mutated after construction are re-validated
    by run() — the priced fleet and the aggregated fleet must always agree."""
    system, dataset, clients, proposed, _ = setup
    simulation = FederatedSimulation(
        system, _make_server(dataset, clients), proposed.allocation
    )
    simulation.server.clients.pop()
    with pytest.raises(ConfigurationError, match="one client per device"):
        simulation.run(global_rounds=1, local_iterations=1)
