"""Tests for the optimiser, client, server and metrics of the FL stack."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fl import (
    Client,
    FedAvgServer,
    SGDConfig,
    SoftmaxRegression,
    accuracy,
    cross_entropy,
    iid_partition,
    make_classification_dataset,
)
from repro.fl.optimizer import sgd_steps


@pytest.fixture(scope="module")
def dataset():
    return make_classification_dataset(1200, num_features=8, num_classes=3, rng=0)


@pytest.fixture()
def clients(dataset):
    parts = iid_partition(dataset.num_train, 5, rng=0)
    return [
        Client(client_id=i, features=dataset.train_x[idx], labels=dataset.train_y[idx])
        for i, idx in enumerate(parts)
    ]


def test_metrics_basic_properties():
    assert accuracy(np.array([1, 0, 2]), np.array([1, 0, 1])) == pytest.approx(2 / 3)
    probs = np.array([[0.9, 0.1], [0.2, 0.8]])
    assert cross_entropy(probs, np.array([0, 1])) == pytest.approx(
        -(np.log(0.9) + np.log(0.8)) / 2
    )
    with pytest.raises(ValueError):
        accuracy(np.array([1]), np.array([1, 2]))
    with pytest.raises(ValueError):
        accuracy(np.array([]), np.array([]))


def test_sgd_config_validation():
    with pytest.raises(ConfigurationError):
        SGDConfig(learning_rate=0.0)
    with pytest.raises(ConfigurationError):
        SGDConfig(batch_size=0)
    with pytest.raises(ConfigurationError):
        SGDConfig(momentum=1.0)


def test_sgd_steps_reduce_loss(dataset):
    model = SoftmaxRegression(dataset.num_features, dataset.num_classes, rng=0)
    x, y = dataset.train_x, dataset.train_y
    before, _ = model.loss_and_gradient(x, y)
    sgd_steps(model, x, y, num_iterations=100, config=SGDConfig(learning_rate=0.3), rng=0)
    after, _ = model.loss_and_gradient(x, y)
    assert after < before


def test_client_local_update_changes_weights(dataset, clients):
    model = SoftmaxRegression(dataset.num_features, dataset.num_classes, rng=1)
    start = model.get_weights()
    new_weights, loss = clients[0].local_update(model, start, num_iterations=10, rng=0)
    assert new_weights.shape == start.shape
    assert not np.allclose(new_weights, start)
    assert np.isfinite(loss)
    with pytest.raises(ConfigurationError):
        clients[0].local_update(model, start, num_iterations=0)


def test_client_requires_data(dataset):
    with pytest.raises(ConfigurationError):
        Client(client_id=0, features=np.zeros((0, 3)), labels=np.zeros(0, dtype=int))
    with pytest.raises(ConfigurationError):
        Client(client_id=0, features=np.zeros((3, 2)), labels=np.zeros(2, dtype=int))


def test_fedavg_aggregation_weights(dataset, clients):
    model = SoftmaxRegression(dataset.num_features, dataset.num_classes, rng=2)
    server = FedAvgServer(model, clients, test_x=dataset.test_x, test_y=dataset.test_y)
    weights = server.aggregation_weights(clients)
    assert weights.sum() == pytest.approx(1.0)
    expected = np.array([c.num_samples for c in clients], dtype=float)
    assert np.allclose(weights, expected / expected.sum())


def test_fedavg_training_improves_accuracy(dataset, clients):
    model = SoftmaxRegression(dataset.num_features, dataset.num_classes, rng=3)
    server = FedAvgServer(
        model, clients, test_x=dataset.test_x, test_y=dataset.test_y, rng=0
    )
    _, initial_accuracy = server.evaluate()
    history = server.fit(global_rounds=15, local_iterations=10)
    assert len(history) == 15
    assert history.final_accuracy > initial_accuracy
    assert history.final_accuracy > 0.6
    # Train loss is recorded and broadly decreasing.
    assert history.train_loss[-1] < history.train_loss[0]


def test_fedavg_partial_participation(dataset, clients):
    model = SoftmaxRegression(dataset.num_features, dataset.num_classes, rng=4)
    server = FedAvgServer(
        model, clients, test_x=dataset.test_x, test_y=dataset.test_y, rng=1
    )
    server.run_round(1, local_iterations=5, participation=0.4)
    assert len(server.history) == 1
    with pytest.raises(ConfigurationError):
        server.run_round(2, local_iterations=5, participation=0.0)


def test_server_requires_clients(dataset):
    model = SoftmaxRegression(dataset.num_features, dataset.num_classes)
    with pytest.raises(ConfigurationError):
        FedAvgServer(model, [])
    server = FedAvgServer(model, [Client(0, dataset.train_x[:10], dataset.train_y[:10])])
    with pytest.raises(ConfigurationError):
        server.fit(global_rounds=0, local_iterations=1)
    # Without a test split evaluation returns NaN instead of crashing.
    loss, acc = server.evaluate()
    assert np.isnan(loss) and np.isnan(acc)


def test_run_round_with_explicit_client_indices(dataset, clients):
    model = SoftmaxRegression(dataset.num_features, dataset.num_classes, rng=4)
    server = FedAvgServer(
        model, clients, test_x=dataset.test_x, test_y=dataset.test_y, rng=1
    )
    server.run_round(1, local_iterations=3, client_indices=[0, 3])
    assert len(server.history) == 1
    # Pinned selection does not consume the server's RNG: two servers with
    # the same seed stay in lock-step whatever the selection was.
    other = FedAvgServer(
        SoftmaxRegression(dataset.num_features, dataset.num_classes, rng=4),
        clients,
        test_x=dataset.test_x,
        test_y=dataset.test_y,
        rng=1,
    )
    other.run_round(1, local_iterations=3, client_indices=[0, 3])
    assert np.array_equal(server.global_weights, other.global_weights)


def test_run_round_rejects_bad_client_indices(dataset, clients):
    model = SoftmaxRegression(dataset.num_features, dataset.num_classes, rng=4)
    server = FedAvgServer(model, clients)
    with pytest.raises(ConfigurationError, match="at least one"):
        server.run_round(1, local_iterations=1, client_indices=[])
    with pytest.raises(ConfigurationError, match="duplicates"):
        server.run_round(1, local_iterations=1, client_indices=[1, 1])
    with pytest.raises(ConfigurationError, match=r"\[0, 5\)"):
        server.run_round(1, local_iterations=1, client_indices=[0, 5])
