"""End-to-end integration tests across the whole stack."""

import pytest

from repro import (
    JointProblem,
    ProblemWeights,
    ResourceAllocator,
    build_paper_scenario,
)
from repro.baselines import random_benchmark, scheme1
from repro.core.allocator import AllocatorConfig
from repro.fl import (
    Client,
    FedAvgServer,
    FederatedSimulation,
    SoftmaxRegression,
    iid_partition,
    make_classification_dataset,
)


def test_full_paper_scenario_end_to_end():
    """Build the paper's default system, optimise it, and verify the headline
    qualitative claims on one drop."""
    system = build_paper_scenario(num_devices=25, seed=2024)
    allocator = ResourceAllocator()

    results = {}
    for w1 in (0.9, 0.5, 0.1):
        problem = JointProblem(system, ProblemWeights.from_energy_weight(w1))
        results[w1] = allocator.solve(problem)

    # Claim (i): the weight controls the energy/delay trade-off.
    assert results[0.9].energy_j < results[0.5].energy_j < results[0.1].energy_j
    assert results[0.9].completion_time_s > results[0.5].completion_time_s > results[0.1].completion_time_s

    # Claim (ii): the proposed allocation beats the random benchmark.
    problem = JointProblem(system, ProblemWeights(energy=0.5, time=0.5))
    benchmark = random_benchmark(problem, rng=0)
    assert results[0.5].energy_j < benchmark.energy_j
    assert results[0.5].objective < benchmark.objective


def test_deadline_pipeline_against_scheme1():
    """The Fig. 8 pipeline on one drop: proposed vs Scheme 1 under deadlines."""
    system = build_paper_scenario(num_devices=20, seed=7)
    allocator = ResourceAllocator()
    gaps = []
    for deadline in (90.0, 150.0):
        problem = JointProblem(system, ProblemWeights(energy=1.0, time=0.0), deadline_s=deadline)
        proposed = allocator.solve(problem)
        baseline = scheme1(problem)
        assert proposed.feasible and baseline.feasible
        assert proposed.completion_time_s <= deadline * (1 + 1e-6)
        assert baseline.completion_time_s <= deadline * (1 + 1e-6)
        assert proposed.energy_j <= baseline.energy_j * (1 + 1e-6)
        gaps.append(baseline.energy_j - proposed.energy_j)
    assert gaps[0] >= gaps[1]  # tighter deadline, bigger advantage


def test_allocation_feeds_the_fl_simulator():
    """Resource allocation plugged into actual FedAvg training."""
    system = build_paper_scenario(num_devices=10, seed=3)
    problem = JointProblem(system, ProblemWeights(energy=0.7, time=0.3))
    allocation = ResourceAllocator(AllocatorConfig(max_iterations=5)).solve(problem).allocation

    dataset = make_classification_dataset(1200, num_features=8, num_classes=3, rng=3)
    parts = iid_partition(dataset.num_train, system.num_devices, rng=3)
    clients = [
        Client(client_id=i, features=dataset.train_x[idx], labels=dataset.train_y[idx])
        for i, idx in enumerate(parts)
    ]
    model = SoftmaxRegression(dataset.num_features, dataset.num_classes, rng=3)
    server = FedAvgServer(model, clients, test_x=dataset.test_x, test_y=dataset.test_y, rng=3)
    report = FederatedSimulation(system, server, allocation).run(
        global_rounds=15, local_iterations=5
    )
    assert report.final_accuracy > 0.55
    assert report.total_energy_j > 0.0
    assert report.total_time_s == pytest.approx(
        15 * allocation.round_time_s(system), rel=1e-9
    )


def test_reproducibility_of_the_whole_pipeline():
    """Same seed, same numbers — the entire pipeline is deterministic."""
    def run_once():
        system = build_paper_scenario(num_devices=12, seed=99)
        problem = JointProblem(system, ProblemWeights(energy=0.5, time=0.5))
        result = ResourceAllocator().solve(problem)
        return result.energy_j, result.completion_time_s, result.objective

    first = run_once()
    second = run_once()
    assert first == second


def test_scaling_the_schedule_scales_the_cost():
    """Energy and delay are proportional to R_g for a fixed allocation."""
    system = build_paper_scenario(num_devices=10, seed=5, global_rounds=100)
    problem = JointProblem(system, ProblemWeights(energy=0.5, time=0.5))
    result = ResourceAllocator().solve(problem)
    allocation = result.allocation

    doubled = system.with_schedule(global_rounds=200)
    assert doubled.total_energy_j(
        allocation.power_w, allocation.bandwidth_hz, allocation.frequency_hz
    ) == pytest.approx(2.0 * result.energy_j)
    assert doubled.total_completion_time_s(
        allocation.power_w, allocation.bandwidth_hz, allocation.frequency_hz
    ) == pytest.approx(2.0 * result.completion_time_s)


def test_larger_cells_cost_more_time():
    """Fig. 5's qualitative claim on a single pair of drops."""
    allocator = ResourceAllocator(AllocatorConfig(max_iterations=5))
    near = build_paper_scenario(num_devices=10, seed=11, radius_km=0.1)
    far = build_paper_scenario(num_devices=10, seed=11, radius_km=1.4)
    near_result = allocator.solve(JointProblem(near, ProblemWeights(0.5, 0.5)))
    far_result = allocator.solve(JointProblem(far, ProblemWeights(0.5, 0.5)))
    assert far_result.completion_time_s > near_result.completion_time_s
